"""Ablations on the self-tuner's two pruning strategies (paper §IV-D).

1. **Decoupling** — compare the decoupled search's evaluation count with
   a joint (cartesian) grid over the same axes; both must find solutions
   of equal quality, the joint one at multiplicative cost (the paper's
   16+32 vs 16×32 argument).
2. **Seeding** — compare machine-query-seeded hill climbs against
   worst-case cold starts on the same axis.
"""

import itertools

from repro.analysis import ascii_table
from repro.core import SelfTuner, SwitchPoints, simulate_plan
from repro.core.pricing import price_base_kernel
from repro.core.tuning import pow2_hill_climb, pow2_range
from repro.gpu import make_device

DEVICE = "gtx470"
DSIZE = 4


def _joint_grid_search(device, ref_m, ref_system):
    """Cartesian search over (stage3 size, thomas switch, variant)."""
    best = (float("inf"), None)
    evaluations = 0
    max_onchip = device.max_onchip_system_size(DSIZE)
    for size in pow2_range(32, max_onchip):
        stride = ref_system // size
        subsystems = ref_m * (ref_system // size)
        _, split_report = simulate_plan(
            device,
            ref_m,
            ref_system,
            DSIZE,
            SwitchPoints(
                stage1_target_systems=1,
                stage3_system_size=size,
                thomas_switch=min(64, size),
                source="probe",
            ),
        )
        split_ms = sum(
            ms
            for stage, ms in split_report.stage_ms().items()
            if stage != "stage3_pcr_thomas"
        )
        for thomas in pow2_range(4, size):
            for variant in ("coalesced", "strided"):
                evaluations += 1
                ms = split_ms + price_base_kernel(
                    device,
                    subsystems,
                    size,
                    DSIZE,
                    thomas_switch=thomas,
                    variant=variant,
                    stride=stride,
                )
                if ms < best[0]:
                    best = (ms, (size, thomas, variant))
    return best, evaluations


def test_decoupled_vs_joint_search(benchmark, emit):
    """The pruned search must match the joint optimum at a fraction of
    the evaluations."""
    device = make_device(DEVICE)

    def decoupled():
        tuner = SelfTuner()
        sp = tuner.switch_points(device, 2048, 4096, DSIZE)
        return sp, tuner.last_trace.num_evaluations

    (tuned, pruned_evals) = benchmark.pedantic(decoupled, rounds=1, iterations=1)
    ref_system = 4096
    ref_m = max(64, 4 * device.spec.num_processors)
    (joint_ms, joint_cfg), joint_evals = _joint_grid_search(
        device, ref_m, ref_system
    )

    _, tuned_report = simulate_plan(device, 2048, 4096, DSIZE, tuned)
    joint_sp = tuned.with_(
        stage3_system_size=joint_cfg[0], thomas_switch=joint_cfg[1]
    )
    _, joint_report = simulate_plan(device, 2048, 4096, DSIZE, joint_sp)

    text = ascii_table(
        ["search", "model probes", "deployed ms (2Kx4K workload)"],
        [
            ["decoupled + seeded (ours)", pruned_evals, tuned_report.total_ms],
            ["joint cartesian grid", joint_evals, joint_report.total_ms],
        ],
        title="Ablation: decoupled vs joint tuning-space search",
    )
    emit("ablation_decoupling", text)

    assert pruned_evals < joint_evals / 2
    assert tuned_report.total_ms <= joint_report.total_ms * 1.05


def test_tuning_wallclock(benchmark):
    """Wall-clock cost of one full self-tuning run (§IV-D: 'less than one
    minute' on real hardware; our stopwatch is the model, so this is
    milliseconds — the *search logic* is what is being timed)."""
    device = make_device(DEVICE)

    def tune():
        tuner = SelfTuner()
        return tuner.tune(device, DSIZE)

    tuned, trace = benchmark(tune)
    assert tuned.source == "dynamic"
    assert trace.num_evaluations < 150


def test_seeded_vs_cold_hill_climb(benchmark, emit):
    """Machine-query seeding lands near the valley, so the climb is short."""
    device = make_device(DEVICE)
    size, stride, subsystems = 512, 8, 4096

    def climb(seed):
        evals = []

        def f(t):
            evals.append(t)
            return price_base_kernel(
                device,
                subsystems,
                size,
                DSIZE,
                thomas_switch=t,
                variant="coalesced",
                stride=stride,
            )

        best, _ = pow2_hill_climb(f, seed=seed, lo=4, hi=size)
        return best, len(evals)

    best_seeded, seeded_evals = benchmark.pedantic(
        climb, args=(64,), rounds=1, iterations=1
    )
    cold_results = [climb(seed) for seed in (4, 512)]
    text = ascii_table(
        ["start", "optimum found", "evaluations"],
        [["machine-query seed (64)", best_seeded, seeded_evals]]
        + [
            [f"cold start ({seed})", best, n]
            for seed, (best, n) in zip((4, 512), cold_results)
        ],
        title="Ablation: seeded vs cold hill climbing (Thomas-switch axis)",
    )
    emit("ablation_seeding", text)

    for best, n in cold_results:
        assert best == best_seeded  # same optimum
        assert seeded_evals <= n  # seeding never costs more
