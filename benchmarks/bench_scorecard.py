"""The reproduction scorecard as a benchmark artefact.

Regenerates the whole evaluation and grades every published claim; the
rendered card lands in ``benchmarks/results/scorecard.txt``.
"""

from repro.analysis import render_scorecard, reproduction_scorecard


def test_reproduction_scorecard(benchmark, emit):
    checks = benchmark.pedantic(reproduction_scorecard, rounds=1, iterations=1)
    emit("scorecard", render_scorecard(checks))
    assert all(c.passed for c in checks)
