"""Figure 5 — performance vs the stage-2→3 switch point.

Regenerates the paper's sweep of on-chip system sizes (128/256/512/1024)
per device, normalised to the optimum, and wall-clock-benchmarks the real
solver (exact numerics) at two candidate switch points on a scaled
workload.
"""

import pytest

from repro.analysis import PAPER_FIG5_OPTIMA, ascii_table, figure5
from repro.core import MultiStageSolver, SwitchPoints
from repro.systems import generators


def test_figure5_switch_point_sweep(benchmark, emit):
    """Regenerate Figure 5 from the machine model."""
    data = benchmark.pedantic(figure5, rounds=1, iterations=1)
    sizes = sorted(next(iter(data.values())))
    rows = []
    for device, series in data.items():
        best = max(
            (s for s, v in series.items() if v is not None),
            key=lambda s: series[s],
        )
        rows.append(
            [device]
            + [series[s] for s in sizes]
            + [best, "/".join(map(str, PAPER_FIG5_OPTIMA[device]))]
        )
    text = ascii_table(
        ["device"] + [str(s) for s in sizes] + ["our optimum", "paper optimum"],
        rows,
        title=(
            "Figure 5: relative performance vs stage-2->3 switch point "
            "(on-chip system size; 1.0 = best)"
        ),
    )
    emit("figure5", text)
    for device, series in data.items():
        best = max(
            (s for s, v in series.items() if v is not None),
            key=lambda s: series[s],
        )
        assert best in PAPER_FIG5_OPTIMA[device] or (
            # GTX 280: the paper calls 256 and 512 comparable.
            device == "gtx280" and series[256] > 0.85 and series[512] > 0.85
        )


@pytest.mark.parametrize("stage3_size", [256, 512])
def test_solver_wallclock_at_switch_point(benchmark, stage3_size):
    """Real-numerics wall clock of the solver at a forced switch point
    (scaled 1Kx1K workload: 128 systems of 1024 equations)."""
    batch = generators.random_dominant(128, 1024, rng=0)
    sp = SwitchPoints(
        stage3_system_size=stage3_size, thomas_switch=64, source="manual"
    )
    solver = MultiStageSolver("gtx470", sp)
    result = benchmark(solver.solve, batch)
    assert result.plan.stage3_system_size == stage3_size
