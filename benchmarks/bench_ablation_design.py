"""Ablations on the solver's design choices (DESIGN.md §8, items 3-5).

- base-kernel variant crossover: coalesced vs strided as stride grows;
- stage 1 on/off for few-large-system workloads;
- hybrid PCR-Thomas vs pure-PCR stage 4;
- the multi-stage solver vs the global-memory-only baseline.
"""

from repro.analysis import ascii_table
from repro.baselines import GlobalPcrSolver
from repro.core import MultiStageSolver, SwitchPoints, simulate_plan
from repro.core.pricing import price_base_kernel
from repro.gpu import make_device
from repro.systems import generators

DEVICE = "gtx470"
DSIZE = 4


def test_variant_crossover_sweep(benchmark, emit):
    """§III-A: the strided (uncoalesced) base kernel overtakes the
    coalesced one once subsystem interleaving grows deep enough."""
    device = make_device(DEVICE)

    def sweep():
        rows = []
        for stride in (1, 2, 4, 8, 16, 64, 256, 4096):
            c = price_base_kernel(
                device, 4096, 512, DSIZE,
                thomas_switch=64, variant="coalesced", stride=stride,
            )
            s = price_base_kernel(
                device, 4096, 512, DSIZE,
                thomas_switch=64, variant="strided", stride=stride,
            )
            rows.append([stride, c, s, "strided" if s < c else "coalesced"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = ascii_table(
        ["stride", "coalesced ms", "strided ms", "winner"],
        rows,
        title="Ablation: base-kernel variant crossover vs stride (GTX 470)",
    )
    emit("ablation_variants", text)
    assert rows[0][3] == "coalesced"  # contiguous loads: coalesced wins
    assert rows[-1][3] == "strided"  # deep interleaving: strided wins


def test_stage1_cooperative_split_ablation(benchmark, emit):
    """§III-C: disabling stage 1 (per-block splitting only) starves the
    machine on a single enormous system."""
    device = make_device(DEVICE)
    sp = SwitchPoints(stage3_system_size=512, thomas_switch=64)

    def measure():
        rows = []
        for label, target in (("stage 1 disabled", 1), ("stage 1 to 64 systems", 64)):
            plan, report = simulate_plan(
                device, 1, 1 << 21, DSIZE,
                sp.with_(stage1_target_systems=target),
            )
            rows.append([label, plan.stage1_steps, report.total_ms])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = ascii_table(
        ["configuration", "stage-1 steps", "simulated ms (1x2M)"],
        rows,
        title="Ablation: cooperative splitting on one 2M-equation system",
    )
    emit("ablation_stage1", text)
    disabled_ms, enabled_ms = rows[0][2], rows[1][2]
    assert enabled_ms < disabled_ms / 2  # stage 1 is load-bearing


def test_thomas_vs_pure_pcr_stage4(benchmark, emit):
    """§III-A: handing subsystems to Thomas beats running PCR to the end
    (work efficiency), as long as enough parallel subsystems exist."""
    device = make_device(DEVICE)

    def measure():
        rows = []
        for label, t in (("pure PCR (switch = n)", 512), ("hybrid (switch = 128)", 128)):
            ms = price_base_kernel(
                device, 4096, 512, DSIZE,
                thomas_switch=t, variant="coalesced", stride=1,
            )
            rows.append([label, ms])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = ascii_table(
        ["stage-4 algorithm", "simulated ms (4096 x 512 on-chip)"],
        rows,
        title="Ablation: hybrid PCR-Thomas vs pure PCR",
    )
    emit("ablation_thomas", text)
    assert rows[1][1] < rows[0][1]


def test_multistage_vs_global_only(benchmark, emit):
    """Egloff's estimate: skipping shared memory costs ~60%; our model's
    gap on an on-chip-sized workload."""
    batch = generators.random_dominant(256, 512, rng=4)

    def measure():
        staged = MultiStageSolver(DEVICE, "static").solve(batch).simulated_ms
        global_only = GlobalPcrSolver(DEVICE).solve(batch).simulated_ms
        return staged, global_only

    staged, global_only = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = ascii_table(
        ["solver", "simulated ms (256 x 512)"],
        [
            ["multi-stage (shared memory)", staged],
            ["global-memory-only PCR", global_only],
        ],
        title="Ablation: shared-memory staging vs global-only PCR",
    )
    emit("ablation_global_only", text)
    assert global_only > 1.5 * staged
