"""Scaling-study benchmarks (the paper's §VI-B scalability discussion).

Count scaling shows the machine filling and throughput saturating; size
scaling (fixed equation budget, fewer-but-larger systems) shows the
growing split overhead that hands the extreme case to the CPU.
"""

from repro.analysis import ascii_table, count_scaling, size_scaling


def test_count_scaling(benchmark, emit):
    rows = benchmark.pedantic(count_scaling, rounds=1, iterations=1)
    text = ascii_table(
        ["systems", "total eqs", "simulated ms", "Meq/s"],
        [
            [r["num_systems"], r["total_equations"], r["ms"], r["meqs_per_s"]]
            for r in rows
        ],
        title="Scaling: throughput vs system count (GTX 470, 1024-eq systems)",
    )
    emit("scaling_count", text)
    # Throughput grows as the machine fills ...
    assert rows[-1]["meqs_per_s"] > 5 * rows[0]["meqs_per_s"]
    # ... and saturates: the last doubling buys little.
    assert rows[-1]["meqs_per_s"] < 1.7 * rows[-3]["meqs_per_s"]


def test_size_scaling(benchmark, emit):
    rows = benchmark.pedantic(size_scaling, rounds=1, iterations=1)
    text = ascii_table(
        ["system size", "systems", "split steps", "stage-1 steps",
         "simulated ms", "Meq/s"],
        [
            [r["system_size"], r["num_systems"], r["split_steps"],
             r["stage1_steps"], r["ms"], r["meqs_per_s"]]
            for r in rows
        ],
        title="Scaling: fixed 4M-equation budget, growing system size (GTX 470)",
    )
    emit("scaling_size", text)
    # Split depth grows with system size ...
    depths = [r["split_steps"] for r in rows]
    assert depths == sorted(depths)
    # ... and the single-enormous-system endpoint is the most expensive
    # shape per equation (the Figure-8 crossover mechanism).
    assert rows[-1]["meqs_per_s"] < rows[1]["meqs_per_s"]
