"""Chaos campaign benchmark: recovery overhead under seeded faults.

Runs the two-phase fault-injection campaign (service under transient
faults, stalls, deadlines, and poisoned requests; distributed solver
losing one device mid-run) across several seeds and reports, per seed:

- the outcome audit — solved / typed errors / expired / shed, with the
  headline guarantee checked (zero silently wrong answers, zero untyped
  errors),
- the recovery bill — retries, bisections, worker stalls, and the
  failover's priced makespan overhead.

Runs both as a pytest bench (``pytest benchmarks/bench_chaos.py``) and
as a script (``python benchmarks/bench_chaos.py [--smoke]``); either way
the campaign reports are persisted to
``benchmarks/results/chaos_campaign.json``.
"""

import argparse
import sys
import warnings

from _results import write_results as _write_results

from repro.analysis import ascii_table
from repro.faults import run_sweep

SEEDS = (0, 1, 2)
REQUESTS = 200
TRANSIENT_P = 0.02
DIST_DEVICES = 4


def run_chaos(seeds=SEEDS, requests=REQUESTS):
    """The full campaign sweep; returns (payload, rendered text)."""
    with warnings.catch_warnings():
        # Poisoned (singular) requests legitimately produce NaNs inside
        # the kernels before verification rejects them.
        warnings.simplefilter("ignore", RuntimeWarning)
        reports = run_sweep(
            seeds,
            requests=requests,
            transient_p=TRANSIENT_P,
            dist_devices=DIST_DEVICES,
        )
    rows = [
        [
            r.seed,
            r.requests,
            r.solved,
            r.typed_errors,
            r.deadline_expired,
            r.shed,
            r.retries,
            r.bisections,
            f"{r.failover['recovery_overhead_ms']:.3f}",
            "CLEAN" if r.clean else "VIOLATED",
        ]
        for r in reports
    ]
    text = ascii_table(
        [
            "seed",
            "requests",
            "solved",
            "typed",
            "expired",
            "shed",
            "retries",
            "bisect",
            "failover ms",
            "verdict",
        ],
        rows,
        title=(
            f"Chaos campaign ({requests} requests/seed, transient p="
            f"{TRANSIENT_P}, kill 1 of {DIST_DEVICES} devices)"
        ),
    )
    text += "\n\n" + "\n".join(r.describe() for r in reports)
    payload = {
        "seeds": list(seeds),
        "requests_per_seed": requests,
        "transient_p": TRANSIENT_P,
        "dist_devices": DIST_DEVICES,
        "clean": all(r.clean for r in reports),
        "campaigns": [r.as_dict() for r in reports],
    }
    return payload, text


def write_results(payload, results_dir=None):
    return _write_results("chaos_campaign", payload, results_dir)


def test_chaos_campaign(benchmark, emit, results_dir):
    payload, text = benchmark.pedantic(run_chaos, rounds=1, iterations=1)
    emit("chaos_campaign", text)
    write_results(payload, results_dir)

    # The acceptance bar: across >= 3 seeds and >= 200 requests each,
    # every request returned a verified solution or a typed error.
    assert payload["clean"], "chaos campaign produced a silent wrong answer"
    for campaign in payload["campaigns"]:
        assert campaign["silent_wrong"] == 0
        assert campaign["untyped_errors"] == 0
        # The failover phase solved everything on the survivors, and
        # the recovery overhead was priced (non-zero wasted makespan).
        fo = campaign["failover"]
        assert fo["solved"] == fo["solves"]
        assert fo["failovers"] >= 1
        assert fo["recovery_overhead_ms"] > 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Seeded chaos campaign with recovery auditing"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single seed, fewer requests, for CI smoke runs",
    )
    args = parser.parse_args(argv)
    seeds = (0,) if args.smoke else SEEDS
    requests = 60 if args.smoke else REQUESTS
    payload, text = run_chaos(seeds, requests)
    print(text)
    path = write_results(payload)
    print(f"wrote {path}")
    if not payload["clean"]:
        print("FAIL: a request returned a silently wrong answer")
        return 1
    print(f"OK: {len(seeds)} seed(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
