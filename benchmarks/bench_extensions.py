"""Benchmarks for the extension packages (blocked, banded, D&C sort).

These cover the paper's future-work directions: wall-clock numerics for
the blocked and banded solvers, and the §VI-C transfer claim — the
auto-tuned sorter against untuned switch points on the machine model.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.banded import banded_lu_solve, random_banded_dominant
from repro.blocked import (
    BlockMultiStageSolver,
    block_pcr_thomas_solve,
    block_thomas_solve,
    random_block_dominant,
)
from repro.dnc import MultiStageSorter


@pytest.fixture(scope="module")
def block_batch():
    return random_block_dominant(32, 64, 4, rng=0)


def test_block_thomas_wallclock(benchmark, block_batch):
    benchmark(block_thomas_solve, block_batch)


def test_block_hybrid_wallclock(benchmark, block_batch):
    benchmark(block_pcr_thomas_solve, block_batch, 8)


def test_block_multistage_solver_wallclock(benchmark, block_batch):
    solver = BlockMultiStageSolver("gtx470")
    solver.solve(block_batch)  # tune outside the timed region
    result = benchmark(solver.solve, block_batch)
    assert result.simulated_ms > 0


@pytest.mark.parametrize("kl_ku", [(1, 1), (3, 3)])
def test_banded_lu_wallclock(benchmark, kl_ku):
    kl, ku = kl_ku
    batch = random_banded_dominant(32, 256, kl, ku, rng=1)
    x = benchmark(banded_lu_solve, batch)
    assert batch.residual(x).max() < 1e-10


def test_dnc_sort_wallclock(benchmark):
    values = np.random.default_rng(2).standard_normal(1 << 17)
    sorter = MultiStageSorter("gtx470")
    sorter.sort(values)  # tune outside the timed region
    result = benchmark(sorter.sort, values)
    assert np.array_equal(result.values, np.sort(values))


def test_dnc_tuning_transfer(benchmark, emit):
    """§VI-C: the multi-stage strategy + tuning transfers to sorting.

    Compares the tuned sorter's simulated time against fixed bad/naive
    switch points on each device.
    """
    values = np.random.default_rng(3).standard_normal(1 << 20)

    def measure():
        rows = []
        for name in ("8800gtx", "gtx280", "gtx470"):
            tuned = MultiStageSorter(name).sort(values)
            tiny = MultiStageSorter(name, tile_size=64, coop_threshold=1).sort(values)
            no_coop = MultiStageSorter(
                name, tile_size=tuned.tile_size, coop_threshold=1
            ).sort(values)
            rows.append(
                [
                    name,
                    tuned.tile_size,
                    tuned.simulated_ms,
                    tiny.simulated_ms,
                    no_coop.simulated_ms,
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = ascii_table(
        [
            "device",
            "tuned tile",
            "tuned ms",
            "64-elem tiles ms",
            "no cooperative passes ms",
        ],
        rows,
        title="Extension: auto-tuned multi-stage merge sort (1M elements)",
    )
    emit("extension_dnc_sort", text)
    for row in rows:
        assert row[2] <= row[3]  # tuned never loses to tiny tiles
