"""Sensitivity of the reproduced shapes to the hidden calibration knobs.

The machine model's hidden parameters were calibrated to the paper's
published shapes (docs/machine_model.md). This ablation perturbs each
load-bearing knob by 2x in both directions and reports which claims
survive — distinguishing *structural* results (driven by queryable
resources: on-chip capacities, saturation-by-residency) from *calibrated*
ones (Fig. 6 optima, the Fig. 8 crossover).
"""

from repro.analysis import ascii_table
from repro.core import SelfTuner, simulate_plan
from repro.baselines import MklLikeCpuSolver
from repro.gpu import GEFORCE_GTX_470, make_device

KNOBS = (
    ("threads_for_full_utilization", 256),
    ("partition_camping_efficiency", 0.25),
    ("misaligned_access_penalty", 1.3),
    ("coop_bandwidth_efficiency", 0.35),
)


def _fig8_crossover_holds(spec) -> bool:
    """Does the CPU still win the 1x2M workload on this variant device?"""
    dev = make_device(spec)
    sp = SelfTuner().switch_points(dev, 1, 1 << 21, 4)
    _, report = simulate_plan(dev, 1, 1 << 21, 4, sp)
    cpu_ms = MklLikeCpuSolver().modeled_time_ms(1, 1 << 21, 4)
    return report.total_ms > cpu_ms


def _fig6_optimum(spec) -> int:
    # figure6() takes registry device names; price variants directly.
    from repro.core.pricing import price_base_kernel

    dev = make_device(spec)
    size = dev.max_onchip_system_size(4)
    best, best_ms = None, float("inf")
    for t in (16, 32, 64, 128, 256, 512):
        if t > size:
            continue
        ms = price_base_kernel(
            dev, 2048, size, 4, thomas_switch=t, variant="coalesced", stride=1
        )
        if ms < best_ms:
            best, best_ms = t, ms
    return best


def test_knob_sensitivity(benchmark, emit):
    def sweep():
        rows = []
        base = GEFORCE_GTX_470
        rows.append(
            [
                "(calibrated)",
                "1.0x",
                _fig6_optimum(base),
                "yes" if _fig8_crossover_holds(base) else "no",
            ]
        )
        for knob, value in KNOBS:
            for scale in (0.5, 2.0):
                new_value = value * scale
                if knob == "threads_for_full_utilization":
                    new_value = int(new_value)
                if knob in ("partition_camping_efficiency", "coop_bandwidth_efficiency"):
                    new_value = min(1.0, new_value)
                variant = base.with_overrides(
                    name=f"GTX470[{knob}={new_value:g}]", **{knob: new_value}
                )
                rows.append(
                    [
                        knob,
                        f"{scale:g}x",
                        _fig6_optimum(variant),
                        "yes" if _fig8_crossover_holds(variant) else "no",
                    ]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = ascii_table(
        ["knob", "scale", "Fig.6 optimum (cal: 128)", "Fig.8 CPU wins 1x2M"],
        rows,
        title="Sensitivity: GTX 470 hidden-knob perturbations (2x each way)",
    )
    emit("sensitivity", text)

    # Structural expectations: the Fig.6 optimum tracks the latency knob
    # and is insensitive to the memory-path knobs.
    as_rows = {(r[0], r[1]): r for r in rows}
    assert as_rows[("(calibrated)", "1.0x")][2] == 128
    for knob in (
        "partition_camping_efficiency",
        "misaligned_access_penalty",
        "coop_bandwidth_efficiency",
    ):
        for scale in ("0.5x", "2x"):
            assert as_rows[(knob, scale)][2] == 128, (knob, scale)
    # Halving the latency requirement moves the optimum down.
    assert as_rows[("threads_for_full_utilization", "0.5x")][2] <= 128
    # The Fig.8 crossover needs the camping/coop penalties: doubling the
    # camping efficiency (less camping) hands 1x2M back to the GPU.
    assert as_rows[("partition_camping_efficiency", "2x")][3] == "no"
    assert as_rows[("(calibrated)", "1.0x")][3] == "yes"
