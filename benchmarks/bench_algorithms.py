"""Wall-clock benchmarks of the reference tridiagonal algorithms.

These time the *actual NumPy numerics* (not the machine model) across
the registry, so regressions in the vectorised implementations show up
as real slowdowns.
"""

import numpy as np
import pytest
from _results import write_results

from repro.algorithms import (
    cr_pcr_solve,
    cr_solve,
    lu_factor,
    lu_solve,
    lu_solve_factored,
    pcr_solve,
    pcr_split,
    pcr_thomas_solve,
    recursive_doubling_solve,
    thomas_solve,
    thomas_workspace_solve,
)
from repro.systems import generators

M, N = 256, 1024


@pytest.fixture(scope="module")
def batch():
    return generators.random_dominant(M, N, rng=0)


def test_thomas(benchmark, batch):
    benchmark(thomas_solve, batch)


def test_thomas_workspace(benchmark, batch):
    cp = np.empty(batch.shape)
    dp = np.empty(batch.shape)
    x = np.empty(batch.shape)
    benchmark(thomas_workspace_solve, batch, cp, dp, x)


def test_cr(benchmark, batch):
    benchmark(cr_solve, batch)


def test_pcr(benchmark, batch):
    benchmark(pcr_solve, batch)


@pytest.mark.parametrize("switch", [32, 128])
def test_pcr_thomas(benchmark, batch, switch):
    benchmark(pcr_thomas_solve, batch, switch)


def test_cr_pcr(benchmark, batch):
    benchmark(cr_pcr_solve, batch, 64)


def test_recursive_doubling(benchmark, batch):
    benchmark(recursive_doubling_solve, batch)


def test_lu(benchmark, batch):
    benchmark(lu_solve, batch)


def test_lu_resolve_with_cached_factors(benchmark, batch):
    factors = lu_factor(batch)
    benchmark(lu_solve_factored, factors, batch.d)


def test_pcr_split_primitive(benchmark, batch):
    benchmark(pcr_split, batch, 3)


@pytest.mark.fusion
def test_many_small_systems_interleaved_sweep(benchmark, emit, results_dir):
    """The many-small-systems regime: 1k systems of 64 equations.

    Wall clock pits a per-system Thomas loop (the per-request
    interpretation analogue) against one interleaved batched sweep;
    simulated time prices the concatenation of 1k single-system
    programs against the fused batched program the fusion pass rewrites
    them into. Both views must show the >= 2x fused throughput the
    nightly CI step pins, and the sweep's solutions must be
    bit-identical to the per-system loop.
    """
    import time

    from repro.core import plan_solve
    from repro.core.tuning import make_tuner
    from repro.gpu import make_device
    from repro.ir import Engine, concat_solve_programs, lower_solve_plan
    from repro.kernels import batched_thomas_sweep
    from repro.systems import BatchedTridiagonal
    from repro.systems.tridiagonal import TridiagonalBatch

    m, n = 1000, 64
    batch = generators.random_dominant(m, n, rng=2011)

    def per_system_loop():
        return np.vstack(
            [
                thomas_solve(
                    TridiagonalBatch(
                        batch.a[i : i + 1],
                        batch.b[i : i + 1],
                        batch.c[i : i + 1],
                        batch.d[i : i + 1],
                    )
                )
                for i in range(m)
            ]
        )

    interleaved = BatchedTridiagonal.interleave(batch)
    sweep = benchmark(batched_thomas_sweep, interleaved)
    t0 = time.perf_counter()
    loop_x = per_system_loop()
    loop_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    sweep_x = batched_thomas_sweep(interleaved)
    sweep_s = time.perf_counter() - t0
    np.testing.assert_array_equal(loop_x, np.ascontiguousarray(sweep_x.T))
    np.testing.assert_array_equal(sweep, sweep_x)

    # Simulated: N concatenated single-system programs vs their fusion.
    dev = make_device("gtx470")
    switch = make_tuner("static").switch_points(dev, m, n, 8)
    single = lower_solve_plan(plan_solve(dev, 1, n, 8, switch), dev, 8)
    programs = [single] * m
    unfused_ms = Engine.for_device(dev).price(
        concat_solve_programs(programs)
    ).total_ms
    fused_ms = Engine.for_device(dev).price(
        concat_solve_programs(programs, fuse=True)
    ).total_ms

    emit(
        "algorithms_many_small_systems",
        f"many small systems ({m} x {n}, f64):\n"
        f"  wall clock  per-system loop:   {loop_s * 1e3:8.2f} ms\n"
        f"  wall clock  interleaved sweep: {sweep_s * 1e3:8.2f} ms "
        f"({loop_s / sweep_s:.1f}x, bit-identical)\n"
        f"  simulated   {m} one-shot programs: {unfused_ms:8.4f} ms\n"
        f"  simulated   fused batched program: {fused_ms:8.4f} ms "
        f"({unfused_ms / fused_ms:.1f}x)",
    )

    # The shared JSON envelope carries only the *simulated* numbers:
    # write_results artefacts must reproduce byte for byte on unchanged
    # code, and wall clocks never do.
    write_results(
        "algorithms_many_small",
        {
            "num_systems": m,
            "system_size": n,
            "dtype_size": 8,
            "unfused_ms": unfused_ms,
            "fused_ms": fused_ms,
            "fused_speedup": unfused_ms / fused_ms,
        },
        results_dir,
    )

    # The nightly acceptance bar: >= 2x fused simulated throughput.
    assert unfused_ms / fused_ms >= 2.0, (
        f"fused only {unfused_ms / fused_ms:.2f}x"
    )
    assert loop_s / sweep_s >= 2.0
