"""Wall-clock benchmarks of the reference tridiagonal algorithms.

These time the *actual NumPy numerics* (not the machine model) across
the registry, so regressions in the vectorised implementations show up
as real slowdowns.
"""

import numpy as np
import pytest

from repro.algorithms import (
    cr_pcr_solve,
    cr_solve,
    lu_factor,
    lu_solve,
    lu_solve_factored,
    pcr_solve,
    pcr_split,
    pcr_thomas_solve,
    recursive_doubling_solve,
    thomas_solve,
    thomas_workspace_solve,
)
from repro.systems import generators

M, N = 256, 1024


@pytest.fixture(scope="module")
def batch():
    return generators.random_dominant(M, N, rng=0)


def test_thomas(benchmark, batch):
    benchmark(thomas_solve, batch)


def test_thomas_workspace(benchmark, batch):
    cp = np.empty(batch.shape)
    dp = np.empty(batch.shape)
    x = np.empty(batch.shape)
    benchmark(thomas_workspace_solve, batch, cp, dp, x)


def test_cr(benchmark, batch):
    benchmark(cr_solve, batch)


def test_pcr(benchmark, batch):
    benchmark(pcr_solve, batch)


@pytest.mark.parametrize("switch", [32, 128])
def test_pcr_thomas(benchmark, batch, switch):
    benchmark(pcr_thomas_solve, batch, switch)


def test_cr_pcr(benchmark, batch):
    benchmark(cr_pcr_solve, batch, 64)


def test_recursive_doubling(benchmark, batch):
    benchmark(recursive_doubling_solve, batch)


def test_lu(benchmark, batch):
    benchmark(lu_solve, batch)


def test_lu_resolve_with_cached_factors(benchmark, batch):
    factors = lu_factor(batch)
    benchmark(lu_solve_factored, factors, batch.d)


def test_pcr_split_primitive(benchmark, batch):
    benchmark(pcr_split, batch, 3)
