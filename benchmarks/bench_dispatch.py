"""The GPU/CPU boundary (the paper's closing future-work item) as data.

Maps the dispatch decision across workload shapes: for each system
count, which engine wins at which system size — the boundary Figure 8
samples at four points, swept.
"""

from repro.analysis import ascii_table
from repro.core import HybridDispatcher


def test_dispatch_boundary_map(benchmark, emit):
    dispatcher = HybridDispatcher("gtx470")

    def sweep():
        rows = []
        for m in (1, 4, 16, 64, 256, 1024):
            cells = []
            for n_exp in (10, 12, 14, 16, 18, 21):
                choice = dispatcher.price(m, 1 << n_exp)
                cells.append(choice.engine)
            rows.append([m] + cells)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = ascii_table(
        ["systems \\ size"] + [f"2^{e}" for e in (10, 12, 14, 16, 18, 21)],
        rows,
        title="Hybrid dispatch: which engine wins each workload shape (GTX 470)",
    )
    emit("dispatch_boundary", text)

    as_map = {row[0]: row[1:] for row in rows}
    # Figure 8's poles: many 1024-eq systems -> GPU; one 2M-eq system ->
    # CPU. (Cells near the boundary can flip either way — the two models
    # price them within a few percent of each other — so only the
    # structural claims are asserted.)
    assert as_map[1024][0] == "gpu"
    assert as_map[1][-1] == "cpu"
    # Every system count ends on the CPU at the 2M-equation extreme ...
    for engines in as_map.values():
        assert engines[-1] == "cpu"
    # ... and machine-filling counts belong to the GPU below it.
    for m in (64, 256, 1024):
        assert all(e == "gpu" for e in as_map[m][:-1]), as_map[m]
