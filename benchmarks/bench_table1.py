"""Table I — the evaluated GPU devices and their capabilities."""

from repro.analysis import ascii_table, table1


def test_table1_devices(benchmark, emit):
    """Regenerate Table I (device list) from the device registry."""
    rows = benchmark(table1)
    text = ascii_table(
        [
            "Name",
            "Global Memory Bandwidth (GB/s)",
            "Shared Memory (KB)",
            "Processors",
            "Thread Processors / Processor",
        ],
        [
            [
                r["name"],
                r["global_memory_bandwidth_gb_s"],
                r["shared_memory_kb"],
                r["num_processors"],
                r["thread_processors_per_processor"],
            ]
            for r in rows
        ],
        title="Table I: GPU devices used in tests and benchmarks",
    )
    emit("table1", text)
    assert len(rows) == 3
