"""Figure 7 — untuned vs statically vs dynamically tuned, per workload.

Regenerates the paper's 3-devices × 4-workloads grid (normalised to the
untuned time, with the untuned milliseconds annotated, as in the paper),
plus the §V headline aggregates, and wall-clock-benchmarks the three
strategies end-to-end on a scaled workload with exact numerics.
"""

import pytest

from repro.analysis import (
    PAPER_DYNAMIC_AVG_SAVINGS,
    PAPER_FIG7_UNTUNED_MS,
    PAPER_STATIC_AVG_SAVINGS,
    ascii_table,
    figure7,
    headline_savings,
)
from repro.core import MultiStageSolver
from repro.systems import generators


def test_figure7_tuning_comparison(benchmark, emit):
    """Regenerate Figure 7 from the machine model."""
    data = benchmark.pedantic(figure7, rounds=1, iterations=1)
    rows = []
    for device, cells in data.items():
        for wl, cell in cells.items():
            rows.append(
                [
                    device,
                    wl,
                    cell.untuned_ms,
                    PAPER_FIG7_UNTUNED_MS[device][wl],
                    1.0,
                    cell.static_normalized,
                    cell.dynamic_normalized,
                ]
            )
    text = ascii_table(
        [
            "device",
            "workload",
            "untuned ms (ours)",
            "untuned ms (paper)",
            "untuned (norm)",
            "static (norm)",
            "dynamic (norm)",
        ],
        rows,
        title="Figure 7: tuning-strategy comparison (normalised to untuned)",
    )
    agg = headline_savings(data)
    text += (
        f"\nheadline: static avg savings {agg['static_avg_savings']:.1%} "
        f"(paper {PAPER_STATIC_AVG_SAVINGS:.0%}), dynamic avg savings "
        f"{agg['dynamic_avg_savings']:.1%} (paper {PAPER_DYNAMIC_AVG_SAVINGS:.0%}), "
        f"max dynamic speedup {agg['dynamic_max_speedup']:.2f}x (paper: up to 5x)"
    )
    emit("figure7", text)

    for cells in data.values():
        for cell in cells.values():
            assert cell.dynamic_ms <= cell.untuned_ms * 1.02


@pytest.mark.parametrize("strategy", ["default", "static", "dynamic"])
def test_strategy_wallclock(benchmark, strategy):
    """Real-numerics wall clock per strategy (scaled 2Kx2K: 64 x 2048)."""
    batch = generators.random_dominant(64, 2048, rng=2)
    solver = MultiStageSolver("gtx470", strategy)
    solver.solve(batch)  # warm the tuning cache outside the timed region
    result = benchmark(solver.solve, batch)
    assert result.x.shape == batch.shape
