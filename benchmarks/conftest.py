"""Shared fixtures for the benchmark harness.

Every figure/table bench writes its rendered output to
``benchmarks/results/`` so the regenerated paper tables survive the run
(pytest captures stdout); the same text is also printed for ``-s`` runs.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Callable fixture: print a rendered table and persist it."""

    def _emit(name: str, text: str) -> None:
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit
