"""Table II — the queryable CUDA device properties."""

from repro.analysis import ascii_table, table2
from repro.gpu import get_device_spec, query_device


def test_table2_queryable_properties(benchmark, emit):
    """Regenerate Table II (queryable properties) for the GTX 470."""
    rows = benchmark(table2, "gtx470")
    text = ascii_table(
        ["Query Parameter", "Description", "GTX 470 value"],
        rows,
        title="Table II: queryable device properties (machine-tuner inputs)",
    )
    emit("table2", text)
    assert any(r[0] == "Shared Memory" for r in rows)


def test_device_query_throughput(benchmark):
    """Wall-clock cost of a device-property query (the static tuner's
    only runtime dependency)."""
    spec = get_device_spec("gtx470")
    props = benchmark(query_device, spec)
    assert props.num_processors == 14
