"""Shared JSON artefact writer for the benchmark suite.

Every bench that persists a machine-readable trajectory
(``bench_dist``, ``bench_chaos``, ``bench_service``) routes it through
:func:`write_results`, so the files under ``benchmarks/results/`` share
one envelope: a ``schema`` tag, the ``benchmark`` name, and the bench's
own payload keys at the top level. Writers stay deterministic — no
timestamps — so re-running a bench on unchanged code reproduces the
artefact byte for byte.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Bump when the envelope itself (not a bench's payload) changes shape.
SCHEMA = "repro-bench/1"


def write_results(name: str, payload: dict, results_dir=None) -> pathlib.Path:
    """Persist one bench's payload as ``results/<name>.json``.

    ``payload`` keys land at the top level next to the envelope fields;
    a payload that tried to redefine ``schema``/``benchmark`` would be a
    bug, so that is rejected loudly.
    """
    clash = {"schema", "benchmark"} & set(payload)
    if clash:
        raise ValueError(f"payload redefines envelope keys: {sorted(clash)}")
    results_dir = (
        RESULTS_DIR if results_dir is None else pathlib.Path(results_dir)
    )
    results_dir.mkdir(exist_ok=True)
    document = {"schema": SCHEMA, "benchmark": name, **payload}
    path = results_dir / f"{name}.json"
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
