"""Strong/weak scaling of the multi-device distributed solver.

The ROADMAP's scale-out scenario: a single system far too large for one
simulated device (2^22 rows in float64) is decomposed SPIKE-style across
1..16 devices joined by a modeled interconnect. Pricing is data-free —
the same cost models the real solve reports, without allocating 2^22-row
coefficient arrays — so the sweep runs in seconds.

The acceptance bar is >= 3x simulated speedup at 8 devices over 1 on the
2^22-row system; typical runs land near 4.5x (the local chunk solves
carry three right-hand sides — data plus two coupling spikes — so ideal
SPIKE scaling is p/3 once chunks leave the overhead-dominated regime).

Runs both as a pytest bench (``pytest benchmarks/bench_dist.py``) and as
a script (``python benchmarks/bench_dist.py [--smoke]``); either way the
sweep is persisted to ``benchmarks/results/dist_scaling.json``.
"""

import argparse
import sys

from _results import write_results as _write_results

from repro.analysis import ascii_table
from repro.dist import DistributedSolver, make_device_group, render_dist_timeline

DEVICE = "gtx470"
LINK = "pcie3"
TOPOLOGY = "all_to_all"
DTYPE_SIZE = 8  # float64
NUM_SYSTEMS = 1
STRONG_SIZE = 1 << 22  # rows of the strong-scaling system
WEAK_SIZE = 1 << 19  # rows per device for the weak-scaling sweep
COUNTS = (1, 2, 4, 8, 16)


def price_sweep(counts, shape_for):
    """Price one scaling sweep; returns (records, report at the last count)."""
    records, last_report = [], None
    base_ms = None
    for count in counts:
        m, n = shape_for(count)
        group = make_device_group(DEVICE, count, LINK, TOPOLOGY)
        plan, report = DistributedSolver(group).price(m, n, DTYPE_SIZE)
        if base_ms is None:
            base_ms = report.total_ms
        speedup = base_ms / report.total_ms
        records.append(
            {
                "devices": count,
                "num_systems": m,
                "system_size": n,
                "mode": plan.mode,
                "schedule": plan.schedule,
                "total_ms": report.total_ms,
                "speedup_vs_first": speedup,
                "efficiency": speedup * counts[0] / count,
                "compute_utilization": report.compute_utilization,
            }
        )
        last_report = report
    return records, last_report


def render_sweep(records, title):
    return ascii_table(
        ["devices", "workload", "mode", "schedule", "ms", "speedup", "eff"],
        [
            [
                r["devices"],
                f"{r['num_systems']} x {r['system_size']}",
                r["mode"],
                r["schedule"],
                f"{r['total_ms']:.3f}",
                f"{r['speedup_vs_first']:.2f}x",
                f"{r['efficiency']:.0%}",
            ]
            for r in records
        ],
        title=title,
    )


def run_scaling(counts=COUNTS):
    """The full sweep: strong + weak records, rendered text, timeline."""
    strong, strong_report = price_sweep(
        counts, lambda count: (NUM_SYSTEMS, STRONG_SIZE)
    )
    weak, _ = price_sweep(
        counts, lambda count: (NUM_SYSTEMS, WEAK_SIZE * count)
    )
    timeline = render_dist_timeline(strong_report)
    text = (
        render_sweep(
            strong,
            f"Distributed strong scaling ({NUM_SYSTEMS} x {STRONG_SIZE}, "
            f"float64, {TOPOLOGY}:{LINK})",
        )
        + "\n"
        + render_sweep(
            weak,
            f"Distributed weak scaling ({NUM_SYSTEMS} x {WEAK_SIZE} "
            f"rows/device)",
        )
        + "\n\nPer-device timeline at the largest strong-scaling point:\n"
        + timeline
    )
    payload = {
        "device": DEVICE,
        "link": LINK,
        "topology": TOPOLOGY,
        "dtype_size": DTYPE_SIZE,
        "strong": strong,
        "weak": weak,
    }
    return payload, text


def write_results(payload, results_dir=None):
    return _write_results("dist_scaling", payload, results_dir)


# -- truncated-SPIKE approx step change -------------------------------------

# Many medium systems is the regime where the exact reduced exchange
# serialises at the hub: each of p devices funnels its spikes through
# device 0's ingress, so the exchange grows with p while approx's
# neighbour-tip handshake stays constant. 2^16 rows x 4 systems keeps
# per-chunk local work small enough that the exchange is visible.
APPROX_SYSTEMS = 4
APPROX_SIZE = 1 << 16
APPROX_COUNTS = (8, 16, 32)


def run_approx_step_change(counts=APPROX_COUNTS):
    """Price exact rows vs truncated-SPIKE approx across device counts."""
    records = []
    for count in counts:
        group = make_device_group(DEVICE, count, LINK, TOPOLOGY)
        _, rows_report = DistributedSolver(group, mode="rows").price(
            APPROX_SYSTEMS, APPROX_SIZE, DTYPE_SIZE
        )
        _, approx_report = DistributedSolver(group, mode="approx").price(
            APPROX_SYSTEMS, APPROX_SIZE, DTYPE_SIZE
        )
        records.append(
            {
                "devices": count,
                "num_systems": APPROX_SYSTEMS,
                "system_size": APPROX_SIZE,
                "rows_ms": rows_report.total_ms,
                "approx_ms": approx_report.total_ms,
                "speedup": rows_report.total_ms / approx_report.total_ms,
            }
        )
    text = ascii_table(
        ["devices", "workload", "rows ms", "approx ms", "speedup"],
        [
            [
                r["devices"],
                f"{r['num_systems']} x {r['system_size']}",
                f"{r['rows_ms']:.3f}",
                f"{r['approx_ms']:.3f}",
                f"{r['speedup']:.2f}x",
            ]
            for r in records
        ],
        title=(
            f"Truncated-SPIKE approx vs exact rows "
            f"({APPROX_SYSTEMS} x {APPROX_SIZE}, float64, {TOPOLOGY}:{LINK})"
        ),
    )
    payload = {
        "device": DEVICE,
        "link": LINK,
        "topology": TOPOLOGY,
        "dtype_size": DTYPE_SIZE,
        "sweep": records,
    }
    return payload, text


def test_dist_approx_step_change(benchmark, emit, results_dir):
    payload, text = benchmark.pedantic(
        run_approx_step_change, rounds=1, iterations=1
    )
    emit("dist_approx", text)
    _write_results("dist_approx", payload, results_dir)

    sweep = {r["devices"]: r for r in payload["sweep"]}
    # The acceptance criterion: a measured priced speedup over the
    # exact rows decomposition at >= 8 devices, growing with the
    # device count as the reduced exchange gets more serialised.
    assert sweep[8]["speedup"] > 1.0, (
        f"approx not faster at 8 devices: {sweep[8]['speedup']:.3f}x"
    )
    speedups = [sweep[c]["speedup"] for c in sorted(sweep)]
    assert speedups == sorted(speedups)
    assert sweep[32]["speedup"] > 2.0


def test_dist_strong_scaling(benchmark, emit, results_dir):
    payload, text = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    emit("dist_scaling", text)
    write_results(payload, results_dir)

    strong = {r["devices"]: r for r in payload["strong"]}
    # The acceptance criterion: >= 3x simulated speedup at 8 devices
    # over 1 on the 2^22-row system.
    speedup8 = strong[1]["total_ms"] / strong[8]["total_ms"]
    assert speedup8 >= 3.0, f"8-device speedup only {speedup8:.2f}x"
    # The timeline in the emitted report covers every device.
    assert "dev7" in text
    # 16 devices must not be slower than 8 (more chunks, all smaller).
    assert strong[16]["total_ms"] <= strong[8]["total_ms"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Strong/weak scaling of the distributed solver"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="minimal sweep (1 and 8 devices) for CI smoke runs",
    )
    args = parser.parse_args(argv)
    counts = (1, 8) if args.smoke else COUNTS
    payload, text = run_scaling(counts)
    print(text)
    path = write_results(payload)
    print(f"wrote {path}")
    approx_payload, approx_text = run_approx_step_change(
        (8,) if args.smoke else APPROX_COUNTS
    )
    print(approx_text)
    approx_path = _write_results("dist_approx", approx_payload)
    print(f"wrote {approx_path}")
    strong = {r["devices"]: r for r in payload["strong"]}
    speedup8 = strong[1]["total_ms"] / strong[8]["total_ms"]
    if speedup8 < 3.0:
        print(f"FAIL: 8-device speedup only {speedup8:.2f}x (need >= 3x)")
        return 1
    print(f"OK: 8-device strong-scaling speedup {speedup8:.2f}x")
    approx8 = approx_payload["sweep"][0]["speedup"]
    if approx8 <= 1.0:
        print(f"FAIL: approx not faster at 8 devices ({approx8:.3f}x)")
        return 1
    print(f"OK: approx step change {approx8:.2f}x at 8 devices")
    return 0


if __name__ == "__main__":
    sys.exit(main())
