"""Figure 8 — GPU (GTX 470, dynamically tuned) vs Intel-MKL-class CPU.

Regenerates the paper's four-workload comparison (GPU wins 6–11x on the
parallel workloads, the CPU wins the single 2M-equation system), and
wall-clock-benchmarks the two numerical engines on a scaled workload.
"""

from repro.analysis import (
    PAPER_FIG8_CPU_MS,
    PAPER_FIG8_GPU_MS,
    PAPER_FIG8_SPEEDUPS,
    ascii_table,
    figure8,
)
from repro.baselines import MklLikeCpuSolver
from repro.core import MultiStageSolver
from repro.systems import generators


def test_figure8_gpu_vs_cpu(benchmark, emit):
    """Regenerate Figure 8 from the machine and CPU models."""
    data = benchmark.pedantic(figure8, rounds=1, iterations=1)
    rows = []
    for wl, vals in data.items():
        rows.append(
            [
                wl,
                vals["gpu_ms"],
                PAPER_FIG8_GPU_MS[wl],
                vals["cpu_ms"],
                PAPER_FIG8_CPU_MS[wl],
                vals["speedup"],
                PAPER_FIG8_SPEEDUPS[wl],
            ]
        )
    text = ascii_table(
        [
            "workload",
            "GPU ms (ours)",
            "GPU ms (paper)",
            "CPU ms (ours)",
            "CPU ms (paper)",
            "speedup (ours)",
            "speedup (paper)",
        ],
        rows,
        title="Figure 8: GTX 470 (dynamic) vs Intel Core i5 MKL",
    )
    emit("figure8", text)

    # The crossover: GPU wins every parallel workload, loses 1x2M.
    for wl in ("1Kx1K", "2Kx2K", "4Kx4K"):
        assert data[wl]["speedup"] > 1.0
    assert data["1x2M"]["speedup"] < 1.0


def test_gpu_engine_wallclock(benchmark):
    """Wall clock of the full multi-stage numerical path (scaled 1Kx1K)."""
    batch = generators.random_dominant(128, 1024, rng=3)
    solver = MultiStageSolver("gtx470", "dynamic")
    solver.solve(batch)  # tune outside the timed region
    result = benchmark(solver.solve, batch)
    assert result.x.shape == batch.shape


def test_cpu_engine_wallclock(benchmark):
    """Wall clock of the MKL-like banded-LU path (scaled 1Kx1K)."""
    batch = generators.random_dominant(128, 1024, rng=3)
    cpu = MklLikeCpuSolver()
    result = benchmark(cpu.solve, batch)
    assert result.x.shape == batch.shape
