"""Throughput of the batched solve service vs sequential one-shot solves.

The ROADMAP's serving scenario: 1k independent mixed-shape solve
requests arrive; the service groups plan-compatible requests into merged
multi-stage solves (amortising per-launch overhead and filling the
machine), while the baseline re-plans and launches once per request.
The acceptance bar is >= 5x simulated throughput with bit-identical
answers; typical runs land well above it.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.core import MultiStageSolver
from repro.service import BatchSolveService
from repro.systems import generators

NUM_REQUESTS = 1000
SEED = 2011  # the paper's year; any fixed seed works


def test_service_throughput_vs_oneshot(benchmark, emit):
    requests = generators.mixed_requests(NUM_REQUESTS, rng=SEED)

    def serve():
        service = BatchSolveService(
            "gtx470", "static", max_workers=8, max_pending=NUM_REQUESTS
        )
        with service:
            results = service.solve_many(requests)
        return service, results

    service, results = benchmark.pedantic(serve, rounds=1, iterations=1)
    batched_ms = service.stats.simulated_ms

    # Sequential baseline with identical switch points (so the only
    # difference is batching), checking bit-identity along the way.
    solvers = {
        dtype: MultiStageSolver(
            "gtx470", service.switch_points_for(dtype=np.dtype(dtype))
        )
        for dtype in ("float32", "float64")
    }
    sequential_ms = 0.0
    for batch, res in zip(requests, results):
        direct = solvers[str(batch.dtype)].solve(batch)
        sequential_ms += direct.report.total_ms
        np.testing.assert_array_equal(direct.x, res.x)

    snap = service.stats.snapshot()
    speedup = sequential_ms / batched_ms
    rows = [
        ["requests", NUM_REQUESTS, NUM_REQUESTS],
        ["solver launches (solves)", NUM_REQUESTS, snap["groups_executed"]],
        ["systems solved", snap["systems_solved"], snap["systems_solved"]],
        ["simulated ms", round(sequential_ms, 3), round(batched_ms, 3)],
        ["requests per group", 1.0, round(snap["mean_group_requests"], 1)],
    ]
    text = (
        ascii_table(
            ["metric", "sequential one-shot", "batched service"],
            rows,
            title=f"Batched service vs one-shot solves "
            f"({NUM_REQUESTS} mixed requests, GTX 470)",
        )
        + f"\nsimulated throughput speedup: {speedup:.1f}x"
    )
    emit("service_throughput", text)

    assert snap["requests_completed"] == NUM_REQUESTS
    assert snap["requests_failed"] == 0
    # The acceptance criterion: >= 5x simulated throughput.
    assert speedup >= 5.0, f"batched speedup only {speedup:.2f}x"
