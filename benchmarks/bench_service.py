"""Throughput of the batched solve service vs sequential one-shot solves.

The ROADMAP's serving scenario: 1k independent mixed-shape solve
requests arrive; the service groups plan-compatible requests into merged
multi-stage solves (amortising per-launch overhead and filling the
machine), while the baseline re-plans and launches once per request.
The acceptance bar is >= 5x simulated throughput with bit-identical
answers; typical runs land well above it.

The second bench is the serving-tier shoot-out: the same seeded
Poisson stream through the fixed thread-pool tier and the async tier
(sharded cache locks, per-tenant admission, autoscaled fleet) via the
deterministic serving simulation. The acceptance bar: the async tier
holds p99 where the thread-pool tier saturates into a reject storm.
Results land in ``benchmarks/results/serve_scaling.json`` (the nightly
CLI run regenerates the same artefact at 100k requests).
"""

import numpy as np
import pytest

from _results import write_results

from repro.analysis import ascii_table
from repro.core import MultiStageSolver
from repro.serve import ServingSimConfig, compare_tiers
from repro.service import BatchSolveService
from repro.systems import generators

NUM_REQUESTS = 1000
SEED = 2011  # the paper's year; any fixed seed works

SERVE_REQUESTS = 20_000
SERVE_RATE = 12_000.0

# The fusion bench: split-heavy mixed traffic, where the interleaved
# sweeps must beat even the merged-unfused path (on-chip-only shapes are
# the auto mode's job — see test_service_fused_vs_unfused).
FUSION_REQUESTS = 400
FUSION_SIZES = (1024, 2048, 4096)
FUSION_DEVICE = "gtx280"


def test_service_throughput_vs_oneshot(benchmark, emit):
    requests = generators.mixed_requests(NUM_REQUESTS, rng=SEED)

    def serve():
        service = BatchSolveService(
            "gtx470", "static", max_workers=8, max_pending=NUM_REQUESTS
        )
        with service:
            results = service.solve_many(requests)
        return service, results

    service, results = benchmark.pedantic(serve, rounds=1, iterations=1)
    batched_ms = service.stats.simulated_ms

    # Sequential baseline with identical switch points (so the only
    # difference is batching), checking bit-identity along the way.
    solvers = {
        dtype: MultiStageSolver(
            "gtx470", service.switch_points_for(dtype=np.dtype(dtype))
        )
        for dtype in ("float32", "float64")
    }
    sequential_ms = 0.0
    for batch, res in zip(requests, results):
        direct = solvers[str(batch.dtype)].solve(batch)
        sequential_ms += direct.report.total_ms
        np.testing.assert_array_equal(direct.x, res.x)

    snap = service.stats.snapshot()
    speedup = sequential_ms / batched_ms
    rows = [
        ["requests", NUM_REQUESTS, NUM_REQUESTS],
        ["solver launches (solves)", NUM_REQUESTS, snap["groups_executed"]],
        ["systems solved", snap["systems_solved"], snap["systems_solved"]],
        ["simulated ms", round(sequential_ms, 3), round(batched_ms, 3)],
        ["requests per group", 1.0, round(snap["mean_group_requests"], 1)],
    ]
    text = (
        ascii_table(
            ["metric", "sequential one-shot", "batched service"],
            rows,
            title=f"Batched service vs one-shot solves "
            f"({NUM_REQUESTS} mixed requests, GTX 470)",
        )
        + f"\nsimulated throughput speedup: {speedup:.1f}x"
    )
    emit("service_throughput", text)

    assert snap["requests_completed"] == NUM_REQUESTS
    assert snap["requests_failed"] == 0
    # The acceptance criterion: >= 5x simulated throughput.
    assert speedup >= 5.0, f"batched speedup only {speedup:.2f}x"


def test_serve_tier_holds_p99_where_threadpool_saturates(
    benchmark, emit, results_dir
):
    config = ServingSimConfig(
        requests=SERVE_REQUESTS, rate_per_s=SERVE_RATE, seed=SEED
    )

    def shoot_out():
        return compare_tiers(config)

    tiers = benchmark.pedantic(shoot_out, rounds=1, iterations=1)
    tp, ac = tiers["threadpool"], tiers["async"]

    rows = [
        ["p50 latency (sim ms)", round(tp.latency_p50_ms, 1),
         round(ac.latency_p50_ms, 1)],
        ["p99 latency (sim ms)", round(tp.latency_p99_ms, 1),
         round(ac.latency_p99_ms, 1)],
        ["served", tp.served, ac.served],
        ["shed rate", f"{tp.shed_rate:.1%}", f"{ac.shed_rate:.1%}"],
        ["peak workers", tp.max_workers, ac.max_workers],
        ["merged solves", tp.groups, ac.groups],
    ]
    text = (
        ascii_table(
            ["metric", "thread-pool tier", "async tier"],
            rows,
            title=f"Serving-tier scaling ({SERVE_REQUESTS} simulated "
            f"requests at {SERVE_RATE:g}/s, seed {SEED})",
        )
        + f"\np99 ratio (threadpool/async): "
        f"{tp.latency_p99_ms / ac.latency_p99_ms:.1f}x"
    )
    emit("serve_scaling", text)

    payload = {
        "config": {
            "requests": config.requests,
            "rate_per_s": config.rate_per_s,
            "seed": config.seed,
            "tenants": config.tenants,
            "workers": config.workers,
            "max_workers": config.max_workers,
            "shards": config.shards,
            "dispatch_ms": config.dispatch_ms,
            "lookup_ms": config.lookup_ms,
        },
        "tiers": {tier: report.as_dict() for tier, report in tiers.items()},
    }
    write_results("serve_scaling", payload, results_dir)

    # The acceptance criterion: the thread-pool tier saturates (reject
    # storm at its queue bound) while the autoscaled async tier holds
    # p99 and serves everything.
    assert tp.shed["queue_full"] > 0
    assert ac.served == config.requests
    assert ac.latency_p99_ms * 10 < tp.latency_p99_ms
    assert ac.max_workers > config.workers


@pytest.mark.fusion
def test_service_fused_vs_unfused(benchmark, emit, results_dir):
    """Batched fusion on the service's merged groups.

    Split-heavy mixed traffic through three service configurations —
    merged-unfused, merged-fused, and the default auto mode — against
    the sequential one-shot baseline, with bit-identity checked across
    all of them. The trajectory (plus a priced many-small concat sweep)
    lands in ``benchmarks/results/batch_fusion.json``.
    """
    requests = generators.mixed_requests(
        FUSION_REQUESTS, rng=SEED, sizes=FUSION_SIZES
    )

    def run_service(fuse):
        service = BatchSolveService(
            FUSION_DEVICE,
            "static",
            max_workers=8,
            max_pending=FUSION_REQUESTS,
            fuse=fuse,
        )
        with service:
            results = service.solve_many(requests)
        return service, results

    service, fused_results = benchmark.pedantic(
        lambda: run_service(True), rounds=1, iterations=1
    )
    fused_ms = service.stats.simulated_ms
    unfused_service, unfused_results = run_service(False)
    unfused_ms = unfused_service.stats.simulated_ms
    auto_service, auto_results = run_service("auto")
    auto_ms = auto_service.stats.simulated_ms

    # Sequential one-shot unfused baseline with identical switch points;
    # every path must reproduce it bit for bit.
    solvers = {
        dtype: MultiStageSolver(
            FUSION_DEVICE, service.switch_points_for(dtype=np.dtype(dtype))
        )
        for dtype in ("float32", "float64")
    }
    sequential_ms = 0.0
    for batch, fused, unfused, auto in zip(
        requests, fused_results, unfused_results, auto_results
    ):
        direct = solvers[str(batch.dtype)].solve(batch)
        sequential_ms += direct.report.total_ms
        np.testing.assert_array_equal(direct.x, fused.x)
        np.testing.assert_array_equal(direct.x, unfused.x)
        np.testing.assert_array_equal(direct.x, auto.x)

    # Priced many-small concat sweep: N single-system subprograms vs the
    # one fused batched program the pass rewrites them into (data-free).
    from repro.core import plan_solve
    from repro.gpu import make_device
    from repro.ir import Engine, concat_solve_programs, lower_solve_plan

    dev = make_device(FUSION_DEVICE)
    small_switch = service.switch_points_for(dtype=np.float64)
    small_plan = plan_solve(dev, 1, 64, 8, small_switch)
    single = lower_solve_plan(small_plan, dev, 8)
    many_small = []
    for count in (10, 100, 1000):
        programs = [single] * count
        u = Engine.for_device(dev).price(
            concat_solve_programs(programs)
        ).total_ms
        f = Engine.for_device(dev).price(
            concat_solve_programs(programs, fuse=True)
        ).total_ms
        many_small.append(
            {
                "count": count,
                "system_size": 64,
                "unfused_ms": u,
                "fused_ms": f,
                "speedup": u / f,
            }
        )

    rows = [
        ["sequential one-shot (unfused)", round(sequential_ms, 3), "1.0x"],
        [
            "merged service, unfused",
            round(unfused_ms, 3),
            f"{sequential_ms / unfused_ms:.1f}x",
        ],
        [
            "merged service, fused (BatchedSolve)",
            round(fused_ms, 3),
            f"{sequential_ms / fused_ms:.1f}x",
        ],
        [
            "merged service, auto (priced choice)",
            round(auto_ms, 3),
            f"{sequential_ms / auto_ms:.1f}x",
        ],
    ]
    text = (
        ascii_table(
            ["path", "simulated ms", "speedup vs sequential"],
            rows,
            title=f"Batched fusion on {FUSION_REQUESTS} split-heavy mixed "
            f"requests ({FUSION_DEVICE}, sizes {FUSION_SIZES})",
        )
        + f"\nfused vs merged-unfused speedup: {unfused_ms / fused_ms:.2f}x"
    )
    emit("service_fused_vs_unfused", text)

    payload = {
        "device": FUSION_DEVICE,
        "seed": SEED,
        "requests": FUSION_REQUESTS,
        "sizes": list(FUSION_SIZES),
        "mixed": {
            "sequential_ms": sequential_ms,
            "merged_unfused_ms": unfused_ms,
            "merged_fused_ms": fused_ms,
            "merged_auto_ms": auto_ms,
            "fused_vs_sequential": sequential_ms / fused_ms,
            "fused_vs_merged_unfused": unfused_ms / fused_ms,
            "groups_executed": service.stats.snapshot()["groups_executed"],
            "bit_identical": True,
        },
        "many_small": many_small,
    }
    write_results("batch_fusion", payload, results_dir)

    # The acceptance criteria: fusion buys >= 2x simulated throughput on
    # the mixed batches — over the already-merged unfused path, not just
    # the sequential baseline — and auto mode never loses to either.
    assert sequential_ms / fused_ms >= 2.0
    assert unfused_ms / fused_ms >= 2.0, (
        f"fusion only {unfused_ms / fused_ms:.2f}x over merged-unfused"
    )
    assert auto_ms <= unfused_ms * 1.001
    assert auto_ms <= fused_ms * 1.001
    for record in many_small:
        assert record["speedup"] >= 2.0
