"""Throughput of the batched solve service vs sequential one-shot solves.

The ROADMAP's serving scenario: 1k independent mixed-shape solve
requests arrive; the service groups plan-compatible requests into merged
multi-stage solves (amortising per-launch overhead and filling the
machine), while the baseline re-plans and launches once per request.
The acceptance bar is >= 5x simulated throughput with bit-identical
answers; typical runs land well above it.

The second bench is the serving-tier shoot-out: the same seeded
Poisson stream through the fixed thread-pool tier and the async tier
(sharded cache locks, per-tenant admission, autoscaled fleet) via the
deterministic serving simulation. The acceptance bar: the async tier
holds p99 where the thread-pool tier saturates into a reject storm.
Results land in ``benchmarks/results/serve_scaling.json`` (the nightly
CLI run regenerates the same artefact at 100k requests).
"""

import json

import numpy as np

from repro.analysis import ascii_table
from repro.core import MultiStageSolver
from repro.serve import ServingSimConfig, compare_tiers
from repro.service import BatchSolveService
from repro.systems import generators

NUM_REQUESTS = 1000
SEED = 2011  # the paper's year; any fixed seed works

SERVE_REQUESTS = 20_000
SERVE_RATE = 12_000.0


def test_service_throughput_vs_oneshot(benchmark, emit):
    requests = generators.mixed_requests(NUM_REQUESTS, rng=SEED)

    def serve():
        service = BatchSolveService(
            "gtx470", "static", max_workers=8, max_pending=NUM_REQUESTS
        )
        with service:
            results = service.solve_many(requests)
        return service, results

    service, results = benchmark.pedantic(serve, rounds=1, iterations=1)
    batched_ms = service.stats.simulated_ms

    # Sequential baseline with identical switch points (so the only
    # difference is batching), checking bit-identity along the way.
    solvers = {
        dtype: MultiStageSolver(
            "gtx470", service.switch_points_for(dtype=np.dtype(dtype))
        )
        for dtype in ("float32", "float64")
    }
    sequential_ms = 0.0
    for batch, res in zip(requests, results):
        direct = solvers[str(batch.dtype)].solve(batch)
        sequential_ms += direct.report.total_ms
        np.testing.assert_array_equal(direct.x, res.x)

    snap = service.stats.snapshot()
    speedup = sequential_ms / batched_ms
    rows = [
        ["requests", NUM_REQUESTS, NUM_REQUESTS],
        ["solver launches (solves)", NUM_REQUESTS, snap["groups_executed"]],
        ["systems solved", snap["systems_solved"], snap["systems_solved"]],
        ["simulated ms", round(sequential_ms, 3), round(batched_ms, 3)],
        ["requests per group", 1.0, round(snap["mean_group_requests"], 1)],
    ]
    text = (
        ascii_table(
            ["metric", "sequential one-shot", "batched service"],
            rows,
            title=f"Batched service vs one-shot solves "
            f"({NUM_REQUESTS} mixed requests, GTX 470)",
        )
        + f"\nsimulated throughput speedup: {speedup:.1f}x"
    )
    emit("service_throughput", text)

    assert snap["requests_completed"] == NUM_REQUESTS
    assert snap["requests_failed"] == 0
    # The acceptance criterion: >= 5x simulated throughput.
    assert speedup >= 5.0, f"batched speedup only {speedup:.2f}x"


def test_serve_tier_holds_p99_where_threadpool_saturates(
    benchmark, emit, results_dir
):
    config = ServingSimConfig(
        requests=SERVE_REQUESTS, rate_per_s=SERVE_RATE, seed=SEED
    )

    def shoot_out():
        return compare_tiers(config)

    tiers = benchmark.pedantic(shoot_out, rounds=1, iterations=1)
    tp, ac = tiers["threadpool"], tiers["async"]

    rows = [
        ["p50 latency (sim ms)", round(tp.latency_p50_ms, 1),
         round(ac.latency_p50_ms, 1)],
        ["p99 latency (sim ms)", round(tp.latency_p99_ms, 1),
         round(ac.latency_p99_ms, 1)],
        ["served", tp.served, ac.served],
        ["shed rate", f"{tp.shed_rate:.1%}", f"{ac.shed_rate:.1%}"],
        ["peak workers", tp.max_workers, ac.max_workers],
        ["merged solves", tp.groups, ac.groups],
    ]
    text = (
        ascii_table(
            ["metric", "thread-pool tier", "async tier"],
            rows,
            title=f"Serving-tier scaling ({SERVE_REQUESTS} simulated "
            f"requests at {SERVE_RATE:g}/s, seed {SEED})",
        )
        + f"\np99 ratio (threadpool/async): "
        f"{tp.latency_p99_ms / ac.latency_p99_ms:.1f}x"
    )
    emit("serve_scaling", text)

    payload = {
        "config": {
            "requests": config.requests,
            "rate_per_s": config.rate_per_s,
            "seed": config.seed,
            "tenants": config.tenants,
            "workers": config.workers,
            "max_workers": config.max_workers,
            "shards": config.shards,
            "dispatch_ms": config.dispatch_ms,
            "lookup_ms": config.lookup_ms,
        },
        "tiers": {tier: report.as_dict() for tier, report in tiers.items()},
    }
    path = results_dir / "serve_scaling.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    # The acceptance criterion: the thread-pool tier saturates (reject
    # storm at its queue bound) while the autoscaled async tier holds
    # p99 and serves everything.
    assert tp.shed["queue_full"] > 0
    assert ac.served == config.requests
    assert ac.latency_p99_ms * 10 < tp.latency_p99_ms
    assert ac.max_workers > config.workers
