"""Figure 6 — PCR-Thomas performance vs the stage-3→4 switch point.

Regenerates the per-device sweep of the Thomas hand-over point (16..512
subsystems, normalised to the optimum), and wall-clock-benchmarks the
reference hybrid at representative switch points.
"""

import pytest

from repro.algorithms import pcr_thomas_solve
from repro.analysis import PAPER_FIG6_OPTIMA, ascii_table, figure6
from repro.systems import generators


def test_figure6_thomas_switch_sweep(benchmark, emit):
    """Regenerate Figure 6 from the machine model."""
    data = benchmark.pedantic(figure6, rounds=1, iterations=1)
    switches = sorted(next(iter(data.values())))
    rows = []
    for device, series in data.items():
        best = max(
            (s for s, v in series.items() if v is not None),
            key=lambda s: series[s],
        )
        rows.append(
            [device]
            + [series[s] for s in switches]
            + [best, "/".join(map(str, PAPER_FIG6_OPTIMA[device]))]
        )
    text = ascii_table(
        ["device"] + [str(s) for s in switches] + ["our optimum", "paper optimum"],
        rows,
        title=(
            "Figure 6: PCR-Thomas performance vs stage-3->4 switch point "
            "(subsystems handed to Thomas; 1.0 = best)"
        ),
    )
    emit("figure6", text)
    for device, series in data.items():
        best = max(
            (s for s, v in series.items() if v is not None),
            key=lambda s: series[s],
        )
        assert best in PAPER_FIG6_OPTIMA[device], (device, best)


@pytest.mark.parametrize("thomas_switch", [16, 64, 256])
def test_hybrid_wallclock_at_switch(benchmark, thomas_switch):
    """Real-numerics wall clock of the hybrid algorithm itself (256
    systems of 512 equations) at different hand-over points."""
    batch = generators.random_dominant(256, 512, rng=1)
    x = benchmark(pcr_thomas_solve, batch, thomas_switch)
    assert x.shape == batch.shape
