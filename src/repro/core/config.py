"""Switch-point configuration for the multi-stage solver.

A :class:`SwitchPoints` instance is the complete tunable state of the
solver — the object the paper's three parameter-selection strategies
produce:

- ``stage1_target_systems`` — stage-1→2 switch: cooperative splitting
  stops once this many independent systems exist;
- ``stage3_system_size`` — stage-2→3 switch: global splitting stops once
  subsystems reach this size, which then solves on-chip;
- ``thomas_switch`` — stage-3→4 switch inside the base kernel: PCR stops
  once this many parallel subsystems exist per system;
- ``base_variant`` / ``variant_crossover_stride`` — which memory-access
  variant of the base kernel to use. A fixed variant (default/static
  tuners) or a learned stride crossover (self-tuner: strided wins above
  the crossover).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..util.errors import ConfigurationError
from ..util.validation import check_positive_int, check_power_of_two

__all__ = ["SwitchPoints"]


@dataclass(frozen=True)
class SwitchPoints:
    """Complete tunable state of the multi-stage solver."""

    stage1_target_systems: int = 16
    stage3_system_size: int = 256
    thomas_switch: int = 64
    base_variant: str = "coalesced"
    variant_crossover_stride: Optional[int] = None
    # Provenance label ("default" / "static" / "dynamic" / "manual"),
    # carried through reports for the Figure-7 comparison.
    source: str = "manual"

    def __post_init__(self) -> None:
        check_positive_int(self.stage1_target_systems, "stage1_target_systems")
        check_power_of_two(self.stage3_system_size, "stage3_system_size")
        check_power_of_two(self.thomas_switch, "thomas_switch")
        if self.base_variant not in ("coalesced", "strided"):
            raise ConfigurationError(
                f"unknown base_variant {self.base_variant!r}"
            )
        if self.variant_crossover_stride is not None:
            check_positive_int(
                self.variant_crossover_stride, "variant_crossover_stride"
            )

    def variant_for_stride(self, stride: int) -> str:
        """Pick the base-kernel variant for subsystems at ``stride``.

        With a learned crossover, contiguous/small strides use the
        coalesced kernel and large strides the strided one; otherwise the
        fixed ``base_variant`` applies.
        """
        if stride <= 1:
            return "coalesced"
        if self.variant_crossover_stride is None:
            return self.base_variant
        return (
            "strided" if stride >= self.variant_crossover_stride else "coalesced"
        )

    def with_(self, **kwargs) -> "SwitchPoints":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """One-line summary for logs and benchmark tables."""
        crossover = (
            f", crossover@{self.variant_crossover_stride}"
            if self.variant_crossover_stride is not None
            else ""
        )
        return (
            f"[{self.source}] stage1->2 @ {self.stage1_target_systems} systems, "
            f"stage2->3 @ size {self.stage3_system_size}, "
            f"stage3->4 @ {self.thomas_switch} subsystems, "
            f"variant {self.base_variant}{crossover}"
        )
