"""The multi-stage tridiagonal solver — the paper's primary contribution.

:class:`MultiStageSolver` binds a simulated device to a switch-point
source (an explicit :class:`SwitchPoints` or a tuner) and executes the
Figure-1 workflow on any workload that fits global memory:

    stage 1 (cooperative PCR) → stage 2 (per-block PCR) →
    stage 3 (on-chip PCR) → stage 4 (Thomas)

``solve`` returns the exact solution together with the simulated-timing
report; :func:`solve` is the one-call functional front door.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..algorithms.verify import assert_solution
from ..gpu.executor import Device, SimReport, make_device
from ..ir.engine import Engine
from ..ir.instructions import signature_text
from ..kernels import dtype_size
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError
from .config import SwitchPoints
from .planner import SolvePlan, plan_solve

__all__ = ["SolveResult", "MultiStageSolver", "solve"]


@dataclass(frozen=True)
class SolveResult:
    """Solution plus provenance of one multi-stage solve."""

    x: np.ndarray
    plan: SolvePlan
    switch_points: SwitchPoints
    report: SimReport

    @property
    def simulated_ms(self) -> float:
        """Simulated end-to-end GPU time."""
        return self.report.total_ms


class MultiStageSolver:
    """The paper's solver, parameterised by device and switch points.

    ``tuning`` may be an explicit :class:`SwitchPoints`, a tuner instance
    (anything with ``switch_points(device, num_systems, system_size,
    dtype_size)``), or one of the strategy names ``"default"``,
    ``"static"``, ``"dynamic"``.
    """

    def __init__(
        self,
        device: Union[Device, str],
        tuning: Union[SwitchPoints, str, "object", None] = "default",
        *,
        verify: bool = False,
        faults=None,
        tracer=None,
        fuse: Union[bool, str] = False,
    ):
        self.device = make_device(device)
        self.verify = verify
        # Lower plans through the batched-fusion pass: staged chains
        # become interleaved-layout sweeps with bit-identical solutions.
        # ``False`` never fuses, ``True`` always fuses, ``"auto"`` prices
        # both lowerings and runs whichever the cost model says is
        # cheaper (the interleave toll only pays for itself once split
        # stages or large merges dominate).
        if fuse not in (False, True, "auto"):
            raise ConfigurationError(
                f"fuse must be False, True, or 'auto'; got {fuse!r}"
            )
        self.fuse = fuse
        self._fuse_choice: Dict[Tuple, bool] = {}
        self._engine = Engine.for_device(self.device)
        # Optional observability: an obs.Tracer records a solve span per
        # execute_plan with the engine's program/instruction/kernel spans
        # nested inside. None costs nothing.
        self.tracer = tracer
        self._engine.tracer = tracer
        # Optional chaos testing: a FaultInjector (or a view of one), or
        # a bare FaultPlan which gets its own injector. The engine
        # consults it before every costed instruction; None is the
        # fault-free happy path.
        if faults is not None and not hasattr(faults, "before_step"):
            from ..faults import FaultInjector

            faults = FaultInjector(faults)
        self.faults = faults
        self._engine.injector = faults
        self._tuner = None
        self._switch: Optional[SwitchPoints] = None
        # Lazily built numerical-safety governor for tolerance-governed
        # solves (metrics-free here; the service threads its registry).
        self._governor = None
        if tuning is None:
            tuning = "default"
        if isinstance(tuning, SwitchPoints):
            self._switch = tuning
        elif isinstance(tuning, str):
            from .tuning import make_tuner

            self._tuner = make_tuner(tuning)
        elif hasattr(tuning, "switch_points"):
            self._tuner = tuning
        else:
            raise ConfigurationError(
                "tuning must be SwitchPoints, a tuner, or a strategy name; "
                f"got {type(tuning).__name__}"
            )

    # -- switch-point resolution -------------------------------------------

    def switch_points_for(
        self, num_systems: int, system_size: int, dsize: int
    ) -> SwitchPoints:
        """Resolve switch points for a workload shape."""
        if self._switch is not None:
            return self._switch
        return self._tuner.switch_points(
            self.device, num_systems, system_size, dsize
        )

    def plan_for(self, batch: TridiagonalBatch) -> SolvePlan:
        """The plan this solver would execute for ``batch``."""
        dsize = dtype_size(batch.dtype)
        switch = self.switch_points_for(
            batch.num_systems, batch.system_size, dsize
        )
        return plan_solve(
            self.device, batch.num_systems, batch.system_size, dsize, switch
        )

    # -- execution -------------------------------------------------------------

    def _program_for(self, plan: SolvePlan, dsize: int):
        """The program :meth:`execute_plan` runs, honouring ``fuse``.

        In ``"auto"`` mode both lowerings are priced on a bare engine
        (no fault injector, no tracer — selection must not pollute the
        fault log or the span tree) and the cheaper one runs; the
        verdict is memoised per (signature, count, dtype). Fused and
        unfused solutions are bit-identical, so the choice only moves
        simulated time.
        """
        if self.fuse == "auto":
            key = (plan.signature, plan.num_systems, dsize)
            choice = self._fuse_choice.get(key)
            if choice is None:
                pricer = Engine.for_device(self.device)
                unfused_ms = pricer.price(
                    plan.lower(self.device, dsize)
                ).total_ms
                fused_ms = pricer.price(
                    plan.lower(self.device, dsize, fuse=True)
                ).total_ms
                choice = fused_ms < unfused_ms
                self._fuse_choice[key] = choice
            return plan.lower(self.device, dsize, fuse=choice)
        return plan.lower(self.device, dsize, fuse=bool(self.fuse))

    def solve(
        self,
        batch: TridiagonalBatch,
        *,
        tolerance: Optional[float] = None,
    ) -> SolveResult:
        """Solve ``batch``; returns solution, plan, and timing report.

        With ``tolerance`` set the solve is governed by the
        numerical-safety ladder: the result's relative residual is
        checked, escalating through one step of iterative refinement
        and a robust pivoted re-solve
        (:func:`~repro.algorithms.scipy_banded_solve`) before a typed
        :class:`~repro.util.errors.NumericalBreakdownError` is raised.
        A governed solve never returns an unverified answer.
        """
        dsize = dtype_size(batch.dtype)
        self.device.check_fits_global(batch.nbytes + batch.d.nbytes)
        switch = self.switch_points_for(
            batch.num_systems, batch.system_size, dsize
        )
        plan = plan_solve(
            self.device, batch.num_systems, batch.system_size, dsize, switch
        )
        result = self.execute_plan(batch, plan, switch)
        if tolerance is None:
            return result
        return self._govern(batch, result, plan, switch, float(tolerance))

    def _govern(
        self,
        batch: TridiagonalBatch,
        result: SolveResult,
        plan: SolvePlan,
        switch: SwitchPoints,
        tolerance: float,
    ) -> SolveResult:
        """Walk the escalation ladder over an executed result."""
        from dataclasses import replace as _replace

        from ..algorithms.lu import scipy_banded_solve
        from ..numerics import Governor

        if self._governor is None:
            self._governor = Governor(tracer=self.tracer)

        def refine(b: TridiagonalBatch, x: np.ndarray) -> np.ndarray:
            residual_rhs = b.d - b.matvec(x)
            correction = self.execute_plan(
                TridiagonalBatch(b.a, b.b, b.c, residual_rhs), plan, switch
            ).x
            return x + correction

        def resolve(b: TridiagonalBatch) -> np.ndarray:
            return scipy_banded_solve(b)

        outcome = self._governor.enforce(
            batch,
            result.x,
            tolerance,
            refine=refine,
            resolve=resolve,
            path="staged",
            context="multi-stage solve",
        )
        if outcome.x is not result.x:
            result = _replace(result, x=outcome.x)
        return result

    def execute_plan(
        self, batch: TridiagonalBatch, plan: SolvePlan, switch: SwitchPoints
    ) -> SolveResult:
        """Run a prepared ``plan`` on ``batch``.

        ``batch`` may hold any number of systems — the staged kernels are
        vectorised over independent systems, so the per-system arithmetic
        depends only on the plan's :attr:`~SolvePlan.signature`, not the
        count. This is the entry point the batched solve service uses to
        execute one merged solve for many same-signature requests while
        keeping each request's answer bit-identical to a standalone
        ``solve``. The padded system size must match the plan's.

        The plan lowers to an instruction program and the shared
        :class:`~repro.ir.Engine` interprets it with data — the same
        program :func:`~repro.core.pricing.simulate_plan` prices.
        """
        self.device.check_fits_global(batch.nbytes + batch.d.nbytes)
        program = self._program_for(plan, dtype_size(batch.dtype))
        tracer = self.tracer
        if tracer is not None:
            token = tracer.begin(
                f"solve {batch.num_systems}x{batch.system_size}",
                "solve",
                0.0,
                device=0,
                device_name=self.device.name,
                signature=signature_text(program.signature),
            )
            try:
                run = self._engine.execute(program, batch)
            except Exception as exc:
                tracer.abort_to(token, 0.0, error=type(exc).__name__)
                raise
            tracer.end(run.report.total_ms)
        else:
            run = self._engine.execute(program, batch)

        if self.verify:
            assert_solution(batch, run.x, context="multi-stage solve")
        return SolveResult(
            x=run.x,
            plan=plan,
            switch_points=switch,
            report=run.report,
        )


def solve(
    batch: TridiagonalBatch,
    device: Union[Device, str] = "gtx470",
    tuning: Union[SwitchPoints, str, None] = "dynamic",
    *,
    verify: bool = False,
    tolerance: Optional[float] = None,
) -> SolveResult:
    """One-call front door: solve ``batch`` on ``device`` with ``tuning``.

    ``tolerance`` requests a governed solve: the answer is
    residual-verified against it (escalating through refinement and a
    robust re-solve) or a typed
    :class:`~repro.util.errors.NumericalBreakdownError` is raised.
    """
    return MultiStageSolver(device, tuning, verify=verify).solve(
        batch, tolerance=tolerance
    )
