"""Hybrid GPU/CPU dispatch — the paper's closing future-work item.

The conclusion's last sentence: "extend our techniques to also explore
the boundary between GPU and CPU." Figure 8 already shows where that
boundary lies (the CPU wins the single 2M-equation system); this module
automates the decision: price a workload on both engines' cost models
and run whichever is cheaper.

:class:`HybridDispatcher` exposes the decision (`choose`), the solve
(`solve`, exact numerics either way), and the learned boundary
(`crossover_size`) — the system size at which, for a given system count,
the CPU overtakes the GPU.

With a ``dist`` device group configured, a third engine joins the
auction: the :class:`~repro.dist.DistributedSolver`. Workloads whose
working set overflows the single device's global memory price the GPU at
infinity — the dispatcher *learns* to distribute (or fall back to the
CPU) exactly when one device can no longer hold the problem, and
otherwise distributes only when the modeled multi-device makespan
actually wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union


from ..baselines.mkl import INTEL_CORE_I5_34GHZ, CpuSpec, MklLikeCpuSolver
from ..gpu.executor import Device, make_device
from ..kernels import dtype_size
from ..systems.tridiagonal import TridiagonalBatch
from ..util.validation import check_positive_int
from .pricing import simulate_plan
from .solver import MultiStageSolver
from .tuning import SelfTuner

__all__ = ["HybridChoice", "HybridDispatcher"]


@dataclass(frozen=True)
class HybridChoice:
    """Outcome of one dispatch decision."""

    engine: str  # "gpu", "cpu", or "dist"
    gpu_ms: float  # inf when the working set overflows the device
    cpu_ms: float
    dist_ms: Optional[float] = None  # None when no device group is configured

    @property
    def chosen_ms(self) -> float:
        """Modeled time of the engine that won."""
        return {"gpu": self.gpu_ms, "cpu": self.cpu_ms, "dist": self.dist_ms}[
            self.engine
        ]

    @property
    def advantage(self) -> float:
        """How much faster the chosen engine is than the runner-up (>= 1)."""
        times = [self.gpu_ms, self.cpu_ms]
        if self.dist_ms is not None:
            times.append(self.dist_ms)
        others = sorted(times)
        runner_up = others[1] if len(others) > 1 else others[0]
        return runner_up / max(self.chosen_ms, 1e-300)


class HybridDispatcher:
    """Route tridiagonal workloads to the faster engine, per shape."""

    def __init__(
        self,
        device: Union[Device, str] = "gtx470",
        cpu: CpuSpec = INTEL_CORE_I5_34GHZ,
        *,
        tuner: Optional[SelfTuner] = None,
        dist=None,
    ):
        self.device = make_device(device)
        self.tuner = tuner or SelfTuner()
        self.cpu_solver = MklLikeCpuSolver(cpu)
        # ``dist`` may be a DistributedSolver, a DeviceGroup, or a device
        # count; the solver is built lazily (repro.dist imports this
        # package, so the import must not run at module load).
        self._dist_config = dist
        self._dist_solver = None

    @property
    def dist_solver(self):
        """The distributed engine, or ``None`` when not configured."""
        if self._dist_config is None:
            return None
        if self._dist_solver is None:
            from ..dist.solver import DistributedSolver

            if isinstance(self._dist_config, DistributedSolver):
                self._dist_solver = self._dist_config
            else:
                self._dist_solver = DistributedSolver(
                    self._dist_config, device=self.device
                )
        return self._dist_solver

    # -- pricing & decision ---------------------------------------------------

    def price(
        self, num_systems: int, system_size: int, dsize: int = 4
    ) -> HybridChoice:
        """Model both engines for a workload shape and pick the faster."""
        check_positive_int(num_systems, "num_systems")
        check_positive_int(system_size, "system_size")
        working_set = 5 * num_systems * system_size * dsize
        if (
            self._dist_config is not None
            and working_set > self.device.spec.global_mem_bytes
        ):
            # Memory overflow: one device cannot hold the problem. Only
            # enforced when a distributed alternative exists — the
            # classic two-engine dispatcher keeps pricing the GPU by its
            # kernel model alone (assuming streamed/chunked execution).
            gpu_ms = float("inf")
        else:
            sp = self.tuner.switch_points(
                self.device, num_systems, system_size, dsize
            )
            _, report = simulate_plan(
                self.device, num_systems, system_size, dsize, sp
            )
            gpu_ms = report.total_ms
        cpu_ms = self.cpu_solver.modeled_time_ms(num_systems, system_size, dsize)
        dist_ms: Optional[float] = None
        if self.dist_solver is not None:
            from ..util.errors import ReproError

            try:
                _, dist_report = self.dist_solver.price(
                    num_systems, system_size, dsize
                )
                dist_ms = dist_report.total_ms
            except ReproError:
                dist_ms = None  # no feasible distributed plan either
        engines = [("gpu", gpu_ms), ("cpu", cpu_ms)]
        if dist_ms is not None:
            engines.append(("dist", dist_ms))
        engine = min(engines, key=lambda pair: pair[1])[0]
        return HybridChoice(
            engine=engine, gpu_ms=gpu_ms, cpu_ms=cpu_ms, dist_ms=dist_ms
        )

    def choose(self, batch: TridiagonalBatch) -> HybridChoice:
        """The dispatch decision for a concrete batch."""
        return self.price(
            batch.num_systems, batch.system_size, dtype_size(batch.dtype)
        )

    def choose_many(
        self, batches: Iterable[TridiagonalBatch]
    ) -> List[HybridChoice]:
        """Dispatch decisions for a stream of batches, priced per shape.

        The service-aware path: a request mix repeats a handful of
        workload shapes thousands of times, so each distinct
        ``(num_systems, system_size, dtype)`` is priced once and the
        decision reused for every request of that shape.
        """
        memo: Dict[Tuple[int, int, int], HybridChoice] = {}
        out: List[HybridChoice] = []
        for batch in batches:
            shape = (
                batch.num_systems,
                batch.system_size,
                dtype_size(batch.dtype),
            )
            choice = memo.get(shape)
            if choice is None:
                choice = memo[shape] = self.price(*shape)
            out.append(choice)
        return out

    def crossover_size(
        self, num_systems: int, *, dsize: int = 4, max_exp: int = 24
    ) -> Optional[int]:
        """Smallest power-of-two system size the CPU wins for this count.

        Returns ``None`` when the GPU wins every probed size (the usual
        case for machine-filling system counts).
        """
        for exp in range(6, max_exp + 1):
            if self.price(num_systems, 1 << exp, dsize).engine == "cpu":
                return 1 << exp
        return None

    # -- solving ------------------------------------------------------------------

    def solve(self, batch: TridiagonalBatch):
        """Solve on the chosen engine; returns ``(x, choice)``."""
        choice = self.choose(batch)
        if choice.engine == "gpu":
            result = MultiStageSolver(self.device, self.tuner).solve(batch)
            return result.x, choice
        if choice.engine == "dist":
            return self.dist_solver.solve(batch).x, choice
        return self.cpu_solver.solve(batch).x, choice
