"""Hybrid GPU/CPU dispatch — the paper's closing future-work item.

The conclusion's last sentence: "extend our techniques to also explore
the boundary between GPU and CPU." Figure 8 already shows where that
boundary lies (the CPU wins the single 2M-equation system); this module
automates the decision: price a workload on both engines' cost models
and run whichever is cheaper.

:class:`HybridDispatcher` exposes the decision (`choose`), the solve
(`solve`, exact numerics either way), and the learned boundary
(`crossover_size`) — the system size at which, for a given system count,
the CPU overtakes the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..baselines.mkl import INTEL_CORE_I5_34GHZ, CpuSpec, MklLikeCpuSolver
from ..gpu.executor import Device, make_device
from ..kernels import dtype_size
from ..systems.tridiagonal import TridiagonalBatch
from ..util.validation import check_positive_int
from .pricing import simulate_plan
from .solver import MultiStageSolver
from .tuning import SelfTuner

__all__ = ["HybridChoice", "HybridDispatcher"]


@dataclass(frozen=True)
class HybridChoice:
    """Outcome of one dispatch decision."""

    engine: str  # "gpu" or "cpu"
    gpu_ms: float
    cpu_ms: float

    @property
    def advantage(self) -> float:
        """How much faster the chosen engine is (>= 1)."""
        slow, fast = max(self.gpu_ms, self.cpu_ms), min(self.gpu_ms, self.cpu_ms)
        return slow / max(fast, 1e-300)


class HybridDispatcher:
    """Route tridiagonal workloads to the faster engine, per shape."""

    def __init__(
        self,
        device: Union[Device, str] = "gtx470",
        cpu: CpuSpec = INTEL_CORE_I5_34GHZ,
        *,
        tuner: Optional[SelfTuner] = None,
    ):
        self.device = make_device(device)
        self.tuner = tuner or SelfTuner()
        self.cpu_solver = MklLikeCpuSolver(cpu)

    # -- pricing & decision ---------------------------------------------------

    def price(
        self, num_systems: int, system_size: int, dsize: int = 4
    ) -> HybridChoice:
        """Model both engines for a workload shape and pick the faster."""
        check_positive_int(num_systems, "num_systems")
        check_positive_int(system_size, "system_size")
        sp = self.tuner.switch_points(self.device, num_systems, system_size, dsize)
        _, report = simulate_plan(
            self.device, num_systems, system_size, dsize, sp
        )
        gpu_ms = report.total_ms
        cpu_ms = self.cpu_solver.modeled_time_ms(num_systems, system_size, dsize)
        return HybridChoice(
            engine="gpu" if gpu_ms <= cpu_ms else "cpu",
            gpu_ms=gpu_ms,
            cpu_ms=cpu_ms,
        )

    def choose(self, batch: TridiagonalBatch) -> HybridChoice:
        """The dispatch decision for a concrete batch."""
        return self.price(
            batch.num_systems, batch.system_size, dtype_size(batch.dtype)
        )

    def choose_many(
        self, batches: Iterable[TridiagonalBatch]
    ) -> List[HybridChoice]:
        """Dispatch decisions for a stream of batches, priced per shape.

        The service-aware path: a request mix repeats a handful of
        workload shapes thousands of times, so each distinct
        ``(num_systems, system_size, dtype)`` is priced once and the
        decision reused for every request of that shape.
        """
        memo: Dict[Tuple[int, int, int], HybridChoice] = {}
        out: List[HybridChoice] = []
        for batch in batches:
            shape = (
                batch.num_systems,
                batch.system_size,
                dtype_size(batch.dtype),
            )
            choice = memo.get(shape)
            if choice is None:
                choice = memo[shape] = self.price(*shape)
            out.append(choice)
        return out

    def crossover_size(
        self, num_systems: int, *, dsize: int = 4, max_exp: int = 24
    ) -> Optional[int]:
        """Smallest power-of-two system size the CPU wins for this count.

        Returns ``None`` when the GPU wins every probed size (the usual
        case for machine-filling system counts).
        """
        for exp in range(6, max_exp + 1):
            if self.price(num_systems, 1 << exp, dsize).engine == "cpu":
                return 1 << exp
        return None

    # -- solving ------------------------------------------------------------------

    def solve(self, batch: TridiagonalBatch):
        """Solve on the chosen engine; returns ``(x, choice)``."""
        choice = self.choose(batch)
        if choice.engine == "gpu":
            result = MultiStageSolver(self.device, self.tuner).solve(batch)
            return result.x, choice
        return self.cpu_solver.solve(batch).x, choice
