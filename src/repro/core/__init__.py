"""The multi-stage solver and its tuners (the paper's contribution)."""

from .config import SwitchPoints
from .dispatch import HybridChoice, HybridDispatcher
from .planner import SolvePlan, plan_solve
from .pricing import price_base_kernel, simulate_plan
from .solver import MultiStageSolver, SolveResult, solve
from .tuning import (
    DEFAULT_SWITCH_POINTS,
    DefaultTuner,
    MachineQueryTuner,
    SelfTuner,
    Tuner,
    TuningCache,
    TuningTrace,
    make_tuner,
)

__all__ = [
    "SwitchPoints",
    "HybridDispatcher",
    "HybridChoice",
    "SolvePlan",
    "plan_solve",
    "simulate_plan",
    "price_base_kernel",
    "MultiStageSolver",
    "SolveResult",
    "solve",
    "Tuner",
    "TuningTrace",
    "TuningCache",
    "DefaultTuner",
    "MachineQueryTuner",
    "SelfTuner",
    "DEFAULT_SWITCH_POINTS",
    "make_tuner",
]
