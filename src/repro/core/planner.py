"""The workflow planner — Figure 1 of the paper as code.

Given a workload shape ``(m, n)``, a device, and a set of switch points,
the planner decides how many cooperative (stage-1) and independent
(stage-2) split steps to run and how the surviving subsystems are solved
on-chip. The plan is a pure description; the solver executes it.

Decision logic (paper §III-D):

1. systems that already fit on-chip skip straight to stage 3;
2. otherwise split down to ``stage3_system_size``. While there are fewer
   independent systems than ``stage1_target_systems``, split
   cooperatively (stage 1); once enough systems exist, each block splits
   its own system (stage 2);
3. on-chip, PCR until ``thomas_switch`` subsystems, then Thomas (stage 4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..util.errors import PlanError
from ..util.validation import ilog2, is_power_of_two, next_power_of_two
from .config import SwitchPoints

__all__ = ["SolvePlan", "plan_solve"]


@dataclass(frozen=True)
class SolvePlan:
    """Executable description of one multi-stage solve."""

    num_systems: int  # m, after padding
    system_size: int  # n, after padding (power of two)
    stage1_steps: int
    stage2_steps: int
    stage3_system_size: int  # size entering the on-chip kernel
    thomas_switch: int  # clamped to stage3_system_size
    variant: str  # base-kernel variant actually used
    stride: int  # interleaving stride at stage 3

    @property
    def total_split_steps(self) -> int:
        """Total PCR splitting depth before the on-chip solve."""
        return self.stage1_steps + self.stage2_steps

    @property
    def uses_stage1(self) -> bool:
        """Whether cooperative splitting participates."""
        return self.stage1_steps > 0

    @property
    def uses_stage2(self) -> bool:
        """Whether per-block splitting participates."""
        return self.stage2_steps > 0

    @property
    def systems_entering_stage2(self) -> int:
        """Independent systems after stage 1."""
        return self.num_systems << self.stage1_steps

    @property
    def systems_entering_stage3(self) -> int:
        """Independent systems entering the on-chip kernel."""
        return self.num_systems << self.total_split_steps

    @property
    def signature(self) -> Tuple:
        """Everything that fixes the per-system arithmetic — all fields
        except the system count.

        The staged kernels are vectorised over independent systems, so two
        workloads whose plans share a signature execute the exact same
        sequence of per-system operations. Their batches may therefore be
        merged and solved in one pass with bit-identical per-system
        results — the contract the batched solve service relies on.
        """
        return (
            self.system_size,
            self.stage1_steps,
            self.stage2_steps,
            self.stage3_system_size,
            self.thomas_switch,
            self.variant,
            self.stride,
        )

    def with_num_systems(self, num_systems: int) -> "SolvePlan":
        """The same plan applied to a different number of systems.

        Used by the batched service to widen a per-request plan to a
        merged group; the signature (and hence the arithmetic) is
        unchanged.
        """
        return replace(self, num_systems=num_systems)

    def lower(self, device, dtype_size: int, *, fuse: bool = False):
        """Lower to a :class:`~repro.ir.Program` for ``device``.

        ``fuse=True`` additionally runs the batched-fusion pass,
        rewriting the staged chain into interleaved-layout sweeps with
        bit-identical solutions.

        The program is what the :class:`~repro.ir.Engine` executes and
        prices; the plan stays the human-facing decision record.
        """
        from ..ir.lower import lower_solve_plan

        return lower_solve_plan(self, device, dtype_size, fuse=fuse)

    def describe(self) -> str:
        """Multi-line human-readable plan."""
        lines = [
            f"workload {self.num_systems} x {self.system_size}:",
        ]
        if self.uses_stage1:
            lines.append(
                f"  stage 1: {self.stage1_steps} cooperative split steps -> "
                f"{self.systems_entering_stage2} systems"
            )
        if self.uses_stage2:
            lines.append(
                f"  stage 2: {self.stage2_steps} per-block split steps -> "
                f"{self.systems_entering_stage3} systems of "
                f"{self.stage3_system_size}"
            )
        lines.append(
            f"  stage 3+4: {self.variant} PCR-Thomas "
            f"(switch at {self.thomas_switch}, stride {self.stride})"
        )
        return "\n".join(lines)


def plan_solve(
    device,
    num_systems: int,
    system_size: int,
    dtype_size: int,
    switch: SwitchPoints,
) -> SolvePlan:
    """Build a :class:`SolvePlan` for ``(num_systems, system_size)``.

    ``system_size`` may be any positive integer; the plan is built for the
    padded power-of-two size (the solver pads the data accordingly).

    Raises :class:`PlanError` when no valid plan exists (e.g. the
    requested on-chip size exceeds the device's capacity).
    """
    if num_systems < 1 or system_size < 1:
        raise PlanError("workload must have at least one system and equation")
    n = (
        system_size
        if is_power_of_two(system_size)
        else next_power_of_two(system_size)
    )
    m = num_systems

    max_onchip = device.max_onchip_system_size(dtype_size)
    stage3 = min(switch.stage3_system_size, max_onchip)
    if stage3 < 2 and n > 1:
        raise PlanError(
            f"device {device.name} cannot host any useful on-chip system"
        )

    if n <= stage3:
        # Fits on-chip immediately: single base-kernel launch.
        stage3 = n
        k1 = k2 = 0
    else:
        total_steps = ilog2(n) - ilog2(stage3)
        if m >= switch.stage1_target_systems:
            k1 = 0
        else:
            # Smallest k1 with m * 2^k1 >= target (cooperative splitting
            # stops as soon as stage 2 can fill the machine).
            deficit = -(-switch.stage1_target_systems // m)  # ceil
            k1 = max(0, (deficit - 1).bit_length())
            k1 = min(k1, total_steps)
        k2 = total_steps - k1

    stride = 1 << (k1 + k2)
    thomas = min(switch.thomas_switch, stage3)
    variant = switch.variant_for_stride(stride)
    return SolvePlan(
        num_systems=m,
        system_size=n,
        stage1_steps=k1,
        stage2_steps=k2,
        stage3_system_size=stage3,
        thomas_switch=thomas,
        variant=variant,
        stride=stride,
    )
