"""The three parameter-selection strategies of the paper, plus plumbing."""

from ...util.errors import ConfigurationError
from .base import Tuner, TuningTrace
from .cache import TuningCache
from .default import DEFAULT_SWITCH_POINTS, DefaultTuner
from .dynamic import SelfTuner
from .search import exhaustive_min, pow2_hill_climb, pow2_range
from .static import MachineQueryTuner

__all__ = [
    "Tuner",
    "TuningTrace",
    "TuningCache",
    "DefaultTuner",
    "DEFAULT_SWITCH_POINTS",
    "MachineQueryTuner",
    "SelfTuner",
    "make_tuner",
    "pow2_hill_climb",
    "pow2_range",
    "exhaustive_min",
    "TUNER_NAMES",
]

TUNER_NAMES = ("default", "static", "dynamic")


def make_tuner(name: str, **kwargs) -> Tuner:
    """Build a tuner by strategy name (``default``/``static``/``dynamic``)."""
    key = name.strip().lower()
    if key in ("default", "untuned", "none"):
        return DefaultTuner()
    if key in ("static", "machine", "machine-query"):
        return MachineQueryTuner()
    if key in ("dynamic", "self", "self-tuned", "auto"):
        return SelfTuner(**kwargs)
    raise ConfigurationError(
        f"unknown tuning strategy {name!r}; expected one of {TUNER_NAMES}"
    )
