"""The default (non-tuned) parameter strategy — paper §IV-B.

Machine-oblivious constants that must at least run correctly everywhere,
so every size limit is taken from the weakest supported card:

- on-chip system size 256 (the 8800 GTX ceiling — larger would crash it);
- Thomas switch 64 (two warps' worth of subsystems, so every warp has
  work on any part);
- stage-1 target of sixteen systems ("most devices have between four and
  twenty-four processors");
- the coalesced base-kernel variant (safe on all coalescing rules).
"""

from __future__ import annotations

from ...gpu.executor import Device
from ..config import SwitchPoints
from .base import Tuner

__all__ = ["DefaultTuner", "DEFAULT_SWITCH_POINTS"]

DEFAULT_SWITCH_POINTS = SwitchPoints(
    stage1_target_systems=16,
    stage3_system_size=256,
    thomas_switch=64,
    base_variant="coalesced",
    variant_crossover_stride=None,
    source="default",
)


class DefaultTuner(Tuner):
    """Returns the least-common-denominator constants for any device."""

    name = "default"

    def switch_points(
        self,
        device: Device,
        num_systems: int,
        system_size: int,
        dtype_size: int,
    ) -> SwitchPoints:
        """The same constants, whatever the device or workload."""
        return DEFAULT_SWITCH_POINTS
