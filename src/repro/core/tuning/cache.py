"""Persistence for tuned switch points ("save those results for future
runs", paper §IV-D).

Results are keyed by ``(device name, dtype size)`` — the axes that change
the answers — and stored as plain JSON so they survive across processes
and are human-inspectable. A cache without a path is memory-only.

The cache is thread-safe: the batched solve service resolves switch
points from many worker threads at once, so every read-modify-write on
the store (and every disk load/save) happens under one reentrant lock.
:meth:`get_or_tune` is the concurrent fast path — a hit costs one lock
acquisition; on a miss the (expensive) tuning callable runs outside the
lock and the first finisher's result wins, so every caller observes the
same switch points.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Callable, Dict, Optional, Tuple, Union

from ...util.errors import TuningError
from ..config import SwitchPoints

__all__ = ["TuningCache", "WorkloadClass"]

#: A cache workload class: a plain string, or a structured tuple
#: (canonicalised via :func:`repro.ir.instructions.signature_text`).
WorkloadClass = Union[str, Tuple]

_FORMAT_VERSION = 1


class TuningCache:
    """In-memory + optional on-disk store of tuned :class:`SwitchPoints`."""

    def __init__(self, path: Union[str, os.PathLike, None] = None):
        self.path = os.fspath(path) if path is not None else None
        self._store: Dict[str, dict] = {}
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._metric = None
        self._metric_labels: Dict[str, str] = {}
        if self.path is not None and os.path.exists(self.path):
            self._load()

    def attach_metrics(self, registry, **labels) -> None:
        """Mirror lookups into an :class:`~repro.obs.MetricsRegistry` as
        ``repro_tuning_cache_lookups_total{result=hit|miss}``. Lookups
        counted before attachment are replayed.

        Extra ``labels`` are attached to every sample — the sharded
        serving cache uses this to key each shard's series
        (``shard="3"``) on the one shared counter.
        """
        counter = registry.counter(
            "repro_tuning_cache_lookups_total",
            "Tuning-cache lookups, by result.",
        )
        with self._lock:
            self._metric = counter
            self._metric_labels = dict(labels)
            if self._hits:
                counter.inc(self._hits, result="hit", **labels)
            if self._misses:
                counter.inc(self._misses, result="miss", **labels)

    @staticmethod
    def key(
        device_name: str,
        dtype_size: int,
        workload_class: WorkloadClass = "generic",
    ) -> str:
        """Stable cache key for a device/precision/workload-class triple.

        The self-tuner keys its results by the workload class it tuned
        for ("a typical self-tuning run for a particular system and GPU",
        paper §IV-D); ``generic`` covers shape-oblivious tuning. The
        class may be a plain string or a structured tuple (e.g. one
        containing a lowered :attr:`repro.ir.Program.signature`), which
        is canonicalised to stable text so keys survive the JSON
        round-trip of a persistent cache.
        """
        if not isinstance(workload_class, str):
            from ...ir.instructions import signature_text

            workload_class = signature_text(tuple(workload_class))
        return f"{device_name}|dsize={dtype_size}|{workload_class}"

    def _peek(
        self, device_name: str, dtype_size: int, workload_class: WorkloadClass
    ) -> Optional[SwitchPoints]:
        # Lookup without touching the hit/miss counters (used by the
        # double-check under the lock in get_or_tune, which has already
        # counted the initial miss).
        with self._lock:
            entry = self._store.get(
                self.key(device_name, dtype_size, workload_class)
            )
        if entry is None:
            return None
        try:
            return SwitchPoints(**entry)
        except TypeError:
            # Persisted by a different SwitchPoints schema (field added
            # or removed since): a stale entry is a miss, not a crash —
            # the caller re-tunes and overwrites it.
            return None

    def get(
        self,
        device_name: str,
        dtype_size: int,
        workload_class: WorkloadClass = "generic",
    ) -> Optional[SwitchPoints]:
        """Cached switch points, or ``None``. Counts one hit or miss."""
        found = self._peek(device_name, dtype_size, workload_class)
        with self._lock:
            if found is None:
                self._misses += 1
            else:
                self._hits += 1
            metric = self._metric
            labels = self._metric_labels
        if metric is not None:
            metric.inc(
                result="hit" if found is not None else "miss", **labels
            )
        return found

    def put(
        self,
        device_name: str,
        dtype_size: int,
        switch: SwitchPoints,
        workload_class: WorkloadClass = "generic",
    ) -> None:
        """Store switch points and persist when a path is configured."""
        with self._lock:
            self._store[self.key(device_name, dtype_size, workload_class)] = {
                "stage1_target_systems": switch.stage1_target_systems,
                "stage3_system_size": switch.stage3_system_size,
                "thomas_switch": switch.thomas_switch,
                "base_variant": switch.base_variant,
                "variant_crossover_stride": switch.variant_crossover_stride,
                "source": switch.source,
            }
            if self.path is not None:
                self._save()

    def get_or_tune(
        self,
        device_name: str,
        dtype_size: int,
        tune: Callable[[], SwitchPoints],
        workload_class: WorkloadClass = "generic",
    ) -> SwitchPoints:
        """Cached switch points, tuning (and storing) on first miss.

        ``tune`` runs *outside* the lock — a full self-tune prices dozens
        of configurations and must not stall concurrent readers. When
        several threads miss the same key at once each runs ``tune``, but
        only the first finisher's result is stored; later finishers
        discard their own result and return the stored one, so every
        caller agrees on the switch points in use.
        """
        cached = self.get(device_name, dtype_size, workload_class)
        if cached is not None:
            return cached
        tuned = tune()
        with self._lock:
            cached = self._peek(device_name, dtype_size, workload_class)
            if cached is not None:
                return cached
            self.put(device_name, dtype_size, tuned, workload_class)
        return tuned

    def counters(self) -> Dict[str, int]:
        """Lifetime lookup counters: hits, misses, and current entries.

        One ``get``/``get_or_tune`` call counts exactly one hit or miss
        (the tune-then-recheck path does not double-count), so
        ``hits / (hits + misses)`` is the fraction of lookups served
        without re-tuning.
        """
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "entries": len(self._store),
            }

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (entries are untouched)."""
        with self._lock:
            self._hits = 0
            self._misses = 0

    def clear(self) -> None:
        """Drop every entry (and the on-disk file's contents)."""
        with self._lock:
            self._store.clear()
            if self.path is not None:
                self._save()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    # -- disk ----------------------------------------------------------------

    def _save(self) -> None:
        # Callers hold the lock; write-to-temp + atomic rename keeps the
        # on-disk file consistent even across processes.
        payload = {"version": _FORMAT_VERSION, "entries": self._store}
        tmp = f"{self.path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp, self.path)

    def _load(self) -> None:
        with self._lock:
            with open(self.path, encoding="utf-8") as fh:
                text = fh.read()
            if not text.strip():
                # An empty (e.g. freshly-touched) file is an empty cache.
                self._store = {}
                return
            payload = json.loads(text)
            if payload.get("version") != _FORMAT_VERSION:
                raise TuningError(
                    f"tuning cache {self.path} has unsupported version "
                    f"{payload.get('version')!r}"
                )
            self._store = dict(payload.get("entries", {}))
