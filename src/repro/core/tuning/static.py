"""The machine-query (static) tuner — paper §IV-C.

Reads *only* the queryable :class:`~repro.gpu.query.DeviceProperties` and
derives switch points from them:

- the on-chip system size is the largest that fits the queryable
  shared-memory and register budgets ("launch PCR-Thomas as soon as each
  system can fit into shared memory");
- the Thomas switch cannot be modelled without bank counts and bank
  bandwidth, so the paper falls back to a warp-size rule: 64 subsystems
  (two warps), constant across devices;
- the stage-1 target cannot see memory-controller counts, so it is
  estimated from the processor count alone (two systems per processor);
- the coalescing crossover cannot be derived at all, so the coalesced
  variant is always chosen.

Each of those compromises is exactly one of the blind spots the dynamic
tuner fixes.
"""

from __future__ import annotations

from ...gpu.executor import Device
from ..config import SwitchPoints
from .base import Tuner

__all__ = ["MachineQueryTuner"]


class MachineQueryTuner(Tuner):
    """Derives switch points from queryable device properties only."""

    name = "static"

    def switch_points(
        self,
        device: Device,
        num_systems: int,
        system_size: int,
        dtype_size: int,
    ) -> SwitchPoints:
        """Best-effort static guess for ``device``."""
        props = device.properties()
        stage3 = props.max_onchip_system_size(dtype_size)
        # Two warps of subsystems per block: every scheduler slot has a
        # partner warp, on any architecture (paper §IV-C).
        thomas = 2 * props.warp_size
        # Two independent systems per processor keeps every SM fed; the
        # memory-controller count that actually governs saturation is not
        # queryable.
        stage1_target = 2 * props.num_processors
        return SwitchPoints(
            stage1_target_systems=stage1_target,
            stage3_system_size=stage3,
            thomas_switch=min(thomas, stage3),
            base_variant="coalesced",
            variant_crossover_stride=None,
            source="static",
        )
