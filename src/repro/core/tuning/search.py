"""Search primitives for the self-tuner.

The paper's observation is that each decoupled parameter sits in a
roughly unimodal ("hyperbolic") one-dimensional space whose natural
neighbourhood is *geometric* — switch points are powers of two. The
primitive here is therefore a power-of-two hill climb seeded at the
machine-query guess: evaluate the seed, walk in the improving direction
by doubling/halving until the cost rises, return the valley point.

``memo`` caching keeps re-evaluations free, and every probe lands in the
:class:`~repro.core.tuning.base.TuningTrace` so ablations can count them.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ...util.errors import TuningError
from ...util.validation import is_power_of_two

__all__ = ["pow2_hill_climb", "pow2_range", "exhaustive_min"]


def pow2_range(lo: int, hi: int) -> Tuple[int, ...]:
    """All powers of two in ``[lo, hi]``."""
    if lo < 1 or hi < lo:
        raise TuningError(f"invalid power-of-two range [{lo}, {hi}]")
    start = 1 << (lo - 1).bit_length()
    out = []
    v = start
    while v <= hi:
        out.append(v)
        v <<= 1
    if not out:
        raise TuningError(f"no powers of two in [{lo}, {hi}]")
    return tuple(out)


def pow2_hill_climb(
    cost: Callable[[int], float],
    seed: int,
    lo: int,
    hi: int,
    *,
    memo: Optional[Dict[int, float]] = None,
) -> Tuple[int, float]:
    """Minimise ``cost`` over powers of two in ``[lo, hi]`` from ``seed``.

    Returns ``(argmin, min_cost)``. The climb checks both neighbours of
    the seed, then walks in the better direction until the cost stops
    improving — a local minimum, which for the unimodal spaces at hand is
    the global one. A good seed (the machine-query guess) means very few
    evaluations; a poor one still converges.
    """
    if not is_power_of_two(seed):
        raise TuningError(f"seed {seed} must be a power of two")
    candidates = pow2_range(lo, hi)
    seed = min(max(seed, candidates[0]), candidates[-1])
    memo = {} if memo is None else memo

    def f(x: int) -> float:
        if x not in memo:
            memo[x] = cost(x)
        return memo[x]

    best, best_cost = seed, f(seed)
    for direction in (1, -1):  # try doubling first, then halving
        x = best
        while True:
            nxt = x << 1 if direction == 1 else x >> 1
            if nxt < candidates[0] or nxt > candidates[-1]:
                break
            c = f(nxt)
            if c < best_cost:
                best, best_cost = nxt, c
                x = nxt
            else:
                break
    return best, best_cost


def exhaustive_min(
    cost: Callable[[int], float],
    lo: int,
    hi: int,
    *,
    memo: Optional[Dict[int, float]] = None,
) -> Tuple[int, float]:
    """Brute-force minimum over powers of two in ``[lo, hi]``.

    The joint-search baseline for the decoupling ablation; also used by
    tests to check the hill climb lands on the true optimum.
    """
    memo = {} if memo is None else memo
    best, best_cost = None, float("inf")
    for x in pow2_range(lo, hi):
        if x not in memo:
            memo[x] = cost(x)
        if memo[x] < best_cost:
            best, best_cost = x, memo[x]
    return best, best_cost
