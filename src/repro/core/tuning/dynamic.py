"""The dynamic self-tuner — paper §IV-D.

The tuner prunes the search space in the two ways the paper describes:

1. **Decoupling.** The stage-3→4 switch (with the base-kernel variant and
   the stage-2→3 size) is independent of the stage-1→2 switch: the former
   depends only on on-chip behaviour of small systems, the latter only on
   how fast the machine fills with parallel work. Searching them
   separately turns a product space into a sum (the paper's 16+32 vs
   16×32 example). The :class:`~repro.core.tuning.base.TuningTrace`
   records every probe so the ablation bench can count the savings.

2. **Machine-query seeding.** Every axis starts its hill climb at the
   static tuner's guess, which usually sits near the valley of the
   unimodal cost curve, so few probes are needed.

The tuning procedure follows §IV-D step by step:

- price the machine-query selection on a workload guaranteed to fill the
  machine, then walk "two times the number of systems at half the size"
  (and the reverse) until a local minimum — tuning the stage-2→3 switch
  with the stage-3→4 switch and kernel variant re-tuned at every size;
- repeat the base-kernel comparison at increasing stride counts to learn
  where the uncoalesced (strided) kernel starts winning;
- finally tune the stage-1 target on one enormous system, starting from
  the machine guess and iterating over neighbours to the local minimum;
- save the result for future runs (:class:`TuningCache`).

The stopwatch is the machine model (``simulate_plan`` /
``price_base_kernel``) rather than wall-clock kernel launches; the search
logic is unchanged. A full tune prices a few dozen configurations — the
simulated analogue of the paper's "less than one minute".
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ...gpu.executor import Device
from ...util.validation import next_power_of_two
from ..config import SwitchPoints
from ..pricing import price_base_kernel, simulate_plan
from .base import Tuner, TuningTrace
from .cache import TuningCache
from .search import pow2_hill_climb
from .static import MachineQueryTuner

__all__ = ["SelfTuner"]

# Bounds of the one-dimensional searches (powers of two).
_MIN_STAGE3 = 32
_MIN_THOMAS = 4
_MAX_STAGE1_TARGET = 4096
_MAX_CROSSOVER_PROBE = 1 << 20


class SelfTuner(Tuner):
    """Micro-benchmark-driven switch-point search with pruning."""

    name = "dynamic"

    def __init__(
        self,
        cache: Union[TuningCache, str, None] = None,
        *,
        huge_system_size: int = 1 << 21,
        fill_systems: Optional[int] = None,
    ):
        if isinstance(cache, TuningCache):
            self.cache = cache
        else:
            self.cache = TuningCache(cache)
        self.huge_system_size = next_power_of_two(huge_system_size)
        self.fill_systems = fill_systems
        self.last_trace: Optional[TuningTrace] = None

    # -- Tuner interface ------------------------------------------------------

    def switch_points(
        self,
        device: Device,
        num_systems: int,
        system_size: int,
        dtype_size: int,
    ) -> SwitchPoints:
        """Cached tuned parameters for ``device`` (tuning on first use).

        Tuning runs — and results are cached — per workload class: the
        paper's procedure is "a typical self-tuning run for a particular
        system and GPU", with results saved for future runs of that
        workload. A known shape is classed by the signature of the
        instruction program the machine-query seed plan lowers to (plus
        the system count, which sets machine fill): two shapes that
        would run the same instructions share one tuning run, while
        shapes that plan differently tune separately.
        """
        ref_system = self._reference_system(device, system_size, dtype_size)
        known = num_systems >= 1 and system_size > 1
        if known:
            from ..planner import plan_solve

            seed = MachineQueryTuner().switch_points(device, 0, 0, dtype_size)
            seed_plan = plan_solve(
                device, num_systems, ref_system, dtype_size, seed
            )
            workload_class = (
                "workload",
                num_systems,
                seed_plan.lower(device, dtype_size).signature,
            )
        else:
            workload_class = f"n={ref_system}"
        def tune_now() -> SwitchPoints:
            tuned, trace = self.tune(
                device,
                dtype_size,
                system_size=system_size,
                num_systems=num_systems if known else 0,
            )
            self.last_trace = trace
            return tuned

        # get_or_tune is the concurrent-safe read-modify-write: the first
        # finisher's result is stored and every caller returns it.
        return self.cache.get_or_tune(
            device.name, dtype_size, tune_now, workload_class
        )

    def _reference_system(
        self, device: Device, system_size: int, dtype_size: int
    ) -> int:
        """System size the size-axis micro-benchmarks split from.

        The actual workload's (padded) size when known, floored at a size
        large enough that every stage-3 candidate needs stage-2 splitting;
        the generic 8x-on-chip reference otherwise.
        """
        max_onchip = device.max_onchip_system_size(dtype_size)
        if system_size and system_size > 1:
            return max(next_power_of_two(system_size), max_onchip * 2)
        return max_onchip * 8

    # -- the tuning procedure --------------------------------------------------

    def tune(
        self,
        device: Device,
        dtype_size: int,
        *,
        system_size: int = 0,
        num_systems: int = 0,
    ) -> Tuple[SwitchPoints, TuningTrace]:
        """Run the full §IV-D procedure; returns (result, search trace)."""
        trace = TuningTrace()
        seed = MachineQueryTuner().switch_points(device, 0, 0, dtype_size)
        spec = device.spec
        max_onchip = device.max_onchip_system_size(dtype_size)

        # Reference workload: "a particular system and GPU" — the actual
        # workload shape when known; otherwise many systems large enough
        # that every stage-3 candidate requires stage-2 splitting.
        ref_system = self._reference_system(device, system_size, dtype_size)
        ref_m = (
            num_systems
            if num_systems >= 1
            else self.fill_systems or max(64, 4 * spec.num_processors)
        )
        if system_size and system_size > 1:
            ref_system = next_power_of_two(system_size)

        # ---- axis 1+2: stage-2→3 size, with the stage-3→4 switch and the
        # kernel variant re-tuned for every candidate size. Each probe
        # prices the *whole deployment plan* of the reference workload via
        # the same path the solver takes. ----------------------------------
        per_size: Dict[int, Tuple[float, int]] = {}

        def price_plan(size: int, thomas: int, variant: str) -> float:
            probe = SwitchPoints(
                stage1_target_systems=seed.stage1_target_systems,
                stage3_system_size=size,
                thomas_switch=min(thomas, size),
                base_variant=variant,
                source="probe",
            )
            _, report = simulate_plan(
                device, ref_m, ref_system, dtype_size, probe
            )
            return report.total_ms

        def cost_of_stage3_size(size: int) -> float:
            # §IV-D: "We must tune for the ideal stage-3 to stage-4 switch
            # point for each of these settings, and for the two base
            # PCR-Thomas kernels we coded" — the Thomas switch is tuned
            # per candidate size *and per kernel variant*.
            best_ms, best_t = float("inf"), min(seed.thomas_switch, size)
            for variant in ("coalesced", "strided"):
                memo: Dict[int, float] = {}
                t_opt, t_ms = pow2_hill_climb(
                    lambda t: price_plan(size, t, variant),
                    seed=min(seed.thomas_switch, size),
                    lo=_MIN_THOMAS,
                    hi=size,
                    memo=memo,
                )
                for t, ms in memo.items():
                    trace.record(
                        "thomas_switch",
                        {"size": size, "thomas": t, "variant": variant},
                        ms,
                    )
                if t_ms < best_ms:
                    best_ms, best_t = t_ms, t_opt
            per_size[size] = (best_ms, best_t)
            trace.record("stage3_size", {"size": size}, best_ms)
            return best_ms

        stage3, _ = pow2_hill_climb(
            cost_of_stage3_size,
            seed=min(seed.stage3_system_size, max_onchip),
            lo=_MIN_STAGE3,
            hi=max_onchip,
        )
        _, thomas = per_size[stage3]

        # ---- axis 3: the coalesced↔strided crossover, by re-benchmarking
        # the two base kernels at growing stride counts ("this simulates
        # solving larger systems"). -----------------------------------------
        crossover = self._find_variant_crossover(
            device, stage3, thomas, dtype_size, ref_m, trace
        )

        # ---- axis 4: the stage-1→2 target, tuned on one enormous system
        # with the already-fixed downstream parameters. ----------------------
        partial = SwitchPoints(
            stage1_target_systems=seed.stage1_target_systems,
            stage3_system_size=stage3,
            thomas_switch=thomas,
            base_variant="coalesced",
            variant_crossover_stride=crossover,
            source="probe",
        )

        # The axis only bites when too few systems exist for stage 2; use
        # the actual workload when known (and small), else one enormous
        # system as §IV-D prescribes.
        if 1 <= ref_m < _MAX_STAGE1_TARGET and system_size and system_size > 1:
            axis_m, axis_n = ref_m, ref_system
        else:
            axis_m, axis_n = 1, self.huge_system_size

        def cost_of_stage1_target(target: int) -> float:
            _, report = simulate_plan(
                device,
                axis_m,
                axis_n,
                dtype_size,
                partial.with_(stage1_target_systems=target),
            )
            trace.record("stage1_target", {"target": target}, report.total_ms)
            return report.total_ms

        target_seed = next_power_of_two(seed.stage1_target_systems)
        stage1_target, _ = pow2_hill_climb(
            cost_of_stage1_target,
            seed=target_seed,
            lo=1,
            hi=_MAX_STAGE1_TARGET,
        )

        tuned = SwitchPoints(
            stage1_target_systems=stage1_target,
            stage3_system_size=stage3,
            thomas_switch=thomas,
            base_variant="coalesced",
            variant_crossover_stride=crossover,
            source="dynamic",
        )
        return tuned, trace

    def _find_variant_crossover(
        self,
        device: Device,
        size: int,
        thomas: int,
        dtype_size: int,
        ref_m: int,
        trace: TuningTrace,
    ) -> Optional[int]:
        """Smallest stride at which the strided kernel beats the coalesced
        one, or ``None`` if the coalesced kernel always wins."""
        # Machine-filling subsystem count, as deployments produce.
        num_systems = ref_m * 16
        stride = 2
        while stride <= _MAX_CROSSOVER_PROBE:
            costs = {}
            for variant in ("coalesced", "strided"):
                costs[variant] = price_base_kernel(
                    device,
                    num_systems,
                    size,
                    dtype_size,
                    thomas_switch=thomas,
                    variant=variant,
                    stride=stride,
                )
                trace.record(
                    "variant_crossover",
                    {"stride": stride, "variant": variant},
                    costs[variant],
                )
            if costs["strided"] < costs["coalesced"]:
                return stride
            stride <<= 1
        return None
