"""Tuner interface shared by the three parameter-selection strategies."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ...gpu.executor import Device
from ..config import SwitchPoints

__all__ = ["Tuner", "TuningTrace"]


@dataclass
class TuningTrace:
    """Search diagnostics: every evaluated point and its simulated cost.

    Used by the ablation benchmarks to compare search strategies (seeded
    vs cold, decoupled vs joint) by evaluation count — the quantity the
    paper's pruning argument is about (16+32 vs 16x32).
    """

    evaluations: List[Tuple[str, Dict[str, int], float]] = field(
        default_factory=list
    )

    def record(self, axis: str, point: Dict[str, int], cost_ms: float) -> None:
        """Record one evaluated configuration."""
        self.evaluations.append((axis, dict(point), cost_ms))

    @property
    def num_evaluations(self) -> int:
        """Total configurations priced during the search."""
        return len(self.evaluations)

    def evaluations_for(self, axis: str) -> int:
        """Configurations priced while tuning one axis."""
        return sum(1 for a, _, _ in self.evaluations if a == axis)


class Tuner(abc.ABC):
    """A parameter-selection strategy.

    ``switch_points`` receives the workload shape because some strategies
    could use it; the paper's three strategies are workload-oblivious at
    selection time (the self-tuner bakes workload dependence into its
    tuning procedure and caches per device).
    """

    name: str = "abstract"

    @abc.abstractmethod
    def switch_points(
        self,
        device: Device,
        num_systems: int,
        system_size: int,
        dtype_size: int,
    ) -> SwitchPoints:
        """Produce switch points for a workload on a device."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
