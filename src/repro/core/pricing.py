"""Data-free plan pricing.

:func:`simulate_plan` prices a full multi-stage solve — same kernels, same
launch parameters, same cost records as :class:`MultiStageSolver.solve` —
without touching any coefficient data. It is the stopwatch of the dynamic
self-tuner and of the figure benchmarks at the paper's nominal workload
sizes (where running the numerics in host NumPy would dwarf the model
evaluation). A regression test pins ``simulate_plan`` and the real solver
to identical timings.

Both views are now the same object: the plan lowers to an instruction
:class:`~repro.ir.Program` and the shared :class:`~repro.ir.Engine`
interprets it in price mode. Execution interprets the *same* program
with data, so the agreement is structural rather than by convention.
"""

from __future__ import annotations

from typing import Tuple

from ..gpu.executor import Device, SimReport
from ..kernels import KernelContext, PcrThomasSmemKernel
from .config import SwitchPoints
from .planner import SolvePlan, plan_solve

__all__ = ["simulate_plan", "price_base_kernel"]


def simulate_plan(
    device: Device,
    num_systems: int,
    system_size: int,
    dtype_size: int,
    switch: SwitchPoints,
    *,
    fuse: bool = False,
) -> Tuple[SolvePlan, SimReport]:
    """Price the full multi-stage solve of an ``(m, n)`` workload.

    ``fuse=True`` prices the batched-fusion lowering of the same plan
    (interleaved sweeps instead of the staged chain).
    """
    from ..ir.engine import Engine

    plan = plan_solve(device, num_systems, system_size, dtype_size, switch)
    run = Engine.for_device(device).price(
        plan.lower(device, dtype_size, fuse=fuse)
    )
    return plan, run.report


def price_base_kernel(
    device: Device,
    num_systems: int,
    system_size: int,
    dtype_size: int,
    *,
    thomas_switch: int,
    variant: str,
    stride: int = 1,
) -> float:
    """Price a single base-kernel launch, in simulated milliseconds."""
    session = device.session()
    ctx = KernelContext(session)
    kernel = PcrThomasSmemKernel(thomas_switch=thomas_switch, variant=variant)
    breakdown = session.submit(
        kernel.cost(ctx, num_systems, system_size, dtype_size, stride),
        stage="microbench",
    )
    return breakdown.total_ms
