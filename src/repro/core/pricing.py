"""Data-free plan pricing.

:func:`simulate_plan` prices a full multi-stage solve — same kernels, same
launch parameters, same cost records as :class:`MultiStageSolver.solve` —
without touching any coefficient data. It is the stopwatch of the dynamic
self-tuner and of the figure benchmarks at the paper's nominal workload
sizes (where running the numerics in host NumPy would dwarf the model
evaluation). A regression test pins ``simulate_plan`` and the real solver
to identical timings.
"""

from __future__ import annotations

from typing import Tuple

from ..gpu.executor import Device, SimReport
from ..kernels import (
    CoopPcrKernel,
    GlobalPcrKernel,
    KernelContext,
    PcrThomasSmemKernel,
)
from .config import SwitchPoints
from .planner import SolvePlan, plan_solve

__all__ = ["simulate_plan", "price_base_kernel"]


def simulate_plan(
    device: Device,
    num_systems: int,
    system_size: int,
    dtype_size: int,
    switch: SwitchPoints,
) -> Tuple[SolvePlan, SimReport]:
    """Price the full multi-stage solve of an ``(m, n)`` workload."""
    plan = plan_solve(device, num_systems, system_size, dtype_size, switch)
    session = device.session()
    ctx = KernelContext(session)
    m, n = plan.num_systems, plan.system_size

    if plan.uses_stage1:
        coop = CoopPcrKernel()
        total_eqs = m * n
        stride = 1
        for _ in range(plan.stage1_steps):
            session.submit(
                coop.cost_per_step(ctx, total_eqs, dtype_size, stride=stride),
                stage="stage1_coop_pcr",
            )
            stride *= 2
    if plan.uses_stage2:
        splitter = GlobalPcrKernel()
        session.submit(
            splitter.cost(
                ctx,
                plan.systems_entering_stage2,
                n >> plan.stage1_steps,
                dtype_size,
                plan.stage2_steps,
                start_stride=1 << plan.stage1_steps,
            ),
            stage="stage2_global_pcr",
        )
    base = PcrThomasSmemKernel(
        thomas_switch=plan.thomas_switch, variant=plan.variant
    )
    session.submit(
        base.cost(
            ctx,
            plan.systems_entering_stage3,
            plan.stage3_system_size,
            dtype_size,
            plan.stride,
        ),
        stage="stage3_pcr_thomas",
    )
    return plan, session.report()


def price_base_kernel(
    device: Device,
    num_systems: int,
    system_size: int,
    dtype_size: int,
    *,
    thomas_switch: int,
    variant: str,
    stride: int = 1,
) -> float:
    """Price a single base-kernel launch, in simulated milliseconds."""
    session = device.session()
    ctx = KernelContext(session)
    kernel = PcrThomasSmemKernel(thomas_switch=thomas_switch, variant=variant)
    breakdown = session.submit(
        kernel.cost(ctx, num_systems, system_size, dtype_size, stride),
        stage="microbench",
    )
    return breakdown.total_ms
