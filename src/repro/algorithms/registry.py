"""A registry of the reference tridiagonal algorithms.

Benchmarks, tests and the tuner address algorithms by name; the registry
maps names to uniform ``solve(batch) -> x`` callables and records which
require power-of-two sizes (so harnesses can pad automatically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError
from .cr import cr_solve
from .cr_pcr import cr_pcr_solve
from .lu import lu_solve, scipy_banded_solve
from .padding import pad_pow2, unpad_solution
from .pcr import pcr_solve
from .pcr_thomas import pcr_thomas_solve
from .recursive_doubling import recursive_doubling_solve
from .spike import spike_solve
from .thomas import thomas_solve

__all__ = ["AlgorithmInfo", "ALGORITHMS", "get_algorithm", "solve_with", "algorithm_names"]

SolveFn = Callable[[TridiagonalBatch], np.ndarray]


@dataclass(frozen=True)
class AlgorithmInfo:
    """Metadata for one registered algorithm."""

    name: str
    solve: SolveFn
    pow2_only: bool
    work: str  # asymptotic work, for reports
    steps: str  # asymptotic parallel step count, for reports
    description: str


ALGORITHMS: Dict[str, AlgorithmInfo] = {
    info.name: info
    for info in (
        AlgorithmInfo(
            "thomas",
            thomas_solve,
            pow2_only=False,
            work="O(n)",
            steps="O(n)",
            description="Serial LU sweep; the work-efficient baseline.",
        ),
        AlgorithmInfo(
            "cr",
            cr_solve,
            pow2_only=True,
            work="O(n)",
            steps="2 log2 n",
            description="Cyclic reduction (forward eliminate, back substitute).",
        ),
        AlgorithmInfo(
            "pcr",
            pcr_solve,
            pow2_only=True,
            work="O(n log n)",
            steps="log2 n",
            description="Parallel cyclic reduction; the splitting primitive.",
        ),
        AlgorithmInfo(
            "pcr_thomas",
            pcr_thomas_solve,
            pow2_only=True,
            work="O(n log T)",
            steps="log2 T + n/T",
            description="The paper's hybrid base algorithm (PCR split, Thomas finish).",
        ),
        AlgorithmInfo(
            "cr_pcr",
            cr_pcr_solve,
            pow2_only=True,
            work="O(n)",
            steps="~2 log2 n",
            description="Zhang et al.'s CR-PCR hybrid (prior state of the art).",
        ),
        AlgorithmInfo(
            "recursive_doubling",
            recursive_doubling_solve,
            pow2_only=True,
            work="O(n log n)",
            steps="log2 n",
            description="Stone's recursive doubling via prefix scans (extension).",
        ),
        AlgorithmInfo(
            "spike",
            spike_solve,
            pow2_only=False,
            work="O(n)",
            steps="O(n/p + p)",
            description="SPIKE/Wang partition method (CPU-parallel family).",
        ),
        AlgorithmInfo(
            "lu",
            lu_solve,
            pow2_only=False,
            work="O(n)",
            steps="O(n)",
            description="Explicit tridiagonal LU with reusable factors (MKL-style).",
        ),
        AlgorithmInfo(
            "scipy_banded",
            scipy_banded_solve,
            pow2_only=False,
            work="O(n)",
            steps="O(n)",
            description="LAPACK banded solve with pivoting; the validation oracle.",
        ),
    )
}


def algorithm_names() -> Tuple[str, ...]:
    """Registered algorithm names, stable order."""
    return tuple(ALGORITHMS)


def get_algorithm(name: str) -> AlgorithmInfo:
    """Look up an algorithm by name."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {', '.join(ALGORITHMS)}"
        ) from None


def solve_with(name: str, batch: TridiagonalBatch, **kwargs) -> np.ndarray:
    """Solve ``batch`` by name, padding to a power of two when required."""
    info = get_algorithm(name)
    if info.pow2_only:
        padded, original = pad_pow2(batch)
        x = info.solve(padded, **kwargs)
        return unpad_solution(x, original)
    return info.solve(batch, **kwargs)
