"""Parallel cyclic reduction (PCR).

PCR (Hockney & Jesshope) is the step-efficient end of the design space:
``log2(n)`` steps, but every step updates all ``n`` equations, for
``O(n log n)`` total work. One PCR step eliminates each equation's
coupling to its distance-``s`` neighbours and doubles the coupling
distance, so after ``k`` steps a system of size ``n`` decomposes into
``2^k`` independent interleaved subsystems of size ``n / 2^k`` — this is
precisely the *splitting* primitive used by the paper's stage 1, stage 2
and stage 3.

The module exposes three layers:

- :func:`pcr_step` — one reduction step on raw coefficient arrays;
- :func:`pcr_split` — ``k`` steps plus the gather that reorders the
  interleaved subsystems into a contiguous batch (and
  :func:`pcr_unsplit_solution` to undo the reorder on solutions);
- :func:`pcr_solve` — full solve by running ``log2(n)`` steps until every
  subsystem has size 1.

All functions are vectorised over the whole batch.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError
from ..util.validation import check_power_of_two, ilog2, require

__all__ = [
    "pcr_step",
    "pcr_split",
    "pcr_unsplit_solution",
    "pcr_solve",
    "pcr_reduce",
]

Coeffs = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def pcr_step(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray, stride: int
) -> Coeffs:
    """One PCR reduction step with coupling distance ``stride``.

    For each equation ``i``, eliminates ``x[i-stride]`` and ``x[i+stride]``
    using the neighbouring equations, producing a new system whose
    equations couple at distance ``2 * stride``. Out-of-range neighbours
    are treated as the identity equation (``b=1, a=c=d=0``), which leaves
    boundary equations intact.

    Arrays are ``(m, n)``; returns new arrays (inputs are not modified).
    """
    m, n = b.shape
    s = int(stride)
    require(1 <= s, f"stride must be >= 1, got {s}")

    # Padded neighbour views: index i-s and i+s for every i in one slice.
    pad = ((0, 0), (s, s))
    ap = np.pad(a, pad, constant_values=0)
    bp = np.pad(b, pad, constant_values=1)
    cp = np.pad(c, pad, constant_values=0)
    dp = np.pad(d, pad, constant_values=0)

    a_lo, b_lo, c_lo, d_lo = (arr[:, 0:n] for arr in (ap, bp, cp, dp))
    a_hi, b_hi, c_hi, d_hi = (arr[:, 2 * s :] for arr in (ap, bp, cp, dp))

    alpha = -a / b_lo
    gamma = -c / b_hi

    new_a = alpha * a_lo
    new_b = b + alpha * c_lo + gamma * a_hi
    new_c = gamma * c_hi
    new_d = d + alpha * d_lo + gamma * d_hi
    return new_a, new_b, new_c, new_d


def pcr_reduce(batch: TridiagonalBatch, steps: int) -> TridiagonalBatch:
    """Apply ``steps`` PCR steps, keeping the interleaved equation order.

    After the call, equations whose indices are congruent modulo
    ``2**steps`` form independent subsystems *in place*. Use
    :func:`pcr_split` when you want them gathered contiguously.
    """
    require(steps >= 0, f"steps must be >= 0, got {steps}")
    a, b, c, d = batch.a, batch.b, batch.c, batch.d
    stride = 1
    for _ in range(steps):
        a, b, c, d = pcr_step(a, b, c, d, stride)
        stride *= 2
    return TridiagonalBatch(a, b, c, d)


def _gather(arr: np.ndarray, k: int) -> np.ndarray:
    """Reorder ``(m, n)`` interleaved equations into ``(m * 2^k, n / 2^k)``.

    Subsystem ``j`` of system ``i`` holds equations ``j, j + 2^k, ...`` of
    the original system — the strided access pattern the paper's kernels
    pay a coalescing penalty for.
    """
    m, n = arr.shape
    groups = 1 << k
    sub = n >> k
    return np.ascontiguousarray(
        arr.reshape(m, sub, groups).transpose(0, 2, 1)
    ).reshape(m * groups, sub)


def _scatter(arr: np.ndarray, k: int) -> np.ndarray:
    """Inverse of :func:`_gather` for ``(m * 2^k, sub)`` arrays."""
    groups = 1 << k
    mg, sub = arr.shape
    m = mg // groups
    return np.ascontiguousarray(
        arr.reshape(m, groups, sub).transpose(0, 2, 1)
    ).reshape(m, sub * groups)


def pcr_split(batch: TridiagonalBatch, steps: int) -> TridiagonalBatch:
    """Split each system into ``2**steps`` independent contiguous systems.

    Requires the system size to be divisible by ``2**steps``. The result
    is a batch of shape ``(m * 2^steps, n / 2^steps)``; solving it and
    applying :func:`pcr_unsplit_solution` yields the original systems'
    solutions.
    """
    require(steps >= 0, f"steps must be >= 0, got {steps}")
    if steps == 0:
        return batch
    n = batch.system_size
    groups = 1 << steps
    if n % groups != 0:
        raise ConfigurationError(
            f"system size {n} not divisible by 2**steps = {groups}"
        )
    reduced = pcr_reduce(batch, steps)
    return TridiagonalBatch(
        _gather(reduced.a, steps),
        _gather(reduced.b, steps),
        _gather(reduced.c, steps),
        _gather(reduced.d, steps),
    )


def pcr_unsplit_solution(x: np.ndarray, steps: int) -> np.ndarray:
    """Map a split batch's solution back to the original equation order."""
    require(steps >= 0, f"steps must be >= 0, got {steps}")
    if steps == 0:
        return x
    return _scatter(x, steps)


def pcr_solve(batch: TridiagonalBatch) -> np.ndarray:
    """Solve by pure PCR: reduce until every equation stands alone.

    Requires a power-of-two system size (pad upstream otherwise; see
    :func:`repro.algorithms.padding.pad_pow2`). ``log2(n)`` steps of
    ``O(n)`` work each.
    """
    n = batch.system_size
    check_power_of_two(n, "system_size")
    steps = ilog2(n)
    reduced = pcr_reduce(batch, steps)
    # After full reduction every equation reads b * x = d.
    return reduced.d / reduced.b
