"""Periodic (cyclic) tridiagonal systems via Sherman-Morrison.

Periodic boundary conditions — ubiquitous in spectral methods and ADI on
periodic domains — add corner entries coupling the first and last
unknowns:

    b_0 x_0 + c_0 x_1 + a_0 x_{n-1} = d_0
    c_{n-1} x_0 + a_{n-1} x_{n-2} + b_{n-1} x_{n-1} = d_{n-1}

The Sherman-Morrison trick writes the cyclic matrix as ``A' + u v^T``
with ``A'`` strictly tridiagonal, so a cyclic solve costs two ordinary
tridiagonal solves against the same matrix — which the library's
factorisation reuse makes nearly the price of one.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ShapeError
from .thomas import thomas_solve

__all__ = ["CyclicTridiagonalBatch", "cyclic_solve"]


class CyclicTridiagonalBatch:
    """A batch of periodic tridiagonal systems.

    Arrays are ``(m, n)`` like :class:`TridiagonalBatch`, but ``a[:, 0]``
    (coupling ``x_0`` to ``x_{n-1}``) and ``c[:, -1]`` (coupling
    ``x_{n-1}`` to ``x_0``) are *used*, not ignored.
    """

    def __init__(self, a, b, c, d):
        a = np.atleast_2d(np.asarray(a))
        b = np.atleast_2d(np.asarray(b))
        c = np.atleast_2d(np.asarray(c))
        d = np.atleast_2d(np.asarray(d))
        if not (a.shape == b.shape == c.shape == d.shape):
            raise ShapeError("a, b, c, d must share one (m, n) shape")
        if b.shape[1] < 3:
            raise ShapeError("cyclic systems need at least 3 equations")
        self.a, self.b, self.c, self.d = a, b, c, d

    @property
    def shape(self):
        """``(m, n)``."""
        return self.b.shape

    @property
    def dtype(self):
        """Common dtype."""
        return self.b.dtype

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the cyclic operator to ``(m, n)`` x."""
        x = np.asarray(x)
        if x.shape != self.shape:
            raise ShapeError(f"x has shape {x.shape}, expected {self.shape}")
        out = self.b * x
        out += self.a * np.roll(x, 1, axis=1)
        out += self.c * np.roll(x, -1, axis=1)
        return out

    def residual(self, x: np.ndarray) -> np.ndarray:
        """Per-system relative residual."""
        r = self.matvec(x) - self.d
        num = np.linalg.norm(r, axis=1)
        den = np.maximum(
            np.linalg.norm(self.d, axis=1), np.finfo(self.dtype).tiny
        )
        return num / den


def cyclic_solve(
    batch: CyclicTridiagonalBatch,
    inner_solve: Optional[Callable[[TridiagonalBatch], np.ndarray]] = None,
) -> np.ndarray:
    """Solve periodic systems with two tridiagonal solves (Sherman-Morrison).

    ``inner_solve`` is the tridiagonal solver used for the two auxiliary
    systems (default :func:`~repro.algorithms.thomas.thomas_solve`; pass
    a :class:`~repro.core.solver.MultiStageSolver`-backed callable to run
    them on the machine model).

    Decomposition: with ``alpha = a[:, 0]`` and ``beta = c[:, -1]``,
    choose ``gamma = -b[:, 0]`` and solve ``A' y = d`` and ``A' z = u``
    where ``A'`` equals the cyclic matrix with corners removed and

        ``b'_0 = b_0 - gamma``,  ``b'_{n-1} = b_{n-1} - alpha beta / gamma``,
        ``u = (gamma, 0, ..., 0, beta)``,  ``v = (1, 0, ..., 0, alpha/gamma)``.

    Then ``x = y - z (v·y) / (1 + v·z)``.
    """
    if inner_solve is None:
        inner_solve = thomas_solve
    a, b, c, d = batch.a, batch.b, batch.c, batch.d
    m, n = batch.shape
    dtype = batch.dtype

    alpha = a[:, 0].copy()  # corner: row 0, col n-1
    beta = c[:, -1].copy()  # corner: row n-1, col 0
    gamma = -b[:, 0]

    a2 = a.copy()
    b2 = b.copy()
    c2 = c.copy()
    a2[:, 0] = 0
    c2[:, -1] = 0
    b2[:, 0] = b[:, 0] - gamma
    b2[:, -1] = b[:, -1] - alpha * beta / gamma

    u = np.zeros((m, n), dtype=dtype)
    u[:, 0] = gamma
    u[:, -1] = beta

    stacked = TridiagonalBatch(
        np.concatenate([a2, a2]),
        np.concatenate([b2, b2]),
        np.concatenate([c2, c2]),
        np.concatenate([d, u]),
    )
    yz = inner_solve(stacked)
    y, z = yz[:m], yz[m:]

    v_dot_y = y[:, 0] + (alpha / gamma) * y[:, -1]
    v_dot_z = z[:, 0] + (alpha / gamma) * z[:, -1]
    factor = (v_dot_y / (1.0 + v_dot_z))[:, None]
    return y - z * factor
