"""The Thomas algorithm (tridiagonal LU without pivoting).

Thomas is the work-efficient end of the paper's design space: O(n) work
but strictly serial along the system. On a batch it vectorises across
systems — a loop of length ``n`` whose body is an ``(m,)``-wide NumPy
expression — which is exactly the shape of the paper's stage 4, where each
GPU thread runs Thomas serially on its own subsystem.

Stability: unconditionally stable for diagonally dominant or symmetric
positive-definite systems; may break down (zero pivot) otherwise, which is
reported via :class:`~repro.util.errors.SingularSystemError`.
"""

from __future__ import annotations

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import SingularSystemError

__all__ = ["thomas_solve", "thomas_workspace_solve"]


def _pivot_floor(dtype: np.dtype) -> float:
    # Breakdown threshold: pivots below this are treated as numerically
    # singular. tiny/eps leaves headroom before the division overflows.
    info = np.finfo(dtype)
    return float(info.tiny / info.eps)


def thomas_solve(batch: TridiagonalBatch, *, check: bool = True) -> np.ndarray:
    """Solve every system in ``batch`` with the Thomas algorithm.

    Returns an ``(m, n)`` solution array. With ``check=True`` (default) a
    vanishing pivot raises :class:`SingularSystemError` identifying the
    first offending system; with ``check=False`` the caller gets whatever
    IEEE arithmetic produces (useful inside benchmark loops).
    """
    a, b, c, d = batch.a, batch.b, batch.c, batch.d
    m, n = batch.shape
    dtype = batch.dtype

    # Scratch: modified super-diagonal and RHS of the forward sweep.
    cp = np.empty((m, n), dtype=dtype)
    dp = np.empty((m, n), dtype=dtype)
    floor = _pivot_floor(dtype)

    beta = b[:, 0].copy()
    if check and (np.abs(beta) <= floor).any():
        idx = int(np.argmax(np.abs(beta) <= floor))
        raise SingularSystemError(
            f"zero pivot at row 0 of system {idx}", system_index=idx
        )
    cp[:, 0] = c[:, 0] / beta
    dp[:, 0] = d[:, 0] / beta

    for i in range(1, n):
        beta = b[:, i] - a[:, i] * cp[:, i - 1]
        if check and (np.abs(beta) <= floor).any():
            idx = int(np.argmax(np.abs(beta) <= floor))
            raise SingularSystemError(
                f"zero pivot at row {i} of system {idx}", system_index=idx
            )
        cp[:, i] = c[:, i] / beta
        dp[:, i] = (d[:, i] - a[:, i] * dp[:, i - 1]) / beta

    x = np.empty((m, n), dtype=dtype)
    x[:, -1] = dp[:, -1]
    for i in range(n - 2, -1, -1):
        x[:, i] = dp[:, i] - cp[:, i] * x[:, i + 1]
    return x


def thomas_workspace_solve(
    batch: TridiagonalBatch,
    cp: np.ndarray,
    dp: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """Allocation-free Thomas for hot benchmark loops.

    ``cp``, ``dp`` and ``x`` must be caller-owned ``(m, n)`` arrays of the
    batch dtype; they are overwritten. No singularity checks are performed.
    Returns ``x``.
    """
    a, b, c, d = batch.a, batch.b, batch.c, batch.d
    n = batch.system_size

    np.divide(c[:, 0], b[:, 0], out=cp[:, 0])
    np.divide(d[:, 0], b[:, 0], out=dp[:, 0])
    for i in range(1, n):
        beta = b[:, i] - a[:, i] * cp[:, i - 1]
        np.divide(c[:, i], beta, out=cp[:, i])
        np.divide(d[:, i] - a[:, i] * dp[:, i - 1], beta, out=dp[:, i])

    x[:, -1] = dp[:, -1]
    for i in range(n - 2, -1, -1):
        np.multiply(cp[:, i], x[:, i + 1], out=x[:, i])
        np.subtract(dp[:, i], x[:, i], out=x[:, i])
    return x
