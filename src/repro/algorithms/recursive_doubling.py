"""Recursive doubling tridiagonal solver (extension algorithm).

The paper positions its method within the classical trio Thomas / CR /
PCR; recursive doubling (Stone 1973) is the fourth classical parallel
algorithm and a natural extension target ("optimized banded solvers" are
named as future work). We include it both for completeness of the
algorithm registry and as an extra baseline in the ablation benches.

Formulation: the Thomas forward sweep's pivots satisfy the linear
fractional recurrence ``u_i = b_i - a_i c_{i-1} / u_{i-1}``, which maps to
the 2x2 matrix product ``M_i = [[b_i, -a_i c_{i-1}], [1, 0]]`` acting on
homogeneous coordinates: ``u_i = p_i / q_i`` where ``(p_i, q_i)^T =
M_i M_{i-1} ... M_1 (b_0, 1)^T``. The prefix products are computed with a
parallel scan in ``log2(n)`` doubling steps; the two triangular solves
then each reduce to a first-order *linear* recurrence, evaluated with a
second pair of scans. The result is a solver with O(n log n) work and
O(log n) depth, like PCR, but built from prefix products.

Numerical caveat: homogeneous 2x2 products can overflow for large ``n``;
we renormalise each column to unit infinity-norm at every doubling step,
which leaves the ratio ``p/q`` invariant.
"""

from __future__ import annotations

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.validation import check_power_of_two

__all__ = ["recursive_doubling_solve"]


def _prefix_matmul_2x2(mats: np.ndarray) -> np.ndarray:
    """Inclusive prefix products of ``(m, n, 2, 2)`` matrices along axis 1.

    Uses the Hillis-Steele doubling scan: ``log2(n)`` steps, each a batched
    matmul of the current prefix with the prefix shifted by the stride.
    Each step renormalises by the per-matrix infinity norm to avoid
    overflow (valid because results are used projectively).
    """
    out = mats.copy()
    n = out.shape[1]
    stride = 1
    while stride < n:
        # prefix[i] = prefix[i] @ prefix[i - stride] for i >= stride.
        head = out[:, stride:]
        tail = out[:, :-stride]
        out[:, stride:] = np.einsum("mnij,mnjk->mnik", head, tail)
        norm = np.abs(out).max(axis=(2, 3), keepdims=True)
        norm[norm == 0] = 1.0
        out /= norm
        stride *= 2
    return out


def _prefix_linear(alpha: np.ndarray, beta: np.ndarray) -> np.ndarray:
    """Scan the recurrence ``y_i = alpha_i * y_{i-1} + beta_i`` (y_{-1}=0).

    Composition of affine maps ``(a1, b1) ∘ (a0, b0) = (a1 a0, a1 b0 + b1)``
    scanned by doubling; returns ``y`` of the same shape.
    """
    a = alpha.copy()
    b = beta.copy()
    n = a.shape[1]
    stride = 1
    while stride < n:
        a_hi = a[:, stride:]
        b[:, stride:] = a_hi * b[:, :-stride] + b[:, stride:]
        a[:, stride:] = a_hi * a[:, :-stride]
        stride *= 2
    return b


def recursive_doubling_solve(batch: TridiagonalBatch) -> np.ndarray:
    """Solve every system via recursive-doubling scans.

    Requires a power-of-two system size. Accuracy degrades faster than
    Thomas/PCR on ill-conditioned systems (projective products amplify
    rounding); fine for diagonally dominant inputs.
    """
    n = batch.system_size
    check_power_of_two(n, "system_size")
    a, b, c, d = batch.a, batch.b, batch.c, batch.d
    m = batch.num_systems
    dtype = batch.dtype
    if n == 1:
        return d / b

    # Pivot scan: u_i = b_i - a_i c_{i-1} / u_{i-1}.
    mats = np.zeros((m, n, 2, 2), dtype=dtype)
    mats[:, :, 0, 0] = b
    mats[:, 0, 0, 1] = 0.0
    mats[:, 1:, 0, 1] = -(a[:, 1:] * c[:, :-1])
    mats[:, :, 1, 0] = 1.0
    # M_0 must produce (b_0, 1): replace row 0 with the identity-seeded
    # matrix [[b0, 0], [0, 1]] acting on (1, 1)... simpler: seed vector
    # (1, 0) and let M_0 = [[b0, *], [1, 0]] give (b0, 1). The * entry of
    # M_0 is multiplied by 0, so its value is irrelevant; keep 0.
    prefix = _prefix_matmul_2x2(mats)
    p = prefix[:, :, 0, 0]
    q = prefix[:, :, 1, 0]
    u = p / q  # pivots u_i

    # Forward solve L y = d: y_i = d_i - (a_i / u_{i-1}) y_{i-1}.
    alpha_f = np.zeros_like(b)
    alpha_f[:, 1:] = -(a[:, 1:] / u[:, :-1])
    y = _prefix_linear(alpha_f, d)

    # Backward solve U x = y: x_i = y_i / u_i - (c_i / u_i) x_{i+1};
    # reverse the axis so it is again a forward recurrence.
    alpha_b = np.zeros_like(b)
    alpha_b[:, :-1] = -(c[:, :-1] / u[:, :-1])
    beta_b = y / u
    x_rev = _prefix_linear(alpha_b[:, ::-1].copy(), beta_b[:, ::-1].copy())
    return x_rev[:, ::-1].copy()
