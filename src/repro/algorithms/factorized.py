"""Reusable factorization of the PCR-Thomas pipeline.

Applications like ADI time-stepping solve against the *same* tridiagonal
matrix every step with a fresh right-hand side. The PCR splitting
coefficients (``alpha``, ``gamma`` per step) and the split subsystems' LU
factors depend only on the matrix, so they can be computed once:
subsequent solves only transform the RHS — about a third of the
arithmetic and half the memory traffic of a full solve.

:class:`PcrThomasFactorization` captures that state for any split depth;
:func:`factorize` builds it from a batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ShapeError
from ..util.validation import check_power_of_two, ilog2
from .lu import TridiagonalLU, lu_factor, lu_solve_factored
from .pcr import _gather, _scatter, pcr_step

__all__ = ["PcrThomasFactorization", "factorize"]


@dataclass(frozen=True)
class PcrThomasFactorization:
    """Matrix-only state of the hybrid solve.

    ``steps`` holds, per PCR level, the ``(alpha, gamma)`` elimination
    coefficients at that level's stride; ``lu`` factors the ``2^k``-way
    split subsystems. ``solve`` applies them to any right-hand side.
    """

    shape: Tuple[int, int]
    split_depth: int
    steps: List[Tuple[np.ndarray, np.ndarray]]
    lu: TridiagonalLU

    def solve(self, d: np.ndarray) -> np.ndarray:
        """Solve ``A x = d`` for a new RHS using the cached factors."""
        d = np.asarray(d)
        if d.shape != self.shape:
            raise ShapeError(f"d has shape {d.shape}, expected {self.shape}")
        stride = 1
        for alpha, gamma in self.steps:
            pad = ((0, 0), (stride, stride))
            dp = np.pad(d, pad)
            d = d + alpha * dp[:, : d.shape[1]] + gamma * dp[:, 2 * stride :]
            stride *= 2
        d_split = _gather(d, self.split_depth) if self.split_depth else d
        x = lu_solve_factored(self.lu, d_split)
        return _scatter(x, self.split_depth) if self.split_depth else x

    def solve_many(self, d_stack: np.ndarray) -> np.ndarray:
        """Solve against a stack of right-hand sides, shape ``(r, m, n)``.

        All ``r`` RHS sets go through the factor application in one
        batched pass (the multiple-RHS pattern of ADI and pricing codes).
        """
        d_stack = np.asarray(d_stack)
        if d_stack.ndim != 3 or d_stack.shape[1:] != self.shape:
            raise ShapeError(
                f"d_stack must be (r, {self.shape[0]}, {self.shape[1]}), "
                f"got {d_stack.shape}"
            )
        r = d_stack.shape[0]
        flat = d_stack.reshape(r * self.shape[0], self.shape[1])
        # The step coefficients tile across the stacked systems.
        stride = 1
        for alpha, gamma in self.steps:
            alpha_t = np.tile(alpha, (r, 1))
            gamma_t = np.tile(gamma, (r, 1))
            pad = ((0, 0), (stride, stride))
            dp = np.pad(flat, pad)
            flat = (
                flat
                + alpha_t * dp[:, : flat.shape[1]]
                + gamma_t * dp[:, 2 * stride :]
            )
            stride *= 2
        d_split = _gather(flat, self.split_depth) if self.split_depth else flat
        lu_tiled = TridiagonalLU(
            l=np.tile(self.lu.l, (r, 1)),
            u=np.tile(self.lu.u, (r, 1)),
            c=np.tile(self.lu.c, (r, 1)),
        )
        x = lu_solve_factored(lu_tiled, d_split)
        x = _scatter(x, self.split_depth) if self.split_depth else x
        return x.reshape(r, self.shape[0], self.shape[1])


def factorize(
    batch: TridiagonalBatch, split_depth: int | None = None
) -> PcrThomasFactorization:
    """Factor ``batch``'s matrix for repeated solves.

    ``split_depth`` is the number of PCR levels before the Thomas phase
    (default: ``log2(thomas default 64)`` capped by the system size).
    The RHS stored in ``batch`` is ignored.
    """
    n = batch.system_size
    check_power_of_two(n, "system_size")
    if split_depth is None:
        split_depth = min(6, ilog2(n))  # 2^6 = 64 subsystems, the default
    if split_depth < 0 or (1 << split_depth) > n:
        raise ShapeError(
            f"split_depth {split_depth} invalid for system size {n}"
        )

    a, b, c = batch.a, batch.b, batch.c
    d = np.zeros_like(b)
    steps: List[Tuple[np.ndarray, np.ndarray]] = []
    stride = 1
    for _ in range(split_depth):
        pad = ((0, 0), (stride, stride))
        b_lo = np.pad(b, pad, constant_values=1)[:, : b.shape[1]]
        b_hi = np.pad(b, pad, constant_values=1)[:, 2 * stride :]
        alpha = -a / b_lo
        gamma = -c / b_hi
        steps.append((alpha, gamma))
        a, b, c, d = pcr_step(a, b, c, d, stride)
        stride *= 2

    split = TridiagonalBatch(
        _gather(a, split_depth),
        _gather(b, split_depth),
        _gather(c, split_depth),
        _gather(d, split_depth),
    ) if split_depth else TridiagonalBatch(a, b, c, d)
    lu = lu_factor(split)
    return PcrThomasFactorization(
        shape=batch.shape, split_depth=split_depth, steps=steps, lu=lu
    )
