"""Cyclic reduction (CR).

CR is the work-efficient parallel algorithm (O(n) work, 2 log2(n) steps):
a forward phase repeatedly eliminates the odd-indexed unknowns, halving
the system, and a backward phase substitutes them back. It is the
algorithm of Göddeke & Strzodka's multigrid smoother and one half of
Zhang et al.'s CR-PCR hybrid, which this library implements as a baseline
(:mod:`repro.algorithms.cr_pcr`).

The batch implementation vectorises each level across all systems and all
active equations. Power-of-two system sizes are required; pad upstream
with :func:`repro.algorithms.padding.pad_pow2` otherwise.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.validation import check_power_of_two

__all__ = ["cr_solve", "cr_forward_levels"]

Coeffs = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _reduce_level(a, b, c, d) -> Tuple[Coeffs, Coeffs]:
    """One forward-reduction level.

    Splits the current system (size ``n``, even) into the *reduced* system
    over odd-indexed unknowns (size ``n/2``) and keeps the even-indexed
    equations for back-substitution. Returns ``(reduced, kept)``.
    """
    # Views of even/odd rows.
    ae, be, ce, de = a[:, 0::2], b[:, 0::2], c[:, 0::2], d[:, 0::2]
    ao, bo, co, do = a[:, 1::2], b[:, 1::2], c[:, 1::2], d[:, 1::2]

    # Row 2i+1 eliminates x[2i] via row 2i and x[2i+2] via row 2i+2.
    k1 = ao / be  # coupling to the even row below
    # Coupling to the even row above: for the last odd row, x[2i+2] does
    # not exist and co is structurally zero, so k2's divisor is never used;
    # shift the even rows up and pad with ones.
    be_up = np.concatenate([be[:, 1:], np.ones_like(be[:, :1])], axis=1)
    ae_up = np.concatenate([ae[:, 1:], np.zeros_like(ae[:, :1])], axis=1)
    ce_up = np.concatenate([ce[:, 1:], np.zeros_like(ce[:, :1])], axis=1)
    de_up = np.concatenate([de[:, 1:], np.zeros_like(de[:, :1])], axis=1)
    k2 = co / be_up

    ra = -ae * k1
    rb = bo - ce * k1 - ae_up * k2
    rc = -ce_up * k2
    rd = do - de * k1 - de_up * k2
    return (ra, rb, rc, rd), (ae, be, ce, de)


def cr_forward_levels(batch: TridiagonalBatch) -> List[Tuple[Coeffs, Coeffs]]:
    """Run the forward phase, returning per-level (reduced, kept) pairs.

    Exposed for tests and for the CR-PCR hybrid, which truncates the
    forward phase early.
    """
    n = batch.system_size
    check_power_of_two(n, "system_size")
    levels: List[Tuple[Coeffs, Coeffs]] = []
    coeffs: Coeffs = (batch.a, batch.b, batch.c, batch.d)
    while coeffs[1].shape[1] > 1:
        reduced, kept = _reduce_level(*coeffs)
        levels.append((reduced, kept))
        coeffs = reduced
    return levels


def _back_substitute(x_odd: np.ndarray, kept: Coeffs) -> np.ndarray:
    """Recover the full-level solution from the odd-unknown solution.

    ``x_odd`` are the unknowns at indices 1, 3, 5, ... of the level;
    ``kept`` are the even-indexed equations of that level.
    """
    ae, be, ce, de = kept
    m, half = x_odd.shape
    x = np.empty((m, 2 * half), dtype=x_odd.dtype)
    x[:, 1::2] = x_odd
    # Even row 2i: a*x[2i-1] + b*x[2i] + c*x[2i+1] = d. x[2i-1] is the
    # previous odd unknown (zero, by structural a[0] = 0, for i = 0).
    x_prev_odd = np.concatenate(
        [np.zeros_like(x_odd[:, :1]), x_odd[:, :-1]], axis=1
    )
    x[:, 0::2] = (de - ae * x_prev_odd - ce * x_odd) / be
    return x


def cr_solve(batch: TridiagonalBatch) -> np.ndarray:
    """Solve by classic cyclic reduction (power-of-two sizes).

    Forward-reduces to a single equation per system, solves it, then
    back-substitutes level by level.
    """
    levels = cr_forward_levels(batch)
    if not levels:
        # n == 1: direct solve.
        return batch.d / batch.b

    ra, rb, rc, rd = levels[-1][0]
    x = rd / rb  # the lone odd unknown of the final level
    for _, kept in reversed(levels):
        x = _back_substitute(x, kept)
    return x
