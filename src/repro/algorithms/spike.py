"""The SPIKE / Wang partition method.

The third classical family of parallel tridiagonal algorithms (after
cyclic-reduction variants and recursive doubling): partition each system
into ``p`` chunks, solve every chunk independently against three
right-hand sides (the data plus the two coupling "spikes"), reduce to a
small system over the chunk-boundary unknowns, then reconstruct. It is
the standard CPU/SIMD competitor to the GPU algorithms in this library
and the backbone of Intel's SPIKE solver — a natural registry entry for
cross-checks and baselines.

Partitions need not divide the system size: :func:`partition_bounds`
produces balanced chunks whose sizes differ by at most one row, and the
solver handles each distinct chunk size as one stacked solve. Requesting
more partitions than ``n // 2`` raises a :class:`ConfigurationError`
(every chunk must keep at least two rows so it has distinct first/last
boundary unknowns).

The reduced boundary system is block tridiagonal with 2×2 blocks and is
solved with :func:`repro.blocked.algorithms.block_thomas_solve` — the
extension packages composing. The decomposition helpers
(:func:`split_chunks`, :func:`spike_rhs`, :func:`solve_reduced_system`,
:func:`reconstruct_chunk`) are exported because the multi-device
domain-decomposition solver in :mod:`repro.dist` runs the same math with
each chunk's three-RHS solve placed on a different simulated device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError
from .thomas import thomas_solve

__all__ = [
    "MIN_CHUNK_ROWS",
    "ChunkSplit",
    "partition_bounds",
    "split_chunks",
    "spike_rhs",
    "solve_reduced_system",
    "truncated_reduced_solve",
    "reconstruct_chunk",
    "spike_solve",
    "truncated_spike_solve",
]

# Every chunk needs distinct first and last rows — the two boundary
# unknowns (s_i, t_i) the reduced system solves for.
MIN_CHUNK_ROWS = 2


def _auto_partitions(n: int, cap: int = 16) -> int:
    """Largest power of two ``<= cap`` whose balanced chunks keep >= 2 rows."""
    p = 1
    while p * 2 <= cap and n >= (p * 2) * MIN_CHUNK_ROWS:
        p *= 2
    return p


def partition_bounds(n: int, partitions: int) -> Tuple[Tuple[int, int], ...]:
    """Balanced ``(start, stop)`` row ranges for ``partitions`` chunks.

    Chunk sizes differ by at most one row (the first ``n % p`` chunks get
    the extra row), so no divisibility constraint applies. Raises
    :class:`ConfigurationError` when any chunk would fall below
    :data:`MIN_CHUNK_ROWS` rows.
    """
    p = int(partitions)
    if p < 1 or n < p * MIN_CHUNK_ROWS:
        raise ConfigurationError(
            f"cannot split {n} rows into {partitions} partitions of at "
            f"least {MIN_CHUNK_ROWS} rows each"
        )
    base, extra = divmod(n, p)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for i in range(p):
        q = base + (1 if i < extra else 0)
        bounds.append((start, start + q))
        start += q
    return tuple(bounds)


@dataclass(frozen=True)
class ChunkSplit:
    """One SPIKE chunk: decoupled local systems plus their couplings.

    ``batch`` holds the chunk's rows with the cross-boundary coefficients
    removed (corners zeroed); ``left_coupling``/``right_coupling`` are
    the removed coefficients, one per system, tying the chunk's first row
    to the previous chunk's last unknown and its last row to the next
    chunk's first unknown.
    """

    index: int
    start: int
    stop: int
    batch: TridiagonalBatch
    left_coupling: np.ndarray  # (m,)
    right_coupling: np.ndarray  # (m,)

    @property
    def size(self) -> int:
        """Rows in this chunk."""
        return self.stop - self.start


def split_chunks(
    batch: TridiagonalBatch, bounds: Tuple[Tuple[int, int], ...]
) -> List[ChunkSplit]:
    """Cut ``batch`` into decoupled chunks along ``bounds``."""
    chunks: List[ChunkSplit] = []
    for i, (start, stop) in enumerate(bounds):
        a = batch.a[:, start:stop].copy()
        b = batch.b[:, start:stop]
        c = batch.c[:, start:stop].copy()
        d = batch.d[:, start:stop]
        left = a[:, 0].copy()
        right = c[:, -1].copy()
        a[:, 0] = 0.0
        c[:, -1] = 0.0
        chunks.append(
            ChunkSplit(
                index=i,
                start=start,
                stop=stop,
                batch=TridiagonalBatch(a, b, c, d),
                left_coupling=left,
                right_coupling=right,
            )
        )
    return chunks


def spike_rhs(chunk: ChunkSplit) -> TridiagonalBatch:
    """The chunk's three-RHS batch: ``(3m, q)`` = [data | left | right spike].

    Rows ``[0, m)`` carry the data right-hand side (whose solution is
    ``y``), rows ``[m, 2m)`` the left coupling impulse (solution ``w``),
    rows ``[2m, 3m)`` the right coupling impulse (solution ``v``). All
    three share the chunk's decoupled matrix, so one vectorised solve
    covers them.
    """
    m, q = chunk.batch.shape
    dtype = chunk.batch.dtype
    rhs_w = np.zeros((m, q), dtype=dtype)
    rhs_w[:, 0] = chunk.left_coupling
    rhs_v = np.zeros((m, q), dtype=dtype)
    rhs_v[:, -1] = chunk.right_coupling

    def tile(arr: np.ndarray) -> np.ndarray:
        return np.concatenate([arr, arr, arr])

    return TridiagonalBatch(
        tile(chunk.batch.a),
        tile(chunk.batch.b),
        tile(chunk.batch.c),
        np.concatenate([chunk.batch.d, rhs_w, rhs_v]),
    )


def solve_reduced_system(
    y_first: np.ndarray,
    y_last: np.ndarray,
    w_first: np.ndarray,
    w_last: np.ndarray,
    v_first: np.ndarray,
    v_last: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the 2×2-block reduced boundary system.

    Inputs are ``(m, p)`` arrays of per-chunk boundary values of the data
    solution ``y`` and the spikes ``w``/``v``. Returns ``(t_prev,
    s_next)``, each ``(m, p)``: the neighbouring boundary unknowns chunk
    ``i`` needs for reconstruction (``t_{i-1}`` and ``s_{i+1}``; zero at
    the ends).
    """
    from ..blocked.algorithms import block_thomas_solve
    from ..blocked.containers import BlockTridiagonalBatch

    m, p = y_first.shape
    dtype = y_first.dtype
    eye = np.eye(2, dtype=dtype)
    B = np.broadcast_to(eye, (m, p, 2, 2)).copy()
    A = np.zeros((m, p, 2, 2), dtype=dtype)
    C = np.zeros((m, p, 2, 2), dtype=dtype)
    # Unknown u_i = (s_i, t_i) = (x_i[0], x_i[-1]);
    # u_i + A_i u_{i-1} + C_i u_{i+1} = (y_i[0], y_i[-1]).
    A[:, :, 0, 1] = w_first
    A[:, :, 1, 1] = w_last
    C[:, :, 0, 0] = v_first
    C[:, :, 1, 0] = v_last
    A[:, 0] = 0.0
    C[:, -1] = 0.0
    D = np.stack([y_first, y_last], axis=2)
    U = block_thomas_solve(BlockTridiagonalBatch(A, B, C, D))  # (m, p, 2)

    t_prev = np.zeros((m, p), dtype=dtype)
    t_prev[:, 1:] = U[:, :-1, 1]
    s_next = np.zeros((m, p), dtype=dtype)
    s_next[:, :-1] = U[:, 1:, 0]
    return t_prev, s_next


def truncated_reduced_solve(
    y_first: np.ndarray,
    y_last: np.ndarray,
    w_first: np.ndarray,
    w_last: np.ndarray,
    v_first: np.ndarray,
    v_last: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """The truncated-SPIKE boundary solve: independent 2×2 interfaces.

    Same signature and return convention as :func:`solve_reduced_system`
    so the two are drop-in interchangeable, but the coupling terms that
    tie an interface to its neighbours — ``w_last_i t_{i-1}`` and
    ``v_first_{i+1} s_{i+2}``, i.e. the spike values that crossed a
    whole chunk — are dropped (Li, Serban & Negrut, arXiv:1509.07919).
    What remains is one 2×2 system per chunk interface::

        [ 1            v_last_i ] [ t_i     ]   [ y_last_i      ]
        [ w_first_{i+1}    1    ] [ s_{i+1} ] = [ y_first_{i+1} ]

    solved in closed form, vectorised over all ``(m, p-1)`` interfaces.
    For a system with dominance ratio ``d > 1`` the dropped values decay
    like ``(1/d)^(q-1)`` across a ``q``-row chunk, so the induced error
    is bounded and checkable — and no information ever travels further
    than one chunk boundary, which is what removes the global reduced
    solve from the distributed critical path.
    """
    m, p = y_first.shape
    dtype = y_first.dtype
    # ``w_last`` and ``v_first`` are exactly the truncated terms; the
    # signature keeps them so callers can swap solvers without reshaping.
    del w_last, v_first
    t_prev = np.zeros((m, p), dtype=dtype)
    s_next = np.zeros((m, p), dtype=dtype)
    if p < 2:
        return t_prev, s_next
    vl = v_last[:, :-1]
    wf = w_first[:, 1:]
    det = 1.0 - vl * wf
    t_i = (y_last[:, :-1] - vl * y_first[:, 1:]) / det
    s_ip1 = (y_first[:, 1:] - wf * y_last[:, :-1]) / det
    t_prev[:, 1:] = t_i
    s_next[:, :-1] = s_ip1
    return t_prev, s_next


def reconstruct_chunk(
    y: np.ndarray,
    w: np.ndarray,
    v: np.ndarray,
    t_prev: np.ndarray,
    s_next: np.ndarray,
) -> np.ndarray:
    """Undo the decoupling: ``x_i = y_i - w_i t_{i-1} - v_i s_{i+1}``.

    ``y``/``w``/``v`` are ``(m, q)``; ``t_prev``/``s_next`` are ``(m,)``.
    """
    return y - w * t_prev[:, None] - v * s_next[:, None]


def spike_solve(
    batch: TridiagonalBatch, partitions: int | str = "auto"
) -> np.ndarray:
    """Solve every system with the SPIKE partition method.

    ``partitions`` is the chunk count ``p`` or ``"auto"``. Any ``p`` with
    ``n >= 2 p`` is valid — chunks are balanced, differing by at most one
    row, so ``p`` need not divide the system size. ``p = 1`` degenerates
    to the Thomas algorithm; an infeasible ``p`` raises
    :class:`ConfigurationError`.
    """
    return _spike_solve(batch, partitions, solve_reduced_system)


def truncated_spike_solve(
    batch: TridiagonalBatch, partitions: int | str = "auto"
) -> np.ndarray:
    """The truncated-SPIKE approximation: SPIKE without the reduced system.

    Identical to :func:`spike_solve` except the boundary unknowns come
    from :func:`truncated_reduced_solve` — independent per-interface 2×2
    solves instead of the global block-tridiagonal reduced system. The
    answer is *approximate*, with error bounded by the spike decay of a
    diagonally dominant matrix; callers are expected to check the
    residual a posteriori (see :mod:`repro.numerics`).
    """
    return _spike_solve(batch, partitions, truncated_reduced_solve)


def _spike_solve(
    batch: TridiagonalBatch, partitions: int | str, reduced_solver
) -> np.ndarray:
    m, n = batch.shape
    if partitions == "auto":
        p = _auto_partitions(n)
    else:
        p = int(partitions)
    if p == 1:
        return thomas_solve(batch)
    bounds = partition_bounds(n, p)
    chunks = split_chunks(batch, bounds)
    dtype = batch.dtype

    # Solve each distinct chunk size as one stacked three-RHS batch; a
    # balanced partition yields at most two distinct sizes.
    y: List[np.ndarray] = [None] * p  # type: ignore[list-item]
    w: List[np.ndarray] = [None] * p  # type: ignore[list-item]
    v: List[np.ndarray] = [None] * p  # type: ignore[list-item]
    by_size: Dict[int, List[ChunkSplit]] = {}
    for chunk in chunks:
        by_size.setdefault(chunk.size, []).append(chunk)
    for group in by_size.values():
        stacked = TridiagonalBatch.stack([spike_rhs(ch) for ch in group])
        sol = thomas_solve(stacked)
        for j, chunk in enumerate(group):
            off = j * 3 * m
            y[chunk.index] = sol[off : off + m]
            w[chunk.index] = sol[off + m : off + 2 * m]
            v[chunk.index] = sol[off + 2 * m : off + 3 * m]

    t_prev, s_next = reduced_solver(
        np.stack([y[i][:, 0] for i in range(p)], axis=1),
        np.stack([y[i][:, -1] for i in range(p)], axis=1),
        np.stack([w[i][:, 0] for i in range(p)], axis=1),
        np.stack([w[i][:, -1] for i in range(p)], axis=1),
        np.stack([v[i][:, 0] for i in range(p)], axis=1),
        np.stack([v[i][:, -1] for i in range(p)], axis=1),
    )

    x = np.empty((m, n), dtype=dtype)
    for i, (start, stop) in enumerate(bounds):
        x[:, start:stop] = reconstruct_chunk(
            y[i], w[i], v[i], t_prev[:, i], s_next[:, i]
        )
    return x
