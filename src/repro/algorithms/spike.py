"""The SPIKE / Wang partition method.

The third classical family of parallel tridiagonal algorithms (after
cyclic-reduction variants and recursive doubling): partition each system
into ``p`` chunks, solve every chunk independently against three
right-hand sides (the data plus the two coupling "spikes"), reduce to a
small system over the chunk-boundary unknowns, then reconstruct. It is
the standard CPU/SIMD competitor to the GPU algorithms in this library
and the backbone of Intel's SPIKE solver — a natural registry entry for
cross-checks and baselines.

The reduced boundary system is block tridiagonal with 2×2 blocks and is
solved with :func:`repro.blocked.algorithms.block_thomas_solve` — the
extension packages composing.
"""

from __future__ import annotations

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError
from .thomas import thomas_solve

__all__ = ["spike_solve"]


def _auto_partitions(n: int, cap: int = 16) -> int:
    """Largest power of two <= cap dividing n (with chunks >= 2)."""
    p = 1
    while (
        p * 2 <= cap
        and n % (p * 2) == 0
        and n // (p * 2) >= 2
    ):
        p *= 2
    return p


def spike_solve(
    batch: TridiagonalBatch, partitions: int | str = "auto"
) -> np.ndarray:
    """Solve every system with the SPIKE partition method.

    ``partitions`` is the chunk count ``p`` (must divide the system size
    with chunks of at least 2 rows) or ``"auto"``. ``p = 1`` degenerates
    to the Thomas algorithm.
    """
    m, n = batch.shape
    if partitions == "auto":
        p = _auto_partitions(n)
    else:
        p = int(partitions)
    if p < 1 or n % p != 0 or (p > 1 and n // p < 2):
        raise ConfigurationError(
            f"partitions={partitions} invalid for system size {n}"
        )
    if p == 1:
        return thomas_solve(batch)
    q = n // p
    dtype = batch.dtype

    # Chunked views: (m * p, q). Chunk i of system j is row j*p + i.
    def chunked(arr):
        return arr.reshape(m * p, q)

    a = chunked(batch.a).copy()
    b = chunked(batch.b)
    c = chunked(batch.c).copy()
    d = chunked(batch.d)

    # Coupling coefficients across chunk boundaries.
    left_coupling = a[:, 0].copy()  # ties chunk's first row to t_{i-1}
    right_coupling = c[:, -1].copy()  # ties chunk's last row to s_{i+1}
    a[:, 0] = 0.0
    c[:, -1] = 0.0

    # Three solves against the same chunk matrices: data + two spikes.
    rhs_w = np.zeros((m * p, q), dtype=dtype)
    rhs_w[:, 0] = left_coupling
    rhs_v = np.zeros((m * p, q), dtype=dtype)
    rhs_v[:, -1] = right_coupling
    stacked = TridiagonalBatch(
        np.concatenate([a, a, a]),
        np.concatenate([b, b, b]),
        np.concatenate([c, c, c]),
        np.concatenate([d, rhs_w, rhs_v]),
    )
    sol = thomas_solve(stacked)
    y = sol[: m * p]
    w = sol[m * p : 2 * m * p]  # left spike: response to t_{i-1}
    v = sol[2 * m * p :]  # right spike: response to s_{i+1}

    # Reduced block-tridiagonal system over (s_i, t_i) = (x_i[0], x_i[-1]).
    from ..blocked.algorithms import block_thomas_solve
    from ..blocked.containers import BlockTridiagonalBatch

    eye = np.eye(2, dtype=dtype)
    B = np.broadcast_to(eye, (m, p, 2, 2)).copy()
    A = np.zeros((m, p, 2, 2), dtype=dtype)
    C = np.zeros((m, p, 2, 2), dtype=dtype)
    w_r = w.reshape(m, p, q)
    v_r = v.reshape(m, p, q)
    y_r = y.reshape(m, p, q)
    # u_i + A_i u_{i-1} + C_i u_{i+1} = (y[0], y[-1]).
    A[:, :, 0, 1] = w_r[:, :, 0]
    A[:, :, 1, 1] = w_r[:, :, -1]
    C[:, :, 0, 0] = v_r[:, :, 0]
    C[:, :, 1, 0] = v_r[:, :, -1]
    A[:, 0] = 0.0
    C[:, -1] = 0.0
    D = np.stack([y_r[:, :, 0], y_r[:, :, -1]], axis=2)
    reduced = BlockTridiagonalBatch(A, B, C, D)
    U = block_thomas_solve(reduced)  # (m, p, 2): s_i, t_i

    # Reconstruct: x_i = y_i - w_i * t_{i-1} - v_i * s_{i+1}.
    t_prev = np.zeros((m, p), dtype=dtype)
    t_prev[:, 1:] = U[:, :-1, 1]
    s_next = np.zeros((m, p), dtype=dtype)
    s_next[:, :-1] = U[:, 1:, 0]
    x = (
        y_r
        - w_r * t_prev[:, :, None]
        - v_r * s_next[:, :, None]
    )
    return x.reshape(m, n)
