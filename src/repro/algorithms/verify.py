"""Solution verification helpers shared by tests, examples and tuners.

Verification is residual-based (``||Ax - d|| / ||d||``) so it needs no
reference solution; tolerances default per dtype with headroom for the
log-depth algorithms, whose rounding error grows with ``log2(n)``.
"""

from __future__ import annotations

import math

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import NumericsError

__all__ = ["default_tolerance", "max_residual", "assert_solution"]


def default_tolerance(batch: TridiagonalBatch) -> float:
    """Residual tolerance scaled by dtype epsilon and system depth."""
    eps = float(np.finfo(batch.dtype).eps)
    depth = max(1.0, math.log2(max(2, batch.system_size)))
    return 64.0 * eps * depth


def max_residual(batch: TridiagonalBatch, x: np.ndarray) -> float:
    """Worst relative residual across the batch."""
    return float(batch.residual(x).max())


def assert_solution(
    batch: TridiagonalBatch,
    x: np.ndarray,
    *,
    tol: float | None = None,
    context: str = "solution",
) -> float:
    """Raise :class:`NumericsError` unless ``x`` solves the batch.

    Returns the measured worst residual on success so callers can log it.
    """
    if not np.isfinite(x).all():
        raise NumericsError(f"{context} contains non-finite values")
    tol = default_tolerance(batch) if tol is None else tol
    worst = max_residual(batch, x)
    if worst > tol:
        raise NumericsError(
            f"{context} residual {worst:.3e} exceeds tolerance {tol:.3e}"
        )
    return worst
