"""Banded LU solvers — the MKL-style sequential baseline.

The paper's CPU comparator (Figure 8) is Intel MKL's tridiagonal solver,
"a sequential LU decomposition algorithm". This module provides:

- :func:`lu_factor` / :func:`lu_solve_factored` — an explicit tridiagonal
  LU factorisation reusable across right-hand sides (the pattern ADI codes
  rely on when the matrix is constant over time steps);
- :func:`lu_solve` — factor-and-solve in one call (equivalent to Thomas
  but retaining the factors);
- :func:`scipy_banded_solve` — an independent oracle built on
  ``scipy.linalg.solve_banded`` (LAPACK ``gtsv``-class, with partial
  pivoting) used by the test suite to validate every other algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_banded

from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import SingularSystemError

__all__ = ["TridiagonalLU", "lu_factor", "lu_solve_factored", "lu_solve", "scipy_banded_solve"]


@dataclass(frozen=True)
class TridiagonalLU:
    """LU factors of a tridiagonal batch: ``A = L U``.

    ``L`` is unit lower bidiagonal with sub-diagonal ``l``; ``U`` is upper
    bidiagonal with diagonal ``u`` and super-diagonal ``c`` (unchanged from
    ``A``).
    """

    l: np.ndarray
    u: np.ndarray
    c: np.ndarray

    @property
    def shape(self):
        """``(m, n)`` of the factored batch."""
        return self.u.shape


def lu_factor(batch: TridiagonalBatch, *, check: bool = True) -> TridiagonalLU:
    """Factor every system as ``L U`` (no pivoting).

    Raises :class:`SingularSystemError` on a vanishing pivot when
    ``check`` is true.
    """
    a, b, c = batch.a, batch.b, batch.c
    m, n = batch.shape
    dtype = batch.dtype
    info = np.finfo(dtype)
    floor = float(info.tiny / info.eps)

    l = np.zeros((m, n), dtype=dtype)
    u = np.empty((m, n), dtype=dtype)
    u[:, 0] = b[:, 0]
    for i in range(1, n):
        piv = u[:, i - 1]
        if check and (np.abs(piv) <= floor).any():
            idx = int(np.argmax(np.abs(piv) <= floor))
            raise SingularSystemError(
                f"zero pivot at row {i - 1} of system {idx}", system_index=idx
            )
        l[:, i] = a[:, i] / piv
        u[:, i] = b[:, i] - l[:, i] * c[:, i - 1]
    if check and (np.abs(u[:, -1]) <= floor).any():
        idx = int(np.argmax(np.abs(u[:, -1]) <= floor))
        raise SingularSystemError(
            f"zero pivot at row {n - 1} of system {idx}", system_index=idx
        )
    return TridiagonalLU(l=l, u=u, c=c.copy())


def lu_solve_factored(factors: TridiagonalLU, d: np.ndarray) -> np.ndarray:
    """Solve ``L U x = d`` given precomputed factors.

    ``d`` is ``(m, n)`` matching the factored batch; the factors are reused
    unchanged, which is the whole point of keeping them.
    """
    l, u, c = factors.l, factors.u, factors.c
    m, n = u.shape
    y = np.empty_like(d)
    y[:, 0] = d[:, 0]
    for i in range(1, n):
        y[:, i] = d[:, i] - l[:, i] * y[:, i - 1]
    x = np.empty_like(d)
    x[:, -1] = y[:, -1] / u[:, -1]
    for i in range(n - 2, -1, -1):
        x[:, i] = (y[:, i] - c[:, i] * x[:, i + 1]) / u[:, i]
    return x


def lu_solve(batch: TridiagonalBatch, *, check: bool = True) -> np.ndarray:
    """Factor and solve in one call."""
    return lu_solve_factored(lu_factor(batch, check=check), batch.d)


def scipy_banded_solve(batch: TridiagonalBatch) -> np.ndarray:
    """Oracle solve via ``scipy.linalg.solve_banded`` (partial pivoting).

    Loops over systems (LAPACK is per-matrix); intended for validation,
    not performance. Raises the library's typed
    :class:`SingularSystemError` (not scipy's ``LinAlgError``) when a
    system has no solution, so callers — the escalation ladder
    included — never see an untyped failure.
    """
    m, n = batch.shape
    x = np.empty((m, n), dtype=batch.dtype)
    ab = np.zeros((3, n), dtype=batch.dtype)
    for i in range(m):
        ab[0, 1:] = batch.c[i, :-1]
        ab[1, :] = batch.b[i]
        ab[2, :-1] = batch.a[i, 1:]
        try:
            x[i] = solve_banded((1, 1), ab, batch.d[i])
        except np.linalg.LinAlgError as exc:
            raise SingularSystemError(
                f"system {i} is singular: {exc}", system_index=i
            ) from exc
    return x
