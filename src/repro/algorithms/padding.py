"""Padding arbitrary system sizes up to powers of two.

CR, PCR, and the hybrids require power-of-two sizes; real workloads do
not oblige. :func:`pad_pow2` appends decoupled identity equations
(``x_j = 0``) after the last real row — the appended rows neither read nor
write the real unknowns because the boundary couplings are structurally
zero — and :func:`unpad_solution` strips them again.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.validation import is_power_of_two, next_power_of_two

__all__ = ["pad_pow2", "unpad_solution"]


def pad_pow2(batch: TridiagonalBatch) -> Tuple[TridiagonalBatch, int]:
    """Pad every system to the next power-of-two size.

    Returns ``(padded_batch, original_size)``. When the size is already a
    power of two the original batch is returned unchanged.
    """
    n = batch.system_size
    if is_power_of_two(n):
        return batch, n
    target = next_power_of_two(n)
    m = batch.num_systems
    extra = target - n
    dtype = batch.dtype

    def _pad(arr: np.ndarray, fill: float) -> np.ndarray:
        tail = np.full((m, extra), fill, dtype=dtype)
        return np.concatenate([arr, tail], axis=1)

    return (
        TridiagonalBatch(
            _pad(batch.a, 0.0), _pad(batch.b, 1.0), _pad(batch.c, 0.0), _pad(batch.d, 0.0)
        ),
        n,
    )


def unpad_solution(x: np.ndarray, original_size: int) -> np.ndarray:
    """Strip padding columns appended by :func:`pad_pow2`."""
    if x.shape[1] == original_size:
        return x
    return np.ascontiguousarray(x[:, :original_size])
