"""The CR-PCR hybrid of Zhang, Cohen & Owens (PPoPP 2010).

This is the strongest prior GPU algorithm the paper compares its base
kernel against: cyclic reduction's forward phase shrinks the system
(keeping CR's O(n) work efficiency) until the remaining system is small
enough to be step-efficiently finished by PCR, after which CR's backward
phase substitutes the eliminated unknowns.

Like the original, it only targets systems that fit on-chip — the
limitation the paper's multi-stage design removes — so the baseline
solver wrapping this algorithm refuses oversized systems
(:mod:`repro.baselines.zhang_crpcr`).
"""

from __future__ import annotations

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.validation import check_power_of_two, ilog2, require
from .cr import _back_substitute, _reduce_level
from .pcr import pcr_solve

__all__ = ["cr_pcr_solve"]


def cr_pcr_solve(
    batch: TridiagonalBatch,
    pcr_switch: int = 64,
) -> np.ndarray:
    """Solve with CR forward reduction down to ``pcr_switch`` unknowns,
    PCR on the reduced system, then CR back-substitution.

    ``pcr_switch`` is the intermediate system size at which the hybrid
    hands over to PCR (a power of two). ``pcr_switch >= n`` degenerates to
    pure PCR; ``pcr_switch == 1`` degenerates to pure CR.
    """
    n = batch.system_size
    check_power_of_two(n, "system_size")
    check_power_of_two(pcr_switch, "pcr_switch")
    if n == 1:
        return batch.d / batch.b
    switch = min(pcr_switch, n)
    cr_levels = ilog2(n) - ilog2(switch)
    require(cr_levels >= 0, "internal: negative CR level count")

    coeffs = (batch.a, batch.b, batch.c, batch.d)
    kept_stack = []
    for _ in range(cr_levels):
        reduced, kept = _reduce_level(*coeffs)
        kept_stack.append(kept)
        coeffs = reduced

    x = pcr_solve(TridiagonalBatch(*coeffs))
    for kept in reversed(kept_stack):
        x = _back_substitute(x, kept)
    return x
