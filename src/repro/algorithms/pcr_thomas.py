"""The hybrid PCR-Thomas algorithm — the paper's base kernel (§III-A).

PCR splits one system of size ``n`` into ``T`` independent interleaved
subsystems using ``log2(T)`` parallel steps; the Thomas algorithm then
solves each subsystem serially. ``T`` (``thomas_switch``) is the paper's
stage-3→stage-4 switch point and the subject of Figure 6:

- small ``T`` → little PCR work (closer to O(n)) but only ``T`` parallel
  threads, starving the vector units;
- large ``T`` → plenty of parallelism but extra O(n) PCR steps.

This module is the *numerical* hybrid; the simulated-GPU kernel that
accounts its cost lives in :mod:`repro.kernels.pcr_thomas_smem`.
"""

from __future__ import annotations

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError
from ..util.validation import check_power_of_two, ilog2
from .pcr import pcr_split, pcr_unsplit_solution
from .thomas import thomas_solve

__all__ = ["pcr_thomas_solve", "normalize_thomas_switch"]


def normalize_thomas_switch(system_size: int, thomas_switch: int) -> int:
    """Clamp a requested subsystem count to what the system supports.

    The effective switch is a power of two between 1 and ``system_size``.
    """
    check_power_of_two(system_size, "system_size")
    check_power_of_two(thomas_switch, "thomas_switch")
    return min(thomas_switch, system_size)


def pcr_thomas_solve(
    batch: TridiagonalBatch,
    thomas_switch: int = 64,
    *,
    check: bool = True,
) -> np.ndarray:
    """Solve ``batch`` with the hybrid PCR-Thomas algorithm.

    ``thomas_switch`` is the number of independent subsystems each system
    is split into before Thomas takes over (the paper's stage-3→4 switch
    point). Must be a power of two; values above the system size are
    clamped (each equation would already stand alone).
    """
    n = batch.system_size
    if n == 1:
        return batch.d / batch.b
    switch = normalize_thomas_switch(n, thomas_switch)
    steps = ilog2(switch)
    if (n >> steps) < 1:
        raise ConfigurationError(
            f"thomas_switch {switch} exceeds system size {n}"
        )
    split = pcr_split(batch, steps)
    x_split = thomas_solve(split, check=check)
    return pcr_unsplit_solution(x_split, steps)
