"""Reference tridiagonal algorithms (vectorised NumPy, exact numerics)."""

from .cr import cr_forward_levels, cr_solve
from .cyclic import CyclicTridiagonalBatch, cyclic_solve
from .factorized import PcrThomasFactorization, factorize
from .refinement import RefinementResult, mixed_precision_solve
from .spike import spike_solve, truncated_spike_solve
from .cr_pcr import cr_pcr_solve
from .lu import TridiagonalLU, lu_factor, lu_solve, lu_solve_factored, scipy_banded_solve
from .padding import pad_pow2, unpad_solution
from .pcr import pcr_reduce, pcr_solve, pcr_split, pcr_step, pcr_unsplit_solution
from .pcr_thomas import normalize_thomas_switch, pcr_thomas_solve
from .recursive_doubling import recursive_doubling_solve
from .registry import ALGORITHMS, AlgorithmInfo, algorithm_names, get_algorithm, solve_with
from .thomas import thomas_solve, thomas_workspace_solve
from .verify import assert_solution, default_tolerance, max_residual

__all__ = [
    "PcrThomasFactorization",
    "factorize",
    "CyclicTridiagonalBatch",
    "cyclic_solve",
    "RefinementResult",
    "mixed_precision_solve",
    "spike_solve",
    "truncated_spike_solve",
    "thomas_solve",
    "thomas_workspace_solve",
    "cr_solve",
    "cr_forward_levels",
    "pcr_step",
    "pcr_reduce",
    "pcr_split",
    "pcr_unsplit_solution",
    "pcr_solve",
    "pcr_thomas_solve",
    "normalize_thomas_switch",
    "cr_pcr_solve",
    "recursive_doubling_solve",
    "lu_factor",
    "lu_solve",
    "lu_solve_factored",
    "scipy_banded_solve",
    "TridiagonalLU",
    "pad_pow2",
    "unpad_solution",
    "assert_solution",
    "default_tolerance",
    "max_residual",
    "ALGORITHMS",
    "AlgorithmInfo",
    "algorithm_names",
    "get_algorithm",
    "solve_with",
]
