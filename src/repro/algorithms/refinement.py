"""Mixed-precision iterative refinement.

Göddeke & Strzodka (cited in the paper's introduction) built an entire
"mixed precision multigrid" around this idea: run the fast solver in
single precision and recover double-precision accuracy by iterating on
the double-precision residual. The same trick applies directly to
tridiagonal solves — valuable on 2011-era GPUs whose single-precision
throughput dwarfed double:

    x_0 = solve32(d);  repeat: r = d - A x  (in f64);  x += solve32(r)

Each sweep contracts the error by roughly the f32 rounding level, so two
to three iterations reach f64 accuracy on well-conditioned systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import NumericsError
from .thomas import thomas_solve

__all__ = ["RefinementResult", "mixed_precision_solve"]


@dataclass(frozen=True)
class RefinementResult:
    """Refined solution plus the per-iteration residual history."""

    x: np.ndarray
    residual_history: List[float]

    @property
    def iterations(self) -> int:
        """Refinement sweeps performed (beyond the initial solve)."""
        return len(self.residual_history) - 1

    @property
    def converged(self) -> bool:
        """Whether the final residual met the requested tolerance."""
        return bool(self._converged)

    _converged: bool = True


def mixed_precision_solve(
    batch: TridiagonalBatch,
    *,
    inner_solve: Optional[Callable[[TridiagonalBatch], np.ndarray]] = None,
    tol: float = 1e-12,
    max_iterations: int = 10,
) -> RefinementResult:
    """Solve a float64 batch using a float32 inner solver + refinement.

    ``inner_solve`` runs on the float32 batch (default: Thomas); the
    residual loop runs in float64. Raises :class:`NumericsError` if the
    residual diverges (e.g. a system too ill-conditioned for f32 inner
    solves).
    """
    if batch.dtype != np.float64:
        raise NumericsError("mixed_precision_solve expects a float64 batch")
    if inner_solve is None:
        inner_solve = thomas_solve

    low = batch.astype(np.float32)

    def inner(d64: np.ndarray) -> np.ndarray:
        d32 = d64.astype(np.float32)
        return inner_solve(low.with_rhs(d32)).astype(np.float64)

    d_norm = max(float(np.linalg.norm(batch.d)), np.finfo(np.float64).tiny)
    x = inner(batch.d)
    r = batch.d - batch.matvec(x)
    history = [float(np.linalg.norm(r)) / d_norm]

    converged = history[-1] <= tol
    for _ in range(max_iterations):
        if converged:
            break
        x = x + inner(r)
        r = batch.d - batch.matvec(x)
        history.append(float(np.linalg.norm(r)) / d_norm)
        if not np.isfinite(history[-1]):
            raise NumericsError("iterative refinement diverged (non-finite residual)")
        if history[-1] > 10.0 * history[0]:
            raise NumericsError(
                "iterative refinement diverged (residual grew 10x); the "
                "system is too ill-conditioned for a float32 inner solve"
            )
        converged = history[-1] <= tol
    return RefinementResult(x=x, residual_history=history, _converged=converged)
