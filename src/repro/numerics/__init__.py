"""Numerical-safety layer: dominance estimation, governed solves, the
escalation ladder.

Entry points pass a caller tolerance down to a shared
:class:`Governor`, which (a) decides a priori whether the
truncated-SPIKE approximate path is safe to attempt (cheap
:class:`DominanceEstimate` over the coefficients) and (b) enforces a
posteriori that whatever path ran actually met the tolerance, walking

    accept -> one refinement step -> exact-path re-solve ->
    typed :class:`~repro.util.errors.NumericalBreakdownError`

so a governed solve never returns an unverified answer. See
``docs/robustness.md`` for the full contract.
"""

from .estimate import SAFETY_MARGIN, DominanceEstimate
from .governor import Governor, GovernorDecision, LadderOutcome

__all__ = [
    "DominanceEstimate",
    "SAFETY_MARGIN",
    "Governor",
    "GovernorDecision",
    "LadderOutcome",
]
