"""The numerical-safety governor: decide, verify, escalate.

The governor sits between every entry point (functional ``solve``,
:class:`~repro.core.MultiStageSolver`, the distributed solver, the
batched service and the async serve tier) and the kernels. It owns two
moments of a governed solve:

- **decide** (a priori): given the caller's tolerance and a cheap
  :class:`~repro.numerics.DominanceEstimate`, is the truncated-SPIKE
  approximate path safe to *attempt*? The decision is advisory — it
  picks a starting rung, never the final answer.
- **enforce** (a posteriori): measure the relative residual of whatever
  the chosen path produced and walk the escalation ladder until the
  tolerance is met or the rungs run out::

      accept ──> one step of iterative refinement ──> re-solve on the
      exact path ──> typed NumericalBreakdownError (with the offending
      system's diagnostics)

Every decision and every rung lands in the metrics registry (dominance
histogram, decision/outcome counters, residual-ratio histogram) and, if
a tracer is attached, as spans in the trace — so escalation and
fallback rates are visible in the same dump and Perfetto timeline as
everything else. The headline chaos guarantee extends from faults to
numerics: a governed solve returns a residual-verified solution or a
typed error, never an unverified answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import NumericalBreakdownError
from .estimate import DominanceEstimate

__all__ = ["Governor", "GovernorDecision", "LadderOutcome"]

# Residual/tolerance ratio buckets: < 1 is within tolerance, the tail
# measures how badly the failed attempts missed.
_RATIO_BUCKETS = (1e-6, 1e-4, 1e-2, 0.1, 0.5, 1.0, 10.0, 1e3, 1e6)
_DOMINANCE_BUCKETS = (0.5, 0.9, 1.0, 1.1, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0)


@dataclass(frozen=True)
class GovernorDecision:
    """Outcome of the a-priori gate for one governed solve."""

    approx: bool
    tolerance: float
    chunk_rows: int
    bound: float  # (1/d)^(q-1) truncation bound for this partition
    estimate: DominanceEstimate
    reason: str

    def describe(self) -> str:
        """One-line summary for ``repro plan`` and logs."""
        path = "approx (truncated SPIKE)" if self.approx else "exact"
        return (
            f"governor: {path} — {self.reason}; "
            f"estimated truncation bound {self.bound:.3e} vs "
            f"tolerance {self.tolerance:.3e}"
        )


@dataclass(frozen=True)
class LadderOutcome:
    """A governed solve that ended with a verified solution."""

    x: np.ndarray
    rung: str  # "accepted" | "refined" | "resolved"
    residual: float  # worst relative residual of the returned x
    tolerance: float
    attempts: Tuple[str, ...]  # rungs tried, in order


class Governor:
    """Stateless policy plus observability plumbing.

    ``metrics`` is a :class:`~repro.obs.MetricsRegistry` (or ``None`` to
    skip recording); ``tracer`` an :class:`~repro.obs.Tracer` (or
    ``None``). One governor instance is shared per solver/service, so
    its counters aggregate across requests.
    """

    def __init__(self, metrics=None, tracer=None):
        self.metrics = metrics
        self.tracer = tracer

    # -- a priori ---------------------------------------------------------

    def decide(
        self,
        batch: TridiagonalBatch,
        tolerance: float,
        chunk_rows: int,
        *,
        estimate: Optional[DominanceEstimate] = None,
    ) -> GovernorDecision:
        """Gate the approximate path for ``batch`` at ``tolerance``.

        ``chunk_rows`` is the smallest per-device chunk of the candidate
        partition — the decay distance of the dropped coupling terms.
        """
        est = estimate if estimate is not None else DominanceEstimate.measure(batch)
        bound = est.truncation_bound(chunk_rows)
        approx = est.safe_for(tolerance, chunk_rows)
        if approx:
            reason = (
                f"min dominance ratio {est.min_ratio:.3g} decays the "
                f"dropped couplings below tolerance across "
                f"{chunk_rows}-row chunks"
            )
        elif est.min_ratio <= 1.0:
            reason = (
                f"no dominance guarantee (min ratio {est.min_ratio:.3g})"
            )
        else:
            reason = (
                f"dominance ratio {est.min_ratio:.3g} too weak for "
                f"tolerance {tolerance:.1e} at {chunk_rows}-row chunks"
            )
        decision = GovernorDecision(
            approx=approx,
            tolerance=float(tolerance),
            chunk_rows=int(chunk_rows),
            bound=bound,
            estimate=est,
            reason=reason,
        )
        if self.metrics is not None:
            hist = self.metrics.histogram(
                "repro_numerics_dominance_ratio",
                "Batch-wide minimum diagonal-dominance ratio per governed solve.",
                buckets=_DOMINANCE_BUCKETS,
            )
            hist.observe(min(est.min_ratio, _DOMINANCE_BUCKETS[-1] * 4))
            self.metrics.counter(
                "repro_numerics_decisions_total",
                "Governor a-priori path decisions.",
            ).inc(path="approx" if approx else "exact")
        if self.tracer is not None:
            self.tracer.leaf(
                "governor.decide",
                "numerics",
                0.0,
                0.0,
                path="approx" if approx else "exact",
                bound=f"{bound:.3e}",
                tolerance=f"{tolerance:.3e}",
                min_ratio=f"{est.min_ratio:.3g}",
            )
        return decision

    # -- a posteriori -----------------------------------------------------

    def enforce(
        self,
        batch: TridiagonalBatch,
        x: np.ndarray,
        tolerance: float,
        *,
        refine: Optional[Callable[[TridiagonalBatch, np.ndarray], np.ndarray]] = None,
        resolve: Optional[Callable[[TridiagonalBatch], np.ndarray]] = None,
        path: str = "exact",
        context: str = "governed solve",
    ) -> LadderOutcome:
        """Walk the escalation ladder until ``x`` meets ``tolerance``.

        ``refine(batch, x)`` performs one step of iterative refinement
        (rung 2); ``resolve(batch)`` re-solves from scratch on the exact
        path (rung 3). Either may be ``None`` when the caller has no
        such rung (e.g. the exact path has no further "exact" fallback).
        Raises :class:`NumericalBreakdownError` with the offending
        system's diagnostics when the ladder runs out.
        """
        tolerance = float(tolerance)
        attempts = [path]
        rungs = [("refine", refine), ("resolve", resolve)]
        residuals = batch.residual(x)
        worst = float(residuals.max()) if residuals.size else 0.0
        rung_name = "accepted"
        while not (np.isfinite(worst) and worst <= tolerance):
            if not rungs:
                self._record(path, "breakdown", worst, tolerance)
                index = self._worst_index(residuals)
                ratio = self._ratio_of(batch, index)
                raise NumericalBreakdownError(
                    f"{context}: residual {worst:.3e} exceeds tolerance "
                    f"{tolerance:.3e} after {' -> '.join(attempts)} "
                    f"(worst system {index}, dominance ratio {ratio:.3g})",
                    system_index=index,
                    residual=worst,
                    tolerance=tolerance,
                    dominance_ratio=ratio,
                    attempts=tuple(attempts),
                )
            name, step = rungs.pop(0)
            if step is None:
                continue
            attempts.append(name)
            x = step(batch, x) if name == "refine" else step(batch)
            residuals = batch.residual(x)
            worst = float(residuals.max()) if residuals.size else 0.0
            rung_name = "refined" if name == "refine" else "resolved"
        self._record(path, rung_name, worst, tolerance)
        return LadderOutcome(
            x=x,
            rung=rung_name,
            residual=worst,
            tolerance=tolerance,
            attempts=tuple(attempts),
        )

    # -- plumbing ---------------------------------------------------------

    @staticmethod
    def _worst_index(residuals: np.ndarray) -> int:
        finite = np.nan_to_num(residuals, nan=np.inf, posinf=np.inf)
        return int(np.argmax(finite)) if finite.size else 0

    @staticmethod
    def _ratio_of(batch: TridiagonalBatch, index: int) -> float:
        from ..systems.properties import dominance_ratio

        sub = TridiagonalBatch(
            batch.a[index : index + 1],
            batch.b[index : index + 1],
            batch.c[index : index + 1],
            batch.d[index : index + 1],
        )
        return float(dominance_ratio(sub)[0])

    def _record(
        self, path: str, rung: str, worst: float, tolerance: float
    ) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "repro_numerics_outcomes_total",
                "Governed-solve ladder outcomes, by starting path and rung.",
            ).inc(path=path, rung=rung)
            ratio = worst / tolerance if tolerance > 0 else np.inf
            if not np.isfinite(ratio):
                ratio = _RATIO_BUCKETS[-1] * 10
            self.metrics.histogram(
                "repro_numerics_residual_ratio",
                "Final residual / requested tolerance per governed solve.",
                buckets=_RATIO_BUCKETS,
            ).observe(ratio)
        if self.tracer is not None:
            self.tracer.leaf(
                "governor.enforce",
                "numerics",
                0.0,
                0.0,
                path=path,
                rung=rung,
                residual=f"{worst:.3e}",
                tolerance=f"{tolerance:.3e}",
            )
