"""Cheap a-priori safety estimation for the approximate solve path.

Truncated SPIKE drops the coupling terms that cross a whole chunk. For
a system whose rows have dominance ratio ``d = |b| / (|a| + |c|) > 1``
the spike values decay at least geometrically with distance from the
chunk boundary (Li, Serban & Negrut, arXiv:1509.07919, Thm. 1-style
bound), so the dropped values — spike tips that crossed ``q - 1`` rows —
are bounded by ``(1/d)^(q-1)``. :class:`DominanceEstimate` measures the
per-system ratios in one vectorised pass over the coefficients (cost of
one matvec, negligible next to any solve) and turns them into a bound
the governor can compare against the caller's tolerance.

The estimate is deliberately *a priori and conservative*: it gates
whether the approximate path is worth attempting at all. Safety does
not rest on it — every governed solve is still residual-checked a
posteriori and escalated if the check fails (see
:mod:`repro.numerics.governor`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..systems.properties import dominance_ratio
from ..systems.tridiagonal import TridiagonalBatch

__all__ = ["DominanceEstimate", "SAFETY_MARGIN"]

# The a-priori bound must clear the tolerance with this much headroom
# before the governor attempts the approximate path; the margin absorbs
# the bound's slack (it ignores RHS scaling and rounding) so borderline
# workloads go straight to the exact path instead of bouncing off the
# residual check.
SAFETY_MARGIN = 0.25


@dataclass(frozen=True)
class DominanceEstimate:
    """Per-system dominance ratios plus the derived truncation bound.

    ``ratios`` is the ``(m,)`` array of worst-row dominance ratios;
    ``min_ratio`` the batch-wide worst case (the governor gates on the
    whole batch because a merged group solve shares one path).
    """

    ratios: np.ndarray
    min_ratio: float
    num_systems: int
    system_size: int

    @classmethod
    def measure(cls, batch: TridiagonalBatch) -> "DominanceEstimate":
        """One vectorised pass over the coefficients."""
        ratios = dominance_ratio(batch)
        return cls(
            ratios=ratios,
            min_ratio=float(ratios.min()) if ratios.size else 0.0,
            num_systems=batch.num_systems,
            system_size=batch.system_size,
        )

    @property
    def weakest_system(self) -> int:
        """Index of the least dominant system in the batch."""
        return int(np.argmin(self.ratios)) if self.ratios.size else 0

    def truncation_bound(self, chunk_rows: int) -> float:
        """Decay bound ``(1/d)^(q-1)`` on the dropped spike tips.

        ``chunk_rows`` is the smallest per-device chunk ``q`` — the
        shortest distance a dropped coupling value travelled. Without
        dominance (``d <= 1``) nothing decays and the bound is 1 (i.e.
        useless, and the governor will not take the approximate path).
        """
        if not np.isfinite(self.min_ratio):
            return 0.0
        if self.min_ratio <= 1.0:
            return 1.0
        return float(self.min_ratio ** -(max(2, int(chunk_rows)) - 1))

    def safe_for(self, tolerance: float, chunk_rows: int) -> bool:
        """Is the approximate path worth attempting at this tolerance?"""
        return self.truncation_bound(chunk_rows) <= SAFETY_MARGIN * float(
            tolerance
        )

    def describe(self) -> str:
        """One-line summary for CLI output and logs."""
        return (
            f"dominance ratio min {self.min_ratio:.3g} over "
            f"{self.num_systems} x {self.system_size} "
            f"(weakest system {self.weakest_system})"
        )
