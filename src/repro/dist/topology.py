"""The simulated interconnect: links, topologies, device groups.

A :class:`LinkSpec` prices one point-to-point transfer the same way the
kernel cost model prices a launch — a fixed latency plus a
bandwidth-proportional term — so interconnect time and kernel time live
in the same simulated-milliseconds currency and can be compared,
overlapped, and summed by the :mod:`repro.dist.pipeline` scheduler.

An :class:`Interconnect` adds the wiring: ``all_to_all`` (every pair one
hop — NVLink-switch or PCIe-switch style) or ``ring`` (neighbour links
only; a transfer store-and-forwards across the shorter arc). A
:class:`DeviceGroup` binds ``N`` identical simulated devices to an
interconnect — the machine the distributed solver runs on.

The presets are deliberately round-number models of familiar fabrics,
not measurements; like the hidden device-spec fields they are data, not
logic, and benchmarks sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Tuple, Union

from ..gpu.executor import Device, make_device
from ..util.errors import ConfigurationError
from ..util.units import gb_per_s_to_bytes_per_ms, us_to_ms

__all__ = [
    "LinkSpec",
    "PCIE_GEN3",
    "PCIE_GEN4",
    "NVLINK2",
    "LINK_PRESETS",
    "get_link",
    "Interconnect",
    "DeviceGroup",
    "make_device_group",
]


@dataclass(frozen=True)
class LinkSpec:
    """One point-to-point link: fixed latency + bandwidth term."""

    name: str
    bandwidth_gb_s: float
    latency_us: float

    def __post_init__(self) -> None:
        if self.bandwidth_gb_s <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        if self.latency_us < 0:
            raise ConfigurationError("link latency must be non-negative")

    @property
    def bytes_per_ms(self) -> float:
        """Link bandwidth in bytes per millisecond."""
        return gb_per_s_to_bytes_per_ms(self.bandwidth_gb_s)

    def transfer_ms(self, nbytes: float, hops: int = 1) -> float:
        """Store-and-forward cost of moving ``nbytes`` across ``hops`` links."""
        if nbytes < 0:
            raise ConfigurationError("transfer bytes must be non-negative")
        if hops <= 0:
            return 0.0
        return hops * (us_to_ms(self.latency_us) + nbytes / self.bytes_per_ms)

    def with_(self, **kwargs) -> "LinkSpec":
        """A copy with selected fields replaced (for sweeps/ablations)."""
        return replace(self, **kwargs)


PCIE_GEN3 = LinkSpec("pcie3", bandwidth_gb_s=12.0, latency_us=5.0)
PCIE_GEN4 = LinkSpec("pcie4", bandwidth_gb_s=24.0, latency_us=3.0)
NVLINK2 = LinkSpec("nvlink2", bandwidth_gb_s=25.0, latency_us=1.9)

LINK_PRESETS = {
    PCIE_GEN3.name: PCIE_GEN3,
    PCIE_GEN4.name: PCIE_GEN4,
    NVLINK2.name: NVLINK2,
}


def get_link(link: Union[LinkSpec, str]) -> LinkSpec:
    """Resolve a link preset name (or pass a spec through)."""
    if isinstance(link, LinkSpec):
        return link
    try:
        return LINK_PRESETS[link]
    except KeyError:
        raise ConfigurationError(
            f"unknown link {link!r}; presets: {sorted(LINK_PRESETS)}"
        ) from None


_TOPOLOGY_KINDS = ("all_to_all", "ring")


@dataclass(frozen=True)
class Interconnect:
    """A link spec plus the wiring between group members."""

    link: LinkSpec
    kind: str = "all_to_all"

    def __post_init__(self) -> None:
        if self.kind not in _TOPOLOGY_KINDS:
            raise ConfigurationError(
                f"unknown topology kind {self.kind!r}; one of {_TOPOLOGY_KINDS}"
            )

    def hops(self, src: int, dst: int, num_devices: int) -> int:
        """Links a message crosses from ``src`` to ``dst``."""
        if not (0 <= src < num_devices and 0 <= dst < num_devices):
            raise ConfigurationError(
                f"device index out of range: {src} -> {dst} of {num_devices}"
            )
        if src == dst:
            return 0
        if self.kind == "all_to_all":
            return 1
        forward = (dst - src) % num_devices
        return min(forward, num_devices - forward)

    def transfer_ms(
        self, nbytes: float, src: int, dst: int, num_devices: int
    ) -> float:
        """Simulated milliseconds to move ``nbytes`` from ``src`` to ``dst``."""
        return self.link.transfer_ms(nbytes, self.hops(src, dst, num_devices))

    def describe(self) -> str:
        """Compact label, e.g. ``ring:pcie3``."""
        return f"{self.kind}:{self.link.name}"


class DeviceGroup:
    """``N`` identical simulated devices joined by an interconnect."""

    def __init__(self, devices, interconnect: Interconnect):
        devices = tuple(make_device(d) for d in devices)
        if not devices:
            raise ConfigurationError("a device group needs at least one device")
        names = {d.name for d in devices}
        if len(names) != 1:
            raise ConfigurationError(
                f"device groups must be homogeneous; got {sorted(names)}"
            )
        self.devices: Tuple[Device, ...] = devices
        self.interconnect = interconnect

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self.devices)

    def __getitem__(self, i: int) -> Device:
        return self.devices[i]

    @property
    def device_name(self) -> str:
        """Name of the (identical) member devices."""
        return self.devices[0].name

    @property
    def signature(self) -> Tuple:
        """What fixes the group's behaviour — for :class:`DistPlan` keys."""
        return (
            self.device_name,
            len(self.devices),
            self.interconnect.describe(),
        )

    def describe(self) -> str:
        """Compact label, e.g. ``GeForce GTX 470 x8 (all_to_all:pcie3)``."""
        return (
            f"{self.device_name} x{len(self.devices)} "
            f"({self.interconnect.describe()})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeviceGroup({self.describe()!r})"


def make_device_group(
    device="gtx470",
    count: int = 4,
    link: Union[LinkSpec, str] = "pcie3",
    topology: str = "all_to_all",
) -> DeviceGroup:
    """Build a homogeneous :class:`DeviceGroup` of ``count`` devices."""
    if count < 1:
        raise ConfigurationError(f"device count must be >= 1, got {count}")
    base = make_device(device)
    devices = [base] + [make_device(base.spec) for _ in range(count - 1)]
    return DeviceGroup(devices, Interconnect(get_link(link), topology))
