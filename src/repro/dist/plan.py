"""Distributed solve plans.

A :class:`DistPlan` is to the :class:`~repro.dist.solver.DistributedSolver`
what a :class:`~repro.core.SolvePlan` is to the single-device solver: a
pure, frozen description of how a workload executes — here, how it is cut
across a :class:`~repro.dist.topology.DeviceGroup`, which local plan each
device runs, and which exchange schedule the pipeline follows.

Two decomposition modes exist:

- ``rows`` — one (or a few) enormous systems are split SPIKE-style into
  per-device row chunks; each device solves its chunk against three
  right-hand sides and the chunks couple through a small 2×2-block
  reduced system (see :mod:`repro.algorithms.spike`).
- ``batch`` — a wide batch of small (on-chip) systems is sharded by
  system across devices with no coupling at all; communication is the
  scatter of coefficients and the gather of solutions.

A third mode, ``approx``, is rows with the reduced system truncated
away: each chunk interface becomes an independent 2×2 solve on the
right-hand device fed by one neighbour-to-neighbour transfer, so the
critical path stops growing with the device count. It is only chosen
when the caller passes a tolerance and the numerical-safety governor's
dominance estimate says the truncation error fits (see
:mod:`repro.numerics`); the result is always residual-checked.

Like ``SolvePlan``, a ``DistPlan`` carries a :attr:`~DistPlan.signature`
— everything that fixes the per-system arithmetic except the system
count — so the batched solve service can group plan-compatible oversized
requests into one merged distributed solve. ``batch`` mode is only
planned for systems that solve on-chip (no split steps), which makes its
local plans count-independent and the widening sound.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..core.planner import SolvePlan
from ..util.errors import ConfigurationError
from .partition import batch_shares

__all__ = ["DistPlan", "batch_shares"]

MODES = ("rows", "batch", "approx")
ROWS_SCHEDULES = ("fused", "split")
# Modes that decompose by rows and share the SPIKE 3-RHS local solves
# (and hence the 3m widening rule and chunk-derived signatures).
ROWS_LIKE_MODES = ("rows", "approx")


@dataclass(frozen=True)
class DistPlan:
    """Executable description of one distributed solve."""

    mode: str  # "rows" | "batch" | "approx"
    num_devices: int
    num_systems: int  # m, the workload's system count
    system_size: int  # n, raw (pre-padding) size
    chunk_sizes: Tuple[int, ...]  # rows: per-device rows; batch: per-device m
    schedule: str  # rows: "fused" | "split"; batch: "pipelined"
    topology: str  # Interconnect.describe() of the group
    device_name: str  # name of the (homogeneous) member devices
    local_plans: Tuple[SolvePlan, ...]  # one per active device

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigurationError(f"unknown dist mode {self.mode!r}")
        if len(self.local_plans) != len(self.chunk_sizes):
            raise ConfigurationError(
                "one local plan per active device is required"
            )

    @property
    def num_active_devices(self) -> int:
        """Devices that actually receive work (batch mode may idle some)."""
        return len(self.chunk_sizes)

    @property
    def signature(self) -> Tuple:
        """Everything that fixes the per-system arithmetic — all fields
        except the system count.

        Mirrors :attr:`repro.core.SolvePlan.signature`: the local solves
        are vectorised over systems and the local plans widen
        signature-preserving, so same-signature distributed requests can
        be merged into one group solve. Rows-mode chunk sizes derive from
        the system size alone and are included; batch-mode shares derive
        from the system count and are excluded (batch mode is restricted
        to on-chip local plans, whose signatures are count-independent).
        """
        local = tuple(plan.signature for plan in self.local_plans)
        chunks = self.chunk_sizes if self.mode in ROWS_LIKE_MODES else ()
        return (
            "dist",
            self.mode,
            self.system_size,
            self.num_devices,
            chunks,
            self.schedule,
            self.topology,
            self.device_name,
            tuple(sorted(set(local))),
        )

    def with_num_systems(self, num_systems: int) -> "DistPlan":
        """The same plan applied to a different number of systems.

        Used by the batched service to widen a per-request plan to a
        merged group. Local plans widen via
        :meth:`SolvePlan.with_num_systems`, preserving their signatures
        (and hence the arithmetic).
        """
        if num_systems == self.num_systems:
            return self
        if self.mode in ROWS_LIKE_MODES:
            per_device = (
                3 * num_systems if self.num_devices > 1 else num_systems
            )
            local = tuple(
                plan.with_num_systems(per_device) for plan in self.local_plans
            )
            return replace(
                self, num_systems=num_systems, local_plans=local
            )
        shares = batch_shares(num_systems, self.num_devices)
        template = self.local_plans[0]
        local = tuple(template.with_num_systems(share) for share in shares)
        return replace(
            self,
            num_systems=num_systems,
            chunk_sizes=shares,
            local_plans=local,
        )

    def lower(self, group, dtype_size: int, switch):
        """Lower to a multi-device :class:`~repro.ir.Program`.

        ``switch`` is the group's resolved switch points (the split rows
        schedule re-plans the spike and data solves). The program is
        what the shared :class:`~repro.ir.Engine` prices into the
        distributed makespan report.
        """
        from ..ir.lower import lower_dist_plan

        return lower_dist_plan(self, group, dtype_size, switch)

    def describe(self) -> str:
        """Multi-line human-readable plan."""
        lines = [
            f"distributed {self.mode} solve: {self.num_systems} x "
            f"{self.system_size} over {self.num_devices} x "
            f"{self.device_name} ({self.topology}, {self.schedule})",
        ]
        unit = "rows" if self.mode in ROWS_LIKE_MODES else "systems"
        for i, (size, plan) in enumerate(
            zip(self.chunk_sizes, self.local_plans)
        ):
            lines.append(
                f"  dev{i}: {size} {unit} -> local "
                f"{plan.num_systems} x {plan.system_size} "
                f"(k1={plan.stage1_steps}, k2={plan.stage2_steps}, "
                f"onchip {plan.stage3_system_size})"
            )
        return "\n".join(lines)
