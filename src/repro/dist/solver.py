"""The multi-device domain-decomposition solver.

:class:`DistributedSolver` solves workloads that exceed one simulated
device — systems too long for its memory, or batches too wide to be
worth one device's time — by partitioning across a
:class:`~repro.dist.topology.DeviceGroup`:

- **rows mode** (SPIKE-style): each device receives a contiguous row
  chunk of every system and runs the full multi-stage solver on it
  against three right-hand sides (the data plus the two coupling
  spikes); chunk boundaries couple through a tiny 2×2-block reduced
  system solved on device 0; a final fused-multiply-add reconstructs.
  The math is exactly :mod:`repro.algorithms.spike` with the chunk
  solves placed on devices.
- **batch mode**: a wide batch of on-chip-size systems is sharded by
  system; no coupling, the cost is the scatter/gather pipeline.

Numerics are exact (verified against the single-device
:class:`~repro.core.MultiStageSolver` to tight tolerance). Timing comes
from one shared path: the chosen :class:`~repro.dist.plan.DistPlan`
lowers to an instruction :class:`~repro.ir.Program` (local solve
fragments per device, transfers with dependency edges and resource
claims, the reduced solve, the reconstruction) and the
:class:`~repro.ir.Engine` prices it into the
:class:`~repro.dist.pipeline.DistReport` makespan — the same interpreter
that executes and prices single-device solves.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..algorithms.verify import assert_solution
from ..core.config import SwitchPoints
from ..core.planner import plan_solve
from ..core.solver import MultiStageSolver
from ..core.tuning import TuningCache, make_tuner
from ..gpu.executor import SimReport
from ..ir.engine import Engine
from ..kernels import dtype_size
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import (
    ConfigurationError,
    DeviceLostError,
    PlanError,
    ReproError,
)
from .partition import (
    partition_bounds,
    reconstruct_chunk,
    solve_reduced_system,
    spike_rhs,
    split_chunks,
    surviving_indices,
    truncated_reduced_solve,
)
from .pipeline import DistReport, failover_report
from .plan import DistPlan, batch_shares
from .topology import DeviceGroup, make_device_group

__all__ = ["DistSolveResult", "DistributedSolver", "working_set_nbytes"]


def working_set_nbytes(num_systems: int, system_size: int, dsize: int) -> int:
    """Bytes one device needs for a solve: four coefficient arrays + x."""
    return 5 * num_systems * system_size * dsize


@dataclass(frozen=True)
class DistSolveResult:
    """Solution plus provenance of one distributed solve."""

    x: np.ndarray
    plan: DistPlan
    switch_points: SwitchPoints
    report: DistReport
    local_reports: Tuple[SimReport, ...]

    @property
    def simulated_ms(self) -> float:
        """Simulated end-to-end time (the makespan across devices)."""
        return self.report.total_ms


class DistributedSolver:
    """Solve across a :class:`DeviceGroup`, verified against one device.

    Parameters
    ----------
    group:
        The device group, or an integer device count (a group of
        ``device`` parts joined by ``link``/``topology`` is built).
    tuning:
        ``SwitchPoints`` used verbatim, a strategy name resolved once
        per dtype through the shared ``cache``, or a tuner instance.
    mode:
        ``"rows"``, ``"batch"``, or ``"auto"`` (price both feasible
        modes, keep the faster).
    schedule:
        Rows-mode exchange schedule: ``"fused"``, ``"split"``, or
        ``"auto"`` (price both, keep the faster).
    faults:
        Optional :class:`~repro.faults.FaultInjector` (or a bare
        :class:`~repro.faults.FaultPlan`). Local solves then run under
        injection, and a :class:`DeviceLostError` mid-solve triggers
        failover: the workload re-partitions onto the surviving
        devices and replays from the last completed barrier, with the
        wasted makespan priced into the combined report.
    """

    def __init__(
        self,
        group: Union[DeviceGroup, int, None] = None,
        tuning: Union[SwitchPoints, str, object] = "static",
        *,
        device="gtx470",
        link="pcie3",
        topology: str = "all_to_all",
        mode: str = "auto",
        schedule: str = "auto",
        cache: Union[TuningCache, str, None] = None,
        verify: bool = False,
        faults=None,
        metrics=None,
        tracer=None,
    ):
        if group is None:
            group = make_device_group(device, 4, link, topology)
        elif isinstance(group, int):
            group = make_device_group(device, group, link, topology)
        self.group = group
        if mode not in ("auto", "rows", "batch", "approx"):
            raise ConfigurationError(f"unknown dist mode {mode!r}")
        if schedule not in ("auto", "fused", "split"):
            raise ConfigurationError(f"unknown rows schedule {schedule!r}")
        self.mode = mode
        self.schedule = schedule
        self.verify = verify
        self.cache = cache if isinstance(cache, TuningCache) else TuningCache(cache)
        self._tuning = tuning
        if faults is not None and not hasattr(faults, "before_step"):
            from ..faults import FaultInjector

            faults = FaultInjector(faults)
        self.faults = faults
        self._engine = Engine.for_group(group)
        # The shared engine only *prices* dist programs; pricing runs
        # paused (planning must not consume faults) but still sees
        # environmental slowdowns (clock skew, link degradation).
        self._engine.injector = faults
        # Observability. The pricing engine deliberately gets NO tracer —
        # planning prices many candidate programs and would flood the
        # trace; executed local programs are traced via the member
        # solvers' engines instead. Metrics land in a shared registry
        # (or a private one when the caller does not provide any).
        from ..obs import MetricsRegistry

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self._lock = threading.Lock()
        self._switch: Dict[int, SwitchPoints] = {}
        self._solvers: Dict[Tuple[int, int], MultiStageSolver] = {}
        self._planned: Dict[Tuple, Tuple[DistPlan, DistReport]] = {}
        self._programs: Dict[Tuple[DistPlan, int], object] = {}
        # Lazily built numerical-safety governor (shares this solver's
        # metrics registry and tracer); owns tolerance-governed solves.
        self._governor = None

    def governor(self):
        """The shared :class:`~repro.numerics.Governor` for this solver."""
        from ..numerics import Governor

        with self._lock:
            if self._governor is None:
                self._governor = Governor(
                    metrics=self.metrics, tracer=self.tracer
                )
            return self._governor

    # -- tuning ----------------------------------------------------------

    def switch_points_for(self, dsize: int) -> SwitchPoints:
        """Switch points shared by every member device, per dtype size."""
        with self._lock:
            cached = self._switch.get(dsize)
        if cached is not None:
            return cached
        if isinstance(self._tuning, SwitchPoints):
            resolved = self._tuning
        elif isinstance(self._tuning, str):
            strategy = self._tuning
            device = self.group[0]

            def tune_now() -> SwitchPoints:
                return make_tuner(strategy).switch_points(device, 0, 0, dsize)

            resolved = self.cache.get_or_tune(
                device.name, dsize, tune_now, workload_class="dist"
            )
        elif hasattr(self._tuning, "switch_points"):
            resolved = self._tuning.switch_points(self.group[0], 0, 0, dsize)
        else:
            raise ConfigurationError(
                "tuning must be SwitchPoints, a tuner, or a strategy name; "
                f"got {type(self._tuning).__name__}"
            )
        with self._lock:
            return self._switch.setdefault(dsize, resolved)

    def _solver(self, index: int, dsize: int) -> MultiStageSolver:
        key = (index, dsize)
        with self._lock:
            solver = self._solvers.get(key)
        if solver is not None:
            return solver
        solver = MultiStageSolver(
            self.group[index],
            self.switch_points_for(dsize),
            faults=(
                None if self.faults is None else self.faults.for_device(index)
            ),
        )
        # Trace local programs directly under the distributed solve span
        # (no per-chunk solve wrapper — the dist solve is the solve).
        solver._engine.tracer = self.tracer
        with self._lock:
            return self._solvers.setdefault(key, solver)

    # -- lowering ---------------------------------------------------------

    def lower(self, plan: DistPlan, dsize: int):
        """The instruction program for ``plan``, memoised per dtype."""
        key = (plan, dsize)
        with self._lock:
            program = self._programs.get(key)
        if program is not None:
            return program
        program = plan.lower(self.group, dsize, self.switch_points_for(dsize))
        with self._lock:
            return self._programs.setdefault(key, program)

    def _report_for(self, plan: DistPlan, dsize: int) -> DistReport:
        """Price ``plan``'s program on the shared engine."""
        if self.faults is not None:
            with self.faults.paused():
                return self._engine.price(self.lower(plan, dsize)).report
        return self._engine.price(self.lower(plan, dsize)).report

    # -- planning & pricing ----------------------------------------------

    def plan_for(self, batch: TridiagonalBatch) -> DistPlan:
        """The plan this solver would execute for ``batch``."""
        plan, _ = self.price(
            batch.num_systems, batch.system_size, dtype_size(batch.dtype)
        )
        return plan

    def price(
        self,
        num_systems: int,
        system_size: int,
        dsize: int = 8,
        *,
        tolerance: Optional[float] = None,
    ) -> Tuple[DistPlan, DistReport]:
        """Plan and price an ``(m, n)`` workload without touching data.

        The distributed analogue of :func:`repro.core.simulate_plan` —
        the quantity ``dist-bench`` charts and the hybrid dispatcher
        compares against the CPU and single-GPU models.

        With ``tolerance`` set the truncated-SPIKE ``approx`` mode joins
        the candidate set (priced honestly by the same cost model —
        neighbour tip transfers and per-interface 2×2 solves instead of
        the global reduced system). The tolerance *value* does not move
        the price; whether approx is numerically admissible for a given
        batch is the governor's call at solve time.
        """
        approx_allowed = tolerance is not None or self.mode == "approx"
        key = (num_systems, system_size, dsize, approx_allowed)
        with self._lock:
            cached = self._planned.get(key)
        if cached is not None:
            return cached
        candidates: List[Tuple[DistPlan, DistReport]] = []
        errors: List[str] = []
        if self.mode != "auto":
            modes: Tuple[str, ...] = (self.mode,)
        else:
            modes = ("rows", "batch") + (("approx",) if approx_allowed else ())
        for mode in modes:
            try:
                if mode in ("rows", "approx"):
                    candidates.append(
                        self._price_rows(
                            num_systems, system_size, dsize, mode=mode
                        )
                    )
                else:
                    candidates.append(
                        self._price_batch(num_systems, system_size, dsize)
                    )
            except ReproError as exc:
                errors.append(f"{mode}: {exc}")
        if not candidates:
            raise ConfigurationError(
                f"no feasible distributed plan for {num_systems} x "
                f"{system_size} on {self.group.describe()} "
                f"({'; '.join(errors)})"
            )
        best = min(candidates, key=lambda pair: pair[1].total_ms)
        with self._lock:
            return self._planned.setdefault(key, best)

    def _rows_plan(
        self,
        m: int,
        n: int,
        chunk_sizes: Tuple[int, ...],
        schedule: str,
        local_plans: Tuple,
        mode: str = "rows",
    ) -> DistPlan:
        return DistPlan(
            mode=mode,
            num_devices=len(chunk_sizes),
            num_systems=m,
            system_size=n,
            chunk_sizes=chunk_sizes,
            schedule=schedule,
            topology=self.group.interconnect.describe(),
            device_name=self.group.device_name,
            local_plans=local_plans,
        )

    def _price_rows(
        self, m: int, n: int, dsize: int, *, mode: str = "rows"
    ) -> Tuple[DistPlan, DistReport]:
        p = len(self.group)
        switch = self.switch_points_for(dsize)
        if p == 1:
            if mode == "approx":
                raise ConfigurationError(
                    "approx mode needs at least two devices (one device "
                    "has no chunk interfaces to truncate)"
                )
            local = plan_solve(self.group[0], m, n, dsize, switch)
            self._check_local_memory(local, dsize)
            plan = self._rows_plan(m, n, (n,), "fused", (local,))
            return plan, self._report_for(plan, dsize)
        bounds = partition_bounds(n, p)
        chunk_sizes = tuple(stop - start for start, stop in bounds)
        local_plans = tuple(
            plan_solve(self.group[i], 3 * m, chunk_sizes[i], dsize, switch)
            for i in range(p)
        )
        for local in local_plans:
            self._check_local_memory(local, dsize)
        if mode == "approx":
            # The truncated path keeps the fused 3-RHS local solves; the
            # split schedule exists to overlap the reduced solve, which
            # approx mode does not have.
            plan = self._rows_plan(
                m, n, chunk_sizes, "fused", local_plans, mode="approx"
            )
            return plan, self._report_for(plan, dsize)
        schedules = (
            ("fused", "split") if self.schedule == "auto" else (self.schedule,)
        )
        best = None
        for sched in schedules:
            plan = self._rows_plan(m, n, chunk_sizes, sched, local_plans)
            report = self._report_for(plan, dsize)
            # Ties keep the earlier (fused) schedule, matching the
            # historical auto rule.
            if best is None or report.total_ms < best[1].total_ms:
                best = (plan, report)
        return best

    def _price_batch(
        self, m: int, n: int, dsize: int
    ) -> Tuple[DistPlan, DistReport]:
        p = len(self.group)
        if p == 1:
            raise ConfigurationError(
                "batch mode needs at least two devices (rows covers one)"
            )
        switch = self.switch_points_for(dsize)
        shares = batch_shares(m, p)
        template = plan_solve(self.group[0], shares[0], n, dsize, switch)
        if template.total_split_steps != 0:
            raise ConfigurationError(
                f"batch mode shards only on-chip systems; {n} needs "
                f"{template.total_split_steps} split steps on "
                f"{self.group.device_name}"
            )
        local_plans = tuple(
            template.with_num_systems(share) for share in shares
        )
        for local in local_plans:
            self._check_local_memory(local, dsize)
        if len(shares) != p:
            # Fewer systems than devices: no full scatter exists.
            raise ConfigurationError("one cost record per device is required")
        plan = DistPlan(
            mode="batch",
            num_devices=p,
            num_systems=m,
            system_size=n,
            chunk_sizes=shares,
            schedule="pipelined",
            topology=self.group.interconnect.describe(),
            device_name=self.group.device_name,
            local_plans=local_plans,
        )
        return plan, self._report_for(plan, dsize)

    def _check_local_memory(self, local_plan, dsize: int) -> None:
        nbytes = working_set_nbytes(
            local_plan.num_systems, local_plan.system_size, dsize
        )
        self.group[0].check_fits_global(nbytes)

    # -- execution --------------------------------------------------------

    def solve(
        self,
        batch: TridiagonalBatch,
        *,
        tolerance: Optional[float] = None,
    ) -> DistSolveResult:
        """Plan and solve ``batch`` across the group.

        With ``tolerance`` set the solve is *governed*: the
        numerical-safety governor measures the batch's diagonal
        dominance and, when the truncation bound fits the tolerance,
        lets the planner choose the truncated-SPIKE ``approx`` mode
        (skipping the reduced system entirely). Whatever path runs, the
        result is residual-checked and escalated — one refinement step,
        then an exact-path re-solve — before a typed
        :class:`~repro.util.errors.NumericalBreakdownError` is raised;
        a governed solve never returns an unverified answer.
        """
        if tolerance is None:
            return self.execute_plan(batch, self.plan_for(batch))
        return self._solve_governed(batch, float(tolerance))

    def _solve_governed(
        self, batch: TridiagonalBatch, tolerance: float
    ) -> DistSolveResult:
        dsize = dtype_size(batch.dtype)
        m, n = batch.shape
        governor = self.governor()
        approx_admissible = False
        p = len(self.group)
        if p > 1 and self.mode in ("auto", "approx"):
            chunk_rows = min(
                stop - start for start, stop in partition_bounds(n, p)
            )
            decision = governor.decide(batch, tolerance, chunk_rows)
            approx_admissible = decision.approx
        plan, _ = self.price(
            m, n, dsize, tolerance=tolerance if approx_admissible else None
        )
        if plan.mode == "approx" and not approx_admissible:
            # mode="approx" was forced but the estimate says unsafe;
            # still run it — the ladder below catches what the bound
            # could not promise.
            pass
        result = self.execute_plan(batch, plan)
        path = "approx" if plan.mode == "approx" else "exact"

        def refine(b: TridiagonalBatch, x: np.ndarray) -> np.ndarray:
            residual_rhs = b.d - b.matvec(x)
            correction = self.execute_plan(
                TridiagonalBatch(b.a, b.b, b.c, residual_rhs), plan
            ).x
            return x + correction

        def resolve(b: TridiagonalBatch) -> np.ndarray:
            # The exact fallback must not re-price into approx (which a
            # forced mode="approx" solver would): re-solve on the exact
            # rows decomposition of the same partition explicitly.
            exact_plan, _ = self._price_rows(m, n, dsize, mode="rows")
            return self.execute_plan(b, exact_plan).x

        outcome = governor.enforce(
            batch,
            result.x,
            tolerance,
            refine=refine,
            resolve=resolve if path == "approx" else None,
            path=path,
            context="distributed solve",
        )
        if outcome.x is not result.x:
            result = replace(result, x=outcome.x)
        return result

    def execute_plan(
        self, batch: TridiagonalBatch, plan: DistPlan
    ) -> DistSolveResult:
        """Run a prepared ``plan`` on ``batch``.

        Like :meth:`MultiStageSolver.execute_plan`, ``batch`` may hold a
        different system count than the plan was built for as long as the
        plan was widened via :meth:`DistPlan.with_num_systems` — the
        batched service's merged-group entry point.
        """
        if plan.num_systems != batch.num_systems:
            raise PlanError(
                f"plan is for {plan.num_systems} systems, batch has "
                f"{batch.num_systems}; widen with with_num_systems first"
            )
        if plan.system_size != batch.system_size:
            raise PlanError(
                f"plan is for size {plan.system_size}, batch has "
                f"{batch.system_size}"
            )
        if plan.num_devices != len(self.group):
            raise PlanError(
                f"plan is for {plan.num_devices} devices, group has "
                f"{len(self.group)}"
            )
        dsize = dtype_size(batch.dtype)
        switch = self.switch_points_for(dsize)
        tracer = self.tracer
        token = None
        if tracer is not None:
            token = tracer.begin(
                f"dist {batch.num_systems}x{batch.system_size}",
                "solve",
                0.0,
                device=0,
                devices=plan.num_devices,
                mode=plan.mode,
                schedule=plan.schedule,
            )
        try:
            try:
                if plan.mode in ("rows", "approx"):
                    result = self._execute_rows(batch, plan, dsize, switch)
                else:
                    result = self._execute_batch(batch, plan, dsize, switch)
            except DeviceLostError as exc:
                result = self._failover(batch, plan, dsize, switch, exc)
            else:
                self.record_metrics(plan, result.report, dsize)
        except Exception as exc:
            if tracer is not None:
                tracer.abort_to(token, 0.0, error=type(exc).__name__)
            raise
        if tracer is not None:
            tracer.end(result.report.total_ms)
        if self.verify and plan.mode != "approx":
            # Approx-mode answers are deliberately approximate; their
            # verification (against the caller's tolerance, with the
            # escalation ladder behind it) belongs to the governor in
            # :meth:`solve`, not the exact-solve assertion here.
            assert_solution(batch, result.x, context="distributed solve")
        return result

    def record_metrics(self, plan: DistPlan, report: DistReport, dsize: int) -> None:
        """Land one solve's plan/report pair in the metric catalogue.

        Called automatically after every executed solve; ``repro trace``
        also calls it for priced runs so the exported dump carries the
        makespan and transfer-volume gauges."""
        from ..ir.instructions import Transfer

        reg = self.metrics
        reg.counter(
            "repro_dist_solves_total", "Distributed solves executed, by mode."
        ).inc(mode=plan.mode)
        makespan = reg.gauge(
            "repro_dist_makespan_ms",
            "Per-device end time of the last priced distributed solve.",
        )
        for tl in report.timelines:
            makespan.set(tl.end_ms, device=tl.index)
        nbytes = 0
        program = self.lower(plan, dsize)
        for step in program.steps:
            if isinstance(step.op, Transfer):
                nbytes += (
                    step.op.values_per_system
                    * step.shape[0]
                    * program.dtype_size
                )
        reg.counter(
            "repro_dist_transfer_bytes_total",
            "Bytes moved over the simulated interconnect.",
        ).inc(nbytes)

    def _failover(
        self,
        batch: TridiagonalBatch,
        plan: DistPlan,
        dsize: int,
        switch: SwitchPoints,
        exc: DeviceLostError,
    ) -> DistSolveResult:
        """Re-partition onto the survivors and replay ``batch``.

        Local solves run whole between barriers, so nothing partial is
        salvageable when a device dies mid-run: the workload replays in
        full from the last completed barrier (the start of the aborted
        plan) on a sub-solver over the surviving members. The aborted
        plan's fault-free makespan is charged as wasted recovery cost —
        in the same simulated-milliseconds currency as kernel time —
        and the combined report splices the recovery timelines after
        the aborted ones, so ``total_ms`` prices the failure end to
        end. A second death during recovery nests another failover; the
        chain ends with :class:`ConfigurationError` once no device
        survives.
        """
        inj = self.faults
        if inj is None:
            raise exc
        p = len(self.group)
        dead = inj.dead_devices()
        local_dead = {i for i in range(p) if inj.global_id(i) in dead}
        survivors = surviving_indices(p, local_dead)
        aborted_report = self._report_for(plan, dsize)
        inj.note(
            "device_lost",
            "failed_over",
            label=f"dist:{plan.mode}",
            device=exc.device if exc.device is not None else -1,
            penalty_ms=aborted_report.total_ms,
            detail=(
                f"re-partitioned {plan.num_systems}x{plan.system_size} "
                f"onto {len(survivors)} of {p} devices, replaying from "
                "last completed barrier"
            ),
        )
        subgroup = DeviceGroup(
            tuple(self.group[i] for i in survivors), self.group.interconnect
        )
        self.metrics.counter(
            "repro_dist_failovers_total",
            "Device-loss failovers (re-partition onto survivors).",
        ).inc()
        sub = DistributedSolver(
            subgroup,
            switch,
            mode="auto",
            schedule=self.schedule,
            cache=self.cache,
            faults=inj.for_survivors(survivors),
            metrics=self.metrics,
            tracer=self.tracer,
        )
        recovery = sub.solve(batch)
        return DistSolveResult(
            x=recovery.x,
            plan=recovery.plan,
            switch_points=switch,
            report=failover_report(
                aborted_report, recovery.report, survivors
            ),
            local_reports=recovery.local_reports,
        )

    def _execute_rows(
        self,
        batch: TridiagonalBatch,
        plan: DistPlan,
        dsize: int,
        switch: SwitchPoints,
    ) -> DistSolveResult:
        m, n = batch.shape
        p = plan.num_devices
        if p == 1:
            local = self._solver(0, dsize).execute_plan(
                batch, plan.local_plans[0], switch
            )
            return DistSolveResult(
                x=local.x,
                plan=plan,
                switch_points=switch,
                report=self._report_for(plan, dsize),
                local_reports=(local.report,),
            )
        bounds = []
        start = 0
        for q in plan.chunk_sizes:
            bounds.append((start, start + q))
            start += q
        chunks = split_chunks(batch, tuple(bounds))

        ys: List[np.ndarray] = []
        ws: List[np.ndarray] = []
        vs: List[np.ndarray] = []
        local_reports: List[SimReport] = []
        for i, chunk in enumerate(chunks):
            if self.faults is not None:
                # Chunk data crosses the interconnect to member i; a
                # partitioned link makes that member unreachable.
                self.faults.check_link(0, i, label=f"dist:{plan.mode}")
            local = self._solver(i, dsize).execute_plan(
                spike_rhs(chunk), plan.local_plans[i], switch
            )
            ys.append(local.x[:m])
            ws.append(local.x[m : 2 * m])
            vs.append(local.x[2 * m :])
            local_reports.append(local.report)

        # Approx mode is the same decomposition with the reduced system
        # truncated to independent per-interface 2x2 solves.
        reduced = (
            truncated_reduced_solve
            if plan.mode == "approx"
            else solve_reduced_system
        )
        t_prev, s_next = reduced(
            np.stack([y[:, 0] for y in ys], axis=1),
            np.stack([y[:, -1] for y in ys], axis=1),
            np.stack([w[:, 0] for w in ws], axis=1),
            np.stack([w[:, -1] for w in ws], axis=1),
            np.stack([v[:, 0] for v in vs], axis=1),
            np.stack([v[:, -1] for v in vs], axis=1),
        )
        x = np.empty((m, n), dtype=batch.dtype)
        for i, (lo, hi) in enumerate(bounds):
            x[:, lo:hi] = reconstruct_chunk(
                ys[i], ws[i], vs[i], t_prev[:, i], s_next[:, i]
            )

        return DistSolveResult(
            x=x,
            plan=plan,
            switch_points=switch,
            report=self._report_for(plan, dsize),
            local_reports=tuple(local_reports),
        )

    def _execute_batch(
        self,
        batch: TridiagonalBatch,
        plan: DistPlan,
        dsize: int,
        switch: SwitchPoints,
    ) -> DistSolveResult:
        shares = plan.chunk_sizes
        parts: List[np.ndarray] = []
        local_reports: List[SimReport] = []
        offset = 0
        for i, share in enumerate(shares):
            rows = slice(offset, offset + share)
            offset += share
            if self.faults is not None:
                self.faults.check_link(0, i, label="dist:batch")
            sub = TridiagonalBatch(
                batch.a[rows], batch.b[rows], batch.c[rows], batch.d[rows]
            )
            local = self._solver(i, dsize).execute_plan(
                sub, plan.local_plans[i], switch
            )
            parts.append(local.x)
            local_reports.append(local.report)
        x = np.concatenate(parts, axis=0)
        return DistSolveResult(
            x=x,
            plan=plan,
            switch_points=switch,
            report=self._report_for(plan, dsize),
            local_reports=tuple(local_reports),
        )
