"""Workload decomposition for the distributed solver.

Two ways to cut a workload across a device group:

- **rows** — split each system into contiguous per-device row chunks.
  The chunk math is the single-device SPIKE implementation
  (:mod:`repro.algorithms.spike`) verbatim: balanced bounds, 3-RHS chunk
  systems (data + two coupling spikes), the 2×2-block reduced boundary
  system, and the reconstruction FMA. This module re-exports it as the
  dist-facing API so the solver and tests have one import point.
- **batch** — split a wide batch by system: :func:`batch_shares` deals
  ``m`` systems across ``p`` devices as evenly as possible, idling
  devices beyond the system count.

Rows mode has an *approximate* variant (``approx``): the same chunk
split and 3-RHS solves, but the boundary unknowns come from
:func:`truncated_reduced_solve` — independent per-interface 2×2 solves
instead of the global reduced system, valid when the systems are
diagonally dominant enough (see :mod:`repro.numerics`).
"""

from __future__ import annotations

from typing import Tuple

from ..algorithms.spike import (
    MIN_CHUNK_ROWS,
    ChunkSplit,
    partition_bounds,
    reconstruct_chunk,
    solve_reduced_system,
    spike_rhs,
    split_chunks,
    truncated_reduced_solve,
)
from ..util.errors import ConfigurationError

__all__ = [
    "MIN_CHUNK_ROWS",
    "ChunkSplit",
    "batch_shares",
    "partition_bounds",
    "reconstruct_chunk",
    "solve_reduced_system",
    "spike_rhs",
    "split_chunks",
    "surviving_indices",
    "truncated_reduced_solve",
]


def batch_shares(num_systems: int, num_devices: int) -> Tuple[int, ...]:
    """Balanced per-device system counts for ``batch`` mode.

    At most ``num_devices`` entries; devices beyond ``num_systems`` idle
    and get no entry. Shares differ by at most one system.
    """
    if num_systems < 1 or num_devices < 1:
        raise ConfigurationError("need at least one system and one device")
    active = min(num_devices, num_systems)
    base, extra = divmod(num_systems, active)
    return tuple(base + (1 if i < extra else 0) for i in range(active))


def surviving_indices(num_devices: int, dead) -> Tuple[int, ...]:
    """Group member indices left after ``dead`` members failed.

    The failover re-partition runs over exactly these members, in
    order, so chunk/share assignments stay deterministic.
    """
    survivors = tuple(i for i in range(num_devices) if i not in set(dead))
    if not survivors:
        raise ConfigurationError(
            f"all {num_devices} devices have failed; nothing to fail over to"
        )
    return survivors
