"""repro.dist — multi-device domain decomposition over a simulated interconnect.

Solves workloads that overflow one simulated device by partitioning
across a :class:`DeviceGroup`: SPIKE-style row chunking for enormous
systems (``rows`` mode) or system sharding for wide on-chip batches
(``batch`` mode), with halo/spike exchanges priced on a
:class:`LinkSpec` interconnect model and overlapped with local solves by
the :mod:`~repro.dist.pipeline` scheduler.

Entry points: :class:`DistributedSolver` (plan/price/solve),
:func:`make_device_group`, and :func:`render_dist_timeline` for the
per-device Gantt view benchmarks print.
"""

from .pipeline import (
    BatchCosts,
    DeviceTimeline,
    DistReport,
    RowsCosts,
    TimelineEvent,
    render_dist_timeline,
    schedule_batch,
    schedule_rows,
)
from .partition import batch_shares, partition_bounds
from .plan import DistPlan
from .solver import DistributedSolver, DistSolveResult, working_set_nbytes
from .topology import (
    LINK_PRESETS,
    DeviceGroup,
    Interconnect,
    LinkSpec,
    get_link,
    make_device_group,
)

__all__ = [
    "BatchCosts",
    "DeviceGroup",
    "DeviceTimeline",
    "DistPlan",
    "DistReport",
    "DistSolveResult",
    "DistributedSolver",
    "Interconnect",
    "LINK_PRESETS",
    "LinkSpec",
    "RowsCosts",
    "TimelineEvent",
    "batch_shares",
    "get_link",
    "partition_bounds",
    "make_device_group",
    "render_dist_timeline",
    "schedule_batch",
    "schedule_rows",
    "working_set_nbytes",
]
