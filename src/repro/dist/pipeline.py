"""The exchange/compute scheduler and per-device timelines.

Given per-device local costs (priced by the kernel cost model) and an
:class:`~repro.dist.topology.Interconnect` (pricing the transfers), the
schedulers lay events onto per-device timelines and report the makespan.
Compute and transfer engines are independent per device (the DMA-overlap
assumption every real multi-GPU pipeline relies on), so a device may
stream boundary data out while its next solve runs.

Rows mode offers two schedules:

- ``fused`` — one three-RHS local solve per device, then one boundary
  message. Minimum compute (a single launch sequence) but zero overlap.
- ``split`` — the two coupling spikes solve first; their boundary values
  stream to the reduced-system host *while* the data solve runs, and
  only the small data-boundary message remains on the critical path.
  More launches, but communication hides behind compute.

``schedule_rows(..., schedule="auto")`` prices both and keeps the faster
— the same auto-tuning reflex the paper applies to switch points, now
applied to the interconnect. Batch mode pipelines the scatter: the host
pushes shard ``i+1`` over the wire while shard ``i`` already computes.

The resulting :class:`DistReport` mirrors the single-device
:class:`~repro.gpu.executor.SimReport` interface (``total_ms``,
``stage_ms``, ``describe``) so service stats and benchmarks treat local
and distributed solves uniformly; ``total_ms`` is the *makespan* across
devices, not a sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..util.errors import ConfigurationError
from .topology import Interconnect

__all__ = [
    "TimelineEvent",
    "DeviceTimeline",
    "DistReport",
    "RowsCosts",
    "BatchCosts",
    "schedule_rows",
    "schedule_batch",
    "single_device_report",
    "render_dist_timeline",
]


@dataclass(frozen=True)
class TimelineEvent:
    """One scheduled interval on a device's compute or transfer engine."""

    kind: str  # "compute" | "xfer"
    label: str
    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.end_ms < self.start_ms or self.start_ms < 0:
            raise ConfigurationError(
                f"event {self.label!r} has invalid interval "
                f"[{self.start_ms}, {self.end_ms}]"
            )

    @property
    def duration_ms(self) -> float:
        """Length of the interval."""
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class DeviceTimeline:
    """All events scheduled on one device, in start order."""

    index: int
    device_name: str
    events: Tuple[TimelineEvent, ...]

    @property
    def end_ms(self) -> float:
        """When this device's last event finishes."""
        return max((e.end_ms for e in self.events), default=0.0)

    @property
    def compute_ms(self) -> float:
        """Total compute-engine occupancy (transfers overlap separately)."""
        return sum(e.duration_ms for e in self.events if e.kind == "compute")


@dataclass(frozen=True)
class DistReport:
    """Aggregated timing of one distributed solve.

    Duck-types the parts of :class:`~repro.gpu.executor.SimReport` the
    service and benchmarks read; ``total_ms`` is the makespan.
    """

    group_label: str
    schedule: str
    timelines: Tuple[DeviceTimeline, ...]

    @property
    def total_ms(self) -> float:
        """Simulated end-to-end time: when the last device finishes."""
        return max((t.end_ms for t in self.timelines), default=0.0)

    @property
    def num_devices(self) -> int:
        """Devices with a timeline (idle devices included)."""
        return len(self.timelines)

    @property
    def compute_utilization(self) -> float:
        """Mean fraction of the makespan each device spends computing."""
        total = self.total_ms
        if total <= 0 or not self.timelines:
            return 0.0
        return sum(t.compute_ms for t in self.timelines) / (
            total * len(self.timelines)
        )

    def stage_ms(self) -> Dict[str, float]:
        """Per-label busy totals across all devices, insertion ordered."""
        out: Dict[str, float] = {}
        for timeline in self.timelines:
            for event in timeline.events:
                out[event.label] = out.get(event.label, 0.0) + event.duration_ms
        return out

    def describe(self) -> str:
        """The rendered per-device timeline."""
        return render_dist_timeline(self)


def render_dist_timeline(report: DistReport, *, width: int = 56) -> str:
    """Proportional ASCII Gantt chart of a distributed solve.

    One row per event, grouped by device, on a shared time axis —
    ``#`` marks compute, ``~`` marks transfers.
    """
    total = report.total_ms
    header = (
        f"{report.group_label}: {total:.3f} ms makespan "
        f"({report.schedule} schedule, "
        f"{report.compute_utilization:.0%} compute utilization)"
    )
    if total <= 0:
        return header + " (no events)"
    label_width = max(
        (len(e.label) for t in report.timelines for e in t.events),
        default=8,
    )
    label_width = min(max(label_width, 8), 28)
    lines = [header]
    for timeline in report.timelines:
        for event in timeline.events:
            begin = int(round(width * event.start_ms / total))
            end = max(begin + 1, int(round(width * event.end_ms / total)))
            end = min(end, width)
            begin = min(begin, end - 1)
            mark = "#" if event.kind == "compute" else "~"
            bar = " " * begin + mark * (end - begin) + " " * (width - end)
            lines.append(
                f"dev{timeline.index:<2d} {event.label:<{label_width}} "
                f"|{bar}| {event.duration_ms:9.3f} ms"
            )
    return "\n".join(lines)


# -- rows mode --------------------------------------------------------------


@dataclass(frozen=True)
class RowsCosts:
    """Per-device priced quantities for a rows-mode (SPIKE) solve."""

    fused_ms: float  # one three-RHS local solve
    spikes_ms: float  # the two coupling spikes alone
    data_ms: float  # the data right-hand side alone
    reconstruct_ms: float  # x = y - w t - v s over the chunk
    boundary_nbytes: float  # all six boundary values per system
    spike_nbytes: float  # the four spike boundary values
    data_nbytes: float  # the two data boundary values
    correction_nbytes: float  # (t_prev, s_next) per system


def _finish_rows(
    interconnect: Interconnect,
    costs: Sequence[RowsCosts],
    events: List[List[TimelineEvent]],
    arrivals: Sequence[float],
    reduced_ms: float,
    host: int,
) -> None:
    """Shared tail of both rows schedules: reduce, scatter, reconstruct."""
    p = len(costs)
    ready = max(arrivals)
    reduced_end = ready + reduced_ms
    events[host].append(
        TimelineEvent("compute", "reduced_solve", ready, reduced_end)
    )
    for i in range(p):
        t_corr = interconnect.transfer_ms(
            costs[i].correction_nbytes, host, i, p
        )
        start = reduced_end + t_corr
        if t_corr > 0:
            events[i].append(
                TimelineEvent("xfer", "recv_correction", reduced_end, start)
            )
        events[i].append(
            TimelineEvent(
                "compute", "reconstruct", start, start + costs[i].reconstruct_ms
            )
        )


def schedule_rows(
    interconnect: Interconnect,
    device_names: Sequence[str],
    costs: Sequence[RowsCosts],
    reduced_ms: float,
    *,
    schedule: str = "auto",
    host: int = 0,
    group_label: str = "",
) -> DistReport:
    """Schedule a rows-mode solve; ``auto`` keeps the faster schedule."""
    if len(device_names) != len(costs) or not costs:
        raise ConfigurationError("one cost record per device is required")
    if schedule == "auto":
        fused = schedule_rows(
            interconnect, device_names, costs, reduced_ms,
            schedule="fused", host=host, group_label=group_label,
        )
        split = schedule_rows(
            interconnect, device_names, costs, reduced_ms,
            schedule="split", host=host, group_label=group_label,
        )
        return fused if fused.total_ms <= split.total_ms else split
    if schedule not in ("fused", "split"):
        raise ConfigurationError(f"unknown rows schedule {schedule!r}")

    p = len(costs)
    events: List[List[TimelineEvent]] = [[] for _ in range(p)]
    arrivals: List[float] = []
    for i, cost in enumerate(costs):
        if schedule == "fused":
            local_end = cost.fused_ms
            events[i].append(
                TimelineEvent("compute", "local_solve", 0.0, local_end)
            )
            t_send = interconnect.transfer_ms(cost.boundary_nbytes, i, host, p)
            if t_send > 0:
                events[i].append(
                    TimelineEvent(
                        "xfer", "send_boundary", local_end, local_end + t_send
                    )
                )
            arrivals.append(local_end + t_send)
        else:
            spikes_end = cost.spikes_ms
            events[i].append(
                TimelineEvent("compute", "spike_solve", 0.0, spikes_end)
            )
            t_spike = interconnect.transfer_ms(cost.spike_nbytes, i, host, p)
            if t_spike > 0:
                events[i].append(
                    TimelineEvent(
                        "xfer", "send_spikes", spikes_end, spikes_end + t_spike
                    )
                )
            data_end = spikes_end + cost.data_ms
            events[i].append(
                TimelineEvent("compute", "data_solve", spikes_end, data_end)
            )
            # The device's transfer engine is busy until the spike message
            # is out; the data-boundary message queues behind it.
            send_start = max(data_end, spikes_end + t_spike)
            t_data = interconnect.transfer_ms(cost.data_nbytes, i, host, p)
            if t_data > 0:
                events[i].append(
                    TimelineEvent(
                        "xfer", "send_boundary", send_start, send_start + t_data
                    )
                )
            arrivals.append(send_start + t_data)

    _finish_rows(interconnect, costs, events, arrivals, reduced_ms, host)
    timelines = tuple(
        DeviceTimeline(i, device_names[i], tuple(events[i])) for i in range(p)
    )
    return DistReport(
        group_label=group_label, schedule=schedule, timelines=timelines
    )


# -- batch mode -------------------------------------------------------------


@dataclass(frozen=True)
class BatchCosts:
    """Per-device priced quantities for a batch-mode (sharded) solve."""

    compute_ms: float  # the shard's local solve
    input_nbytes: float  # four coefficient arrays in
    output_nbytes: float  # one solution array back


def schedule_batch(
    interconnect: Interconnect,
    device_names: Sequence[str],
    costs: Sequence[BatchCosts],
    *,
    host: int = 0,
    group_label: str = "",
) -> DistReport:
    """Schedule a batch-mode solve with a pipelined scatter/gather.

    The host's egress link serialises the scatter (shard ``i+1`` streams
    while shard ``i`` computes — the pipeline), its ingress link
    serialises the gather in completion order, and the host's own shard
    computes concurrently with both (separate engines).
    """
    if len(device_names) != len(costs) or not costs:
        raise ConfigurationError("one cost record per device is required")
    p = len(costs)
    events: List[List[TimelineEvent]] = [[] for _ in range(p)]

    compute_end: List[float] = [0.0] * p
    egress_free = 0.0
    for i, cost in enumerate(costs):
        if i == host:
            events[i].append(
                TimelineEvent("compute", "local_solve", 0.0, cost.compute_ms)
            )
            compute_end[i] = cost.compute_ms
            continue
        t_in = interconnect.transfer_ms(cost.input_nbytes, host, i, p)
        recv_end = egress_free + t_in
        if t_in > 0:
            events[i].append(
                TimelineEvent("xfer", "recv_coeffs", egress_free, recv_end)
            )
        egress_free = recv_end
        events[i].append(
            TimelineEvent(
                "compute", "local_solve", recv_end, recv_end + cost.compute_ms
            )
        )
        compute_end[i] = recv_end + cost.compute_ms

    ingress_free = 0.0
    for i in sorted(range(p), key=lambda j: compute_end[j]):
        if i == host:
            continue
        t_out = interconnect.transfer_ms(costs[i].output_nbytes, i, host, p)
        start = max(compute_end[i], ingress_free)
        if t_out > 0:
            events[i].append(
                TimelineEvent("xfer", "send_solution", start, start + t_out)
            )
        ingress_free = start + t_out

    timelines = tuple(
        DeviceTimeline(i, device_names[i], tuple(events[i])) for i in range(p)
    )
    return DistReport(
        group_label=group_label, schedule="pipelined", timelines=timelines
    )


def single_device_report(
    device_name: str, local_ms: float, *, group_label: str = ""
) -> DistReport:
    """The degenerate one-device report: a single local solve, no comm."""
    timeline = DeviceTimeline(
        0,
        device_name,
        (TimelineEvent("compute", "local_solve", 0.0, local_ms),),
    )
    return DistReport(
        group_label=group_label, schedule="fused", timelines=(timeline,)
    )
