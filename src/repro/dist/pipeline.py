"""Per-device timelines and the legacy scheduler API.

The distributed report types live here: a :class:`TimelineEvent` is one
interval on a device's compute or transfer engine, a
:class:`DeviceTimeline` collects them per device, and a
:class:`DistReport` aggregates the makespan. Compute and transfer
engines are independent per device (the DMA-overlap assumption every
real multi-GPU pipeline relies on), so a device may stream boundary data
out while its next solve runs.

Scheduling itself is no longer hand-rolled here: :func:`schedule_rows`
and :func:`schedule_batch` lower their cost records into instruction
:class:`~repro.ir.Program`\\ s (``Fixed`` compute spans + ``Transfer``
steps with dependency edges and resource claims) and hand them to the
shared :class:`~repro.ir.Engine`, the same interpreter that prices and
executes single-device solves. The distributed solver bypasses this
wrapper entirely — it lowers its :class:`~repro.dist.plan.DistPlan`
straight to a program — but the cost-record API remains for callers that
already priced their local solves.

Rows mode offers two schedules:

- ``fused`` — one three-RHS local solve per device, then one boundary
  message. Minimum compute (a single launch sequence) but zero overlap.
- ``split`` — the two coupling spikes solve first; their boundary values
  stream to the reduced-system host *while* the data solve runs, and
  only the small data-boundary message remains on the critical path.
  More launches, but communication hides behind compute.

``schedule_rows(..., schedule="auto")`` prices both and keeps the faster
— the same auto-tuning reflex the paper applies to switch points, now
applied to the interconnect. Batch mode pipelines the scatter: the host
pushes shard ``i+1`` over the wire while shard ``i`` already computes.

The resulting :class:`DistReport` mirrors the single-device
:class:`~repro.gpu.executor.SimReport` interface (``total_ms``,
``stage_ms``, ``describe``) so service stats and benchmarks treat local
and distributed solves uniformly; ``total_ms`` is the *makespan* across
devices, not a sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..ir.engine import Engine
from ..ir.instructions import Fixed, Program, Step, Transfer
from ..util.errors import ConfigurationError
from .topology import Interconnect

__all__ = [
    "TimelineEvent",
    "DeviceTimeline",
    "DistReport",
    "RowsCosts",
    "BatchCosts",
    "schedule_rows",
    "schedule_batch",
    "single_device_report",
    "render_dist_timeline",
    "failover_report",
]


@dataclass(frozen=True)
class TimelineEvent:
    """One scheduled interval on a device's compute or transfer engine."""

    kind: str  # "compute" | "xfer"
    label: str
    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.end_ms < self.start_ms or self.start_ms < 0:
            raise ConfigurationError(
                f"event {self.label!r} has invalid interval "
                f"[{self.start_ms}, {self.end_ms}]"
            )

    @property
    def duration_ms(self) -> float:
        """Length of the interval."""
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class DeviceTimeline:
    """All events scheduled on one device, in start order."""

    index: int
    device_name: str
    events: Tuple[TimelineEvent, ...]

    @property
    def end_ms(self) -> float:
        """When this device's last event finishes."""
        return max((e.end_ms for e in self.events), default=0.0)

    @property
    def compute_ms(self) -> float:
        """Total compute-engine occupancy (transfers overlap separately)."""
        return sum(e.duration_ms for e in self.events if e.kind == "compute")


@dataclass(frozen=True)
class DistReport:
    """Aggregated timing of one distributed solve.

    Duck-types the parts of :class:`~repro.gpu.executor.SimReport` the
    service and benchmarks read; ``total_ms`` is the makespan.
    """

    group_label: str
    schedule: str
    timelines: Tuple[DeviceTimeline, ...]

    @property
    def total_ms(self) -> float:
        """Simulated end-to-end time: when the last device finishes."""
        return max((t.end_ms for t in self.timelines), default=0.0)

    @property
    def num_devices(self) -> int:
        """Devices with a timeline (idle devices included)."""
        return len(self.timelines)

    @property
    def compute_utilization(self) -> float:
        """Mean fraction of the makespan each device spends computing."""
        total = self.total_ms
        if total <= 0 or not self.timelines:
            return 0.0
        return sum(t.compute_ms for t in self.timelines) / (
            total * len(self.timelines)
        )

    def stage_ms(self) -> Dict[str, float]:
        """Per-label busy totals across all devices, insertion ordered."""
        out: Dict[str, float] = {}
        for timeline in self.timelines:
            for event in timeline.events:
                out[event.label] = out.get(event.label, 0.0) + event.duration_ms
        return out

    def describe(self) -> str:
        """The rendered per-device timeline."""
        return render_dist_timeline(self)


def render_dist_timeline(report: DistReport, *, width: int = 56) -> str:
    """Proportional ASCII Gantt chart of a distributed solve.

    One row per event, grouped by device, on a shared time axis —
    ``#`` marks compute, ``~`` marks transfers.
    """
    total = report.total_ms
    header = (
        f"{report.group_label}: {total:.3f} ms makespan "
        f"({report.schedule} schedule, "
        f"{report.compute_utilization:.0%} compute utilization)"
    )
    if total <= 0:
        return header + " (no events)"
    label_width = max(
        (len(e.label) for t in report.timelines for e in t.events),
        default=8,
    )
    label_width = min(max(label_width, 8), 28)
    lines = [header]
    for timeline in report.timelines:
        for event in timeline.events:
            begin = int(round(width * event.start_ms / total))
            end = max(begin + 1, int(round(width * event.end_ms / total)))
            end = min(end, width)
            begin = min(begin, end - 1)
            mark = "#" if event.kind == "compute" else "~"
            bar = " " * begin + mark * (end - begin) + " " * (width - end)
            lines.append(
                f"dev{timeline.index:<2d} {event.label:<{label_width}} "
                f"|{bar}| {event.duration_ms:9.3f} ms"
            )
    return "\n".join(lines)


# -- cost records ----------------------------------------------------------


@dataclass(frozen=True)
class RowsCosts:
    """Per-device priced quantities for a rows-mode (SPIKE) solve."""

    fused_ms: float  # one three-RHS local solve
    spikes_ms: float  # the two coupling spikes alone
    data_ms: float  # the data right-hand side alone
    reconstruct_ms: float  # x = y - w t - v s over the chunk
    boundary_nbytes: float  # all six boundary values per system
    spike_nbytes: float  # the four spike boundary values
    data_nbytes: float  # the two data boundary values
    correction_nbytes: float  # (t_prev, s_next) per system


@dataclass(frozen=True)
class BatchCosts:
    """Per-device priced quantities for a batch-mode (sharded) solve."""

    compute_ms: float  # the shard's local solve
    input_nbytes: float  # four coefficient arrays in
    output_nbytes: float  # one solution array back


# -- program assembly ------------------------------------------------------
#
# Pre-priced spans become Fixed steps; byte counts become Transfer steps
# with dtype_size=1 and shape=(1, 0) so the engine's
# values*num_systems*dtype_size product reproduces the byte count
# verbatim.

_UNIT = (1, 0)


def _price(
    interconnect: Interconnect,
    device_names: Sequence[str],
    steps: List[Step],
    schedule: str,
    group_label: str,
) -> DistReport:
    program = Program(
        kind="dist",
        label=group_label,
        device_names=tuple(device_names),
        dtype_size=1,
        num_systems=1,
        system_size=0,
        schedule=schedule,
        topology=interconnect.describe(),
        steps=tuple(steps),
    )
    engine = Engine(device_names, interconnect=interconnect, label=group_label)
    return engine.price(program).report


def _rows_tail(
    steps: List[Step],
    costs: Sequence[RowsCosts],
    boundary_sends: Sequence[int],
    reduced_ms: float,
    host: int,
) -> None:
    """Shared tail of both rows schedules: reduce, scatter, reconstruct."""
    steps.append(
        Step(
            op=Fixed(reduced_ms),
            device=host,
            stage="reduced_solve",
            shape=_UNIT,
            deps=tuple(boundary_sends),
        )
    )
    reduced = len(steps) - 1
    for i, cost in enumerate(costs):
        steps.append(
            Step(
                op=Transfer(cost.correction_nbytes, host, i),
                device=i,
                engine="xfer",
                stage="recv_correction",
                shape=_UNIT,
                deps=(reduced,),
            )
        )
        steps.append(
            Step(
                op=Fixed(cost.reconstruct_ms),
                device=i,
                stage="reconstruct",
                shape=_UNIT,
                deps=(len(steps) - 1,),
            )
        )


def schedule_rows(
    interconnect: Interconnect,
    device_names: Sequence[str],
    costs: Sequence[RowsCosts],
    reduced_ms: float,
    *,
    schedule: str = "auto",
    host: int = 0,
    group_label: str = "",
) -> DistReport:
    """Schedule a rows-mode solve; ``auto`` keeps the faster schedule."""
    if len(device_names) != len(costs) or not costs:
        raise ConfigurationError("one cost record per device is required")
    if schedule == "auto":
        fused = schedule_rows(
            interconnect, device_names, costs, reduced_ms,
            schedule="fused", host=host, group_label=group_label,
        )
        split = schedule_rows(
            interconnect, device_names, costs, reduced_ms,
            schedule="split", host=host, group_label=group_label,
        )
        return fused if fused.total_ms <= split.total_ms else split
    if schedule not in ("fused", "split"):
        raise ConfigurationError(f"unknown rows schedule {schedule!r}")

    steps: List[Step] = []
    boundary_sends: List[int] = []
    for i, cost in enumerate(costs):
        if schedule == "fused":
            steps.append(
                Step(
                    op=Fixed(cost.fused_ms),
                    device=i,
                    stage="local_solve",
                    shape=_UNIT,
                )
            )
            last, nbytes = len(steps) - 1, cost.boundary_nbytes
        else:
            steps.append(
                Step(
                    op=Fixed(cost.spikes_ms),
                    device=i,
                    stage="spike_solve",
                    shape=_UNIT,
                )
            )
            spike = len(steps) - 1
            steps.append(
                Step(
                    op=Transfer(cost.spike_nbytes, i, host),
                    device=i,
                    engine="xfer",
                    stage="send_spikes",
                    shape=_UNIT,
                    deps=(spike,),
                )
            )
            # The data solve waits on the spike *compute*; its boundary
            # message then queues behind the spike message on the
            # device's transfer engine (resource contention).
            steps.append(
                Step(
                    op=Fixed(cost.data_ms),
                    device=i,
                    stage="data_solve",
                    shape=_UNIT,
                    deps=(spike,),
                )
            )
            last, nbytes = len(steps) - 1, cost.data_nbytes
        steps.append(
            Step(
                op=Transfer(nbytes, i, host),
                device=i,
                engine="xfer",
                stage="send_boundary",
                shape=_UNIT,
                deps=(last,),
            )
        )
        boundary_sends.append(len(steps) - 1)
    _rows_tail(steps, costs, boundary_sends, reduced_ms, host)
    return _price(interconnect, device_names, steps, schedule, group_label)


def schedule_batch(
    interconnect: Interconnect,
    device_names: Sequence[str],
    costs: Sequence[BatchCosts],
    *,
    host: int = 0,
    group_label: str = "",
) -> DistReport:
    """Schedule a batch-mode solve with a pipelined scatter/gather.

    The host's egress link serialises the scatter (shard ``i+1`` streams
    while shard ``i`` computes — the pipeline), its ingress link
    serialises the gather in completion order, and the host's own shard
    computes concurrently with both (separate engines).
    """
    if len(device_names) != len(costs) or not costs:
        raise ConfigurationError("one cost record per device is required")
    p = len(costs)
    steps: List[Step] = []
    local_idx: List[int] = [0] * p
    for i, cost in enumerate(costs):
        deps: Tuple[int, ...] = ()
        if i != host:
            steps.append(
                Step(
                    op=Transfer(cost.input_nbytes, host, i),
                    device=i,
                    engine="xfer",
                    stage="recv_coeffs",
                    shape=_UNIT,
                    resource=f"dev{host}:egress",
                )
            )
            deps = (len(steps) - 1,)
        steps.append(
            Step(
                op=Fixed(cost.compute_ms),
                device=i,
                stage="local_solve",
                shape=_UNIT,
                deps=deps,
            )
        )
        local_idx[i] = len(steps) - 1

    # The gather serialises in completion order; replicate the schedule
    # arithmetic the engine will perform to know that order up front.
    compute_end: List[float] = [0.0] * p
    egress_free = 0.0
    for i, cost in enumerate(costs):
        if i == host:
            compute_end[i] = cost.compute_ms
            continue
        t_in = interconnect.transfer_ms(cost.input_nbytes, host, i, p)
        egress_free = egress_free + t_in
        compute_end[i] = egress_free + cost.compute_ms
    for i in sorted(range(p), key=lambda j: compute_end[j]):
        if i == host:
            continue
        steps.append(
            Step(
                op=Transfer(costs[i].output_nbytes, i, host),
                device=i,
                engine="xfer",
                stage="send_solution",
                shape=_UNIT,
                deps=(local_idx[i],),
                resource=f"dev{host}:ingress",
            )
        )
    return _price(interconnect, device_names, steps, "pipelined", group_label)


def failover_report(
    aborted: DistReport,
    recovery: DistReport,
    survivor_ids: Sequence[int] = None,
) -> DistReport:
    """Splice a recovery run's timelines after an aborted run.

    When a device dies mid-solve the work already scheduled is wasted:
    the aborted run's events stand as-is, and the recovery run — the
    re-partitioned solve on the survivors — replays starting at the
    aborted makespan. ``survivor_ids`` maps recovery device ``j`` back
    to its index in the original group (identity when omitted), so the
    combined report keeps the original group's device numbering and its
    ``total_ms`` prices the failure's true end-to-end cost: wasted
    attempt plus full replay.
    """
    offset = aborted.total_ms
    merged = {t.index: list(t.events) for t in aborted.timelines}
    names = {t.index: t.device_name for t in aborted.timelines}
    for j, timeline in enumerate(recovery.timelines):
        target = survivor_ids[j] if survivor_ids is not None else timeline.index
        merged.setdefault(target, []).extend(
            TimelineEvent(e.kind, e.label, e.start_ms + offset, e.end_ms + offset)
            for e in timeline.events
        )
        names.setdefault(target, timeline.device_name)
    timelines = tuple(
        DeviceTimeline(i, names[i], tuple(merged[i])) for i in sorted(merged)
    )
    return DistReport(
        group_label=aborted.group_label,
        schedule=f"failover:{recovery.schedule}",
        timelines=timelines,
    )


def single_device_report(
    device_name: str, local_ms: float, *, group_label: str = ""
) -> DistReport:
    """The degenerate one-device report: a single local solve, no comm."""
    timeline = DeviceTimeline(
        0,
        device_name,
        (TimelineEvent("compute", "local_solve", 0.0, local_ms),),
    )
    return DistReport(
        group_label=group_label, schedule="fused", timelines=(timeline,)
    )
