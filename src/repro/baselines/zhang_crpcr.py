"""The prior state of the art: Zhang et al.'s shared-memory-only solver.

Zhang, Cohen & Owens (PPoPP 2010) solve each system entirely inside one
processor's shared memory with a CR-PCR hybrid. It is fast on small
systems but — the limitation motivating this paper — it simply cannot
accept a system larger than shared memory: this wrapper raises
:class:`ResourceExhaustedError` exactly where the original would fail to
launch.

The cost model mirrors the base-kernel accounting with CR's cheaper
forward work replacing part of the PCR phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.cr_pcr import cr_pcr_solve
from ..gpu.cost import ComputePhase, KernelCost
from ..gpu.executor import Device, SimReport, make_device
from ..gpu.memory import MemoryTraffic
from ..kernels.base import (
    PCR_SMEM_INSTR_PER_EQ,
    SMEM_LOAD_VALUES_PER_EQ,
    KernelContext,
    dtype_size,
    warp_padded_threads,
    warps_for,
)
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ResourceExhaustedError
from ..util.validation import check_power_of_two, ilog2

__all__ = ["ZhangCrPcrSolver", "ZhangSolveResult"]

# CR's per-equation forward/backward update is slightly cheaper than a
# PCR update (one neighbour pair instead of two at full width).
_CR_INSTR_PER_EQ = 18.0


@dataclass(frozen=True)
class ZhangSolveResult:
    """Solution plus simulated timing of the smem-only solver."""

    x: np.ndarray
    report: SimReport

    @property
    def simulated_ms(self) -> float:
        """Simulated end-to-end time."""
        return self.report.total_ms


class ZhangCrPcrSolver:
    """CR-PCR per block, shared memory only — refuses oversized systems."""

    def __init__(self, device, pcr_switch: int = 64):
        self.device: Device = make_device(device)
        check_power_of_two(pcr_switch, "pcr_switch")
        self.pcr_switch = pcr_switch

    def max_system_size(self, dsize: int) -> int:
        """Largest system this solver accepts on its device."""
        return self.device.max_onchip_system_size(dsize)

    def solve(self, batch: TridiagonalBatch) -> ZhangSolveResult:
        """Solve ``batch`` if — and only if — it fits in shared memory."""
        n = batch.system_size
        check_power_of_two(n, "system_size")
        dsize = dtype_size(batch.dtype)
        limit = self.max_system_size(dsize)
        if n > limit:
            raise ResourceExhaustedError(
                f"system size {n} exceeds shared memory capacity {limit} of "
                f"{self.device.name}; the smem-only solver cannot split "
                "(this is the limitation the multi-stage method removes)"
            )
        session = self.device.session()
        ctx = KernelContext(session)
        session.submit(self._cost(ctx, batch.num_systems, n, dsize), stage="cr_pcr_smem")
        x = cr_pcr_solve(batch, self.pcr_switch)
        return ZhangSolveResult(x=x, report=session.report())

    def _cost(
        self, ctx: KernelContext, num_systems: int, n: int, dsize: int
    ) -> KernelCost:
        spec = ctx.spec
        switch = min(self.pcr_switch, n)
        cr_levels = ilog2(n) - ilog2(switch)
        threads = min(warp_padded_threads(max(32, n // 2)), spec.max_threads_per_block)

        # CR forward+backward touches a geometrically shrinking set.
        cr_eq_updates = 0.0
        width = n
        for _ in range(cr_levels):
            cr_eq_updates += width  # forward eliminate + back substitute
            width //= 2
        pcr_warp_instr = (
            num_systems
            * ilog2(max(2, switch))
            * warps_for(switch)
            * PCR_SMEM_INSTR_PER_EQ
        )
        cr_warp_instr = (
            num_systems * (cr_eq_updates / 32.0) * _CR_INSTR_PER_EQ
        )
        traffic = MemoryTraffic()
        traffic.add(
            spec, num_systems * SMEM_LOAD_VALUES_PER_EQ * n * dsize, stride=1
        )
        return KernelCost(
            name=f"zhang_cr_pcr[switch={switch}]",
            grid_blocks=num_systems,
            threads_per_block=threads,
            smem_per_block=4 * n * dsize,
            regs_per_thread=ctx.regs_per_thread_for_system(n, threads),
            phases=[
                ComputePhase(cr_warp_instr),
                ComputePhase(pcr_warp_instr, active_threads_per_block=switch),
            ],
            traffic=traffic,
        )
