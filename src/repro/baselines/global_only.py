"""Global-memory-only PCR solver (the Egloff-style reference point).

Runs PCR to completion entirely against global memory — no shared-memory
stage at all. Egloff's report (cited in the paper's introduction)
estimates ~60% performance degradation for this approach versus an
effective shared-memory implementation; the degradation emerges here from
the per-step global traffic (every one of the ``log2 n`` steps re-streams
the full working set) instead of a single load/solve/store.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.pcr import pcr_reduce
from ..gpu.executor import Device, SimReport, make_device
from ..kernels import CoopPcrKernel, DivideKernel, KernelContext, dtype_size
from ..systems.tridiagonal import TridiagonalBatch
from ..util.validation import check_power_of_two, ilog2

__all__ = ["GlobalPcrSolver", "GlobalSolveResult"]


@dataclass(frozen=True)
class GlobalSolveResult:
    """Solution plus simulated timing of the global-only solver."""

    x: np.ndarray
    report: SimReport

    @property
    def simulated_ms(self) -> float:
        """Simulated end-to-end time."""
        return self.report.total_ms


class GlobalPcrSolver:
    """Pure global-memory PCR: ``log2(n)`` full-sweep launches + divide."""

    def __init__(self, device):
        self.device: Device = make_device(device)

    def solve(self, batch: TridiagonalBatch) -> GlobalSolveResult:
        """Solve ``batch`` with global-memory PCR only."""
        n = batch.system_size
        check_power_of_two(n, "system_size")
        session = self.device.session()
        ctx = KernelContext(session)
        steps = ilog2(n)
        coop = CoopPcrKernel()
        dsize = dtype_size(batch.dtype)
        # Every step is a full grid-wide pass (coalesced, good efficiency —
        # the sin is the repeated traffic, not the access pattern).
        from ..gpu.memory import partition_camping_factor

        stride = 1
        for _ in range(steps):
            cost = coop.cost_per_step(ctx, batch.total_equations, dsize)
            # Unlike stage 1's scattered cooperative gathers, a plain
            # global PCR sweep streams contiguously — but still camps on
            # memory partitions at large coupling strides.
            cost.bandwidth_efficiency = partition_camping_factor(
                self.device.spec, stride
            )
            cost.extra_sync_us = 0.0
            session.submit(cost, stage="global_pcr_full")
            stride *= 2
        reduced = pcr_reduce(batch, steps)
        x = DivideKernel().run(ctx, reduced)
        return GlobalSolveResult(x=x, report=session.report())
