"""The CPU comparator: an MKL-like sequential LU tridiagonal solver.

The paper's Figure 8 baseline is Intel MKL's tridiagonal solve (LU
without pivoting) on a 3.4 GHz Core i5 with two cores: many systems are
distributed over two OpenMP threads (one MKL call per system), a single
system runs on one thread ("the MKL solver is sequential").

Numerics here are the library's own banded LU
(:mod:`repro.algorithms.lu`, validated against LAPACK); the *timing* is a
calibrated CPU cost model with three terms:

- a per-equation LU cost (factor + two sweeps) for data in cache,
- a per-MKL-call dispatch overhead,
- a bandwidth inflation once a system's working set spills the last-level
  cache.

Calibration targets are the paper's published milliseconds (10.70 / 37.9
/ 168.3 / 34 for 1K×1K / 2K×2K / 4K×4K / 1×2M); see EXPERIMENTS.md for
the fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.lu import lu_solve
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError
from ..util.units import ns_to_ms, us_to_ms

__all__ = ["CpuSpec", "INTEL_CORE_I5_34GHZ", "MklLikeCpuSolver", "CpuSolveResult"]


@dataclass(frozen=True)
class CpuSpec:
    """Cost-model parameters of the CPU platform."""

    name: str
    cores: int
    # Sustained single-thread LU cost per equation with streaming data.
    ns_per_equation: float
    # Fixed cost of one solver call (OpenMP dispatch + MKL entry).
    call_overhead_us: float
    # Achieved fraction of linear scaling when all cores participate
    # (shared memory bus; the paper's own numbers imply ~0.77 on two
    # cores: 21 ns/eq/core parallel vs 16.2 ns/eq single-thread).
    parallel_efficiency: float = 0.77
    # Systems whose ~5n-value working set exceeds the last-level cache
    # pay this bandwidth inflation.
    llc_bytes: int = 8 * 1024 * 1024
    cache_spill_inflation: float = 1.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError("cores must be >= 1")
        if self.ns_per_equation <= 0:
            raise ConfigurationError("ns_per_equation must be positive")
        if not 0.0 < self.parallel_efficiency <= 1.0:
            raise ConfigurationError("parallel_efficiency must be in (0, 1]")


# The paper's test platform ("3.4 GHz Intel Core i5 dual-core").
# ns_per_equation fits the 1x2M point (34 ms / 2^21 equations, single
# thread); parallel_efficiency fits the three OpenMP workloads
# (measured 10.7 / 37.9 / 168.3 ms; modelled 10.6 / 42 / 168).
INTEL_CORE_I5_34GHZ = CpuSpec(
    name="Intel Core i5 dual-core 3.4 GHz",
    cores=2,
    ns_per_equation=16.2,
    call_overhead_us=2.0,
    parallel_efficiency=0.77,
)


@dataclass(frozen=True)
class CpuSolveResult:
    """Solution plus modelled CPU time."""

    x: np.ndarray
    modeled_ms: float
    threads_used: int


class MklLikeCpuSolver:
    """Sequential LU per system, OpenMP-style parallel across systems."""

    def __init__(self, spec: CpuSpec = INTEL_CORE_I5_34GHZ):
        self.spec = spec

    def modeled_time_ms(self, num_systems: int, system_size: int, dtype_size: int) -> float:
        """Modelled wall time for an ``(m, n)`` workload (no numerics)."""
        spec = self.spec
        threads = 1 if num_systems == 1 else min(spec.cores, num_systems)
        scaling = 1.0 if threads == 1 else threads * spec.parallel_efficiency
        # LU keeps ~5 n-vectors live (a, b, c, d and the sweep scratch).
        working_set = 5 * system_size * dtype_size
        inflation = (
            spec.cache_spill_inflation if working_set > spec.llc_bytes else 1.0
        )
        per_system_ms = ns_to_ms(
            spec.ns_per_equation * system_size * inflation
        ) + us_to_ms(spec.call_overhead_us)
        return per_system_ms * num_systems / scaling

    def solve(self, batch: TridiagonalBatch) -> CpuSolveResult:
        """Solve ``batch`` exactly and attach the modelled time."""
        x = lu_solve(batch)
        ms = self.modeled_time_ms(
            batch.num_systems, batch.system_size, batch.dtype.itemsize
        )
        threads = 1 if batch.num_systems == 1 else min(
            self.spec.cores, batch.num_systems
        )
        return CpuSolveResult(x=x, modeled_ms=ms, threads_used=threads)
