"""Comparators: MKL-like CPU, Zhang CR-PCR, global-only PCR, Sakharnykh."""

from .global_only import GlobalPcrSolver, GlobalSolveResult
from .mkl import INTEL_CORE_I5_34GHZ, CpuSolveResult, CpuSpec, MklLikeCpuSolver
from .sakharnykh import SakharnykhSolveResult, SakharnykhSolver
from .zhang_crpcr import ZhangCrPcrSolver, ZhangSolveResult

__all__ = [
    "MklLikeCpuSolver",
    "CpuSpec",
    "CpuSolveResult",
    "INTEL_CORE_I5_34GHZ",
    "ZhangCrPcrSolver",
    "ZhangSolveResult",
    "GlobalPcrSolver",
    "GlobalSolveResult",
    "SakharnykhSolver",
    "SakharnykhSolveResult",
]
