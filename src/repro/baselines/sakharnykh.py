"""Sakharnykh-style thread-per-system Thomas solver (paper §III-A).

The contemporaneous alternative hybrid: split first, then hand each
subsystem to a CUDA *thread* running Thomas in global memory. The
paper's two criticisms are reproduced by the cost model:

1. it cannot use shared memory (all per-thread systems together exceed
   on-chip capacity), so every Thomas sweep streams global memory;
2. it is "only good at solving a large number of small systems" —
   thread-level parallelism means small workloads leave the machine idle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.pcr import pcr_unsplit_solution
from ..gpu.executor import Device, SimReport, make_device
from ..kernels import GlobalPcrKernel, KernelContext, ThomasGlobalKernel
from ..systems.tridiagonal import TridiagonalBatch
from ..util.validation import check_power_of_two, ilog2

__all__ = ["SakharnykhSolver", "SakharnykhSolveResult"]


@dataclass(frozen=True)
class SakharnykhSolveResult:
    """Solution plus simulated timing."""

    x: np.ndarray
    report: SimReport

    @property
    def simulated_ms(self) -> float:
        """Simulated end-to-end time."""
        return self.report.total_ms


class SakharnykhSolver:
    """PCR split to thread-sized systems, then thread-per-system Thomas."""

    def __init__(self, device, thread_system_size: int = 64):
        self.device: Device = make_device(device)
        check_power_of_two(thread_system_size, "thread_system_size")
        self.thread_system_size = thread_system_size

    def solve(self, batch: TridiagonalBatch) -> SakharnykhSolveResult:
        """Split every system to ``thread_system_size`` and Thomas-solve."""
        n = batch.system_size
        check_power_of_two(n, "system_size")
        session = self.device.session()
        ctx = KernelContext(session)
        target = min(self.thread_system_size, n)
        steps = ilog2(n) - ilog2(target)
        work = batch
        if steps > 0:
            work = GlobalPcrKernel().run(ctx, work, target, stage="split")
        x = ThomasGlobalKernel(layout="interleaved").run(ctx, work)
        x = pcr_unsplit_solution(x, steps)
        return SakharnykhSolveResult(x=x, report=session.report())
