"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is the chaos campaign's *script*: a frozen set of
fault specifications plus a seed. Every injection decision is a pure
function of ``(seed, what is being interpreted, attempt)`` — no global
RNG state — so the same plan produces the same faults run after run,
and pricing a program sees exactly the transient faults executing it
sees. Randomness comes from hashing the decision key with SHA-256, so
decisions are stable across processes and Python versions (``hash()``
is salted; it is never used here).

Fault kinds
-----------
- :class:`TransientKernelFault` — an instruction fails with probability
  ``p`` per attempt; the engine retries under a :class:`RetryPolicy`.
- :class:`DeviceFailure` — a device dies permanently once it has
  interpreted ``at_instruction`` costed instructions.
- :class:`LinkDegradation` — transfers run ``factor`` times slower.
- :class:`LinkPartition` — transfers between ``src`` and ``dst`` fail;
  the destination is unreachable and treated as lost for that run.
- :class:`WorkerStall` — a service worker sleeps ``stall_ms`` of real
  wall time before a merged solve with probability ``p`` (the
  straggler model; pushes requests toward their deadlines).
- :class:`ClockSkew` — one device's timeline runs ``factor`` times
  slower in priced schedules (a thermally-throttled straggler).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..util.errors import ConfigurationError

__all__ = [
    "TransientKernelFault",
    "DeviceFailure",
    "LinkDegradation",
    "LinkPartition",
    "WorkerStall",
    "ClockSkew",
    "RetryPolicy",
    "FaultPlan",
]


@dataclass(frozen=True)
class TransientKernelFault:
    """An instruction fails with probability ``probability`` per attempt.

    ``device``/``stage`` restrict the fault to one group member or one
    pipeline stage (``None`` matches everything). ``max_failures``
    caps the total number of injections this spec ever fires — handy
    for tests that want "fail exactly twice, then succeed".
    """

    probability: float
    device: Optional[int] = None
    stage: Optional[str] = None
    max_failures: Optional[int] = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )


@dataclass(frozen=True)
class DeviceFailure:
    """Device ``device`` dies permanently at its ``at_instruction``-th
    costed instruction (counted across the injector's lifetime)."""

    device: int
    at_instruction: int = 0


@dataclass(frozen=True)
class LinkDegradation:
    """All transfers run ``factor`` times slower (priced schedules)."""

    factor: float

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ConfigurationError(
                f"degradation factor must be >= 1, got {self.factor}"
            )


@dataclass(frozen=True)
class LinkPartition:
    """Transfers between ``src`` and ``dst`` (either direction) fail."""

    src: int
    dst: int


@dataclass(frozen=True)
class WorkerStall:
    """A worker sleeps ``stall_ms`` of wall time before a merged solve
    with probability ``probability`` (drawn per merged solve)."""

    probability: float
    stall_ms: float = 2.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ConfigurationError(
                f"stall probability must be in [0, 1], got {self.probability}"
            )
        if self.stall_ms < 0:
            raise ConfigurationError("stall_ms must be non-negative")


@dataclass(frozen=True)
class ClockSkew:
    """Device ``device``'s compute spans run ``factor`` times slower."""

    device: int
    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ConfigurationError(
                f"skew factor must be positive, got {self.factor}"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """How transient faults are retried.

    ``max_attempts`` bounds attempts per instruction (the first try
    counts); ``budget`` bounds total retries per program interpretation;
    backoff is exponential from ``base_backoff_ms`` capped at
    ``backoff_cap_ms`` — all in simulated milliseconds, the same
    currency as kernel costs, so recovery overhead composes with solve
    time.
    """

    max_attempts: int = 3
    budget: int = 16
    base_backoff_ms: float = 0.05
    backoff_cap_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.budget < 0:
            raise ConfigurationError("budget must be >= 0")

    def backoff_ms(self, attempt: int) -> float:
        """Backoff charged before retry ``attempt`` (0-based), capped."""
        return min(self.backoff_cap_ms, self.base_backoff_ms * (2.0 ** attempt))


def _draw(seed: int, key: Tuple) -> float:
    """A deterministic uniform draw in [0, 1) for one decision key."""
    text = f"{seed}|{key!r}".encode()
    digest = hashlib.sha256(text).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic description of what goes wrong.

    The plan is pure data: all runtime state (device health, per-spec
    fire counts, the retry budget) lives in the
    :class:`~repro.faults.FaultInjector` interpreting it.
    """

    seed: int = 0
    faults: Tuple = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def draw(self, *key) -> float:
        """The deterministic uniform draw for one decision key."""
        return _draw(self.seed, key)

    # -- spec accessors ----------------------------------------------------

    def transient_specs(self) -> Tuple[TransientKernelFault, ...]:
        return tuple(
            f for f in self.faults if isinstance(f, TransientKernelFault)
        )

    def device_failures(self) -> Tuple[DeviceFailure, ...]:
        return tuple(f for f in self.faults if isinstance(f, DeviceFailure))

    def stall_specs(self) -> Tuple[WorkerStall, ...]:
        return tuple(f for f in self.faults if isinstance(f, WorkerStall))

    def link_factor(self) -> float:
        """Combined slowdown factor of every degradation spec."""
        factor = 1.0
        for f in self.faults:
            if isinstance(f, LinkDegradation):
                factor *= f.factor
        return factor

    def partitioned(self, src: int, dst: int) -> bool:
        """Whether the ``src``-``dst`` link is partitioned (symmetric)."""
        for f in self.faults:
            if isinstance(f, LinkPartition) and {f.src, f.dst} == {src, dst}:
                return True
        return False

    def skew_factor(self, device: int) -> float:
        """Combined compute slowdown for one device."""
        factor = 1.0
        for f in self.faults:
            if isinstance(f, ClockSkew) and f.device == device:
                factor *= f.factor
        return factor

    def describe(self) -> str:
        """One-line summary for logs and CLI output."""
        kinds = ", ".join(type(f).__name__ for f in self.faults) or "none"
        return f"FaultPlan(seed={self.seed}, faults=[{kinds}])"
