"""Structured fault/recovery logging.

Every injected fault and every recovery action lands in a
:class:`FaultLog` as a :class:`FaultEvent` — what fired, where in the
program, what the system did about it, and what it cost in simulated
milliseconds. The log is the audit trail the chaos CLI and
:class:`~repro.service.ServiceStats` report from: the headline
guarantee ("a bit-correct solution or a typed error, never a silently
wrong answer") is only checkable because every deviation from the happy
path is recorded here.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["FaultEvent", "FaultLog"]


@dataclass(frozen=True)
class FaultEvent:
    """One fault or recovery action.

    ``kind`` names the fault family (``transient``, ``device_lost``,
    ``link_partition``, ``stall``, ``deadline``, ``overload``); ``action``
    names what the system did (``injected``, ``retried``, ``exhausted``,
    ``failed_over``, ``bisected``, ``shed``, ``expired``).
    ``penalty_ms`` is the simulated-time cost of the recovery (wasted
    attempt + backoff, or a failover's discarded makespan); wall-clock
    stalls record their real milliseconds instead.
    """

    kind: str
    action: str
    label: str = ""
    step: int = -1
    op: str = ""
    device: int = -1
    attempt: int = 0
    penalty_ms: float = 0.0
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "action": self.action,
            "label": self.label,
            "step": self.step,
            "op": self.op,
            "device": self.device,
            "attempt": self.attempt,
            "penalty_ms": self.penalty_ms,
            "detail": self.detail,
        }


class FaultLog:
    """Thread-safe, append-only record of fault/recovery events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[FaultEvent] = []
        self._metric = None

    def attach_metrics(self, registry) -> None:
        """Mirror every recorded event into an
        :class:`~repro.obs.MetricsRegistry` as
        ``repro_fault_events_total{kind,action}``. Already-recorded
        events are replayed so attach order does not matter."""
        counter = registry.counter(
            "repro_fault_events_total",
            "Fault and recovery events, by kind and action.",
        )
        with self._lock:
            self._metric = counter
            for event in self._events:
                counter.inc(kind=event.kind, action=event.action)

    def record(self, event: FaultEvent) -> None:
        """Append one event (workers and engines log concurrently)."""
        with self._lock:
            self._events.append(event)
            if self._metric is not None:
                self._metric.inc(kind=event.kind, action=event.action)

    def events(self) -> Tuple[FaultEvent, ...]:
        """A consistent copy of everything recorded so far."""
        with self._lock:
            return tuple(self._events)

    def counts(self) -> Dict[str, int]:
        """Event totals keyed ``kind:action``, insertion ordered."""
        out: Dict[str, int] = {}
        for event in self.events():
            key = f"{event.kind}:{event.action}"
            out[key] = out.get(key, 0) + 1
        return out

    def count(self, kind: str, action: str = "") -> int:
        """Events of one kind (optionally narrowed by action)."""
        return sum(
            1
            for e in self.events()
            if e.kind == kind and (not action or e.action == action)
        )

    @property
    def overhead_ms(self) -> float:
        """Total simulated recovery cost across every event."""
        return sum(e.penalty_ms for e in self.events())

    def summary(self) -> dict:
        """JSON-able roll-up for stats snapshots and campaign reports."""
        events = self.events()
        counts: Dict[str, int] = {}
        for event in events:
            key = f"{event.kind}:{event.action}"
            counts[key] = counts.get(key, 0) + 1
        return {
            "events": len(events),
            "counts": counts,
            "overhead_ms": sum(e.penalty_ms for e in events),
        }

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        summary = self.summary()
        lines = [
            f"fault log: {summary['events']} events, "
            f"{summary['overhead_ms']:.3f} ms recovery overhead"
        ]
        for key, count in sorted(summary["counts"].items()):
            lines.append(f"  {key:<28s} {count:5d}")
        return "\n".join(lines)
