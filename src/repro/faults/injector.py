"""The runtime that interprets a :class:`~repro.faults.FaultPlan`.

A :class:`FaultInjector` is the single stateful object threaded through
the execution stack: the IR :class:`~repro.ir.Engine` consults it before
every costed instruction (execute *and* price mode — decisions are
deterministic functions of the plan seed and the instruction, so both
modes see identical faults), the distributed solver consults it to
learn which devices are dead, and the batched service consults it for
worker stalls.

Device identity
---------------
Local solve programs always place work on device index 0, but in a
distributed run that "device 0" is really group member *i*. Injector
*views* solve this: :meth:`FaultInjector.for_device` binds a view to one
group member, :meth:`FaultInjector.for_survivors` to a post-failover
subgroup. Views translate local step indices to stable *global* device
ids and share one runtime (health, counters, log), so a device that
died stays dead across re-partitions and a fault spec targeting member
2 fires no matter which engine interprets member 2's instructions.

Pausing
-------
Planning and internal report pricing must not consume faults — a solver
comparing candidate schedules is not "running" anything. Wrap such
regions in :meth:`paused`; injection and counters are disabled for the
current thread inside the block.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, FrozenSet, Optional, Tuple

from ..util.errors import DeviceLostError, FaultInjectionError
from .log import FaultEvent, FaultLog
from .plan import FaultPlan, RetryPolicy

__all__ = ["FaultInjector"]


class _Runtime:
    """Mutable state shared by every view of one injector."""

    def __init__(self, plan: FaultPlan, log: Optional[FaultLog]):
        self.plan = plan
        self.log = log if log is not None else FaultLog()
        self.lock = threading.Lock()
        self.dead: set = set()  # global device ids
        self.instr_count: Dict[int, int] = {}  # costed instructions per id
        self.spec_fired: Dict[int, int] = {}  # transient spec -> fire count
        self.stall_seq = 0
        self._paused = threading.local()

    @property
    def paused(self) -> bool:
        return getattr(self._paused, "depth", 0) > 0

    def push_pause(self) -> None:
        self._paused.depth = getattr(self._paused, "depth", 0) + 1

    def pop_pause(self) -> None:
        self._paused.depth = getattr(self._paused, "depth", 0) - 1


class _Paused:
    def __init__(self, rt: _Runtime):
        self._rt = rt

    def __enter__(self) -> None:
        self._rt.push_pause()

    def __exit__(self, *exc_info) -> None:
        self._rt.pop_pause()


class FaultInjector:
    """Interprets a :class:`FaultPlan` against live executions.

    ``ids`` maps local device indices (as seen by one engine) to global
    device ids; ``None`` is the identity view of the root group.
    """

    def __init__(
        self,
        plan: FaultPlan,
        log: Optional[FaultLog] = None,
        *,
        _runtime: Optional[_Runtime] = None,
        _ids: Optional[Tuple[int, ...]] = None,
    ):
        self._rt = _runtime if _runtime is not None else _Runtime(plan, log)
        self._ids = _ids

    # -- plumbing ----------------------------------------------------------

    @property
    def plan(self) -> FaultPlan:
        return self._rt.plan

    @property
    def log(self) -> FaultLog:
        return self._rt.log

    @property
    def retry(self) -> RetryPolicy:
        return self._rt.plan.retry

    def for_device(self, device_id: int) -> "FaultInjector":
        """A view binding an engine's device 0 to group member
        ``device_id`` (local solve fragments of a distributed run).
        ``device_id`` is resolved through the current view, so views
        compose: a survivors view's member 1 maps to the global id of
        the second survivor."""
        return FaultInjector(
            self._rt.plan,
            _runtime=self._rt,
            _ids=(self.global_id(device_id),),
        )

    def for_survivors(self, device_ids: Tuple[int, ...]) -> "FaultInjector":
        """A view over a surviving subgroup, in subgroup order.

        ``device_ids`` are member indices of the *current* view, so
        repeated failovers nest: each re-partition narrows the mapping
        while global ids stay stable.
        """
        return FaultInjector(
            self._rt.plan,
            _runtime=self._rt,
            _ids=tuple(self.global_id(i) for i in device_ids),
        )

    def paused(self) -> _Paused:
        """Context manager: no injection/counting on this thread inside."""
        return _Paused(self._rt)

    def global_id(self, local_index: int) -> int:
        """The stable device id behind a local step index."""
        if self._ids is None:
            return local_index
        if local_index >= len(self._ids):
            return local_index  # defensive; programs validate placement
        return self._ids[local_index]

    def dead_devices(self) -> FrozenSet[int]:
        """Global ids of devices that have failed so far."""
        with self._rt.lock:
            return frozenset(self._rt.dead)

    def note(self, kind: str, action: str, **fields) -> None:
        """Record one fault/recovery event."""
        self._rt.log.record(FaultEvent(kind=kind, action=action, **fields))

    # -- explicit faults ---------------------------------------------------

    def fail_device(self, device_id: int, detail: str = "") -> None:
        """Kill a device now (tests and scripted chaos scenarios)."""
        with self._rt.lock:
            already = device_id in self._rt.dead
            self._rt.dead.add(device_id)
        if not already:
            self.note(
                "device_lost",
                "injected",
                device=device_id,
                detail=detail or "explicit kill",
            )

    def check_link(self, src: int, dst: int, label: str = "") -> None:
        """Raise if the link between two group members is partitioned.

        The distributed solver calls this where data would cross the
        interconnect during *execution* (dist programs are priced, not
        run step-by-step on data, so the engine's Transfer hook cannot
        fire there). The unreachable peer is marked dead so the
        failover re-partition excludes it.
        """
        rt = self._rt
        if rt.paused:
            return
        src_gid = self.global_id(src)
        dst_gid = self.global_id(dst)
        if src_gid == dst_gid or not rt.plan.partitioned(src_gid, dst_gid):
            return
        with rt.lock:
            already = dst_gid in rt.dead
            rt.dead.add(dst_gid)
        if not already:
            self.note(
                "link_partition",
                "injected",
                label=label,
                device=dst_gid,
                detail=f"link {src_gid}<->{dst_gid} partitioned",
            )
        raise DeviceLostError(
            f"link {src_gid}<->{dst_gid} is partitioned; device {dst_gid} "
            "unreachable",
            device=dst_gid,
        )

    # -- the engine hook ---------------------------------------------------

    def before_step(self, program, index: int, step, attempt: int) -> None:
        """Decide the fate of one instruction interpretation.

        Raises :class:`FaultInjectionError` for a transient fault (the
        engine retries) or :class:`DeviceLostError` for a permanent one
        (the caller fails over). Marker steps are never faulted — they
        cost nothing and model host bookkeeping.
        """
        rt = self._rt
        if rt.paused or step.is_marker:
            return
        plan = rt.plan
        gid = self.global_id(step.device)
        op_name = type(step.op).__name__

        # Link partition: the destination of a transfer across a cut
        # link is unreachable — model it as losing that peer.
        if op_name == "Transfer":
            src = self.global_id(step.op.src)
            dst = self.global_id(step.op.dst)
            if src != dst and plan.partitioned(src, dst):
                with rt.lock:
                    already = dst in rt.dead
                    rt.dead.add(dst)
                if not already:
                    self.note(
                        "link_partition",
                        "injected",
                        label=program.label,
                        step=index,
                        op=op_name,
                        device=dst,
                        detail=f"link {src}<->{dst} partitioned",
                    )
                raise DeviceLostError(
                    f"link {src}<->{dst} is partitioned; device {dst} "
                    "unreachable",
                    device=dst,
                )

        # Permanent device health: dead devices stay dead, and scripted
        # failures fire once their instruction count comes up. Retries
        # of one instruction advance the count only once.
        with rt.lock:
            if gid in rt.dead:
                dead_now = True
                fired = False
            else:
                dead_now = False
                fired = False
                if attempt == 0:
                    count = rt.instr_count.get(gid, 0)
                    rt.instr_count[gid] = count + 1
                else:
                    count = rt.instr_count.get(gid, 1) - 1
                for spec in plan.device_failures():
                    if spec.device == gid and count >= spec.at_instruction:
                        rt.dead.add(gid)
                        dead_now = True
                        fired = True
                        break
        if dead_now:
            if fired:
                self.note(
                    "device_lost",
                    "injected",
                    label=program.label,
                    step=index,
                    op=op_name,
                    device=gid,
                    detail="scripted device failure",
                )
            raise DeviceLostError(
                f"device {gid} failed permanently "
                f"(step {index}: {op_name})",
                device=gid,
            )

        # Transient kernel faults: deterministic per (program shape,
        # instruction, attempt), so price and execute agree.
        for spec_idx, spec in enumerate(plan.transient_specs()):
            if spec.device is not None and spec.device != gid:
                continue
            if spec.stage is not None and spec.stage != step.stage:
                continue
            if spec.probability <= 0.0:
                continue
            draw = plan.draw(
                "transient",
                spec_idx,
                program.kind,
                program.num_systems,
                program.system_size,
                index,
                attempt,
            )
            if draw >= spec.probability:
                continue
            with rt.lock:
                fired = rt.spec_fired.get(spec_idx, 0)
                if (
                    spec.max_failures is not None
                    and fired >= spec.max_failures
                ):
                    continue
                rt.spec_fired[spec_idx] = fired + 1
            self.note(
                "transient",
                "injected",
                label=program.label,
                step=index,
                op=op_name,
                device=gid,
                attempt=attempt,
            )
            raise FaultInjectionError(
                f"transient kernel fault (attempt {attempt})"
            )

    def adjust_duration_ms(self, step, duration_ms: float) -> float:
        """Environmental slowdowns for one priced step: clock skew on
        compute spans, link degradation on transfers.

        Applies even while :meth:`paused` — these factors are pure
        functions of the plan (nothing is consumed or logged), and the
        planner *should* see the degraded world when comparing
        candidate schedules.
        """
        rt = self._rt
        if type(step.op).__name__ == "Transfer":
            return duration_ms * rt.plan.link_factor()
        if step.engine == "compute":
            return duration_ms * rt.plan.skew_factor(
                self.global_id(step.device)
            )
        return duration_ms

    # -- service hooks -----------------------------------------------------

    def maybe_stall(self, label: str = "") -> float:
        """Stall the calling worker per the plan; returns stalled ms."""
        rt = self._rt
        if rt.paused:
            return 0.0
        specs = rt.plan.stall_specs()
        if not specs:
            return 0.0
        with rt.lock:
            seq = rt.stall_seq
            rt.stall_seq = seq + 1
        total = 0.0
        for spec_idx, spec in enumerate(specs):
            if rt.plan.draw("stall", spec_idx, seq) < spec.probability:
                total += spec.stall_ms
        if total > 0.0:
            time.sleep(total / 1e3)
            self.note(
                "stall", "injected", label=label, penalty_ms=total,
                detail="worker stall (wall-clock ms)",
            )
        return total
