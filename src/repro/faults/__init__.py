"""Fault injection and recovery: chaos testing for the solver stack.

The layer has three pieces:

- :mod:`~repro.faults.plan` — seeded, deterministic fault *scripts*
  (:class:`FaultPlan` and its spec dataclasses).
- :mod:`~repro.faults.injector` — the stateful :class:`FaultInjector`
  that interprets a plan against live executions (the IR engine hook,
  device health, worker stalls).
- :mod:`~repro.faults.log` — the structured :class:`FaultLog` audit
  trail every injection and recovery action lands in.

:mod:`~repro.faults.chaos` builds on all three: seeded campaigns that
hammer the batched service and the distributed solver with mixed
faults and verify the headline guarantee — a bit-correct solution or a
typed error, never a silently wrong answer.
"""

from .chaos import ChaosReport, run_campaign, run_sweep
from .injector import FaultInjector
from .log import FaultEvent, FaultLog
from .plan import (
    ClockSkew,
    DeviceFailure,
    FaultPlan,
    LinkDegradation,
    LinkPartition,
    RetryPolicy,
    TransientKernelFault,
    WorkerStall,
)

__all__ = [
    "ChaosReport",
    "ClockSkew",
    "DeviceFailure",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "LinkDegradation",
    "LinkPartition",
    "RetryPolicy",
    "TransientKernelFault",
    "WorkerStall",
    "run_campaign",
    "run_sweep",
]
