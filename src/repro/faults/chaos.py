"""Seeded chaos campaigns over the service and the distributed solver.

A campaign is the fault layer's acceptance harness: hammer the system
with a seeded mix of transient kernel faults, worker stalls, tight
deadlines, poisoned (singular) requests, and a mid-run permanent device
failure, then audit every single outcome against the headline
guarantee —

    **a bit-correct solution (verified residual) or a typed error,
    never a silently wrong answer.**

Two phases:

- **service phase** — ``requests`` mixed-shape solves (with singular
  systems sprinkled in) through a verifying
  :class:`~repro.service.BatchSolveService` under transient faults,
  stalls, deadlines, and a circuit breaker. Every returned solution is
  re-checked against its own request's residual tolerance; every
  failure must be a typed :class:`~repro.util.errors.ReproError`.
- **failover phase** — a :class:`~repro.dist.DistributedSolver` over
  ``dist_devices`` simulated devices loses one device permanently
  mid-run; every workload must still solve exactly on the survivors,
  with the recovery overhead priced into the reports.
- **serve phase** — the same request mix through the async serving
  tier (:class:`~repro.serve.AsyncSolveService`): sharded caches, a
  deliberately tight :class:`~repro.serve.AdmissionController` (so
  tenant quotas and priority watermarks actually shed), the autoscaler
  resizing the fleet mid-chaos — all under the same transient faults
  and stalls. Admission sheds must be *typed*
  (:class:`~repro.util.errors.TenantQuotaExceededError` /
  :class:`~repro.util.errors.PriorityShedError`); the guarantee reads
  identically: verified solution or typed error, never silently wrong.
- **numerics phase** — adversarial *data* instead of injected faults:
  near-singular, non-dominant, huge-dynamic-range, NaN/Inf-poisoned,
  and exactly singular systems submitted with an explicit residual
  ``tolerance``, so the numerical-safety governor (dominance estimate,
  escalation ladder, boundary validation) owns the guarantee instead of
  the exact verifier. Malformed systems must be rejected typed at the
  boundary; everything delivered must measure within tolerance.

Everything is deterministic in the seed; :func:`run_sweep` repeats the
campaign across seeds for the nightly tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..algorithms.verify import default_tolerance, max_residual
from ..dist.solver import DistributedSolver
from ..service.queue import CircuitBreaker
from ..service.workers import BatchSolveService
from ..systems.generators import (
    huge_dynamic_range,
    ill_conditioned,
    inf_poisoned,
    mixed_requests,
    nan_poisoned,
    random_dominant,
    random_uniform,
    singular,
)
from ..util.errors import (
    InvalidSystemError,
    ReproError,
    ServiceOverloadedError,
)
from .injector import FaultInjector
from .log import FaultLog
from .plan import (
    DeviceFailure,
    FaultPlan,
    RetryPolicy,
    TransientKernelFault,
    WorkerStall,
)

__all__ = ["ChaosReport", "run_campaign", "run_sweep"]

# Every POISON_EVERY-th service request is a singular system; every
# TIGHT_DEADLINE_EVERY-th carries an already-expired deadline.
POISON_EVERY = 17
TIGHT_DEADLINE_EVERY = 13


@dataclass(frozen=True)
class ChaosReport:
    """The audited outcome of one seeded campaign."""

    seed: int
    requests: int
    solved: int
    typed_errors: int  # poisoned requests failing with a ReproError
    deadline_expired: int
    shed: int
    untyped_errors: int  # must be zero: every failure is typed
    silent_wrong: int  # must be zero: every answer verifies
    worst_residual_ratio: float  # max over solved of residual/tolerance
    retries: int
    stalls: int
    bisections: int
    failover: Dict = field(default_factory=dict)
    serve: Dict = field(default_factory=dict)
    numerics: Dict = field(default_factory=dict)
    fault_summary: Dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """The headline guarantee held for every request."""
        serve_clean = not self.serve or (
            self.serve["silent_wrong"] == 0
            and self.serve["untyped_errors"] == 0
            and self.serve["solved"]
            + self.serve["typed_errors"]
            + self.serve["deadline_expired"]
            + self.serve["shed"]
            == self.serve["requests"]
        )
        numerics_clean = not self.numerics or (
            self.numerics["silent_wrong"] == 0
            and self.numerics["untyped_errors"] == 0
            and self.numerics["solved"] + self.numerics["typed_errors"]
            == self.numerics["requests"]
        )
        return (
            self.silent_wrong == 0
            and self.untyped_errors == 0
            and self.solved
            + self.typed_errors
            + self.deadline_expired
            + self.shed
            == self.requests
            and self.failover.get("silent_wrong", 0) == 0
            and serve_clean
            and numerics_clean
        )

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "requests": self.requests,
            "solved": self.solved,
            "typed_errors": self.typed_errors,
            "deadline_expired": self.deadline_expired,
            "shed": self.shed,
            "untyped_errors": self.untyped_errors,
            "silent_wrong": self.silent_wrong,
            "worst_residual_ratio": self.worst_residual_ratio,
            "retries": self.retries,
            "stalls": self.stalls,
            "bisections": self.bisections,
            "clean": self.clean,
            "failover": self.failover,
            "serve": self.serve,
            "numerics": self.numerics,
            "fault_summary": self.fault_summary,
        }

    def describe(self) -> str:
        fo = self.failover
        lines = [
            f"chaos campaign (seed {self.seed}): "
            f"{'CLEAN' if self.clean else 'VIOLATED'}",
            f"  service : {self.requests} requests -> {self.solved} solved, "
            f"{self.typed_errors} typed errors, "
            f"{self.deadline_expired} expired, {self.shed} shed",
            f"  audit   : {self.silent_wrong} silently wrong, "
            f"{self.untyped_errors} untyped errors, "
            f"worst residual at {self.worst_residual_ratio:.2f}x tolerance",
            f"  recovery: {self.retries} retries, {self.stalls} stalls, "
            f"{self.bisections} bisections",
        ]
        if fo:
            lines.append(
                f"  failover: {fo['solves']} dist solves with device "
                f"{fo['killed_device']} dead, {fo['failovers']} failovers, "
                f"{fo['recovery_overhead_ms']:.3f} ms overhead priced"
            )
        if self.serve:
            sv = self.serve
            sheds = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(sv["shed_reasons"].items())
            )
            lines.append(
                f"  serve   : {sv['requests']} requests -> "
                f"{sv['solved']} solved, {sv['typed_errors']} typed, "
                f"{sv['deadline_expired']} expired, {sv['shed']} shed "
                f"({sheds or 'none'}), fleet peaked at "
                f"{sv['max_workers']} workers"
            )
        if self.numerics:
            nm = self.numerics
            lines.append(
                f"  numerics: {nm['requests']} adversarial requests -> "
                f"{nm['solved']} verified, {nm['typed_errors']} typed "
                f"({nm['rejected_invalid']} rejected at the boundary, "
                f"{nm['breakdowns']} breakdowns), "
                f"{nm['refined']} refined, {nm['resolved']} re-solved"
            )
        return "\n".join(lines)


def _service_requests(seed: int, count: int) -> List:
    """The seeded request mix: mixed shapes plus sprinkled poison."""
    rng = np.random.default_rng(seed)
    requests = mixed_requests(count, rng=rng)
    for i in range(POISON_EVERY - 1, count, POISON_EVERY):
        bad = requests[i]
        requests[i] = singular(
            bad.num_systems, bad.system_size, dtype=bad.dtype
        )
    return requests


def _run_service_phase(
    seed: int, count: int, transient_p: float, log: FaultLog
) -> dict:
    plan = FaultPlan(
        seed=seed,
        faults=(
            TransientKernelFault(probability=transient_p),
            WorkerStall(probability=0.05, stall_ms=0.5),
        ),
        retry=RetryPolicy(max_attempts=4, budget=64),
    )
    injector = FaultInjector(plan, log)
    service = BatchSolveService(
        verify=True,
        max_workers=4,
        auto_flush=16,
        faults=injector,
        breaker=CircuitBreaker(failure_threshold=25, cooldown_s=0.02),
    )
    requests = _service_requests(seed, count)
    futures = []
    shed = 0
    typed_at_submit = 0
    with service:
        for i, batch in enumerate(requests):
            expired = (i + 1) % TIGHT_DEADLINE_EVERY == 0
            try:
                futures.append(
                    (
                        batch,
                        service.submit(
                            batch,
                            deadline_ms=0.0 if expired else 60_000.0,
                        ),
                    )
                )
            except InvalidSystemError:
                # The sprinkled singular systems (zero diagonal row) are
                # rejected typed at the boundary now — no kernel ever
                # sees them. Still a typed error for the audit.
                typed_at_submit += 1
            except ServiceOverloadedError:
                shed += 1
        service.flush()
        service.drain()

    solved = expired_n = untyped = silent = 0
    typed = typed_at_submit
    worst_ratio = 0.0
    for batch, fut in futures:
        exc = fut.exception()
        if exc is None:
            residual = max_residual(batch, fut.result().x)
            ratio = residual / default_tolerance(batch)
            worst_ratio = max(worst_ratio, ratio)
            if ratio > 1.0:
                silent += 1
            else:
                solved += 1
        elif isinstance(exc, ReproError):
            if type(exc).__name__ == "DeadlineExceededError":
                expired_n += 1
            else:
                typed += 1
        else:
            untyped += 1
    snap = service.stats.snapshot()
    return {
        "requests": count,
        "solved": solved,
        "typed_errors": typed,
        "deadline_expired": expired_n,
        "shed": shed,
        "untyped_errors": untyped,
        "silent_wrong": silent,
        "worst_residual_ratio": worst_ratio,
        "bisections": snap["group_bisections"],
    }


def _run_serve_phase(
    seed: int, count: int, transient_p: float, log: FaultLog
) -> dict:
    """The campaign's request mix through the async serving tier.

    Quotas are deliberately tight — a "noisy" batch-class tenant with a
    small pending cap and rate limit sends a third of the traffic — so
    admission genuinely sheds, and the audit can insist every shed was
    typed. The autoscaler runs too: fleet resizing mid-chaos must not
    cost a single verified answer.
    """
    from ..serve import (
        AdmissionController,
        AsyncSolveService,
        TenantQuota,
    )
    from ..util.errors import (
        PriorityShedError,
        TenantQuotaExceededError,
    )

    plan = FaultPlan(
        seed=seed + 2,
        faults=(
            TransientKernelFault(probability=transient_p),
            WorkerStall(probability=0.05, stall_ms=0.5),
        ),
        retry=RetryPolicy(max_attempts=4, budget=64),
    )
    injector = FaultInjector(plan, log)
    # A deterministic admission clock (0.5 ms per reading): campaign
    # reports must be bit-identical per seed, so neither the rate
    # quota's refill nor anything else may read the wall clock.
    sim_clock = {"s": 0.0}

    def _tick() -> float:
        sim_clock["s"] += 0.0005
        return sim_clock["s"]

    admission = AdmissionController(
        capacity=32,
        quotas={
            "noisy": TenantQuota(
                max_pending=4, rate_per_s=2000.0, burst=4, priority="batch"
            )
        },
        default_quota=TenantQuota(max_pending=16, priority="standard"),
        clock=_tick,
    )
    service = AsyncSolveService(
        verify=True,
        workers=2,
        num_shards=4,
        admission=admission,
        autoscale=True,
        faults=injector,
    )
    requests = _service_requests(seed + 2, count)
    futures = []
    shed = 0
    typed_at_submit = 0
    shed_reasons: Dict[str, int] = {}
    max_workers = service.fleet.size
    with service:
        for i, batch in enumerate(requests):
            tenant = "noisy" if i % 3 == 0 else f"tenant{i % 2}"
            priority = "interactive" if tenant == "tenant1" else None
            expired = (i + 1) % TIGHT_DEADLINE_EVERY == 0
            try:
                futures.append(
                    (
                        batch,
                        service.submit_sync(
                            batch,
                            tenant=tenant,
                            priority=priority,
                            deadline_ms=0.0 if expired else 60_000.0,
                        ),
                    )
                )
            except InvalidSystemError:
                typed_at_submit += 1
            except TenantQuotaExceededError as exc:
                shed += 1
                key = f"tenant_{exc.quota}"
                shed_reasons[key] = shed_reasons.get(key, 0) + 1
            except PriorityShedError as exc:
                shed += 1
                key = f"priority_{exc.priority}"
                shed_reasons[key] = shed_reasons.get(key, 0) + 1
            except ServiceOverloadedError:
                # The audit wants *typed* sheds from admission; a bare
                # overload here (queue/breaker) still counts as shed.
                shed += 1
                shed_reasons["overloaded"] = (
                    shed_reasons.get("overloaded", 0) + 1
                )
            if (i + 1) % 32 == 0:
                # Flush *and drain* each window: in-flight completions
                # release admission tickets, so determinism requires
                # every window's futures to settle before the next
                # window's admission decisions.
                service.flush()
                service.drain()
                max_workers = max(max_workers, service.fleet.size)
        service.flush()
        service.drain()
        max_workers = max(max_workers, service.fleet.size)

    solved = expired_n = untyped = silent = 0
    typed = typed_at_submit
    worst_ratio = 0.0
    for batch, fut in futures:
        exc = fut.exception()
        if exc is None:
            residual = max_residual(batch, fut.result().x)
            ratio = residual / default_tolerance(batch)
            worst_ratio = max(worst_ratio, ratio)
            if ratio > 1.0:
                silent += 1
            else:
                solved += 1
        elif isinstance(exc, ReproError):
            if type(exc).__name__ == "DeadlineExceededError":
                expired_n += 1
            else:
                typed += 1
        else:
            untyped += 1
    return {
        "requests": count,
        "solved": solved,
        "typed_errors": typed,
        "deadline_expired": expired_n,
        "shed": shed,
        "shed_reasons": shed_reasons,
        "untyped_errors": untyped,
        "silent_wrong": silent,
        "worst_residual_ratio": worst_ratio,
        "max_workers": max_workers,
        "cache": service.cache.counters(),
    }


def _run_numerics_phase(seed: int, count: int, tolerance: float) -> dict:
    """Adversarial *data* through the governed service — no injected faults.

    The request mix is every kind of numerically hostile system the
    generators know how to make: near-singular, non-dominant,
    huge-dynamic-range, NaN/Inf-poisoned, and exactly singular, leavened
    with well-behaved dominant batches. Every request carries an explicit
    ``tolerance``, so the numerical-safety governor (not the exact
    verifier) owns the guarantee, which here reads:

        **a solution whose measured relative residual is within the
        requested tolerance, or a typed error — never neither.**

    Poisoned and singular systems must be rejected typed at the boundary;
    near-singular ones may solve via the escalation ladder or fail with
    :class:`~repro.util.errors.NumericalBreakdownError` — both are fine,
    a wrong answer delivered silently is not.
    """
    rng = np.random.default_rng(seed + 3)
    hostile = (
        lambda m, n, g: random_dominant(m, n, rng=g),
        lambda m, n, g: huge_dynamic_range(m, n, rng=g),
        lambda m, n, g: random_uniform(m, n, rng=g),
        lambda m, n, g: ill_conditioned(m, n, epsilon=1e-13, rng=g),
        # Moderately ill-conditioned: the staged solve misses tolerance
        # but one refinement step recovers it — exercises the ladder's
        # middle rung, not just accept/breakdown.
        lambda m, n, g: ill_conditioned(m, n, epsilon=1e-7, rng=g),
        lambda m, n, g: nan_poisoned(m, n, rng=g),
        lambda m, n, g: inf_poisoned(m, n, rng=g),
        lambda m, n, g: singular(m, n),
    )
    service = BatchSolveService(max_workers=2, auto_flush=8)
    futures = []
    rejected_invalid = 0
    with service:
        for i in range(count):
            m = int(rng.integers(1, 5))
            n = int(rng.choice((64, 128, 256)))
            batch = hostile[i % len(hostile)](m, n, rng)
            try:
                futures.append(
                    (batch, service.submit(batch, tolerance=tolerance))
                )
            except InvalidSystemError:
                rejected_invalid += 1
        service.flush()
        service.drain()
        outcomes = service.metrics.get("repro_numerics_outcomes_total")
        refined = int(outcomes.value(path="service", rung="refined"))
        resolved = int(outcomes.value(path="service", rung="resolved"))

    solved = untyped = silent = breakdowns = 0
    typed = rejected_invalid
    worst_ratio = 0.0
    for batch, fut in futures:
        exc = fut.exception()
        if exc is None:
            ratio = batch.residual(fut.result().x).max() / tolerance
            worst_ratio = max(worst_ratio, ratio)
            if ratio > 1.0:
                silent += 1
            else:
                solved += 1
        elif isinstance(exc, ReproError):
            typed += 1
            if type(exc).__name__ == "NumericalBreakdownError":
                breakdowns += 1
        else:
            untyped += 1
    return {
        "requests": count,
        "tolerance": tolerance,
        "solved": solved,
        "typed_errors": typed,
        "rejected_invalid": rejected_invalid,
        "breakdowns": breakdowns,
        "refined": refined,
        "resolved": resolved,
        "untyped_errors": untyped,
        "silent_wrong": silent,
        "worst_residual_ratio": worst_ratio,
    }


def _run_failover_phase(
    seed: int, devices: int, solves: int, log: FaultLog
) -> dict:
    """Kill one device mid-run; every workload must still solve."""
    killed = devices // 2
    plan = FaultPlan(
        seed=seed, faults=(DeviceFailure(device=killed, at_instruction=1),)
    )
    injector = FaultInjector(plan, log)
    solver = DistributedSolver(devices, verify=True, faults=injector)
    solved = silent = 0
    worst_ratio = 0.0
    rng = np.random.default_rng(seed + 1)
    for i in range(solves):
        batch = random_dominant(4, 4096, rng=rng)
        result = solver.solve(batch)
        ratio = max_residual(batch, result.x) / default_tolerance(batch)
        worst_ratio = max(worst_ratio, ratio)
        if ratio > 1.0:
            silent += 1
        else:
            solved += 1
    return {
        "solves": solves,
        "solved": solved,
        "silent_wrong": silent,
        "worst_residual_ratio": worst_ratio,
        "killed_device": killed,
        "dead_devices": sorted(injector.dead_devices()),
        "failovers": log.count("device_lost", "failed_over"),
        "recovery_overhead_ms": sum(
            e.penalty_ms
            for e in log.events()
            if e.kind == "device_lost" and e.action == "failed_over"
        ),
    }


def run_campaign(
    seed: int = 0,
    *,
    requests: int = 200,
    transient_p: float = 0.02,
    dist_devices: int = 4,
    failover_solves: int = 3,
    serve_requests: int = 120,
    numerics_requests: int = 64,
    tolerance: float = 1e-8,
) -> ChaosReport:
    """One full four-phase campaign; deterministic in ``seed``.

    ``serve_requests=0`` skips the serving-tier phase and
    ``numerics_requests=0`` skips the adversarial-numerics phase (the
    report's corresponding dict stays empty and ``clean`` ignores it).
    ``tolerance`` is the per-request residual bound the numerics phase
    asks the governor to enforce.
    """
    log = FaultLog()
    service = _run_service_phase(seed, requests, transient_p, log)
    failover = _run_failover_phase(seed, dist_devices, failover_solves, log)
    serve = (
        _run_serve_phase(seed, serve_requests, transient_p, log)
        if serve_requests
        else {}
    )
    numerics = (
        _run_numerics_phase(seed, numerics_requests, tolerance)
        if numerics_requests
        else {}
    )
    summary = log.summary()
    return ChaosReport(
        seed=seed,
        requests=service["requests"],
        solved=service["solved"],
        typed_errors=service["typed_errors"],
        deadline_expired=service["deadline_expired"],
        shed=service["shed"],
        untyped_errors=service["untyped_errors"],
        silent_wrong=service["silent_wrong"],
        worst_residual_ratio=max(
            service["worst_residual_ratio"], failover["worst_residual_ratio"]
        ),
        retries=summary["counts"].get("transient:retried", 0),
        stalls=summary["counts"].get("stall:injected", 0),
        bisections=service["bisections"],
        failover=failover,
        serve=serve,
        numerics=numerics,
        fault_summary=summary,
    )


def run_sweep(
    seeds: Sequence[int] = (0, 1, 2),
    *,
    requests: int = 200,
    transient_p: float = 0.02,
    dist_devices: int = 4,
    numerics_requests: int = 64,
    tolerance: float = 1e-8,
) -> Tuple[ChaosReport, ...]:
    """The campaign across several seeds (the nightly configuration)."""
    return tuple(
        run_campaign(
            seed,
            requests=requests,
            transient_p=transient_p,
            dist_devices=dist_devices,
            numerics_requests=numerics_requests,
            tolerance=tolerance,
        )
        for seed in seeds
    )
