"""Seeded chaos campaigns over the service and the distributed solver.

A campaign is the fault layer's acceptance harness: hammer the system
with a seeded mix of transient kernel faults, worker stalls, tight
deadlines, poisoned (singular) requests, and a mid-run permanent device
failure, then audit every single outcome against the headline
guarantee —

    **a bit-correct solution (verified residual) or a typed error,
    never a silently wrong answer.**

Two phases:

- **service phase** — ``requests`` mixed-shape solves (with singular
  systems sprinkled in) through a verifying
  :class:`~repro.service.BatchSolveService` under transient faults,
  stalls, deadlines, and a circuit breaker. Every returned solution is
  re-checked against its own request's residual tolerance; every
  failure must be a typed :class:`~repro.util.errors.ReproError`.
- **failover phase** — a :class:`~repro.dist.DistributedSolver` over
  ``dist_devices`` simulated devices loses one device permanently
  mid-run; every workload must still solve exactly on the survivors,
  with the recovery overhead priced into the reports.

Everything is deterministic in the seed; :func:`run_sweep` repeats the
campaign across seeds for the nightly tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..algorithms.verify import default_tolerance, max_residual
from ..dist.solver import DistributedSolver
from ..service.queue import CircuitBreaker
from ..service.workers import BatchSolveService
from ..systems.generators import mixed_requests, random_dominant, singular
from ..util.errors import ReproError, ServiceOverloadedError
from .injector import FaultInjector
from .log import FaultLog
from .plan import (
    DeviceFailure,
    FaultPlan,
    RetryPolicy,
    TransientKernelFault,
    WorkerStall,
)

__all__ = ["ChaosReport", "run_campaign", "run_sweep"]

# Every POISON_EVERY-th service request is a singular system; every
# TIGHT_DEADLINE_EVERY-th carries an already-expired deadline.
POISON_EVERY = 17
TIGHT_DEADLINE_EVERY = 13


@dataclass(frozen=True)
class ChaosReport:
    """The audited outcome of one seeded campaign."""

    seed: int
    requests: int
    solved: int
    typed_errors: int  # poisoned requests failing with a ReproError
    deadline_expired: int
    shed: int
    untyped_errors: int  # must be zero: every failure is typed
    silent_wrong: int  # must be zero: every answer verifies
    worst_residual_ratio: float  # max over solved of residual/tolerance
    retries: int
    stalls: int
    bisections: int
    failover: Dict = field(default_factory=dict)
    fault_summary: Dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """The headline guarantee held for every request."""
        return (
            self.silent_wrong == 0
            and self.untyped_errors == 0
            and self.solved
            + self.typed_errors
            + self.deadline_expired
            + self.shed
            == self.requests
            and self.failover.get("silent_wrong", 0) == 0
        )

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "requests": self.requests,
            "solved": self.solved,
            "typed_errors": self.typed_errors,
            "deadline_expired": self.deadline_expired,
            "shed": self.shed,
            "untyped_errors": self.untyped_errors,
            "silent_wrong": self.silent_wrong,
            "worst_residual_ratio": self.worst_residual_ratio,
            "retries": self.retries,
            "stalls": self.stalls,
            "bisections": self.bisections,
            "clean": self.clean,
            "failover": self.failover,
            "fault_summary": self.fault_summary,
        }

    def describe(self) -> str:
        fo = self.failover
        lines = [
            f"chaos campaign (seed {self.seed}): "
            f"{'CLEAN' if self.clean else 'VIOLATED'}",
            f"  service : {self.requests} requests -> {self.solved} solved, "
            f"{self.typed_errors} typed errors, "
            f"{self.deadline_expired} expired, {self.shed} shed",
            f"  audit   : {self.silent_wrong} silently wrong, "
            f"{self.untyped_errors} untyped errors, "
            f"worst residual at {self.worst_residual_ratio:.2f}x tolerance",
            f"  recovery: {self.retries} retries, {self.stalls} stalls, "
            f"{self.bisections} bisections",
        ]
        if fo:
            lines.append(
                f"  failover: {fo['solves']} dist solves with device "
                f"{fo['killed_device']} dead, {fo['failovers']} failovers, "
                f"{fo['recovery_overhead_ms']:.3f} ms overhead priced"
            )
        return "\n".join(lines)


def _service_requests(seed: int, count: int) -> List:
    """The seeded request mix: mixed shapes plus sprinkled poison."""
    rng = np.random.default_rng(seed)
    requests = mixed_requests(count, rng=rng)
    for i in range(POISON_EVERY - 1, count, POISON_EVERY):
        bad = requests[i]
        requests[i] = singular(
            bad.num_systems, bad.system_size, dtype=bad.dtype
        )
    return requests


def _run_service_phase(
    seed: int, count: int, transient_p: float, log: FaultLog
) -> dict:
    plan = FaultPlan(
        seed=seed,
        faults=(
            TransientKernelFault(probability=transient_p),
            WorkerStall(probability=0.05, stall_ms=0.5),
        ),
        retry=RetryPolicy(max_attempts=4, budget=64),
    )
    injector = FaultInjector(plan, log)
    service = BatchSolveService(
        verify=True,
        max_workers=4,
        auto_flush=16,
        faults=injector,
        breaker=CircuitBreaker(failure_threshold=25, cooldown_s=0.02),
    )
    requests = _service_requests(seed, count)
    futures = []
    shed = 0
    with service:
        for i, batch in enumerate(requests):
            expired = (i + 1) % TIGHT_DEADLINE_EVERY == 0
            try:
                futures.append(
                    (
                        batch,
                        service.submit(
                            batch,
                            deadline_ms=0.0 if expired else 60_000.0,
                        ),
                    )
                )
            except ServiceOverloadedError:
                shed += 1
        service.flush()
        service.drain()

    solved = typed = expired_n = untyped = silent = 0
    worst_ratio = 0.0
    for batch, fut in futures:
        exc = fut.exception()
        if exc is None:
            residual = max_residual(batch, fut.result().x)
            ratio = residual / default_tolerance(batch)
            worst_ratio = max(worst_ratio, ratio)
            if ratio > 1.0:
                silent += 1
            else:
                solved += 1
        elif isinstance(exc, ReproError):
            if type(exc).__name__ == "DeadlineExceededError":
                expired_n += 1
            else:
                typed += 1
        else:
            untyped += 1
    snap = service.stats.snapshot()
    return {
        "requests": count,
        "solved": solved,
        "typed_errors": typed,
        "deadline_expired": expired_n,
        "shed": shed,
        "untyped_errors": untyped,
        "silent_wrong": silent,
        "worst_residual_ratio": worst_ratio,
        "bisections": snap["group_bisections"],
    }


def _run_failover_phase(
    seed: int, devices: int, solves: int, log: FaultLog
) -> dict:
    """Kill one device mid-run; every workload must still solve."""
    killed = devices // 2
    plan = FaultPlan(
        seed=seed, faults=(DeviceFailure(device=killed, at_instruction=1),)
    )
    injector = FaultInjector(plan, log)
    solver = DistributedSolver(devices, verify=True, faults=injector)
    solved = silent = 0
    worst_ratio = 0.0
    rng = np.random.default_rng(seed + 1)
    for i in range(solves):
        batch = random_dominant(4, 4096, rng=rng)
        result = solver.solve(batch)
        ratio = max_residual(batch, result.x) / default_tolerance(batch)
        worst_ratio = max(worst_ratio, ratio)
        if ratio > 1.0:
            silent += 1
        else:
            solved += 1
    return {
        "solves": solves,
        "solved": solved,
        "silent_wrong": silent,
        "worst_residual_ratio": worst_ratio,
        "killed_device": killed,
        "dead_devices": sorted(injector.dead_devices()),
        "failovers": log.count("device_lost", "failed_over"),
        "recovery_overhead_ms": sum(
            e.penalty_ms
            for e in log.events()
            if e.kind == "device_lost" and e.action == "failed_over"
        ),
    }


def run_campaign(
    seed: int = 0,
    *,
    requests: int = 200,
    transient_p: float = 0.02,
    dist_devices: int = 4,
    failover_solves: int = 3,
) -> ChaosReport:
    """One full two-phase campaign; deterministic in ``seed``."""
    log = FaultLog()
    service = _run_service_phase(seed, requests, transient_p, log)
    failover = _run_failover_phase(seed, dist_devices, failover_solves, log)
    summary = log.summary()
    return ChaosReport(
        seed=seed,
        requests=service["requests"],
        solved=service["solved"],
        typed_errors=service["typed_errors"],
        deadline_expired=service["deadline_expired"],
        shed=service["shed"],
        untyped_errors=service["untyped_errors"],
        silent_wrong=service["silent_wrong"],
        worst_residual_ratio=max(
            service["worst_residual_ratio"], failover["worst_residual_ratio"]
        ),
        retries=summary["counts"].get("transient:retried", 0),
        stalls=summary["counts"].get("stall:injected", 0),
        bisections=service["bisections"],
        failover=failover,
        fault_summary=summary,
    )


def run_sweep(
    seeds: Sequence[int] = (0, 1, 2),
    *,
    requests: int = 200,
    transient_p: float = 0.02,
    dist_devices: int = 4,
) -> Tuple[ChaosReport, ...]:
    """The campaign across several seeds (the nightly configuration)."""
    return tuple(
        run_campaign(
            seed,
            requests=requests,
            transient_p=transient_p,
            dist_devices=dist_devices,
        )
        for seed in seeds
    )
