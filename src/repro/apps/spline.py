"""Batched natural cubic-spline fitting on the tridiagonal solver.

A production wrapper around the classic spline system: fit many curves
sharing one knot vector in a single batched solve (one tridiagonal
system per curve), then evaluate anywhere. Matches
``scipy.interpolate.CubicSpline(bc_type="natural")`` to machine
precision (tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..core.solver import MultiStageSolver
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError, ShapeError

__all__ = ["NaturalSplineBatch", "fit_natural_splines"]


@dataclass(frozen=True)
class NaturalSplineBatch:
    """Fitted natural cubic splines sharing a knot vector.

    ``t`` is the ``(n,)`` knot vector; ``y`` and ``second_derivatives``
    are ``(curves, n)``. Construct via :func:`fit_natural_splines`.
    """

    t: np.ndarray
    y: np.ndarray
    second_derivatives: np.ndarray
    simulated_ms: float

    @property
    def num_curves(self) -> int:
        """Number of fitted curves."""
        return self.y.shape[0]

    def __call__(self, tq: np.ndarray) -> np.ndarray:
        """Evaluate all curves at query points ``tq``; returns (curves, q).

        Queries outside the knot range extrapolate with the boundary
        cubic (as scipy does).
        """
        t, y, M = self.t, self.y, self.second_derivatives
        tq = np.asarray(tq, dtype=float)
        idx = np.clip(np.searchsorted(t, tq) - 1, 0, len(t) - 2)
        h = t[idx + 1] - t[idx]
        lo = (t[idx + 1] - tq) / h
        hi = (tq - t[idx]) / h
        return (
            lo[None] * y[:, idx]
            + hi[None] * y[:, idx + 1]
            + ((lo**3 - lo) * h**2 / 6.0)[None] * M[:, idx]
            + ((hi**3 - hi) * h**2 / 6.0)[None] * M[:, idx + 1]
        )

    def derivative(self, tq: np.ndarray) -> np.ndarray:
        """First derivatives of all curves at ``tq``."""
        t, y, M = self.t, self.y, self.second_derivatives
        tq = np.asarray(tq, dtype=float)
        idx = np.clip(np.searchsorted(t, tq) - 1, 0, len(t) - 2)
        h = t[idx + 1] - t[idx]
        lo = (t[idx + 1] - tq) / h
        hi = (tq - t[idx]) / h
        slope = (y[:, idx + 1] - y[:, idx]) / h[None]
        return (
            slope
            + ((-3 * lo**2 + 1) * h / 6.0)[None] * M[:, idx]
            + ((3 * hi**2 - 1) * h / 6.0)[None] * M[:, idx + 1]
        )


def fit_natural_splines(
    t: np.ndarray,
    y: np.ndarray,
    solver: Union[MultiStageSolver, str, None] = None,
) -> NaturalSplineBatch:
    """Fit natural cubic splines through ``y`` at shared knots ``t``.

    ``t`` is ``(n,)`` strictly increasing with ``n >= 3``; ``y`` is
    ``(curves, n)`` (a single ``(n,)`` curve is promoted).
    """
    t = np.asarray(t, dtype=float)
    y = np.asarray(y, dtype=float)
    if y.ndim == 1:
        y = y[None, :]
    if t.ndim != 1 or t.shape[0] < 3:
        raise ConfigurationError("need a 1-D knot vector with >= 3 knots")
    if (np.diff(t) <= 0).any():
        raise ConfigurationError("knots must be strictly increasing")
    if y.shape[1] != t.shape[0]:
        raise ShapeError(
            f"y has {y.shape[1]} columns, expected {t.shape[0]} (one per knot)"
        )
    if solver is None or isinstance(solver, str):
        solver = MultiStageSolver(solver or "gtx470", "dynamic")

    h = np.diff(t)
    m, n = y.shape
    interior = n - 2

    a = np.zeros((m, interior))
    b = np.zeros((m, interior))
    c = np.zeros((m, interior))
    a[:, 1:] = h[1:-1]
    b[:] = 2.0 * (h[:-1] + h[1:])
    c[:, :-1] = h[1:-1]
    slope = np.diff(y, axis=1) / h
    d = 6.0 * np.diff(slope, axis=1)

    result = solver.solve(TridiagonalBatch(a, b, c, d))
    M = np.zeros((m, n))
    M[:, 1:-1] = result.x
    return NaturalSplineBatch(
        t=t, y=y, second_derivatives=M, simulated_ms=result.simulated_ms
    )
