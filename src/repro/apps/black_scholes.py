"""Implicit finite-difference Black-Scholes option pricing.

Egloff's GPU PDE solvers (cited in the paper's introduction) target
exactly this workload: backward-in-time parabolic PDEs whose implicit
time steps are tridiagonal solves. This module prices batches of
European options on a log-price grid with backward Euler, reusing one
:class:`~repro.algorithms.factorized.PcrThomasFactorization` across all
time steps (the matrix is time-independent), and validates against the
Black-Scholes closed form (tested).

PDE in log-price ``y = ln S``:

    V_t + (r - σ²/2) V_y + (σ²/2) V_yy - r V = 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.factorized import factorize
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError
from ..util.validation import next_power_of_two

__all__ = ["BlackScholesPricer", "black_scholes_closed_form"]


def black_scholes_closed_form(
    spot: np.ndarray,
    strike: float,
    rate: float,
    sigma: float,
    maturity: float,
    *,
    call: bool = True,
) -> np.ndarray:
    """Closed-form European option value (the validation oracle)."""
    from scipy.special import ndtr

    spot = np.asarray(spot, dtype=float)
    with np.errstate(divide="ignore"):
        d1 = (
            np.log(spot / strike) + (rate + 0.5 * sigma**2) * maturity
        ) / (sigma * np.sqrt(maturity))
    d2 = d1 - sigma * np.sqrt(maturity)
    disc = strike * np.exp(-rate * maturity)
    if call:
        return spot * ndtr(d1) - disc * ndtr(d2)
    return disc * ndtr(-d2) - spot * ndtr(-d1)


def _cell_averaged_payoff(
    y: np.ndarray, dy: float, strikes: np.ndarray, call: bool
) -> np.ndarray:
    """Average the payoff over each grid cell ``[y - dy/2, y + dy/2]``.

    For a call, ``(1/dy) ∫ max(e^u - K, 0) du`` has the closed form used
    below; the put follows from the same integral on the other side of
    ``ln K``. Returns ``(strikes, grid)``.
    """
    lo = y[None, :] - dy / 2.0
    hi = y[None, :] + dy / 2.0
    k = np.log(strikes)[:, None]
    K = strikes[:, None]
    # Integration bounds clipped to the in-the-money part of each cell.
    if call:
        a = np.clip(k, lo, hi)
        b = hi
        integral = np.where(
            b > a, (np.exp(b) - np.exp(a)) - K * (b - a), 0.0
        )
    else:
        a = lo
        b = np.clip(k, lo, hi)
        integral = np.where(
            b > a, K * (b - a) - (np.exp(b) - np.exp(a)), 0.0
        )
    return np.maximum(integral, 0.0) / dy


@dataclass
class BlackScholesPricer:
    """Backward-Euler pricer on a shared log-price grid.

    One tridiagonal system per option per time step; all options price in
    a single batched factorise-once/solve-many loop.
    """

    rate: float = 0.03
    sigma: float = 0.25
    grid_points: int = 512
    time_steps: int = 200
    y_width: float = 4.0  # half-width of the log-moneyness grid

    def __post_init__(self) -> None:
        if self.sigma <= 0 or self.grid_points < 8 or self.time_steps < 1:
            raise ConfigurationError("invalid pricer configuration")
        # PCR machinery wants a power-of-two interior.
        self.grid_points = next_power_of_two(self.grid_points)

    def price(
        self,
        strikes: np.ndarray,
        maturity: float,
        spot: float,
        *,
        call: bool = True,
    ) -> np.ndarray:
        """Price European options for every strike; returns values at
        ``spot``."""
        strikes = np.atleast_1d(np.asarray(strikes, dtype=float))
        if maturity <= 0 or spot <= 0 or (strikes <= 0).any():
            raise ConfigurationError("maturity, spot and strikes must be positive")
        m = strikes.shape[0]
        n = self.grid_points
        r, sig = self.rate, self.sigma

        # Log-price grid centred on ln(spot), one grid per strike batch.
        y0 = np.log(spot)
        y = np.linspace(y0 - self.y_width, y0 + self.y_width, n)
        dy = y[1] - y[0]
        dt = maturity / self.time_steps
        S = np.exp(y)

        # Backward Euler: (I - dt L) V^{k} = V^{k+1} + boundary terms,
        # L = (r - sig^2/2) d_y + (sig^2/2) d_yy - r.
        drift = r - 0.5 * sig**2
        lower = dt * (0.5 * sig**2 / dy**2 - 0.5 * drift / dy)
        upper = dt * (0.5 * sig**2 / dy**2 + 0.5 * drift / dy)
        diag = 1.0 + dt * (sig**2 / dy**2 + r)

        a = np.full((m, n), -lower)
        b = np.full((m, n), diag)
        c = np.full((m, n), -upper)
        # Dirichlet boundaries: identity rows whose RHS carries the
        # asymptotic option values; interior rows couple to them.
        a[:, 0] = 0.0
        c[:, -1] = 0.0
        b[:, 0] = 1.0
        c[:, 0] = 0.0
        b[:, -1] = 1.0
        a[:, -1] = 0.0
        template = TridiagonalBatch(a, b, c, np.zeros((m, n)))
        factors = factorize(template)

        # Terminal payoff per strike, cell-averaged (Tavella-Randall):
        # sampling the kinked payoff pointwise costs O(dy) accuracy when
        # the strike falls between nodes; averaging the payoff over each
        # cell restores O(dy^2).
        V = _cell_averaged_payoff(y, dy, strikes, call)

        for k in range(self.time_steps):
            tau = (k + 1) * dt  # time to maturity after this step
            rhs = V.copy()
            # Dirichlet boundary values from the asymptotics.
            if call:
                rhs[:, 0] = 0.0
                rhs[:, -1] = S[-1] - strikes * np.exp(-r * tau)
            else:
                rhs[:, 0] = strikes * np.exp(-r * tau) - S[0]
                rhs[:, -1] = 0.0
            V = factors.solve(rhs)

        # The grid is centred on ln(spot) but ln(spot) is generally not a
        # node (even point count); interpolate linearly for O(dy^2)
        # readout accuracy.
        i = int(np.searchsorted(y, y0)) - 1
        i = min(max(i, 0), n - 2)
        w = (y0 - y[i]) / (y[i + 1] - y[i])
        return (1.0 - w) * V[:, i] + w * V[:, i + 1]
