"""Geometric multigrid with tridiagonal line relaxation.

Göddeke & Strzodka (cited in the paper's introduction) embed a GPU
cyclic-reduction tridiagonal solver as the line-relaxation smoother of a
multigrid solver; this module reproduces that construction. The smoother
is *zebra* x-line relaxation: even-indexed grid lines are solved exactly
(one tridiagonal system per line, batched through the multi-stage
solver), then odd-indexed lines — a smoother that remains robust where
point smoothers degrade.

Solves ``-∇²u = f`` on the unit square, Dirichlet boundaries, interior
grids of size ``(2^k - 1)²``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..core.solver import MultiStageSolver
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError, ShapeError

__all__ = ["MultigridPoisson2D"]


def _is_mg_size(n: int) -> bool:
    return n >= 3 and ((n + 1) & n) == 0  # n = 2^k - 1


@dataclass
class MultigridPoisson2D:
    """V-cycle multigrid for ``-∇²u = f`` with zebra line smoothing.

    ``n`` is the interior grid size per side (``2^k - 1``). ``nu_pre`` /
    ``nu_post`` are the pre-/post-smoothing sweep counts.
    """

    n: int
    solver: Union[MultiStageSolver, str, None] = None
    nu_pre: int = 1
    nu_post: int = 1
    simulated_ms: float = 0.0

    def __post_init__(self) -> None:
        if not _is_mg_size(self.n):
            raise ConfigurationError(
                f"interior size must be 2^k - 1 and >= 3, got {self.n}"
            )
        if self.solver is None or isinstance(self.solver, str):
            self.solver = MultiStageSolver(self.solver or "gtx470", "dynamic")

    # -- operators ------------------------------------------------------------

    @staticmethod
    def _h(n: int) -> float:
        return 1.0 / (n + 1)

    @classmethod
    def residual_field(cls, u: np.ndarray, f: np.ndarray) -> np.ndarray:
        """``f - (-∇²u)`` on the interior (Dirichlet zero boundary)."""
        n = u.shape[0]
        h2 = cls._h(n) ** 2
        pad = np.pad(u, 1)
        lap = (
            pad[:-2, 1:-1] + pad[2:, 1:-1] + pad[1:-1, :-2] + pad[1:-1, 2:]
            - 4.0 * u
        )
        return f + lap / h2

    # -- smoother ---------------------------------------------------------------

    def _line_solve(self, rhs: np.ndarray, h2: float) -> np.ndarray:
        """Exactly solve ``(4 u - u_E - u_W)/h² = rhs`` along each row."""
        m, n = rhs.shape
        a = np.full((m, n), -1.0 / h2)
        b = np.full((m, n), 4.0 / h2)
        c = np.full((m, n), -1.0 / h2)
        a[:, 0] = 0.0
        c[:, -1] = 0.0
        result = self.solver.solve(TridiagonalBatch(a, b, c, rhs))
        self.simulated_ms += result.simulated_ms
        return result.x

    def _zebra_sweep(self, u: np.ndarray, f: np.ndarray) -> np.ndarray:
        """One zebra x-line relaxation sweep (even lines, then odd)."""
        n = u.shape[0]
        h2 = self._h(n) ** 2
        u = u.copy()
        for parity in (0, 1):
            rows = np.arange(parity, n, 2)
            # Neighbours above/below enter the RHS with current values.
            above = np.pad(u, 1)[rows, 1:-1]  # row index rows -> padded rows
            below = np.pad(u, 1)[rows + 2, 1:-1]
            rhs = f[rows] + (above + below) / h2
            u[rows] = self._line_solve(rhs, h2)
        return u

    # -- grid transfer ------------------------------------------------------------

    @staticmethod
    def _restrict(r: np.ndarray) -> np.ndarray:
        """Full-weighting restriction to the next coarser ``2^(k-1)-1`` grid."""
        n = r.shape[0]
        idx = np.arange(1, n, 2)  # fine indices of the coarse points
        centre = r[idx][:, idx]
        north = r[idx - 1][:, idx]
        south = r[idx + 1][:, idx]
        west = r[idx][:, idx - 1]
        east = r[idx][:, idx + 1]
        nw = r[idx - 1][:, idx - 1]
        ne = r[idx - 1][:, idx + 1]
        sw = r[idx + 1][:, idx - 1]
        se = r[idx + 1][:, idx + 1]
        return (
            4.0 * centre + 2.0 * (north + south + east + west)
            + (nw + ne + sw + se)
        ) / 16.0

    @staticmethod
    def _prolong(c: np.ndarray, n_fine: int) -> np.ndarray:
        """Bilinear interpolation back to the finer grid."""
        pad = np.pad(c, 1)
        out = np.zeros((n_fine, n_fine))
        # Coincident points.
        out[1::2, 1::2] = c
        # Horizontal midpoints (average of left/right coarse neighbours).
        out[1::2, 0::2] = 0.5 * (pad[1:-1, :-1] + pad[1:-1, 1:])
        # Vertical midpoints.
        out[0::2, 1::2] = 0.5 * (pad[:-1, 1:-1] + pad[1:, 1:-1])
        # Cell centres (average of four corners).
        out[0::2, 0::2] = 0.25 * (
            pad[:-1, :-1] + pad[:-1, 1:] + pad[1:, :-1] + pad[1:, 1:]
        )
        return out

    # -- cycles ------------------------------------------------------------------

    def v_cycle(self, u: np.ndarray, f: np.ndarray) -> np.ndarray:
        """One V-cycle on the finest grid."""
        if u.shape != (self.n, self.n) or f.shape != (self.n, self.n):
            raise ShapeError(f"fields must be {(self.n, self.n)}")
        return self._v(u, f)

    def _v(self, u: np.ndarray, f: np.ndarray) -> np.ndarray:
        n = u.shape[0]
        if n == 3:
            # Coarsest grid: solve the 9-point problem directly.
            h2 = self._h(n) ** 2
            A = np.zeros((9, 9))
            for i in range(3):
                for j in range(3):
                    row = 3 * i + j
                    A[row, row] = 4.0 / h2
                    for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                        ii, jj = i + di, j + dj
                        if 0 <= ii < 3 and 0 <= jj < 3:
                            A[row, 3 * ii + jj] = -1.0 / h2
            return np.linalg.solve(A, f.reshape(9)).reshape(3, 3)
        for _ in range(self.nu_pre):
            u = self._zebra_sweep(u, f)
        r = self.residual_field(u, f)
        rc = self._restrict(r)
        ec = self._v(np.zeros_like(rc), rc)
        u = u + self._prolong(ec, n)
        for _ in range(self.nu_post):
            u = self._zebra_sweep(u, f)
        return u

    def solve(
        self,
        f: np.ndarray,
        *,
        tol: float = 1e-10,
        max_cycles: int = 50,
    ) -> np.ndarray:
        """Iterate V-cycles until the residual norm drops below ``tol``
        relative to ``||f||``."""
        f = np.asarray(f, dtype=float)
        u = np.zeros_like(f)
        f_norm = max(float(np.linalg.norm(f)), 1e-300)
        for _ in range(max_cycles):
            u = self.v_cycle(u, f)
            if np.linalg.norm(self.residual_field(u, f)) / f_norm < tol:
                break
        return u
