"""Application-level wrappers: ADI diffusion, splines, Poisson, ocean mixing."""

from .adi import AdiDiffusion2D, AdiDiffusion3D, AdiStepReport
from .black_scholes import BlackScholesPricer, black_scholes_closed_form
from .multigrid import MultigridPoisson2D
from .ocean import VerticalMixingStepper
from .poisson import PoissonSolver2D, dst1, idst1
from .spline import NaturalSplineBatch, fit_natural_splines

__all__ = [
    "AdiDiffusion2D",
    "AdiDiffusion3D",
    "AdiStepReport",
    "BlackScholesPricer",
    "black_scholes_closed_form",
    "MultigridPoisson2D",
    "NaturalSplineBatch",
    "fit_natural_splines",
    "PoissonSolver2D",
    "dst1",
    "idst1",
    "VerticalMixingStepper",
]
