"""Hockney-style fast Poisson solver (FFT + batched tridiagonal solves).

Solves ``∇²u = f`` on the unit square with homogeneous Dirichlet
boundaries: a type-I discrete sine transform along x decouples the modes,
each of which satisfies one tridiagonal system along y — a batch the size
of the grid, handed to the multi-stage solver in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..core.solver import MultiStageSolver
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError, ShapeError

__all__ = ["PoissonSolver2D", "dst1", "idst1"]


def dst1(arr: np.ndarray, axis: int = -1) -> np.ndarray:
    """Type-I discrete sine transform: ``S[k] = Σ_m a_m sin(π m k/(n+1))``."""
    arr = np.asarray(arr, dtype=float)
    n = arr.shape[axis]
    shape = list(arr.shape)
    shape[axis] = 2 * (n + 1)
    ext = np.zeros(shape, dtype=arr.dtype)
    sl = [slice(None)] * arr.ndim
    sl[axis] = slice(1, n + 1)
    ext[tuple(sl)] = arr
    sl[axis] = slice(n + 2, 2 * n + 2)
    ext[tuple(sl)] = -np.flip(arr, axis=axis)
    spec = np.fft.rfft(ext, axis=axis)
    sl[axis] = slice(1, n + 1)
    # The odd extension makes X[k] = -2i S[k].
    return -spec.imag[tuple(sl)] / 2.0


def idst1(arr: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse DST-I (``S∘S = (n+1)/2 · identity``)."""
    n = np.asarray(arr).shape[axis]
    return dst1(arr, axis) * (2.0 / (n + 1))


@dataclass
class PoissonSolver2D:
    """Reusable fast Poisson solver for a fixed interior grid.

    ``n`` interior points per side, spacing ``dx = 1/(n+1)``. The mode
    eigenvalues are precomputed once; :meth:`solve` costs one DST, one
    batched tridiagonal solve, and one inverse DST.
    """

    n: int
    solver: Union[MultiStageSolver, str, None] = None
    last_simulated_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError("need at least a 2x2 interior grid")
        if self.solver is None or isinstance(self.solver, str):
            self.solver = MultiStageSolver(self.solver or "gtx470", "dynamic")
        self.dx = 1.0 / (self.n + 1)
        k = np.arange(self.n)
        # Eigenvalues of the x-direction second difference, scaled by dx^2.
        self._lam_dx2 = 2.0 * np.cos(np.pi * (k + 1) / (self.n + 1)) - 2.0

    def solve(self, f: np.ndarray) -> np.ndarray:
        """Solve ``∇²u = f`` for interior values ``f`` of shape (n, n)."""
        f = np.asarray(f, dtype=float)
        if f.shape != (self.n, self.n):
            raise ShapeError(f"f has shape {f.shape}, expected {(self.n, self.n)}")
        f_hat = dst1(f, axis=1)

        m, n = self.n, self.n
        a = np.ones((m, n))
        c = np.ones((m, n))
        a[:, 0] = 0.0
        c[:, -1] = 0.0
        b = np.repeat((self._lam_dx2 - 2.0)[:, None], n, axis=1)
        d = self.dx**2 * f_hat.T  # one system per x-mode

        result = self.solver.solve(TridiagonalBatch(a, b, c, d))
        self.last_simulated_ms = result.simulated_ms
        return idst1(result.x.T, axis=1)

    def residual(self, u: np.ndarray, f: np.ndarray) -> float:
        """Max |∇²u - f| over the interior (discrete operator)."""
        pad = np.pad(u, 1)
        lap = (
            pad[:-2, 1:-1] + pad[2:, 1:-1] + pad[1:-1, :-2] + pad[1:-1, 2:]
            - 4.0 * u
        ) / self.dx**2
        return float(np.abs(lap - f).max())
