"""Alternating-direction-implicit (ADI) diffusion integrators.

The paper's headline application class: every ADI half-step turns one
spatial direction implicit, producing a large batch of independent
tridiagonal systems. :class:`AdiDiffusion2D` packages the
Peaceman-Rachford scheme on a rectangular grid with Dirichlet boundaries,
driving all sweeps through a :class:`~repro.core.solver.MultiStageSolver`
and accumulating simulated GPU time across the run — the measurement an
application would report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from ..core.solver import MultiStageSolver
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError, ShapeError

__all__ = ["AdiDiffusion2D", "AdiDiffusion3D", "AdiStepReport"]


@dataclass
class AdiStepReport:
    """Accumulated accounting for an integration run."""

    steps: int = 0
    sweeps: int = 0
    simulated_ms: float = 0.0
    systems_solved: int = 0

    def merge_sweep(self, num_systems: int, simulated_ms: float) -> None:
        """Record one implicit sweep's worth of tridiagonal work."""
        self.sweeps += 1
        self.systems_solved += num_systems
        self.simulated_ms += simulated_ms


class AdiDiffusion2D:
    """Peaceman-Rachford ADI for ``u_t = alpha ∇²u`` on a rectangle.

    The field lives on the interior of an ``(ny, nx)`` grid with
    homogeneous Dirichlet boundaries and uniform spacing ``dx``. Each
    :meth:`step` performs the x-implicit then y-implicit half-steps,
    solving ``ny`` and ``nx`` tridiagonal systems respectively.
    """

    def __init__(
        self,
        shape,
        *,
        alpha: float = 1.0,
        dx: float = 1.0,
        dt: float = 0.1,
        solver: Union[MultiStageSolver, str, None] = None,
    ):
        ny, nx = shape
        if ny < 2 or nx < 2:
            raise ConfigurationError("grid must be at least 2x2")
        if alpha <= 0 or dx <= 0 or dt <= 0:
            raise ConfigurationError("alpha, dx and dt must be positive")
        self.shape = (int(ny), int(nx))
        self.alpha = float(alpha)
        self.dx = float(dx)
        self.dt = float(dt)
        self.r = alpha * dt / (2.0 * dx * dx)
        if solver is None or isinstance(solver, str):
            solver = MultiStageSolver(solver or "gtx470", "dynamic")
        self.solver = solver
        self.report = AdiStepReport()

    # -- building blocks -----------------------------------------------------

    def _implicit_sweep(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(1 + 2r) u - r (u_- + u_+) = rhs`` along each row."""
        m, n = rhs.shape
        r = self.r
        a = np.full((m, n), -r)
        b = np.full((m, n), 1.0 + 2.0 * r)
        c = np.full((m, n), -r)
        a[:, 0] = 0.0
        c[:, -1] = 0.0
        result = self.solver.solve(TridiagonalBatch(a, b, c, rhs))
        self.report.merge_sweep(m, result.simulated_ms)
        return result.x

    def _explicit_half(self, field: np.ndarray) -> np.ndarray:
        """Apply ``(1 + r δ²)`` along rows with zero boundaries."""
        out = (1.0 - 2.0 * self.r) * field
        out[:, 1:] += self.r * field[:, :-1]
        out[:, :-1] += self.r * field[:, 1:]
        return out

    # -- public API -------------------------------------------------------------

    def step(self, u: np.ndarray) -> np.ndarray:
        """Advance the interior field one ``dt`` (returns a new array)."""
        u = np.asarray(u, dtype=float)
        if u.shape != self.shape:
            raise ShapeError(f"field has shape {u.shape}, expected {self.shape}")
        # x-implicit (rows are systems), y-explicit.
        u_half = self._implicit_sweep(self._explicit_half(u.T).T)
        # y-implicit (transpose so columns become systems), x-explicit.
        u_new = self._implicit_sweep(self._explicit_half(u_half).T).T
        self.report.steps += 1
        return u_new

    def run(self, u: np.ndarray, steps: int) -> np.ndarray:
        """Advance ``steps`` time steps."""
        for _ in range(int(steps)):
            u = self.step(u)
        return u

    def analytic_mode_decay(self, kx: int, ky: int, t: float) -> float:
        """Exact decay factor of the ``(kx, ky)`` sine mode after time ``t``
        on the continuous domain implied by ``dx`` and the grid shape."""
        ny, nx = self.shape
        lx = self.dx * (nx + 1)
        ly = self.dx * (ny + 1)
        lam = self.alpha * np.pi**2 * ((kx / lx) ** 2 + (ky / ly) ** 2)
        return float(np.exp(-lam * t))


class AdiDiffusion3D:
    """Douglas-Rachford ADI for ``u_t = alpha ∇²u`` on a 3-D box.

    The Sakharnykh-class workload from the paper's introduction: each
    time step runs three directional sweeps, every sweep a batch of
    thousands of tridiagonal systems (one per grid line). Unconditionally
    stable, first-order in time. Homogeneous Dirichlet boundaries.
    """

    def __init__(
        self,
        shape,
        *,
        alpha: float = 1.0,
        dx: float = 1.0,
        dt: float = 0.1,
        solver: Union[MultiStageSolver, str, None] = None,
    ):
        nz, ny, nx = shape
        if min(nz, ny, nx) < 2:
            raise ConfigurationError("grid must be at least 2 in every axis")
        if alpha <= 0 or dx <= 0 or dt <= 0:
            raise ConfigurationError("alpha, dx and dt must be positive")
        self.shape = (int(nz), int(ny), int(nx))
        self.alpha = float(alpha)
        self.dx = float(dx)
        self.dt = float(dt)
        self.r = alpha * dt / (dx * dx)
        if solver is None or isinstance(solver, str):
            solver = MultiStageSolver(solver or "gtx470", "dynamic")
        self.solver = solver
        self.report = AdiStepReport()

    @staticmethod
    def _second_difference(field: np.ndarray, axis: int) -> np.ndarray:
        """``δ² field`` along ``axis`` with zero Dirichlet boundaries."""
        out = -2.0 * field
        src = np.moveaxis(field, axis, -1)
        dst = np.moveaxis(out, axis, -1)
        dst[..., 1:] += src[..., :-1]
        dst[..., :-1] += src[..., 1:]
        return out

    def _implicit_axis(self, rhs: np.ndarray, axis: int) -> np.ndarray:
        """Solve ``(1 - r δ²) u = rhs`` along ``axis`` for the whole grid."""
        moved = np.moveaxis(rhs, axis, -1)
        lead_shape = moved.shape[:-1]
        n = moved.shape[-1]
        flat = np.ascontiguousarray(moved).reshape(-1, n)
        m = flat.shape[0]
        r = self.r
        a = np.full((m, n), -r)
        b = np.full((m, n), 1.0 + 2.0 * r)
        c = np.full((m, n), -r)
        a[:, 0] = 0.0
        c[:, -1] = 0.0
        result = self.solver.solve(TridiagonalBatch(a, b, c, flat))
        self.report.merge_sweep(m, result.simulated_ms)
        return np.moveaxis(result.x.reshape(lead_shape + (n,)), -1, axis)

    def step(self, u: np.ndarray) -> np.ndarray:
        """Advance one ``dt`` with the Douglas-Rachford splitting."""
        u = np.asarray(u, dtype=float)
        if u.shape != self.shape:
            raise ShapeError(f"field has shape {u.shape}, expected {self.shape}")
        r = self.r
        d2z = self._second_difference(u, 0)
        d2y = self._second_difference(u, 1)
        # Douglas-Gunn stabilising-correction sweeps (θ = 1):
        # (1 - r δx²) u*   = (1 + r δy² + r δz²) u
        u_star = self._implicit_axis(u + r * (d2y + d2z), 2)
        # (1 - r δy²) u**  = u* - r δy² u
        u_star2 = self._implicit_axis(u_star - r * d2y, 1)
        # (1 - r δz²) u^n+1 = u** - r δz² u
        u_new = self._implicit_axis(u_star2 - r * d2z, 0)
        self.report.steps += 1
        return u_new

    def run(self, u: np.ndarray, steps: int) -> np.ndarray:
        """Advance ``steps`` time steps."""
        for _ in range(int(steps)):
            u = self.step(u)
        return u

    def analytic_mode_decay(self, k: int, t: float) -> float:
        """Decay factor of the fundamental-(k,k,k) mode on the cube."""
        nz, ny, nx = self.shape
        lam = self.alpha * np.pi**2 * (
            (k / (self.dx * (nx + 1))) ** 2
            + (k / (self.dx * (ny + 1))) ** 2
            + (k / (self.dx * (nz + 1))) ** 2
        )
        return float(np.exp(-lam * t))
