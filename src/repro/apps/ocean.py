"""Implicit vertical-mixing stepper for ocean-model column ensembles.

Each water column is an independent tridiagonal system per time step
(the HYCOM-class workload from the paper's introduction). The stepper is
conservative by construction (no-flux boundaries) and unconditionally
stable (backward Euler), and both properties are pinned by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..core.solver import MultiStageSolver
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError, ShapeError

__all__ = ["VerticalMixingStepper"]


@dataclass
class VerticalMixingStepper:
    """Backward-Euler vertical diffusion for ``(columns, levels)`` fields.

    ``kappa`` (m²/s) and ``thickness`` (m) are per-cell; interface
    coefficients are arithmetic means. Insulating top/bottom boundaries
    conserve each column's heat content exactly (up to round-off).
    """

    kappa: np.ndarray
    thickness: np.ndarray
    dt: float
    solver: Union[MultiStageSolver, str, None] = None
    last_simulated_ms: float = 0.0

    def __post_init__(self) -> None:
        self.kappa = np.asarray(self.kappa, dtype=float)
        self.thickness = np.asarray(self.thickness, dtype=float)
        if self.kappa.ndim != 2 or self.kappa.shape != self.thickness.shape:
            raise ShapeError("kappa and thickness must be matching 2-D arrays")
        if (self.kappa < 0).any() or (self.thickness <= 0).any():
            raise ConfigurationError(
                "kappa must be non-negative and thickness positive"
            )
        if self.dt <= 0:
            raise ConfigurationError("dt must be positive")
        if self.solver is None or isinstance(self.solver, str):
            self.solver = MultiStageSolver(self.solver or "gtx470", "dynamic")

        m, n = self.kappa.shape
        k_int = 0.5 * (self.kappa[:, 1:] + self.kappa[:, :-1])
        dz_int = 0.5 * (self.thickness[:, 1:] + self.thickness[:, :-1])
        flux = self.dt * k_int / dz_int
        a = np.zeros((m, n))
        c = np.zeros((m, n))
        a[:, 1:] = -flux / self.thickness[:, 1:]
        c[:, :-1] = -flux / self.thickness[:, :-1]
        self._a, self._c = a, c
        self._b = 1.0 - a - c

    @property
    def shape(self):
        """``(columns, levels)``."""
        return self.kappa.shape

    def step(self, field: np.ndarray) -> np.ndarray:
        """Advance one implicit step; returns the new field."""
        field = np.asarray(field, dtype=float)
        if field.shape != self.shape:
            raise ShapeError(f"field has shape {field.shape}, expected {self.shape}")
        result = self.solver.solve(
            TridiagonalBatch(self._a, self._b, self._c, field)
        )
        self.last_simulated_ms = result.simulated_ms
        return result.x

    def run(self, field: np.ndarray, steps: int) -> np.ndarray:
        """Advance ``steps`` implicit steps."""
        for _ in range(int(steps)):
            field = self.step(field)
        return field

    def column_heat(self, field: np.ndarray) -> np.ndarray:
        """Per-column heat content ``Σ T_i dz_i`` (the conserved quantity)."""
        return (np.asarray(field, dtype=float) * self.thickness).sum(axis=1)
