"""Deterministic serving-load simulation: thread-pool tier vs async tier.

Solving 100k real (if small) linear systems just to measure *queueing*
would drown the signal in host arithmetic, so the serve-bench scenario
is a *discrete-event simulation* of the serving tier in simulated
milliseconds — the same currency as the GPU cost model. What is
simulated and what is real:

- **real**: the :class:`~repro.serve.admission.AdmissionController`
  (typed quota/priority shedding), the
  :class:`~repro.serve.autoscaler.Autoscaler` (reading the same
  metric names off a real :class:`~repro.obs.MetricsRegistry`), the
  priced per-group solve times (taken from the repo's own cost model
  via :func:`repro.core.simulate_plan` and fitted affine in merged
  batch height), and the grouping rule (plan-signature keyed).
- **simulated**: Poisson arrivals, the clock, worker occupancy, and
  cache-lock serialisation (each lookup holds its stripe's lock for
  ``lookup_ms``; one stripe models today's single-lock
  ``TuningCache``, N stripes model the sharded cache).

Two tier models run over the *same* seeded arrival stream:

- ``threadpool`` — today's :class:`~repro.service.BatchSolveService`
  shape: fixed workers, one cache lock, a single bounded queue that
  sheds with untyped rejects when its backlog bound is hit.
- ``async`` — the new tier: sharded cache locks, per-tenant admission
  with priority classes, and the autoscaler resizing the fleet from
  queue depth + latency p99.

The report carries p50/p99/mean latency of served requests, shed
counts by typed reason, the worker trajectory, and the autoscaler's
decision log. Everything is a pure function of the seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import simulate_plan
from ..core.tuning import make_tuner
from ..gpu.executor import make_device
from ..obs import MetricsRegistry
from ..util.errors import (
    PriorityShedError,
    TenantQuotaExceededError,
)
from .admission import AdmissionController, TenantQuota
from .autoscaler import Autoscaler, AutoscalerPolicy
from .shards import ShardedTuningCache

__all__ = [
    "ServingSimConfig",
    "ServingSimReport",
    "simulate_serving",
    "compare_tiers",
]

#: Shape pools mirroring :func:`repro.systems.generators.mixed_requests`.
SIZES = (64, 100, 128, 200, 256, 384, 512)
DTYPE_SIZES = (4, 8)
MAX_SYSTEMS = 8

#: Tenant traffic profile: priority class cycles through the tenants,
#: tenant 0 is the heavy hitter (half the stream).
PRIORITY_CYCLE = ("interactive", "standard", "batch")


@dataclass(frozen=True)
class ServingSimConfig:
    """One simulated serving scenario (both tiers read the same one)."""

    requests: int = 100_000
    rate_per_s: float = 12_000.0  # Poisson arrival rate
    seed: int = 0
    tenants: int = 4
    device: str = "gtx470"
    workers: int = 4  # thread-pool width; async tier's floor
    max_workers: int = 32  # autoscaler ceiling (async tier)
    flush_every_ms: float = 5.0  # batching window / autoscaler tick
    lookup_ms: float = 0.05  # cache-lock hold per request
    dispatch_ms: float = 2.0  # host-side worker time per merged solve
    shards: int = 8  # async tier's cache stripes
    max_pending: int = 1024  # thread-pool tier's queue bound
    capacity: int = 512  # admission capacity (async tier)
    latency_slo_ms: float = 200.0  # autoscaler p99 trigger
    autoscale: bool = True  # async tier scales its fleet


@dataclass
class ServingSimReport:
    """Audited outcome of one tier under one scenario."""

    tier: str
    requests: int
    served: int
    shed: Dict[str, int] = field(default_factory=dict)
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_mean_ms: float = 0.0
    makespan_ms: float = 0.0
    groups: int = 0
    max_workers: int = 0
    worker_trajectory: List[Tuple[float, int]] = field(default_factory=list)
    autoscaler_actions: Dict[str, int] = field(default_factory=dict)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def shed_rate(self) -> float:
        return self.shed_total / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "tier": self.tier,
            "requests": self.requests,
            "served": self.served,
            "shed": dict(sorted(self.shed.items())),
            "shed_rate": self.shed_rate,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "makespan_ms": self.makespan_ms,
            "groups": self.groups,
            "max_workers": self.max_workers,
            "autoscaler_actions": dict(sorted(self.autoscaler_actions.items())),
        }


@dataclass(frozen=True)
class _Arrival:
    at_ms: float
    tenant: str
    priority: str
    signature: Tuple
    systems: int


class _CostModel:
    """Priced merged-solve time, affine in merged height per shape.

    Fit from two :func:`repro.core.simulate_plan` pricings per
    (system size, dtype) — the repo's actual cost model, so the sim's
    service times move if the machine model does.
    """

    def __init__(self, device_name: str):
        device = make_device(device_name)
        tuner = make_tuner("static")
        self._params: Dict[Tuple[int, int], Tuple[float, float]] = {}
        self._signatures: Dict[Tuple[int, int, int], Tuple] = {}
        for n in SIZES:
            for dsize in DTYPE_SIZES:
                switch = tuner.switch_points(device, 0, 0, dsize)
                lo_m, hi_m = 8, 128
                _, lo = simulate_plan(device, lo_m, n, dsize, switch)
                _, hi = simulate_plan(device, hi_m, n, dsize, switch)
                slope = (hi.total_ms - lo.total_ms) / (hi_m - lo_m)
                base = max(lo.total_ms - slope * lo_m, 0.0)
                self._params[(n, dsize)] = (base, max(slope, 0.0))
                for m in range(1, MAX_SYSTEMS + 1):
                    plan, _ = simulate_plan(device, m, n, dsize, switch)
                    self._signatures[(m, n, dsize)] = (
                        plan.signature, n, dsize
                    )

    def signature(self, m: int, n: int, dsize: int) -> Tuple:
        """Grouping key: the request's own plan signature + shape."""
        return self._signatures[(m, n, dsize)]

    def group_ms(self, signature: Tuple, total_systems: int) -> float:
        _, n, dsize = signature
        base, slope = self._params[(n, dsize)]
        return base + slope * total_systems


def _draw_arrivals(
    config: ServingSimConfig,
) -> Tuple[List[_Arrival], _CostModel]:
    rng = np.random.default_rng(config.seed)
    cost = _CostModel(config.device)
    interarrival_ms = 1e3 / config.rate_per_s
    tenants = [f"tenant{i}" for i in range(config.tenants)]
    priorities = {
        t: PRIORITY_CYCLE[i % len(PRIORITY_CYCLE)]
        for i, t in enumerate(tenants)
    }
    # Tenant 0 is half the traffic; the rest split the remainder.
    weights = np.full(config.tenants, 0.5 / max(config.tenants - 1, 1))
    weights[0] = 0.5 if config.tenants > 1 else 1.0
    arrivals: List[_Arrival] = []
    now = 0.0
    for _ in range(config.requests):
        now += float(rng.exponential(interarrival_ms))
        tenant = tenants[int(rng.choice(config.tenants, p=weights))]
        n = int(rng.choice(SIZES))
        m = int(rng.integers(1, MAX_SYSTEMS + 1))
        dsize = int(rng.choice(DTYPE_SIZES))
        arrivals.append(
            _Arrival(
                at_ms=now,
                tenant=tenant,
                priority=priorities[tenant],
                signature=cost.signature(m, n, dsize),
                systems=m,
            )
        )
    return arrivals, cost


class _SimFleet:
    """Worker occupancy model with the real fleet's resize surface."""

    def __init__(self, workers: int):
        self.free_at: List[float] = [0.0] * workers

    @property
    def size(self) -> int:
        return len(self.free_at)

    def resize(self, workers: int) -> None:
        while len(self.free_at) < workers:
            self.free_at.append(0.0)
        while len(self.free_at) > workers:
            # Retire the most idle worker — shrink never interrupts a
            # running merged solve, matching ScalableWorkerFleet.
            self.free_at.remove(min(self.free_at))

    def next_free(self) -> float:
        return min(self.free_at)

    def assign(self, ready_ms: float, duration_ms: float) -> float:
        idx = self.free_at.index(min(self.free_at))
        start = max(ready_ms, self.free_at[idx])
        self.free_at[idx] = start + duration_ms
        return start + duration_ms


def simulate_serving(
    config: ServingSimConfig,
    tier: str,
    *,
    arrivals: Optional[List[_Arrival]] = None,
    cost: Optional[_CostModel] = None,
) -> ServingSimReport:
    """Run one tier model over the scenario's seeded arrival stream."""
    if tier not in ("threadpool", "async"):
        raise ValueError(f"tier must be 'threadpool' or 'async', got {tier!r}")
    if arrivals is None or cost is None:
        arrivals, cost = _draw_arrivals(config)
    is_async = tier == "async"

    registry = MetricsRegistry()
    depth_gauge = registry.gauge(
        Autoscaler.DEPTH_METRIC, "Requests waiting to be flushed."
    )
    latency_hist = registry.histogram(
        Autoscaler.LATENCY_METRIC,
        "Simulated device time per merged solve.",
    )
    fleet = _SimFleet(config.workers)
    autoscaler = None
    admission = None
    sim_now = {"ms": 0.0}
    if is_async and config.autoscale:
        autoscaler = Autoscaler(
            fleet,
            registry,
            AutoscalerPolicy(
                min_workers=config.workers,
                max_workers=config.max_workers,
                latency_slo_ms=config.latency_slo_ms,
            ),
        )
    if is_async:
        admission = AdmissionController(
            capacity=config.capacity,
            default_quota=TenantQuota(
                max_pending=config.capacity // 2, priority="standard"
            ),
            clock=lambda: sim_now["ms"] / 1e3,
        )
        admission.attach_metrics(registry)

    lock_free = [0.0] * (config.shards if is_async else 1)
    # Admitted requests waiting for a flush, as (lookup-done-at, request):
    # a request only joins a group once its cache lookup has cleared its
    # lock stripe, so a saturated lock shows up as latency.
    pending: List[Tuple[float, _Arrival]] = []
    group_queue: List[Tuple[Tuple, List[_Arrival]]] = []  # formed, undrained
    release_heap: List[Tuple[float, int]] = []  # (finish_ms, release seq)
    tickets_by_seq: Dict[int, object] = {}
    req_ticket: Dict[int, object] = {}  # id(request) -> admission ticket
    latencies: List[float] = []
    shed: Dict[str, int] = {}
    groups = 0
    max_workers_seen = fleet.size
    trajectory: List[Tuple[float, int]] = []

    def backlog() -> int:
        return len(pending) + sum(len(members) for _, members in group_queue)

    i = 0
    now = 0.0
    total = len(arrivals)
    while i < total or pending or group_queue:
        now += config.flush_every_ms
        # -- arrivals in this window ----------------------------------------
        while i < total and arrivals[i].at_ms <= now:
            req = arrivals[i]
            i += 1
            sim_now["ms"] = req.at_ms
            if admission is not None:
                while release_heap and release_heap[0][0] <= req.at_ms:
                    _, seq = heapq.heappop(release_heap)
                    admission.release(tickets_by_seq.pop(seq))
            ticket = None
            if admission is not None:
                try:
                    ticket = admission.admit(req.tenant, req.priority)
                except TenantQuotaExceededError as exc:
                    key = f"tenant_{exc.quota}"
                    shed[key] = shed.get(key, 0) + 1
                    continue
                except PriorityShedError as exc:
                    key = f"priority_{exc.priority}"
                    shed[key] = shed.get(key, 0) + 1
                    continue
            elif backlog() >= config.max_pending:
                shed["queue_full"] = shed.get("queue_full", 0) + 1
                continue
            # Cache/plan lookup serialises through its lock stripe
            # (one stripe = today's single-lock TuningCache).
            stripe = (
                ShardedTuningCache.shard_index(
                    repr(req.signature), len(lock_free)
                )
                if is_async
                else 0
            )
            start = max(req.at_ms, lock_free[stripe])
            lock_free[stripe] = start + config.lookup_ms
            pending.append((start + config.lookup_ms, req))
            if ticket is not None:
                # Released when the request's group finishes; the finish
                # time is known only at dispatch (below).
                req_ticket[id(req)] = ticket
        sim_now["ms"] = now
        # -- autoscale on the visible backlog, then flush -------------------
        depth_gauge.set(backlog())
        if autoscaler is not None:
            autoscaler.tick(now)
            max_workers_seen = max(max_workers_seen, fleet.size)
        trajectory.append((now, fleet.size))
        # Form groups from requests whose lookup has cleared its lock —
        # plan-signature keyed, first-member order (the batcher's rule).
        # Requests still waiting on a saturated lock stay pending.
        if pending:
            open_groups: Dict[Tuple, List[_Arrival]] = {}
            still_waiting: List[Tuple[float, _Arrival]] = []
            for ready_ms, req in pending:
                if ready_ms <= now:
                    open_groups.setdefault(req.signature, []).append(req)
                else:
                    still_waiting.append((ready_ms, req))
            group_queue.extend(open_groups.items())
            pending[:] = still_waiting
        # -- drain: workers pull groups while they can start this window ----
        while group_queue and fleet.next_free() < now + config.flush_every_ms:
            signature, members = group_queue.pop(0)
            systems = sum(r.systems for r in members)
            # Worker occupancy = host-side dispatch (plan lookup, merge,
            # slicing, launches) + the cost model's priced device time.
            duration = config.dispatch_ms + cost.group_ms(signature, systems)
            finish = fleet.assign(now, duration)
            latency_hist.observe(duration)
            groups += 1
            for req in members:
                latencies.append(finish - req.at_ms)
                ticket = req_ticket.pop(id(req), None)
                if ticket is not None:
                    tickets_by_seq[ticket.seq] = ticket
                    heapq.heappush(release_heap, (finish, ticket.seq))

    lat = np.asarray(latencies) if latencies else np.zeros(1)
    report = ServingSimReport(
        tier=tier,
        requests=total,
        served=len(latencies),
        shed=shed,
        latency_p50_ms=float(np.percentile(lat, 50)),
        latency_p99_ms=float(np.percentile(lat, 99)),
        latency_mean_ms=float(lat.mean()),
        makespan_ms=max((max(fleet.free_at) if fleet.free_at else now), now),
        groups=groups,
        max_workers=max_workers_seen,
        worker_trajectory=trajectory[:: max(1, len(trajectory) // 200)],
        autoscaler_actions=(
            {
                action: sum(
                    1 for d in autoscaler.decisions if d.action == action
                )
                for action in ("up", "down", "hold")
            }
            if autoscaler is not None
            else {}
        ),
    )
    return report


def compare_tiers(config: ServingSimConfig) -> Dict[str, ServingSimReport]:
    """Both tiers over the identical seeded arrival stream."""
    arrivals, cost = _draw_arrivals(config)
    return {
        "threadpool": simulate_serving(
            config, "threadpool", arrivals=arrivals, cost=cost
        ),
        "async": simulate_serving(
            config, "async", arrivals=arrivals, cost=cost
        ),
    }
