"""Per-tenant admission control: quotas, priority classes, typed shedding.

The admission controller is the serving tier's front gate. Every
request names a **tenant** (billing/isolation unit) and a **priority
class**; before a request touches the queue the controller checks

1. the tenant's **pending quota** — an in-flight cap so one tenant
   cannot monopolise the fleet,
2. the tenant's **rate quota** — a token bucket over admissions per
   second of (injectable) clock time, and
3. the priority class's **occupancy watermark** — class ``p`` may only
   admit while *total* in-flight occupancy is under its fraction of
   ``capacity``, so as the tier fills, ``batch`` sheds before
   ``standard`` sheds before ``interactive``, no matter whose traffic
   filled it.

Each check sheds with its own typed error —
:class:`~repro.util.errors.TenantQuotaExceededError` (naming the tenant
*and* which quota tripped) or
:class:`~repro.util.errors.PriorityShedError` — so callers, the chaos
auditor, and the metrics all see *why* a request was refused, never a
bare "overloaded".

Crucially the pending quota is also what prevents **starvation**: a
saturating high-priority tenant is capped at its own
``max_pending``, leaving capacity below every watermark, so a
low-priority tenant keeps being admitted (the starvation test pins
this).

Admission returns an :class:`AdmissionTicket`; releasing it (the
serving frontend does so when the request's future settles) frees the
tenant's and class's slots. The controller is clock-injectable and
fully deterministic for simulated time, which is how the serving
simulator drives the *production* policy code at 100k requests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..util.errors import (
    ConfigurationError,
    PriorityShedError,
    TenantQuotaExceededError,
)

__all__ = [
    "PRIORITIES",
    "TenantQuota",
    "AdmissionTicket",
    "AdmissionController",
]

#: Priority classes, lowest first. Watermarks below are fractions of
#: ``capacity`` the class may occupy together with everything above it.
PRIORITIES = ("batch", "standard", "interactive")

_DEFAULT_WATERMARKS = {"batch": 0.5, "standard": 0.8, "interactive": 1.0}


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission limits.

    ``max_pending`` caps in-flight (admitted, not yet released)
    requests. ``rate_per_s``/``burst`` form a token bucket over
    admissions; ``rate_per_s=None`` disables rate limiting.
    ``priority`` is the tenant's default class (overridable per
    request).
    """

    max_pending: int = 64
    rate_per_s: Optional[float] = None
    burst: int = 16
    priority: str = "standard"

    def __post_init__(self):
        if self.max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise ConfigurationError(
                f"rate_per_s must be positive, got {self.rate_per_s}"
            )
        if self.burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {self.burst}")
        if self.priority not in PRIORITIES:
            raise ConfigurationError(
                f"priority must be one of {PRIORITIES}, got {self.priority!r}"
            )


@dataclass(frozen=True)
class AdmissionTicket:
    """Proof of admission; release it when the request settles."""

    tenant: str
    priority: str
    seq: int


class _TenantState:
    __slots__ = ("quota", "pending", "tokens", "refilled_at")

    def __init__(self, quota: TenantQuota, now: float):
        self.quota = quota
        self.pending = 0
        self.tokens = float(quota.burst)
        self.refilled_at = now


class AdmissionController:
    """Admit or shed requests against tenant quotas and class watermarks.

    Parameters
    ----------
    capacity:
        Total in-flight requests the tier is sized for; the priority
        watermarks are fractions of it.
    quotas:
        Per-tenant :class:`TenantQuota` by name; tenants not named get
        ``default_quota``.
    default_quota:
        Quota for unnamed tenants (default: 64 pending, no rate limit).
    watermarks:
        ``{priority: fraction}`` occupancy ceilings; defaults to
        batch 0.5 / standard 0.8 / interactive 1.0.
    clock:
        Injectable seconds clock (simulated time in the load sim).
    """

    def __init__(
        self,
        capacity: int = 256,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        *,
        default_quota: Optional[TenantQuota] = None,
        watermarks: Optional[Dict[str, float]] = None,
        clock=time.monotonic,
    ):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.default_quota = default_quota or TenantQuota()
        self.watermarks = dict(_DEFAULT_WATERMARKS)
        if watermarks:
            unknown = set(watermarks) - set(PRIORITIES)
            if unknown:
                raise ConfigurationError(
                    f"unknown priority classes in watermarks: {sorted(unknown)}"
                )
            self.watermarks.update(watermarks)
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantState] = {}
        self._quotas = dict(quotas or {})
        self._pending_by_priority = {p: 0 for p in PRIORITIES}
        self._seq = 0
        self._admitted = None
        self._shed = None
        self._pending_gauge = None

    def attach_metrics(self, registry) -> None:
        """Publish ``repro_serve_admitted_total{tenant,priority}``,
        ``repro_serve_shed_total{tenant,reason}`` and the
        ``repro_serve_inflight`` gauge (by priority)."""
        with self._lock:
            self._admitted = registry.counter(
                "repro_serve_admitted_total",
                "Requests admitted, by tenant and priority class.",
            )
            self._shed = registry.counter(
                "repro_serve_shed_total",
                "Requests shed at admission, by tenant and reason.",
            )
            self._pending_gauge = registry.gauge(
                "repro_serve_inflight",
                "Admitted, unreleased requests by priority class.",
            )

    def _state(self, tenant: str, now: float) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            quota = self._quotas.get(tenant, self.default_quota)
            state = self._tenants[tenant] = _TenantState(quota, now)
        return state

    def _refill(self, state: _TenantState, now: float) -> None:
        quota = state.quota
        if quota.rate_per_s is None:
            return
        elapsed = max(0.0, now - state.refilled_at)
        state.tokens = min(
            float(quota.burst), state.tokens + elapsed * quota.rate_per_s
        )
        state.refilled_at = now

    def _shed_locked(self, tenant: str, reason: str) -> None:
        if self._shed is not None:
            self._shed.inc(tenant=tenant, reason=reason)

    def admit(
        self,
        tenant: str = "default",
        priority: Optional[str] = None,
        now: Optional[float] = None,
    ) -> AdmissionTicket:
        """Admit one request or raise the typed shed error.

        Checks run cheapest-first: pending quota, rate quota, then the
        priority watermark over aggregate occupancy.
        """
        if now is None:
            now = self._clock()
        with self._lock:
            state = self._state(tenant, now)
            quota = state.quota
            prio = priority if priority is not None else quota.priority
            if prio not in PRIORITIES:
                raise ConfigurationError(
                    f"priority must be one of {PRIORITIES}, got {prio!r}"
                )
            if state.pending >= quota.max_pending:
                self._shed_locked(tenant, "tenant_pending")
                raise TenantQuotaExceededError(
                    f"tenant {tenant!r} pending quota "
                    f"({quota.max_pending} in flight) exceeded",
                    tenant=tenant,
                    quota="pending",
                )
            if quota.rate_per_s is not None:
                self._refill(state, now)
                if state.tokens < 1.0:
                    self._shed_locked(tenant, "tenant_rate")
                    raise TenantQuotaExceededError(
                        f"tenant {tenant!r} rate quota "
                        f"({quota.rate_per_s:g}/s, burst {quota.burst}) "
                        "exceeded",
                        tenant=tenant,
                        quota="rate",
                    )
            # Priority watermark: class ``p`` may only admit while
            # *total* occupancy stays under watermark[p] * capacity, so
            # as the tier fills, batch stops admitting at 50%, standard
            # at 80%, and only interactive can use the last slots —
            # shed order is strictly lowest-class-first no matter who
            # generated the load.
            ceiling = self.watermarks[prio] * self.capacity
            occupancy = sum(self._pending_by_priority.values())
            if occupancy + 1 > ceiling:
                self._shed_locked(tenant, f"priority_{prio}")
                raise PriorityShedError(
                    f"priority class {prio!r} is over its watermark "
                    f"({occupancy}/{ceiling:g} of capacity "
                    f"{self.capacity}); request shed",
                    priority=prio,
                )
            if quota.rate_per_s is not None:
                state.tokens -= 1.0
            state.pending += 1
            self._pending_by_priority[prio] += 1
            self._seq += 1
            if self._admitted is not None:
                self._admitted.inc(tenant=tenant, priority=prio)
            if self._pending_gauge is not None:
                self._pending_gauge.set(
                    self._pending_by_priority[prio], priority=prio
                )
            return AdmissionTicket(tenant=tenant, priority=prio, seq=self._seq)

    def release(self, ticket: AdmissionTicket) -> None:
        """Free the slots an admitted request held (idempotence is the
        caller's job — release once per ticket)."""
        with self._lock:
            state = self._tenants.get(ticket.tenant)
            if state is not None and state.pending > 0:
                state.pending -= 1
            if self._pending_by_priority[ticket.priority] > 0:
                self._pending_by_priority[ticket.priority] -= 1
            if self._pending_gauge is not None:
                self._pending_gauge.set(
                    self._pending_by_priority[ticket.priority],
                    priority=ticket.priority,
                )

    # -- reading -------------------------------------------------------------

    def pending(self, tenant: Optional[str] = None) -> int:
        """In-flight count for one tenant, or the aggregate."""
        with self._lock:
            if tenant is not None:
                state = self._tenants.get(tenant)
                return state.pending if state is not None else 0
            return sum(self._pending_by_priority.values())

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time occupancy by tenant and by priority class."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "by_priority": dict(self._pending_by_priority),
                "by_tenant": {
                    name: state.pending
                    for name, state in sorted(self._tenants.items())
                },
            }
