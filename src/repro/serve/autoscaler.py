"""Metrics-driven autoscaling of the worker/device fleet.

The autoscaler closes the loop the observability layer opened: the
``repro_service_queue_depth`` gauge and the group-latency histograms
already in the :class:`~repro.obs.MetricsRegistry` *are* its inputs —
it reads the registry like any operator dashboard would, decides a
target fleet width, and applies it through anything with
``resize(n)``/``size`` (the real :class:`~repro.serve.fleet
.ScalableWorkerFleet`, or the simulator's model of one).

Policy (deliberately boring — reviewable over clever):

- **scale up** when queue depth per worker exceeds
  ``target_queue_per_worker``, proportionally (depth / target rounds to
  the fleet that would restore the ratio), or when the group-latency
  p99 read off the histogram breaches ``latency_slo_ms``;
- **scale down** one worker at a time, only after ``idle_ticks_down``
  consecutive ticks with the queue near-empty and latency inside SLO —
  shrink slowly, grow fast;
- a ``cooldown_ticks`` refractory period after any change stops
  flapping.

Every tick emits a decision: a counter
(``repro_serve_autoscaler_decisions_total{action}``), a gauge of the
target, and — when a tracer is attached — an ``autoscale`` span
carrying the inputs it saw, so scaling history is replayable from the
trace alone. Decisions are pure functions of (registry state, policy,
tick count): deterministic in simulation, explainable in production.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..util.errors import ConfigurationError

__all__ = ["AutoscalerPolicy", "AutoscaleDecision", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Bounds and thresholds for :class:`Autoscaler`."""

    min_workers: int = 1
    max_workers: int = 16
    target_queue_per_worker: float = 4.0  # scale up above this ratio
    latency_slo_ms: Optional[float] = None  # p99 trigger, None = depth only
    idle_ticks_down: int = 3  # consecutive calm ticks before shrinking
    cooldown_ticks: int = 1  # refractory ticks after any resize

    def __post_init__(self):
        if self.min_workers < 1:
            raise ConfigurationError(
                f"min_workers must be >= 1, got {self.min_workers}"
            )
        if self.max_workers < self.min_workers:
            raise ConfigurationError(
                f"max_workers ({self.max_workers}) must be >= min_workers "
                f"({self.min_workers})"
            )
        if self.target_queue_per_worker <= 0:
            raise ConfigurationError("target_queue_per_worker must be > 0")


@dataclass(frozen=True)
class AutoscaleDecision:
    """One tick's verdict, with the inputs that produced it."""

    tick: int
    action: str  # "up" | "down" | "hold"
    workers_before: int
    workers_after: int
    queue_depth: float
    latency_p99_ms: float
    reason: str


class Autoscaler:
    """Reads the registry, resizes the fleet, records what it did."""

    #: Histogram the p99 trigger reads (simulated group latency).
    LATENCY_METRIC = "repro_service_group_simulated_ms"
    #: Gauge the depth trigger reads.
    DEPTH_METRIC = "repro_service_queue_depth"

    def __init__(
        self,
        fleet,
        registry,
        policy: Optional[AutoscalerPolicy] = None,
        *,
        tracer=None,
    ):
        self.fleet = fleet
        self.registry = registry
        self.policy = policy or AutoscalerPolicy()
        self.tracer = tracer
        self._tick = 0
        self._calm_ticks = 0
        self._cooldown = 0
        self.decisions: "list[AutoscaleDecision]" = []
        self._decisions_metric = registry.counter(
            "repro_serve_autoscaler_decisions_total",
            "Autoscaler verdicts per tick, by action.",
        )
        self._target_metric = registry.gauge(
            "repro_serve_autoscaler_target_workers",
            "Fleet width the autoscaler last asked for.",
        )
        self._target_metric.set(self.fleet.size)

    # -- inputs --------------------------------------------------------------

    def _queue_depth(self) -> float:
        gauge = self.registry.get(self.DEPTH_METRIC)
        return gauge.value() if gauge is not None else 0.0

    def _latency_p99(self) -> float:
        hist = self.registry.get(self.LATENCY_METRIC)
        return hist.quantile(0.99) if hist is not None else 0.0

    # -- the control loop ----------------------------------------------------

    def tick(self, now_ms: Optional[float] = None) -> AutoscaleDecision:
        """One control-loop step; returns (and records) the decision.

        ``now_ms`` timestamps the decision span on the caller's clock
        (simulated ms in the load sim); omitted, spans use the tick
        index as their timeline.
        """
        policy = self.policy
        self._tick += 1
        depth = self._queue_depth()
        p99 = self._latency_p99()
        workers = self.fleet.size
        slo_breached = (
            policy.latency_slo_ms is not None and p99 > policy.latency_slo_ms
        )
        backlogged = depth > policy.target_queue_per_worker * workers

        action, reason, target = "hold", "steady", workers
        if self._cooldown > 0:
            self._cooldown -= 1
            reason = "cooldown"
        elif backlogged or slo_breached:
            self._calm_ticks = 0
            want = int(math.ceil(depth / policy.target_queue_per_worker))
            if slo_breached:
                want = max(want, workers + 1)
            target = max(
                policy.min_workers, min(policy.max_workers, max(want, workers))
            )
            if target > workers:
                action = "up"
                reason = "latency_slo" if slo_breached else "queue_depth"
            else:
                reason = "at_max" if workers >= policy.max_workers else "steady"
        else:
            self._calm_ticks += 1
            if (
                self._calm_ticks >= policy.idle_ticks_down
                and workers > policy.min_workers
                and depth <= workers  # genuinely drained, not just lucky
            ):
                target = workers - 1
                action = "down"
                reason = "idle"
                self._calm_ticks = 0

        if target != workers:
            self.fleet.resize(target)
            self._cooldown = policy.cooldown_ticks
        decision = AutoscaleDecision(
            tick=self._tick,
            action=action,
            workers_before=workers,
            workers_after=target,
            queue_depth=depth,
            latency_p99_ms=p99,
            reason=reason,
        )
        self.decisions.append(decision)
        self._decisions_metric.inc(action=action)
        self._target_metric.set(target)
        if self.tracer is not None:
            at = float(self._tick) if now_ms is None else float(now_ms)
            self.tracer.leaf(
                f"autoscale[{self._tick}]",
                "autoscale",
                at,
                at,
                action=action,
                queue_depth=depth,
                latency_p99_ms=p99,
                reason=reason,
                workers_before=workers,
                workers_after=target,
            )
        return decision
