"""The async serving tier.

Everything the batched solve service does — plan-signature grouping,
merged solves, verification, deadlines, the circuit breaker — behind a
front door built for many concurrent callers:

- :class:`AsyncSolveService` — asyncio-native submission with a sync
  facade on the *same* code path (bit-identical results either way);
- :class:`ShardedTuningCache` — the tuning cache striped over
  independently-locked shards, with per-shard hit/miss/contention
  counters;
- :class:`AdmissionController` — per-tenant quotas and priority
  classes, shedding with typed errors that say which quota tripped;
- :class:`ScalableWorkerFleet` + :class:`Autoscaler` — a resizable
  worker fleet driven by the queue-depth gauge and latency histograms
  already in the metrics registry;
- :func:`simulate_serving` / :func:`compare_tiers` — the deterministic
  load simulation behind ``repro serve-bench``.
"""

from .admission import (
    PRIORITIES,
    AdmissionController,
    AdmissionTicket,
    TenantQuota,
)
from .autoscaler import AutoscaleDecision, Autoscaler, AutoscalerPolicy
from .fleet import ScalableWorkerFleet
from .frontend import AsyncSolveService
from .shards import ShardedTuningCache
from .simulate import (
    ServingSimConfig,
    ServingSimReport,
    compare_tiers,
    simulate_serving,
)

__all__ = [
    "PRIORITIES",
    "AdmissionController",
    "AdmissionTicket",
    "TenantQuota",
    "AutoscaleDecision",
    "Autoscaler",
    "AutoscalerPolicy",
    "ScalableWorkerFleet",
    "AsyncSolveService",
    "ShardedTuningCache",
    "ServingSimConfig",
    "ServingSimReport",
    "compare_tiers",
    "simulate_serving",
]
