"""A worker fleet the autoscaler can grow and shrink at runtime.

``concurrent.futures.ThreadPoolExecutor`` fixes its size at
construction; the serving tier needs a pool whose width tracks load.
:class:`ScalableWorkerFleet` is a minimal executor — ``submit`` /
``shutdown`` compatible, so :class:`~repro.service.BatchSolveService`
accepts it via its ``executor=`` hook — backed by a shared work queue
and N threads, plus :meth:`resize`:

- growing spawns threads immediately;
- shrinking enqueues poison pills, so busy workers finish their merged
  solve before retiring (no solve is ever interrupted).

Each worker models one device replica of the simulated backend — the
"worker/device fleet" the ROADMAP's autoscaling item names. The fleet
publishes its width as the ``repro_serve_fleet_workers`` gauge, the
signal the autoscaler's decisions are audited against.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Optional

from ..util.errors import ConfigurationError

__all__ = ["ScalableWorkerFleet"]

_POISON = object()


class ScalableWorkerFleet:
    """Thread fleet with runtime :meth:`resize`; executor-compatible."""

    def __init__(self, workers: int = 4, *, name: str = "repro-serve"):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self._name = name
        self._work: "queue.SimpleQueue" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._threads: "list[threading.Thread]" = []
        self._target = 0
        self._spawned = 0
        self._closed = False
        self._gauge = None
        self.resize(workers)

    def attach_metrics(self, registry) -> None:
        """Publish the live worker count as ``repro_serve_fleet_workers``."""
        with self._lock:
            self._gauge = registry.gauge(
                "repro_serve_fleet_workers",
                "Worker threads currently in the fleet.",
            )
            self._gauge.set(self._target)

    @property
    def size(self) -> int:
        """The fleet's target width (threads converge to it)."""
        with self._lock:
            return self._target

    def resize(self, workers: int) -> int:
        """Set the fleet width; returns the delta applied.

        Growth is immediate; shrink retires workers only between merged
        solves (poison pills drain in queue order).
        """
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        with self._lock:
            if self._closed:
                raise ConfigurationError("fleet is shut down")
            delta = workers - self._target
            self._target = workers
            if self._gauge is not None:
                self._gauge.set(workers)
            for _ in range(max(0, delta)):
                self._spawned += 1
                thread = threading.Thread(
                    target=self._run,
                    name=f"{self._name}-{self._spawned}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        for _ in range(max(0, -delta)):
            self._work.put(_POISON)
        return delta

    def submit(self, fn, *args, **kwargs) -> Future:
        """Queue one call; returns its :class:`Future`."""
        if self._closed:
            raise ConfigurationError("fleet is shut down")
        future: Future = Future()
        self._work.put((future, fn, args, kwargs))
        return future

    def _run(self) -> None:
        while True:
            item = self._work.get()
            if item is _POISON:
                return
            future, fn, args, kwargs = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # mirror Executor semantics
                future.set_exception(exc)

    def shutdown(self, wait: bool = True) -> None:
        """Retire every worker; idempotent."""
        with self._lock:
            if self._closed:
                threads = []
            else:
                self._closed = True
                threads = list(self._threads)
                for _ in range(self._target):
                    self._work.put(_POISON)
                self._target = 0
                if self._gauge is not None:
                    self._gauge.set(0)
        if wait:
            for thread in threads:
                thread.join()
