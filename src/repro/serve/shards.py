"""Lock-striped tuning/plan cache for the serving tier.

One :class:`~repro.core.tuning.TuningCache` guards its store with one
lock; at serving request rates every worker thread funnels through it
and the lock becomes the bottleneck the ROADMAP names. The fix is the
classic one: **lock striping**. :class:`ShardedTuningCache` splits the
key space over ``num_shards`` independent :class:`TuningCache` shards —
each with its own lock, store, and hit/miss counters — by hashing the
exact same stable key string :meth:`TuningCache.key` produces, so two
lookups contend only when they hash to the same shard.

The wrapper keeps the full ``TuningCache`` surface (``get``/``put``/
``get_or_tune``/``counters``/``attach_metrics``/``clear``), so it drops
into :class:`~repro.service.BatchSolveService` as ``cache=`` unchanged,
and `attach_metrics` replay semantics are preserved shard by shard
(each shard replays its own pre-attachment counters, labelled with its
shard index). A best-effort contention probe counts how often a lookup
found its shard's lock already held — the observable that justifies the
striping.
"""

from __future__ import annotations

import os
import zlib
from typing import Callable, Dict, Optional, Union

from ..core.config import SwitchPoints
from ..core.tuning.cache import TuningCache, WorkloadClass
from ..util.errors import ConfigurationError

__all__ = ["ShardedTuningCache"]


class ShardedTuningCache:
    """``TuningCache`` striped over independent, independently-locked shards.

    Parameters
    ----------
    num_shards:
        Stripe count. Contention drops roughly linearly in it; 8 covers
        a 16-worker fleet comfortably.
    path:
        Optional base path for persistence; shard ``i`` persists to
        ``<path>.shard<i>``. Memory-only when omitted (the serving
        default).
    """

    def __init__(
        self,
        num_shards: int = 8,
        path: Union[str, os.PathLike, None] = None,
    ):
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.num_shards = num_shards
        self.path = os.fspath(path) if path is not None else None
        self._shards = tuple(
            TuningCache(
                None if self.path is None else f"{self.path}.shard{i}"
            )
            for i in range(num_shards)
        )
        self._contended = [0] * num_shards
        self._contention_metric = None

    # -- sharding ------------------------------------------------------------

    @staticmethod
    def shard_index(key_text: str, num_shards: int) -> int:
        """Stable shard of a :meth:`TuningCache.key` string.

        CRC32 rather than ``hash()`` so the mapping survives process
        restarts and ``PYTHONHASHSEED`` — shard-labelled metrics stay
        comparable across runs.
        """
        return zlib.crc32(key_text.encode("utf-8")) % num_shards

    def shard_for(
        self,
        device_name: str,
        dtype_size: int,
        workload_class: WorkloadClass = "generic",
    ) -> TuningCache:
        """The shard owning one (device, dtype, workload-class) key."""
        idx = self.shard_index(
            TuningCache.key(device_name, dtype_size, workload_class),
            self.num_shards,
        )
        self._probe_contention(idx)
        return self._shards[idx]

    def _probe_contention(self, idx: int) -> None:
        # Best-effort: a failed non-blocking acquire means some other
        # thread is inside this shard right now. Racy by construction
        # (that's the point — it samples live contention), never wrong
        # by more than a count, and free when uncontended.
        lock = self._shards[idx]._lock
        if lock.acquire(blocking=False):
            lock.release()
        else:
            self._contended[idx] += 1
            if self._contention_metric is not None:
                self._contention_metric.inc(shard=str(idx))

    # -- the TuningCache surface --------------------------------------------

    def get(
        self,
        device_name: str,
        dtype_size: int,
        workload_class: WorkloadClass = "generic",
    ) -> Optional[SwitchPoints]:
        return self.shard_for(device_name, dtype_size, workload_class).get(
            device_name, dtype_size, workload_class
        )

    def put(
        self,
        device_name: str,
        dtype_size: int,
        switch: SwitchPoints,
        workload_class: WorkloadClass = "generic",
    ) -> None:
        self.shard_for(device_name, dtype_size, workload_class).put(
            device_name, dtype_size, switch, workload_class
        )

    def get_or_tune(
        self,
        device_name: str,
        dtype_size: int,
        tune: Callable[[], SwitchPoints],
        workload_class: WorkloadClass = "generic",
    ) -> SwitchPoints:
        return self.shard_for(
            device_name, dtype_size, workload_class
        ).get_or_tune(device_name, dtype_size, tune, workload_class)

    def attach_metrics(self, registry) -> None:
        """Attach every shard (labelled ``shard="<i>"``, replay
        preserved per shard) plus the contention counter
        ``repro_serve_cache_shard_contention_total{shard}``."""
        for i, shard in enumerate(self._shards):
            shard.attach_metrics(registry, shard=str(i))
        self._contention_metric = registry.counter(
            "repro_serve_cache_shard_contention_total",
            "Lookups that found their shard's lock already held.",
        )
        for i, count in enumerate(self._contended):
            if count:
                self._contention_metric.inc(count, shard=str(i))

    def counters(self) -> Dict[str, int]:
        """Aggregate hits/misses/entries across shards (the
        ``TuningCache.counters`` shape, plus contention)."""
        total = {"hits": 0, "misses": 0, "entries": 0}
        for shard in self._shards:
            for k, v in shard.counters().items():
                total[k] += v
        total["contended"] = sum(self._contended)
        return total

    def shard_counters(self) -> "list[Dict[str, int]]":
        """Per-shard hit/miss/entry/contention counters, by index."""
        out = []
        for i, shard in enumerate(self._shards):
            c = shard.counters()
            c["contended"] = self._contended[i]
            out.append(c)
        return out

    def reset_counters(self) -> None:
        for shard in self._shards:
            shard.reset_counters()
        self._contended = [0] * self.num_shards

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)
