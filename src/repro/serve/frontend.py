"""The asyncio-native serving frontend over the batched solve service.

:class:`AsyncSolveService` is the serving tier's front door. It owns

- a :class:`~repro.service.BatchSolveService` for everything the
  service layer already does right — plan/tuning reuse, deterministic
  plan-signature grouping, merged solves, bisection, deadlines, the
  circuit breaker — executed on a resizable
  :class:`~repro.serve.fleet.ScalableWorkerFleet` instead of a fixed
  thread pool;
- a sharded :class:`~repro.serve.shards.ShardedTuningCache` in place of
  the single-lock cache;
- an optional :class:`~repro.serve.admission.AdmissionController`
  (tenant quotas, priority classes) checked before anything is queued;
- an optional :class:`~repro.serve.autoscaler.Autoscaler`, ticked on
  every flush while the queue-depth gauge still shows the backlog.

Submission is awaitable (`await service.submit(...)` yields an
:class:`asyncio.Future`), and the **sync facade is the same code
path**: ``submit_sync`` is ``submit`` minus the asyncio wrapping, so a
request stream produces *identical group assignments and bit-identical
solutions* whichever door it came through — the parity property the
tests pin. Nothing numeric happens on the event loop; solves run on
the fleet and the loop only awaits their futures.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Future
from typing import List, Optional, Sequence, Union

from ..service.queue import CircuitBreaker
from ..service.workers import BatchSolveService, ServiceResult
from ..systems.tridiagonal import TridiagonalBatch
from .admission import AdmissionController
from .autoscaler import Autoscaler, AutoscalerPolicy
from .fleet import ScalableWorkerFleet
from .shards import ShardedTuningCache

__all__ = ["AsyncSolveService"]


class AsyncSolveService:
    """Asyncio frontend + admission + sharded caches + autoscaling.

    Parameters mirror :class:`~repro.service.BatchSolveService` where
    they overlap; the serving-tier additions:

    admission:
        An :class:`AdmissionController`; ``None`` admits everything
        (single-tenant mode).
    autoscale:
        ``True`` (or an :class:`AutoscalerPolicy`) builds an
        :class:`Autoscaler` over the fleet, ticked at every flush.
    num_shards:
        Stripe count of the default sharded cache (ignored when a
        ``cache`` instance is passed).
    workers:
        Initial fleet width (the autoscaler moves it afterwards).
    """

    def __init__(
        self,
        device: str = "gtx470",
        tuning: Union[str, object] = "static",
        *,
        cache=None,
        num_shards: int = 8,
        workers: int = 4,
        admission: Optional[AdmissionController] = None,
        autoscale: Union[bool, AutoscalerPolicy] = False,
        breaker: Optional[CircuitBreaker] = None,
        max_pending: int = 1024,
        overflow: str = "block",
        submit_timeout: Optional[float] = None,
        auto_flush: Optional[int] = None,
        max_group_systems: Optional[int] = None,
        verify: bool = False,
        dist=None,
        faults=None,
        metrics=None,
        tracer=None,
    ):
        from ..obs import MetricsRegistry

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = (
            cache if cache is not None else ShardedTuningCache(num_shards)
        )
        self.fleet = ScalableWorkerFleet(workers)
        self.fleet.attach_metrics(self.metrics)
        self.admission = admission
        if admission is not None:
            admission.attach_metrics(self.metrics)
        self.service = BatchSolveService(
            device,
            tuning,
            cache=self.cache,
            max_pending=max_pending,
            overflow=overflow,
            submit_timeout=submit_timeout,
            auto_flush=auto_flush,
            max_group_systems=max_group_systems,
            verify=verify,
            dist=dist,
            faults=faults,
            breaker=breaker,
            metrics=self.metrics,
            tracer=tracer,
            executor=self.fleet,
        )
        self.autoscaler: Optional[Autoscaler] = None
        if autoscale:
            policy = (
                autoscale
                if isinstance(autoscale, AutoscalerPolicy)
                else AutoscalerPolicy(
                    min_workers=1, max_workers=max(workers * 4, workers)
                )
            )
            self.autoscaler = Autoscaler(
                self.fleet, self.metrics, policy, tracer=tracer
            )

    # -- shared request path -------------------------------------------------

    @property
    def stats(self):
        """The inner service's :class:`~repro.service.ServiceStats`."""
        return self.service.stats

    def submit_sync(
        self,
        batch: TridiagonalBatch,
        device=None,
        *,
        tenant: str = "default",
        priority: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_ms: Optional[float] = None,
        tolerance: Optional[float] = None,
    ) -> "Future[ServiceResult]":
        """The sync facade: admission, then the service's own submit.

        This *is* the async path minus the asyncio wrapper — both doors
        lead to the same queue, grouping, and merged solves, which is
        what keeps them bit-identical.
        """
        ticket = None
        if self.admission is not None:
            try:
                ticket = self.admission.admit(tenant, priority)
            except Exception:
                self.stats.record_shed()
                raise
        try:
            future = self.service.submit(
                batch,
                device,
                timeout=timeout,
                deadline_ms=deadline_ms,
                tolerance=tolerance,
            )
        except Exception:
            if ticket is not None:
                self.admission.release(ticket)
            raise
        if ticket is not None:
            admission, held = self.admission, ticket
            future.add_done_callback(lambda _f: admission.release(held))
        return future

    async def submit(
        self,
        batch: TridiagonalBatch,
        device=None,
        *,
        tenant: str = "default",
        priority: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline_ms: Optional[float] = None,
        tolerance: Optional[float] = None,
    ) -> "asyncio.Future[ServiceResult]":
        """Awaitable submission: admit + enqueue now, result later.

        Returns an :class:`asyncio.Future` resolving to the request's
        :class:`~repro.service.ServiceResult`; gather a stream of them
        after :meth:`flush`. Typed admission/backpressure errors raise
        here, before anything is queued.
        """
        inner = self.submit_sync(
            batch,
            device,
            tenant=tenant,
            priority=priority,
            timeout=timeout,
            deadline_ms=deadline_ms,
            tolerance=tolerance,
        )
        return asyncio.wrap_future(inner)

    async def solve(
        self,
        batch: TridiagonalBatch,
        device=None,
        *,
        tenant: str = "default",
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        tolerance: Optional[float] = None,
    ) -> ServiceResult:
        """Submit one request, flush, await its answer."""
        future = await self.submit(
            batch,
            device,
            tenant=tenant,
            priority=priority,
            deadline_ms=deadline_ms,
            tolerance=tolerance,
        )
        self.flush()
        return await future

    async def solve_many(
        self,
        batches: Sequence[TridiagonalBatch],
        device=None,
        *,
        tenant: str = "default",
        priority: Optional[str] = None,
        tolerance: Optional[float] = None,
    ) -> List[ServiceResult]:
        """Submit a stream, flush once, gather in submission order."""
        futures = [
            await self.submit(
                batch,
                device,
                tenant=tenant,
                priority=priority,
                tolerance=tolerance,
            )
            for batch in batches
        ]
        self.flush()
        return list(await asyncio.gather(*futures))

    def solve_many_sync(
        self,
        batches: Sequence[TridiagonalBatch],
        device=None,
        *,
        tenant: str = "default",
        priority: Optional[str] = None,
        tolerance: Optional[float] = None,
    ) -> List[ServiceResult]:
        """The sync facade of :meth:`solve_many` — same path, no loop."""
        futures = [
            self.submit_sync(
                batch,
                device,
                tenant=tenant,
                priority=priority,
                tolerance=tolerance,
            )
            for batch in batches
        ]
        self.flush()
        return [future.result() for future in futures]

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> int:
        """Tick the autoscaler on the visible backlog, then dispatch."""
        if self.autoscaler is not None:
            self.autoscaler.tick()
        return self.service.flush()

    def drain(self) -> None:
        """Block until every dispatched group has finished."""
        self.service.drain()

    def close(self, wait: bool = True) -> None:
        """Flush pending work and retire the fleet."""
        self.service.close(wait=wait)

    def __enter__(self) -> "AsyncSolveService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    async def __aenter__(self) -> "AsyncSolveService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()
