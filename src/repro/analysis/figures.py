"""Data producers for the paper's figures (5, 6, 7, 8).

Each function returns plain data structures (dicts keyed like the paper's
axes); the benchmark harnesses render them as tables. Timings come from
the machine model at the paper's *nominal* workload shapes via
:func:`repro.core.pricing.simulate_plan` / :func:`price_base_kernel` —
identical to what the real solver records (a regression test pins this),
but without materialising multi-gigabyte batches in host memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.config import SwitchPoints
from ..core.pricing import price_base_kernel, simulate_plan
from ..core.tuning import DefaultTuner, MachineQueryTuner, SelfTuner
from ..gpu.executor import Device, make_device
from ..gpu.spec import device_names
from ..systems.suite import paper_workloads
from ..baselines.mkl import MklLikeCpuSolver

__all__ = [
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "Figure7Cell",
    "headline_savings",
    "DTYPE_SIZE",
]

# The paper's CUDA 3.1-era kernels are single precision.
DTYPE_SIZE = 4

_FIG5_SIZES = (128, 256, 512, 1024)
_FIG6_SWITCHES = (16, 32, 64, 128, 256, 512)


def _tuned_switch_points(
    device: Device,
    dtype_size: int,
    num_systems: int = 0,
    system_size: int = 0,
) -> SwitchPoints:
    return SelfTuner().switch_points(
        device, num_systems, system_size, dtype_size
    )


def figure5(
    devices: Tuple[str, ...] = device_names(),
    *,
    dtype_size: int = DTYPE_SIZE,
    num_systems: int = 2048,
    system_size: int = 1024,
) -> Dict[str, Dict[int, Optional[float]]]:
    """Relative performance vs stage-2→3 switch point, per device.

    Workload: many machine-filling systems of 1024 equations — the shape
    behind the paper's §V observation that the GTX 470 prefers splitting
    1024-sized systems one step further to 512. Values are normalised to
    the best switch point (1.0 = optimal); infeasible sizes (exceeding
    on-chip capacity) are ``None``.
    """
    out: Dict[str, Dict[int, Optional[float]]] = {}
    for name in devices:
        device = make_device(name)
        tuned = _tuned_switch_points(device, dtype_size, num_systems, system_size)
        times: Dict[int, Optional[float]] = {}
        for size in _FIG5_SIZES:
            if size > device.max_onchip_system_size(dtype_size):
                times[size] = None
                continue
            switch = tuned.with_(
                stage3_system_size=size,
                thomas_switch=min(tuned.thomas_switch, size),
                stage1_target_systems=1,  # many systems: stage 1 idle
            )
            _, report = simulate_plan(
                device, num_systems, system_size, dtype_size, switch
            )
            times[size] = report.total_ms
        best = min(t for t in times.values() if t is not None)
        out[name] = {
            size: (best / t if t is not None else None)
            for size, t in times.items()
        }
    return out


def figure6(
    devices: Tuple[str, ...] = device_names(),
    *,
    dtype_size: int = DTYPE_SIZE,
    num_systems: int = 2048,
) -> Dict[str, Dict[int, Optional[float]]]:
    """PCR-Thomas base-kernel performance vs stage-3→4 switch point.

    Workload: a machine-filling batch of shared-memory-resident systems
    at each device's maximum on-chip size. Normalised to the optimum.
    """
    out: Dict[str, Dict[int, Optional[float]]] = {}
    for name in devices:
        device = make_device(name)
        size = device.max_onchip_system_size(dtype_size)
        times: Dict[int, Optional[float]] = {}
        for switch in _FIG6_SWITCHES:
            if switch > size:
                times[switch] = None
                continue
            times[switch] = price_base_kernel(
                device,
                num_systems,
                size,
                dtype_size,
                thomas_switch=switch,
                variant="coalesced",
                stride=1,
            )
        best = min(t for t in times.values() if t is not None)
        out[name] = {
            sw: (best / t if t is not None else None)
            for sw, t in times.items()
        }
    return out


@dataclass(frozen=True)
class Figure7Cell:
    """One device × workload cell of Figure 7."""

    untuned_ms: float
    static_ms: float
    dynamic_ms: float

    @property
    def static_normalized(self) -> float:
        """Static time / untuned time (paper plots normalised bars)."""
        return self.static_ms / self.untuned_ms

    @property
    def dynamic_normalized(self) -> float:
        """Dynamic time / untuned time."""
        return self.dynamic_ms / self.untuned_ms


def figure7(
    devices: Tuple[str, ...] = device_names(),
    *,
    dtype_size: int = DTYPE_SIZE,
) -> Dict[str, Dict[str, Figure7Cell]]:
    """Untuned vs static vs dynamic across the paper's four workloads."""
    out: Dict[str, Dict[str, Figure7Cell]] = {}
    for name in devices:
        device = make_device(name)
        default_sp = DefaultTuner().switch_points(device, 0, 0, dtype_size)
        static_sp = MachineQueryTuner().switch_points(device, 0, 0, dtype_size)
        row: Dict[str, Figure7Cell] = {}
        for wl in paper_workloads():
            dynamic_sp = _tuned_switch_points(
                device, dtype_size, wl.num_systems, wl.system_size
            )
            times = {}
            for label, sp in (
                ("untuned", default_sp),
                ("static", static_sp),
                ("dynamic", dynamic_sp),
            ):
                _, report = simulate_plan(
                    device, wl.num_systems, wl.system_size, dtype_size, sp
                )
                times[label] = report.total_ms
            row[wl.name] = Figure7Cell(
                untuned_ms=times["untuned"],
                static_ms=times["static"],
                dynamic_ms=times["dynamic"],
            )
        out[name] = row
    return out


def headline_savings(
    fig7: Dict[str, Dict[str, Figure7Cell]]
) -> Dict[str, float]:
    """Section-V aggregates over the Figure-7 grid.

    Returns average runtime savings of static and dynamic tuning versus
    untuned, and the maximum dynamic speedup.
    """
    static_savings: List[float] = []
    dynamic_savings: List[float] = []
    speedups: List[float] = []
    for row in fig7.values():
        for cell in row.values():
            static_savings.append(1.0 - cell.static_normalized)
            dynamic_savings.append(1.0 - cell.dynamic_normalized)
            speedups.append(cell.untuned_ms / cell.dynamic_ms)
    count = len(static_savings)
    return {
        "static_avg_savings": sum(static_savings) / count,
        "dynamic_avg_savings": sum(dynamic_savings) / count,
        "dynamic_max_speedup": max(speedups),
    }


def figure8(
    *,
    device: str = "gtx470",
    dtype_size: int = DTYPE_SIZE,
) -> Dict[str, Dict[str, float]]:
    """GPU (dynamically tuned) vs CPU MKL model, paper workloads.

    Returns ``{workload: {gpu_ms, cpu_ms, speedup}}`` where ``speedup`` is
    CPU/GPU (>1 means the GPU wins; the paper's 1×2M point is ~0.7).
    """
    dev = make_device(device)
    cpu = MklLikeCpuSolver()
    out: Dict[str, Dict[str, float]] = {}
    for wl in paper_workloads():
        dynamic_sp = _tuned_switch_points(
            dev, dtype_size, wl.num_systems, wl.system_size
        )
        _, report = simulate_plan(
            dev, wl.num_systems, wl.system_size, dtype_size, dynamic_sp
        )
        gpu_ms = report.total_ms
        cpu_ms = cpu.modeled_time_ms(wl.num_systems, wl.system_size, dtype_size)
        out[wl.name] = {
            "gpu_ms": gpu_ms,
            "cpu_ms": cpu_ms,
            "speedup": cpu_ms / gpu_ms,
        }
    return out
