"""Scaling studies — the §VI-B scalability discussion as data.

Two sweeps on the machine model, both with dynamically tuned switch
points:

- **count scaling**: fixed system size, growing system count — shows the
  machine filling up and throughput saturating;
- **size scaling**: fixed total equations, growing system size (fewer,
  larger systems) — shows the growing split overhead that ultimately
  hands the single-enormous-system case to the CPU (Figure 8's 1×2M).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.tuning import SelfTuner
from ..core.pricing import simulate_plan
from ..gpu.executor import make_device

__all__ = ["count_scaling", "size_scaling"]


def count_scaling(
    device: str = "gtx470",
    *,
    system_size: int = 1024,
    counts: Tuple[int, ...] = (1, 4, 16, 64, 256, 1024, 4096),
    dtype_size: int = 4,
) -> List[Dict[str, float]]:
    """Simulated time and throughput vs the number of systems."""
    dev = make_device(device)
    tuner = SelfTuner()
    rows = []
    for m in counts:
        sp = tuner.switch_points(dev, m, system_size, dtype_size)
        _, report = simulate_plan(dev, m, system_size, dtype_size, sp)
        eqs = m * system_size
        rows.append(
            {
                "num_systems": m,
                "total_equations": eqs,
                "ms": report.total_ms,
                "meqs_per_s": eqs / report.total_ms / 1e3,
            }
        )
    return rows


def size_scaling(
    device: str = "gtx470",
    *,
    total_equations: int = 1 << 22,
    sizes: Tuple[int, ...] = (256, 1024, 4096, 16384, 65536, 1 << 20, 1 << 22),
    dtype_size: int = 4,
) -> List[Dict[str, float]]:
    """Simulated time vs system size at a fixed total-equation budget."""
    dev = make_device(device)
    tuner = SelfTuner()
    rows = []
    for n in sizes:
        if n > total_equations:
            continue
        m = total_equations // n
        sp = tuner.switch_points(dev, m, n, dtype_size)
        plan, report = simulate_plan(dev, m, n, dtype_size, sp)
        rows.append(
            {
                "system_size": n,
                "num_systems": m,
                "split_steps": plan.total_split_steps,
                "stage1_steps": plan.stage1_steps,
                "ms": report.total_ms,
                "meqs_per_s": total_equations / report.total_ms / 1e3,
            }
        )
    return rows
