"""ASCII timeline (Gantt) rendering of a solve's kernel spans.

The renderer consumes :class:`~repro.obs.Span` sequences — the shared
observability currency — and draws them as a proportional timeline so
the stage structure of a solve — where the milliseconds go — is visible
at a glance in a terminal:

    stage1_coop_pcr     |####                |  4.21 ms
    stage2_global_pcr   |    ##########      | 11.80 ms
    stage3_pcr_thomas   |              ###   |  2.51 ms

:func:`render_timeline` keeps its historical ``SimReport`` signature by
lifting the report's launch records into kernel spans first
(:func:`~repro.obs.spans_from_report`); :func:`render_spans` is the
span-native entry point, and accepts the kernel leaves of any traced
engine run.
"""

from __future__ import annotations

from typing import List, Sequence

from ..gpu.executor import SimReport
from ..obs.trace import Span, spans_from_report

__all__ = ["render_timeline", "render_spans"]


def render_spans(
    spans: Sequence[Span], *, title: str = "", width: int = 60
) -> str:
    """Render kernel spans as a proportional ASCII timeline.

    Each row is one span (labelled by its ``stage`` attribute and name),
    positioned and sized by its share of the end-to-end simulated time.
    """
    total = max((s.end_ms for s in spans), default=0.0)
    if total <= 0 or not spans:
        return f"{title}: (no launches)"

    def label_of(span: Span) -> str:
        stage = span.attr("stage", "")
        return f"{stage} {span.name}" if stage else span.name

    label_width = max((len(label_of(s)) for s in spans), default=8)
    label_width = min(label_width, 44)

    lines: List[str] = [
        f"{title}: {total:.3f} ms over {len(spans)} launches"
    ]
    for span in spans:
        begin = int(round(width * span.start_ms / total))
        end = max(begin + 1, int(round(width * span.end_ms / total)))
        end = min(end, width)
        bar = " " * begin + "#" * (end - begin) + " " * (width - end)
        label = label_of(span)[:label_width]
        bound = span.attr("bound")
        suffix = f" ({bound}-bound)" if bound else ""
        lines.append(
            f"{label:<{label_width}} |{bar}| {span.duration_ms:8.3f} ms"
            f"{suffix}"
        )
    return "\n".join(lines)


def render_timeline(report: SimReport, *, width: int = 60) -> str:
    """Render a report's launches as a proportional ASCII timeline.

    Each row is one launch (labelled by stage and kernel), positioned and
    sized by its share of the end-to-end simulated time.
    """
    return render_spans(
        spans_from_report(report), title=report.device_name, width=width
    )
