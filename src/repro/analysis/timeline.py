"""ASCII timeline (Gantt) rendering of a solve's launch records.

``SimReport`` already carries per-launch breakdowns; this module draws
them as a proportional timeline so the stage structure of a solve —
where the milliseconds go — is visible at a glance in a terminal:

    stage1_coop_pcr     |####                |  4.21 ms
    stage2_global_pcr   |    ##########      | 11.80 ms
    stage3_pcr_thomas   |              ###   |  2.51 ms
"""

from __future__ import annotations

from typing import List

from ..gpu.executor import SimReport

__all__ = ["render_timeline"]


def render_timeline(report: SimReport, *, width: int = 60) -> str:
    """Render a report's launches as a proportional ASCII timeline.

    Each row is one launch (labelled by stage and kernel), positioned and
    sized by its share of the end-to-end simulated time.
    """
    total = report.total_ms
    if total <= 0 or not report.records:
        return f"{report.device_name}: (no launches)"

    label_width = max(
        (len(f"{r.stage} {r.breakdown.name}") for r in report.records),
        default=8,
    )
    label_width = min(label_width, 44)

    lines: List[str] = [
        f"{report.device_name}: {total:.3f} ms over "
        f"{report.num_launches} launches"
    ]
    elapsed = 0.0
    for rec in report.records:
        start = elapsed
        elapsed += rec.total_ms
        begin = int(round(width * start / total))
        end = max(begin + 1, int(round(width * elapsed / total)))
        end = min(end, width)
        bar = " " * begin + "#" * (end - begin) + " " * (width - end)
        label = f"{rec.stage} {rec.breakdown.name}"[:label_width]
        lines.append(
            f"{label:<{label_width}} |{bar}| {rec.total_ms:8.3f} ms "
            f"({rec.breakdown.bound}-bound)"
        )
    return "\n".join(lines)
