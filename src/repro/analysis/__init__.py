"""Experiment harness: figure/table data producers and report rendering."""

from .experiments import (
    PAPER_DYNAMIC_AVG_SAVINGS,
    PAPER_DYNAMIC_MAX_SPEEDUP,
    PAPER_FIG5_OPTIMA,
    PAPER_FIG6_OPTIMA,
    PAPER_FIG7_UNTUNED_MS,
    PAPER_FIG8_CPU_MS,
    PAPER_FIG8_GPU_MS,
    PAPER_FIG8_SPEEDUPS,
    PAPER_MAX_ONCHIP,
    PAPER_STATIC_AVG_SAVINGS,
)
from .export import (
    figure5_to_csv,
    figure6_to_csv,
    figure7_to_csv,
    figure8_to_csv,
    figures_to_json,
)
from .figures import (
    DTYPE_SIZE,
    Figure7Cell,
    figure5,
    figure6,
    figure7,
    figure8,
    headline_savings,
)
from .report import ascii_table, format_value, section
from .scaling import count_scaling, size_scaling
from .scorecard import Check, render_scorecard, reproduction_scorecard
from .tables import table1, table2
from .timeline import render_spans, render_timeline

__all__ = [
    "figure5_to_csv",
    "figure6_to_csv",
    "figure7_to_csv",
    "figure8_to_csv",
    "figures_to_json",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "Figure7Cell",
    "headline_savings",
    "DTYPE_SIZE",
    "table1",
    "table2",
    "ascii_table",
    "format_value",
    "section",
    "render_spans",
    "render_timeline",
    "count_scaling",
    "size_scaling",
    "Check",
    "reproduction_scorecard",
    "render_scorecard",
    "PAPER_FIG5_OPTIMA",
    "PAPER_FIG6_OPTIMA",
    "PAPER_FIG7_UNTUNED_MS",
    "PAPER_STATIC_AVG_SAVINGS",
    "PAPER_DYNAMIC_AVG_SAVINGS",
    "PAPER_DYNAMIC_MAX_SPEEDUP",
    "PAPER_FIG8_GPU_MS",
    "PAPER_FIG8_CPU_MS",
    "PAPER_FIG8_SPEEDUPS",
    "PAPER_MAX_ONCHIP",
]
