"""Machine-readable export of the experiment data (CSV / JSON).

The text tables in :mod:`repro.analysis.report` are for humans; these
helpers serialise the same figure data for plotting pipelines and
regression dashboards.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict

from .figures import Figure7Cell

__all__ = [
    "figure5_to_csv",
    "figure6_to_csv",
    "figure7_to_csv",
    "figure8_to_csv",
    "figures_to_json",
]


def _series_to_csv(data: Dict[str, Dict[int, float]], x_name: str) -> str:
    out = io.StringIO()
    writer = csv.writer(out)
    xs = sorted(next(iter(data.values())))
    writer.writerow(["device"] + [f"{x_name}={x}" for x in xs])
    for device, series in data.items():
        writer.writerow(
            [device] + ["" if series[x] is None else f"{series[x]:.6f}" for x in xs]
        )
    return out.getvalue()


def figure5_to_csv(data: Dict[str, Dict[int, float]]) -> str:
    """Figure-5 sweep as CSV (one row per device)."""
    return _series_to_csv(data, "stage3_size")


def figure6_to_csv(data: Dict[str, Dict[int, float]]) -> str:
    """Figure-6 sweep as CSV (one row per device)."""
    return _series_to_csv(data, "thomas_switch")


def figure7_to_csv(data: Dict[str, Dict[str, Figure7Cell]]) -> str:
    """Figure-7 grid as long-format CSV."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        ["device", "workload", "untuned_ms", "static_ms", "dynamic_ms",
         "static_normalized", "dynamic_normalized"]
    )
    for device, row in data.items():
        for workload, cell in row.items():
            writer.writerow(
                [
                    device,
                    workload,
                    f"{cell.untuned_ms:.6f}",
                    f"{cell.static_ms:.6f}",
                    f"{cell.dynamic_ms:.6f}",
                    f"{cell.static_normalized:.6f}",
                    f"{cell.dynamic_normalized:.6f}",
                ]
            )
    return out.getvalue()


def figure8_to_csv(data: Dict[str, Dict[str, float]]) -> str:
    """Figure-8 comparison as CSV."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["workload", "gpu_ms", "cpu_ms", "speedup"])
    for workload, vals in data.items():
        writer.writerow(
            [
                workload,
                f"{vals['gpu_ms']:.6f}",
                f"{vals['cpu_ms']:.6f}",
                f"{vals['speedup']:.6f}",
            ]
        )
    return out.getvalue()


def figures_to_json(fig5=None, fig6=None, fig7=None, fig8=None) -> str:
    """Bundle any subset of figure data into one JSON document."""
    doc: dict = {}
    if fig5 is not None:
        doc["figure5"] = {
            d: {str(k): v for k, v in row.items()} for d, row in fig5.items()
        }
    if fig6 is not None:
        doc["figure6"] = {
            d: {str(k): v for k, v in row.items()} for d, row in fig6.items()
        }
    if fig7 is not None:
        doc["figure7"] = {
            d: {
                wl: {
                    "untuned_ms": cell.untuned_ms,
                    "static_ms": cell.static_ms,
                    "dynamic_ms": cell.dynamic_ms,
                }
                for wl, cell in row.items()
            }
            for d, row in fig7.items()
        }
    if fig8 is not None:
        doc["figure8"] = fig8
    return json.dumps(doc, indent=2, sort_keys=True)
