"""Plain-text table rendering for benchmark output.

The benchmark harnesses print the same rows/series the paper reports;
this module owns the formatting so every bench looks alike.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["ascii_table", "format_value", "section"]


def format_value(value) -> str:
    """Uniform cell formatting: floats to 3 significant figures."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: Optional[str] = None,
) -> str:
    """Render a boxed ASCII table."""
    str_rows: List[List[str]] = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells, fill=" "):
        return (
            "| "
            + " | ".join(c.ljust(w, fill) for c, w in zip(cells, widths))
            + " |"
        )

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(headers))
    out.append(sep)
    for row in str_rows:
        out.append(line(row))
    out.append(sep)
    return "\n".join(out)


def section(name: str) -> str:
    """A separator heading used between bench outputs."""
    bar = "=" * max(8, len(name) + 4)
    return f"\n{bar}\n  {name}\n{bar}"
