"""The reproduction scorecard: every paper claim, checked in one call.

:func:`reproduction_scorecard` regenerates the evaluation and grades each
published claim (Fig. 5/6 optima, §V headline savings, Fig. 8 speedup
ladder and crossover, on-chip capacities) against the measured values.
It backs the CLI's ``verify`` command, a regression test, and the
EXPERIMENTS.md narrative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..gpu.spec import PAPER_DEVICES
from .experiments import (
    PAPER_DYNAMIC_AVG_SAVINGS,
    PAPER_FIG5_OPTIMA,
    PAPER_FIG6_OPTIMA,
    PAPER_FIG8_SPEEDUPS,
    PAPER_MAX_ONCHIP,
    PAPER_STATIC_AVG_SAVINGS,
)
from .figures import figure5, figure6, figure7, figure8, headline_savings
from .report import ascii_table

__all__ = ["Check", "reproduction_scorecard", "render_scorecard"]


@dataclass(frozen=True)
class Check:
    """One graded claim."""

    claim: str
    expected: str
    measured: str
    passed: bool


def _argbest(series) -> int:
    return max(
        (k for k, v in series.items() if v is not None), key=lambda k: series[k]
    )


def reproduction_scorecard() -> List[Check]:
    """Regenerate the evaluation and grade every claim."""
    checks: List[Check] = []

    # On-chip capacities (§V).
    for name, expected in PAPER_MAX_ONCHIP.items():
        measured = PAPER_DEVICES[name].max_onchip_system_size(4)
        checks.append(
            Check(
                claim=f"{name}: largest on-chip system",
                expected=str(expected),
                measured=str(measured),
                passed=measured == expected,
            )
        )

    # Figure 5 optima.
    fig5 = figure5()
    for name, expected in PAPER_FIG5_OPTIMA.items():
        best = _argbest(fig5[name])
        near_top = [k for k, v in fig5[name].items() if v is not None and v > 0.85]
        passed = best in expected or any(e in near_top for e in expected)
        checks.append(
            Check(
                claim=f"{name}: Fig.5 optimal stage-2->3 switch",
                expected="/".join(map(str, expected)),
                measured=str(best),
                passed=passed,
            )
        )

    # Figure 6 optima.
    fig6 = figure6()
    for name, expected in PAPER_FIG6_OPTIMA.items():
        best = _argbest(fig6[name])
        checks.append(
            Check(
                claim=f"{name}: Fig.6 optimal stage-3->4 switch",
                expected="/".join(map(str, expected)),
                measured=str(best),
                passed=best in expected,
            )
        )

    # Figure 7 headlines + ordering.
    fig7 = figure7()
    agg = headline_savings(fig7)
    checks.append(
        Check(
            claim="static tuning avg savings (~17%)",
            expected=f"{PAPER_STATIC_AVG_SAVINGS:.0%}",
            measured=f"{agg['static_avg_savings']:.1%}",
            passed=0.10 <= agg["static_avg_savings"] <= 0.25,
        )
    )
    checks.append(
        Check(
            claim="dynamic tuning avg savings (~32%)",
            expected=f"{PAPER_DYNAMIC_AVG_SAVINGS:.0%}",
            measured=f"{agg['dynamic_avg_savings']:.1%}",
            passed=0.25 <= agg["dynamic_avg_savings"] <= 0.45,
        )
    )
    never_loses = all(
        cell.dynamic_ms <= min(cell.untuned_ms, cell.static_ms) * 1.02
        for row in fig7.values()
        for cell in row.values()
    )
    checks.append(
        Check(
            claim="dynamic tuning never loses to static/untuned",
            expected="always best",
            measured="always best" if never_loses else "loses somewhere",
            passed=never_loses,
        )
    )

    # Figure 8 speedups and the crossover.
    fig8 = figure8()
    for wl, expected in PAPER_FIG8_SPEEDUPS.items():
        measured = fig8[wl]["speedup"]
        if wl == "1x2M":
            passed = measured < 1.0
        else:
            passed = 0.5 * expected <= measured <= 2.0 * expected
        checks.append(
            Check(
                claim=f"Fig.8 {wl}: GPU speedup vs CPU",
                expected=f"{expected:g}x",
                measured=f"{measured:.2f}x",
                passed=passed,
            )
        )
    ladder = [fig8[wl]["speedup"] for wl in ("1Kx1K", "2Kx2K", "4Kx4K", "1x2M")]
    checks.append(
        Check(
            claim="Fig.8: GPU advantage decreases with workload size",
            expected="monotone decreasing",
            measured="monotone" if ladder == sorted(ladder, reverse=True) else "non-monotone",
            passed=ladder == sorted(ladder, reverse=True),
        )
    )
    return checks


def render_scorecard(checks: List[Check]) -> str:
    """ASCII rendering, with a pass/fail tally."""
    table = ascii_table(
        ["claim", "paper", "measured", "status"],
        [
            [c.claim, c.expected, c.measured, "PASS" if c.passed else "FAIL"]
            for c in checks
        ],
        title="Reproduction scorecard",
    )
    passed = sum(c.passed for c in checks)
    return f"{table}\n{passed}/{len(checks)} claims reproduced"
