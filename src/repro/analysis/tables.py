"""Data producers for the paper's tables (I and II)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..gpu.query import query_device
from ..gpu.spec import PAPER_DEVICES
from ..util.units import KIB

__all__ = ["table1", "table2"]


def table1() -> List[Dict[str, object]]:
    """Table I: the evaluated devices and their headline capabilities."""
    rows = []
    for spec in PAPER_DEVICES.values():
        rows.append(
            {
                "name": spec.name,
                "global_memory_bandwidth_gb_s": spec.global_bandwidth_gb_s,
                "shared_memory_kb": spec.shared_mem_per_processor // KIB,
                "num_processors": spec.num_processors,
                "thread_processors_per_processor": spec.thread_processors,
            }
        )
    return rows


def table2(device: str = "gtx470") -> List[Tuple[str, str, object]]:
    """Table II: queryable device properties with their descriptions.

    Returns ``(parameter, description, value on the chosen device)``
    triples — everything the machine-query tuner is allowed to see.
    """
    from ..gpu.spec import get_device_spec

    props = query_device(get_device_spec(device))
    return [
        (
            "Global Mem",
            "Total amount of global memory available",
            props.global_mem_bytes,
        ),
        (
            "Processors",
            "Total number of processors; each has n thread processors",
            props.num_processors,
        ),
        (
            "Constant Memory",
            "Constant memory per block, broadcast across MPs",
            props.constant_mem_bytes,
        ),
        (
            "Shared Memory",
            "Shared memory per processor; limits concurrent systems and "
            "the largest on-chip PCR-Thomas solve",
            props.shared_mem_per_processor,
        ),
        (
            "Register Memory",
            "Registers per block; trades thread count against registers "
            "per thread",
            props.registers_per_processor,
        ),
        (
            "Grid Dimensions",
            "API limit on the number of blocks per grid",
            props.max_grid_blocks,
        ),
        (
            "Warp Size",
            "Lockstep granularity (32 threads on all NVIDIA parts)",
            props.warp_size,
        ),
    ]
