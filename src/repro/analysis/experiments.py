"""Published reference values from the paper's evaluation section.

These constants are what EXPERIMENTS.md compares our measurements
against. Shapes — orderings, rough factors, crossovers — are the
reproduction target; absolute milliseconds are context.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "PAPER_FIG5_OPTIMA",
    "PAPER_FIG6_OPTIMA",
    "PAPER_FIG7_UNTUNED_MS",
    "PAPER_STATIC_AVG_SAVINGS",
    "PAPER_DYNAMIC_AVG_SAVINGS",
    "PAPER_DYNAMIC_MAX_SPEEDUP",
    "PAPER_FIG8_GPU_MS",
    "PAPER_FIG8_CPU_MS",
    "PAPER_FIG8_SPEEDUPS",
    "PAPER_MAX_ONCHIP",
]

# Figure 5: best stage-2→3 switch (on-chip system size) per device. The
# GTX 280's 256 and 512 are called "comparable"; both count as a match.
PAPER_FIG5_OPTIMA: Dict[str, Tuple[int, ...]] = {
    "8800gtx": (256,),
    "gtx280": (256, 512),
    "gtx470": (512,),
}

# Figure 6: best stage-3→4 switch (subsystems handed to Thomas).
PAPER_FIG6_OPTIMA: Dict[str, Tuple[int, ...]] = {
    "8800gtx": (64,),
    "gtx280": (128,),
    "gtx470": (128,),
}

# Figure 7: untuned execution time in milliseconds (numbers printed on
# top of the columns), per device per workload.
PAPER_FIG7_UNTUNED_MS: Dict[str, Dict[str, float]] = {
    "8800gtx": {"1Kx1K": 12.0, "2Kx2K": 68.0, "4Kx4K": 347.0, "1x2M": 279.0},
    "gtx280": {"1Kx1K": 3.0, "2Kx2K": 16.0, "4Kx4K": 101.0, "1x2M": 225.0},
    "gtx470": {"1Kx1K": 1.3, "2Kx2K": 6.3, "4Kx4K": 31.0, "1x2M": 241.0},
}

# Section V headline numbers.
PAPER_STATIC_AVG_SAVINGS = 0.17  # static tuning: 17% average runtime cut
PAPER_DYNAMIC_AVG_SAVINGS = 0.32  # dynamic tuning: 32% average runtime cut
PAPER_DYNAMIC_MAX_SPEEDUP = 5.0  # "up to 5x"

# Figure 8: GTX 470 (dynamically tuned) vs Intel MKL.
PAPER_FIG8_GPU_MS: Dict[str, float] = {
    "1Kx1K": 0.96,
    "2Kx2K": 5.52,
    "4Kx4K": 27.92,
    "1x2M": 50.40,
}
PAPER_FIG8_CPU_MS: Dict[str, float] = {
    "1Kx1K": 10.70,
    "2Kx2K": 37.9,
    "4Kx4K": 168.3,
    "1x2M": 34.0,
}
# CPU/GPU ratios as annotated on the figure (0.7x = the CPU's one win).
PAPER_FIG8_SPEEDUPS: Dict[str, float] = {
    "1Kx1K": 11.0,
    "2Kx2K": 7.0,
    "4Kx4K": 6.0,
    "1x2M": 0.7,
}

# Section V: largest on-chip-solvable system sizes per device.
PAPER_MAX_ONCHIP: Dict[str, int] = {
    "8800gtx": 256,
    "gtx280": 512,
    "gtx470": 1024,
}
