"""Shared kernel infrastructure and instruction-cost constants.

Each kernel in this package does two things at once:

1. **Numerics** — computes the exact result with the vectorised NumPy
   algorithms from :mod:`repro.algorithms` (bit-for-bit what the GPU
   kernel would produce, modulo float ordering);
2. **Cost accounting** — submits a :class:`repro.gpu.cost.KernelCost` to
   the active :class:`repro.gpu.executor.SimSession` describing the
   launch configuration, per-phase instruction counts and global traffic
   of the equivalent CUDA kernel.

The instruction constants below are per-equation issue-slot estimates for
one step of each algorithm (arithmetic plus shared-memory accesses). They
are calibration data, not logic: tests pin the *relative* behaviours
(PCR step > Thomas row, global variant < shared variant in instructions),
and ``repro.analysis.calibration`` documents how the absolute values were
fitted against the paper's published timings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..gpu.executor import SimSession
from ..gpu.spec import ARRAYS_PER_EQUATION, REGISTERS_PER_EQUATION
from ..util.errors import ConfigurationError

__all__ = [
    "PCR_SMEM_INSTR_PER_EQ",
    "GLOBAL_PCR_INSTR_PER_EQ",
    "THOMAS_INSTR_PER_ROW",
    "GLOBAL_PCR_VALUES_PER_EQ",
    "GLOBAL_PCR_ALIGNED_VALUES_PER_EQ",
    "GLOBAL_PCR_NEIGHBOR_VALUES_PER_EQ",
    "SMEM_LOAD_VALUES_PER_EQ",
    "warps_for",
    "warp_padded_threads",
    "dtype_size",
    "KernelContext",
]

# One shared-memory PCR update: ~14 flops + 12 shared reads + 4 writes.
PCR_SMEM_INSTR_PER_EQ = 24.0
# One global-memory PCR update: same flops, loads counted as traffic.
GLOBAL_PCR_INSTR_PER_EQ = 14.0
# One Thomas row (per sweep direction): ~5 flops + shared traffic.
THOMAS_INSTR_PER_ROW = 10.0
# Values moved per equation per global PCR step, split by access pattern:
# the own-row read (4) and updated-row write (4) stream aligned. Each
# thread's contiguous chunk re-reads only the neighbour rows it does not
# already hold (chunk boundaries plus cache-miss noise, ~4 values/eq);
# those offset streams pay the device's misalignment inflation.
GLOBAL_PCR_ALIGNED_VALUES_PER_EQ = 8
GLOBAL_PCR_NEIGHBOR_VALUES_PER_EQ = 4
# Total, for coarse estimates and docs.
GLOBAL_PCR_VALUES_PER_EQ = (
    GLOBAL_PCR_ALIGNED_VALUES_PER_EQ + GLOBAL_PCR_NEIGHBOR_VALUES_PER_EQ
)
# Values per equation moved by the on-chip kernel: load a, b, c, d and
# store x.
SMEM_LOAD_VALUES_PER_EQ = ARRAYS_PER_EQUATION + 1


def warps_for(threads: int, warp_size: int = 32) -> int:
    """Warps needed to run ``threads`` threads."""
    if threads < 1:
        raise ConfigurationError("threads must be >= 1")
    return -(-threads // warp_size)


def warp_padded_threads(threads: int, warp_size: int = 32) -> int:
    """``threads`` rounded up to a whole warp (hardware allocation)."""
    return warps_for(threads, warp_size) * warp_size


def dtype_size(dtype) -> int:
    """Size in bytes of a supported floating dtype."""
    size = np.dtype(dtype).itemsize
    if size not in (4, 8):
        raise ConfigurationError(f"unsupported dtype {dtype}")
    return size


@dataclass
class KernelContext:
    """Convenience bundle passed to kernels: session + cached spec."""

    session: SimSession

    @property
    def spec(self):
        """Device spec of the session's device."""
        return self.session.device.spec

    @property
    def device(self):
        """The session's device."""
        return self.session.device

    def regs_per_thread_for_system(self, system_size: int, threads: int) -> int:
        """Register appetite when ``threads`` threads hold ``system_size``
        equations: the on-chip kernel burns
        :data:`~repro.gpu.spec.REGISTERS_PER_EQUATION` per equation."""
        eqs_per_thread = max(1, math.ceil(system_size / max(1, threads)))
        return REGISTERS_PER_EQUATION * eqs_per_thread
