"""The base kernel: hybrid PCR-Thomas in shared memory (paper §III-A).

One block loads one system (or subsystem) into shared memory, runs PCR
until ``thomas_switch`` independent subsystems exist, then lets each
thread finish one subsystem with the Thomas algorithm. Systems must fit
on-chip (:meth:`DeviceSpec.max_onchip_system_size`).

Two memory-access variants exist when the systems being solved are
*subsystems* of a larger split system, interleaved in global memory with
a stride (paper §III-A, last paragraph):

- ``strided`` — load exactly the subsystem's elements with a strided
  (uncoalesced) access, paying the transaction-inflation penalty once on
  load and once on store, but enjoying full shared-memory communication;
- ``coalesced`` — load a contiguous window, so loads coalesce perfectly,
  but neighbour accesses whose distance exceeds the in-window chunk must
  go to global memory during the solve.

Which variant wins depends on the stride and the device — exactly the
decision the paper delegates to the self-tuner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.pcr_thomas import normalize_thomas_switch, pcr_thomas_solve
from ..gpu.cost import ComputePhase, KernelCost
from ..gpu.memory import MemoryTraffic
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError, ResourceExhaustedError
from ..util.validation import check_power_of_two, ilog2
from .base import (
    PCR_SMEM_INSTR_PER_EQ,
    SMEM_LOAD_VALUES_PER_EQ,
    THOMAS_INSTR_PER_ROW,
    KernelContext,
    dtype_size,
    warp_padded_threads,
    warps_for,
)

__all__ = ["PcrThomasSmemKernel", "VARIANTS"]

VARIANTS = ("coalesced", "strided")


@dataclass(frozen=True)
class PcrThomasSmemKernel:
    """Launchable base kernel.

    Parameters
    ----------
    thomas_switch:
        Subsystem count at which PCR hands over to Thomas (stage-3→4
        switch point; Figure 6's x-axis).
    variant:
        ``"strided"`` or ``"coalesced"`` (see module docstring).
    """

    thomas_switch: int = 64
    variant: str = "coalesced"

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ConfigurationError(
                f"unknown variant {self.variant!r}; expected one of {VARIANTS}"
            )
        check_power_of_two(self.thomas_switch, "thomas_switch")

    # -- cost accounting ----------------------------------------------------

    def cost(
        self,
        ctx: KernelContext,
        num_systems: int,
        system_size: int,
        dsize: int,
        stride: int,
    ) -> KernelCost:
        """Build the :class:`KernelCost` for this launch without running it.

        Exposed separately so the self-tuner's micro-benchmarks can price
        configurations cheaply (the paper's tuner times real launches; ours
        prices model launches — same search logic, cheaper stopwatch).
        """
        spec = ctx.spec
        n = system_size
        max_onchip = spec.max_onchip_system_size(dsize)
        if n > max_onchip:
            raise ResourceExhaustedError(
                f"system size {n} exceeds on-chip capacity {max_onchip} "
                f"of {spec.name}"
            )
        switch = normalize_thomas_switch(n, self.thomas_switch)
        pcr_steps = ilog2(switch)

        threads = min(warp_padded_threads(n), spec.max_threads_per_block)
        smem = 4 * n * dsize
        regs = ctx.regs_per_thread_for_system(n, threads)

        # PCR phase: every equation updated each step, all threads active.
        pcr_warp_instr = (
            num_systems * pcr_steps * warps_for(n) * PCR_SMEM_INSTR_PER_EQ
        )
        # Thomas phase: `switch` threads per system, 2 sweeps over n/switch
        # rows each.
        rows = n // switch
        thomas_warp_instr = (
            num_systems * 2 * rows * warps_for(switch) * THOMAS_INSTR_PER_ROW
        )
        phases = [
            ComputePhase(pcr_warp_instr, active_threads_per_block=min(n, threads)),
            ComputePhase(thomas_warp_instr, active_threads_per_block=switch),
        ]

        traffic = MemoryTraffic()
        io_bytes = num_systems * SMEM_LOAD_VALUES_PER_EQ * n * dsize
        if self.variant == "strided" or stride == 1:
            traffic.add(ctx.spec, io_bytes, stride=stride)
        else:
            # Coalesced window load at unit stride...
            traffic.add(ctx.spec, io_bytes, stride=1)
            # ...plus solve-phase spills: at PCR step j the neighbour
            # distance is 2^j subsystem elements; the fraction falling
            # outside the contiguous in-window chunk of n/stride elements
            # is min(1, 2^j * stride / n). Each out-of-window access
            # fetches three neighbour values, scattered (worst-case
            # transactions).
            chunk = max(1, n // stride)
            spill_values = 0.0
            for j in range(pcr_steps):
                out_fraction = min(1.0, (1 << j) / chunk)
                spill_values += out_fraction * 3.0 * n
            traffic.add(
                ctx.spec,
                num_systems * spill_values * dsize,
                stride=int(spec.uncoalesced_penalty_cap),
            )

        return KernelCost(
            name=f"pcr_thomas_smem[{self.variant},T={switch}]",
            grid_blocks=num_systems,
            threads_per_block=threads,
            smem_per_block=smem,
            regs_per_thread=regs,
            phases=phases,
            traffic=traffic,
        )

    # -- execution ------------------------------------------------------------

    def run(
        self,
        ctx: KernelContext,
        batch: TridiagonalBatch,
        *,
        stride: int = 1,
        stage: str = "stage3_pcr_thomas",
    ) -> np.ndarray:
        """Solve ``batch`` on-chip, recording the launch in the session.

        ``stride`` is the interleaving distance of these (sub)systems in
        global memory (1 for naturally contiguous systems).
        """
        cost = self.cost(
            ctx,
            batch.num_systems,
            batch.system_size,
            dtype_size(batch.dtype),
            stride,
        )
        ctx.session.submit(cost, stage=stage)
        return pcr_thomas_solve(batch, self.thomas_switch)
