"""Thread-per-system Thomas kernel in global memory (Sakharnykh style).

This is the comparison point of paper §III-A: assign each system to one
CUDA *thread* and run Thomas entirely against global memory. Its two
drawbacks, which the multi-stage method removes, are modelled directly:

1. no shared-memory reuse — every sweep touches global memory;
2. thread-level parallelism only — it needs a *large number* of systems
   before the machine fills (few systems → a nearly idle grid).

The ``layout`` parameter selects how systems sit in memory: ``"row"``
(each system contiguous; threads stride by the system size → fully
uncoalesced) or ``"interleaved"`` (equation ``i`` of all systems adjacent
→ coalesced, the layout Sakharnykh's ADI solver uses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.thomas import thomas_solve
from ..gpu.cost import ComputePhase, KernelCost
from ..gpu.memory import MemoryTraffic
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError
from .base import THOMAS_INSTR_PER_ROW, KernelContext, dtype_size, warps_for

__all__ = ["ThomasGlobalKernel", "LAYOUTS"]

LAYOUTS = ("row", "interleaved")

# Values moved per row: forward sweep reads a, b, c, d and writes the two
# sweep coefficients; the backward sweep reads them back and writes x.
_VALUES_PER_ROW = 9


@dataclass(frozen=True)
class ThomasGlobalKernel:
    """Launchable thread-per-system Thomas solver."""

    threads_per_block: int = 128
    regs_per_thread: int = 20
    layout: str = "interleaved"

    def __post_init__(self) -> None:
        if self.layout not in LAYOUTS:
            raise ConfigurationError(
                f"unknown layout {self.layout!r}; expected one of {LAYOUTS}"
            )

    def cost(
        self,
        ctx: KernelContext,
        num_systems: int,
        system_size: int,
        dsize: int,
    ) -> KernelCost:
        """Price a launch solving ``num_systems`` systems of ``system_size``."""
        spec = ctx.spec
        threads = min(self.threads_per_block, spec.max_threads_per_block)
        grid = max(1, -(-num_systems // threads))
        # 2 sweeps of n rows, one thread per system: warps cover systems.
        warp_instr = (
            2 * system_size * warps_for(num_systems) * THOMAS_INSTR_PER_ROW
        )
        # With one thread per system, a warp's 32 threads access addresses
        # one system apart: stride n in "row" layout, contiguous when
        # interleaved.
        stride = system_size if self.layout == "row" else 1
        traffic = MemoryTraffic()
        traffic.add(
            spec,
            float(num_systems) * system_size * _VALUES_PER_ROW * dsize,
            stride=stride,
        )
        active = min(num_systems, threads)
        return KernelCost(
            name=f"thomas_global[{self.layout}]",
            grid_blocks=grid,
            threads_per_block=threads,
            smem_per_block=0,
            regs_per_thread=self.regs_per_thread,
            phases=[ComputePhase(warp_instr, active_threads_per_block=active)],
            traffic=traffic,
        )

    def run(
        self,
        ctx: KernelContext,
        batch: TridiagonalBatch,
        *,
        stage: str = "thomas_global",
    ) -> np.ndarray:
        """Solve ``batch`` with one thread per system, all in global memory."""
        cost = self.cost(
            ctx, batch.num_systems, batch.system_size, dtype_size(batch.dtype)
        )
        ctx.session.submit(cost, stage=stage)
        return thomas_solve(batch)
