"""Stage 2: independent per-block PCR splitting in global memory.

Each block owns one system and runs PCR steps against global memory until
the subsystems reach the stage-3 target size. Because every block works
independently, the whole stage is **one kernel launch** (paper §III-D:
"requiring only one kernel call and much less communication overhead") —
but it only performs well when there are enough systems to keep all
processors and memory controllers busy, which is what stage 1 guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.pcr import pcr_split
from ..gpu.cost import ComputePhase, KernelCost
from ..gpu.memory import MemoryTraffic
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError
from ..util.validation import check_power_of_two, ilog2
from .base import (
    GLOBAL_PCR_ALIGNED_VALUES_PER_EQ,
    GLOBAL_PCR_INSTR_PER_EQ,
    GLOBAL_PCR_NEIGHBOR_VALUES_PER_EQ,
    KernelContext,
    dtype_size,
    warps_for,
)

__all__ = ["GlobalPcrKernel"]


@dataclass(frozen=True)
class GlobalPcrKernel:
    """Launchable stage-2 splitter.

    ``threads_per_block`` controls the block shape (each thread strides
    over the system); ``regs_per_thread`` is the kernel's measured
    register appetite.
    """

    threads_per_block: int = 256
    regs_per_thread: int = 24

    def cost(
        self,
        ctx: KernelContext,
        num_systems: int,
        system_size: int,
        dsize: int,
        steps: int,
        *,
        start_stride: int = 1,
    ) -> KernelCost:
        """Price ``steps`` splitting steps over the whole batch.

        ``start_stride`` is the coupling distance of the first step (>1
        when stage 1 already split these systems); each step doubles it,
        and steps whose stride crosses the partition-camping threshold
        sustain only a fraction of peak bandwidth.
        """
        if steps < 1:
            raise ConfigurationError("steps must be >= 1")
        from ..gpu.memory import partition_camping_factor

        spec = ctx.spec
        threads = min(self.threads_per_block, spec.max_threads_per_block)
        total_eqs = num_systems * system_size

        warp_instr = (
            num_systems
            * steps
            * warps_for(system_size)
            * GLOBAL_PCR_INSTR_PER_EQ
        )
        traffic = MemoryTraffic()
        aligned_bytes = (
            float(total_eqs) * GLOBAL_PCR_ALIGNED_VALUES_PER_EQ * dsize
        )
        neighbor_bytes = (
            float(total_eqs) * GLOBAL_PCR_NEIGHBOR_VALUES_PER_EQ * dsize
        )
        # Average per-step camping penalty, folded into the efficiency so
        # the whole multi-step launch keeps one cost record.
        inv_bw = 0.0
        stride = start_stride
        for _ in range(steps):
            inv_bw += 1.0 / partition_camping_factor(spec, stride)
            stride *= 2
        efficiency = steps / inv_bw
        traffic.add(spec, aligned_bytes * steps, stride=1)
        traffic.add(spec, neighbor_bytes * steps, misaligned=True)
        return KernelCost(
            name=f"global_pcr[steps={steps}]",
            grid_blocks=num_systems,
            threads_per_block=threads,
            smem_per_block=0,
            regs_per_thread=self.regs_per_thread,
            phases=[ComputePhase(warp_instr)],
            traffic=traffic,
            bandwidth_efficiency=efficiency,
        )

    def run(
        self,
        ctx: KernelContext,
        batch: TridiagonalBatch,
        target_size: int,
        *,
        start_stride: int = 1,
        stage: str = "stage2_global_pcr",
    ) -> TridiagonalBatch:
        """Split every system of ``batch`` down to ``target_size``.

        Returns the split batch (``m * n/target`` systems of
        ``target_size``). A no-op (no launch recorded) when systems are
        already small enough. ``start_stride`` is the physical coupling
        distance of these systems' equations in global memory (>1 when
        stage 1 already split them).
        """
        check_power_of_two(target_size, "target_size")
        n = batch.system_size
        check_power_of_two(n, "system_size")
        if target_size >= n:
            return batch
        steps = ilog2(n) - ilog2(target_size)
        cost = self.cost(
            ctx,
            batch.num_systems,
            n,
            dtype_size(batch.dtype),
            steps,
            start_stride=start_stride,
        )
        ctx.session.submit(cost, stage=stage)
        return pcr_split(batch, steps)
