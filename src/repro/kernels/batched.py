"""Vectorised batched kernels over the interleaved (SoA) layout.

Every solver in this package is already vectorised over the *system*
axis; these kernels additionally put that axis innermost in memory
(:class:`~repro.systems.batched.BatchedTridiagonal`), so each algorithm
step is a single NumPy sweep whose GPU equivalent is a fully coalesced
pass — the layout trick of Gloster et al. (arXiv:1909.04539) and the
batched-PDE solvers of Carroll et al. (arXiv:2107.05395).

The numerics mirror :mod:`repro.algorithms.thomas`,
:mod:`repro.algorithms.pcr`, and :mod:`repro.algorithms.pcr_thomas`
operation-for-operation with the axes swapped. Because every update is
elementwise across the system axis (no cross-system reductions), the
floats produced per logical element are **bit-identical** to the
row-major path — the property the IR fusion pass
(:func:`repro.ir.passes.fuse_batched`) and its parity tests rely on.

Three launchable kernels are exposed:

- :class:`BatchedThomasKernel` — thread-per-system Thomas, one sweep
  over the interleaved axis;
- :class:`BatchedPcrKernel` — full PCR, every step one coalesced pass;
- :class:`BatchedSweepKernel` — the fused multi-stage pipeline (global
  splits + hybrid smem PCR-Thomas + unsplits) behind the
  ``BatchedSolve`` IR opcode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..algorithms.pcr_thomas import normalize_thomas_switch
from ..algorithms.thomas import _pivot_floor
from ..gpu.cost import ComputePhase, KernelCost
from ..gpu.memory import MemoryTraffic
from ..systems.batched import BatchedTridiagonal
from ..util.errors import (
    ConfigurationError,
    ResourceExhaustedError,
    SingularSystemError,
)
from ..util.validation import check_power_of_two, ilog2, require
from .base import (
    GLOBAL_PCR_INSTR_PER_EQ,
    GLOBAL_PCR_VALUES_PER_EQ,
    PCR_SMEM_INSTR_PER_EQ,
    SMEM_LOAD_VALUES_PER_EQ,
    THOMAS_INSTR_PER_ROW,
    KernelContext,
    dtype_size,
    warp_padded_threads,
    warps_for,
)

__all__ = [
    "batched_thomas_sweep",
    "batched_pcr_split",
    "batched_pcr_unsplit",
    "batched_pcr_solve",
    "batched_pcr_thomas_sweep",
    "batched_staged_sweep",
    "BatchedThomasKernel",
    "BatchedPcrKernel",
    "BatchedSweepKernel",
]

_Coeffs = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


# -- interleaved numerics ----------------------------------------------------
#
# Exact mirrors of the row-major algorithms with the axes swapped:
# arrays are (n, m), sweeps run over axis 0, and every expression applies
# the same per-element arithmetic in the same order.


def batched_thomas_sweep(
    batched: BatchedTridiagonal, *, check: bool = True
) -> np.ndarray:
    """Thomas over the interleaved axis; returns ``(n, m)`` solutions.

    Mirrors :func:`repro.algorithms.thomas.thomas_solve` per element —
    including the pivot floor and the first-offending-system report — so
    the result equals the row-major solve's transposed bit-for-bit.
    """
    a, b, c, d = batched.a, batched.b, batched.c, batched.d
    n, m = batched.layout_shape
    dtype = batched.dtype

    cp = np.empty((n, m), dtype=dtype)
    dp = np.empty((n, m), dtype=dtype)
    floor = _pivot_floor(dtype)

    beta = b[0, :].copy()
    if check and (np.abs(beta) <= floor).any():
        idx = int(np.argmax(np.abs(beta) <= floor))
        raise SingularSystemError(
            f"zero pivot at row 0 of system {idx}", system_index=idx
        )
    cp[0, :] = c[0, :] / beta
    dp[0, :] = d[0, :] / beta

    for i in range(1, n):
        beta = b[i, :] - a[i, :] * cp[i - 1, :]
        if check and (np.abs(beta) <= floor).any():
            idx = int(np.argmax(np.abs(beta) <= floor))
            raise SingularSystemError(
                f"zero pivot at row {i} of system {idx}", system_index=idx
            )
        cp[i, :] = c[i, :] / beta
        dp[i, :] = (d[i, :] - a[i, :] * dp[i - 1, :]) / beta

    x = np.empty((n, m), dtype=dtype)
    x[-1, :] = dp[-1, :]
    for i in range(n - 2, -1, -1):
        x[i, :] = dp[i, :] - cp[i, :] * x[i + 1, :]
    return x


def _batched_pcr_step(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray, stride: int
) -> _Coeffs:
    """One PCR step on ``(n, m)`` arrays, coupling along axis 0."""
    n = b.shape[0]
    s = int(stride)
    require(1 <= s, f"stride must be >= 1, got {s}")

    pad = ((s, s), (0, 0))
    ap = np.pad(a, pad, constant_values=0)
    bp = np.pad(b, pad, constant_values=1)
    cp = np.pad(c, pad, constant_values=0)
    dp = np.pad(d, pad, constant_values=0)

    a_lo, b_lo, c_lo, d_lo = (arr[0:n, :] for arr in (ap, bp, cp, dp))
    a_hi, b_hi, c_hi, d_hi = (arr[2 * s :, :] for arr in (ap, bp, cp, dp))

    alpha = -a / b_lo
    gamma = -c / b_hi

    new_a = alpha * a_lo
    new_b = b + alpha * c_lo + gamma * a_hi
    new_c = gamma * c_hi
    new_d = d + alpha * d_lo + gamma * d_hi
    return new_a, new_b, new_c, new_d


def _batched_gather(arr: np.ndarray, k: int) -> np.ndarray:
    """Interleaved analogue of :func:`repro.algorithms.pcr._gather`.

    ``(n, m)`` → ``(n / 2^k, m * 2^k)``; subsystem ``j`` of system ``s``
    lands in column ``s * 2^k + j`` — the same logical subsystem order
    as the row-major gather, so solutions stay comparable element for
    element. Pure data movement (a tiled transpose), no arithmetic.
    """
    n, m = arr.shape
    groups = 1 << k
    sub = n >> k
    return np.ascontiguousarray(
        arr.reshape(sub, groups, m).transpose(0, 2, 1)
    ).reshape(sub, m * groups)


def _batched_scatter(arr: np.ndarray, k: int) -> np.ndarray:
    """Inverse of :func:`_batched_gather` for ``(sub, m * 2^k)`` arrays."""
    groups = 1 << k
    sub, mg = arr.shape
    m = mg // groups
    return np.ascontiguousarray(
        arr.reshape(sub, m, groups).transpose(0, 2, 1)
    ).reshape(sub * groups, m)


def batched_pcr_split(
    batched: BatchedTridiagonal, steps: int
) -> BatchedTridiagonal:
    """Split every system into ``2**steps`` interleaved subsystems.

    Mirrors :func:`repro.algorithms.pcr.pcr_split`: ``steps`` PCR steps
    along the equation axis, then the gather that makes each subsystem
    a contiguous run of rows. Result shape ``(n / 2^steps, m * 2^steps)``.
    """
    require(steps >= 0, f"steps must be >= 0, got {steps}")
    if steps == 0:
        return batched
    n = batched.system_size
    groups = 1 << steps
    if n % groups != 0:
        raise ConfigurationError(
            f"system size {n} not divisible by 2**steps = {groups}"
        )
    a, b, c, d = batched.a, batched.b, batched.c, batched.d
    stride = 1
    for _ in range(steps):
        a, b, c, d = _batched_pcr_step(a, b, c, d, stride)
        stride *= 2
    return BatchedTridiagonal(
        _batched_gather(a, steps),
        _batched_gather(b, steps),
        _batched_gather(c, steps),
        _batched_gather(d, steps),
    )


def batched_pcr_unsplit(x: np.ndarray, steps: int) -> np.ndarray:
    """Map a split sweep's ``(sub, m·2^k)`` solution back to ``(n, m)``."""
    require(steps >= 0, f"steps must be >= 0, got {steps}")
    if steps == 0:
        return x
    return _batched_scatter(x, steps)


def batched_pcr_solve(batched: BatchedTridiagonal) -> np.ndarray:
    """Pure PCR over the interleaved axis: reduce to size-1 systems."""
    n = batched.system_size
    check_power_of_two(n, "system_size")
    a, b, c, d = batched.a, batched.b, batched.c, batched.d
    stride = 1
    for _ in range(ilog2(n)):
        a, b, c, d = _batched_pcr_step(a, b, c, d, stride)
        stride *= 2
    return d / b


def batched_pcr_thomas_sweep(
    batched: BatchedTridiagonal,
    thomas_switch: int = 64,
    *,
    check: bool = True,
) -> np.ndarray:
    """Hybrid PCR-Thomas over the interleaved axis; ``(n, m)`` result.

    Mirrors :func:`repro.algorithms.pcr_thomas.pcr_thomas_solve`.
    """
    n = batched.system_size
    if n == 1:
        return batched.d / batched.b
    switch = normalize_thomas_switch(n, thomas_switch)
    steps = ilog2(switch)
    split = batched_pcr_split(batched, steps)
    x_split = batched_thomas_sweep(split, check=check)
    return batched_pcr_unsplit(x_split, steps)


def batched_staged_sweep(
    batched: BatchedTridiagonal,
    stage1_steps: int,
    stage2_steps: int,
    thomas_switch: int,
    *,
    check: bool = True,
) -> np.ndarray:
    """The full multi-stage pipeline as interleaved sweeps.

    Replays the unfused instruction chain — ``SplitCoop(k1)`` →
    ``SplitBlock(k2)`` → ``OnChipSolve`` → ``Unsplit(k2)`` →
    ``Unsplit(k1)`` — stage by stage in the interleaved layout (the two
    split stages stay separate passes because nested splits order
    subsystems differently from a single combined split). Returns the
    ``(n, m)`` solution, bit-identical to the row-major chain transposed.
    """
    work = batched_pcr_split(batched, stage1_steps)
    work = batched_pcr_split(work, stage2_steps)
    x = batched_pcr_thomas_sweep(work, thomas_switch, check=check)
    x = batched_pcr_unsplit(x, stage2_steps)
    return batched_pcr_unsplit(x, stage1_steps)


# -- launchable kernels ------------------------------------------------------


def _interleaved_traffic(
    ctx: KernelContext, nbytes: float
) -> MemoryTraffic:
    """Traffic accumulator for a fully interleaved (transaction-perfect)
    access pattern: unit stride, no misalignment."""
    traffic = MemoryTraffic()
    traffic.add(ctx.spec, nbytes, stride=1)
    return traffic


@dataclass(frozen=True)
class BatchedThomasKernel:
    """Thread-per-system Thomas over the interleaved axis.

    The SoA twin of
    :class:`~repro.kernels.thomas_global.ThomasGlobalKernel` with
    ``layout="interleaved"``, operating directly on a
    :class:`BatchedTridiagonal` and enjoying the device's interleaved
    coalescing gain (whole warps advance adjacent systems in lockstep).
    """

    threads_per_block: int = 128
    regs_per_thread: int = 20

    # Values moved per row, as in thomas_global: read a, b, c, d, write
    # the two sweep coefficients, read them back, write x.
    _VALUES_PER_ROW = 9

    def cost(
        self,
        ctx: KernelContext,
        num_systems: int,
        system_size: int,
        dsize: int,
    ) -> KernelCost:
        """Price one batched-Thomas launch."""
        spec = ctx.spec
        threads = min(self.threads_per_block, spec.max_threads_per_block)
        grid = max(1, -(-num_systems // threads))
        warp_instr = (
            2 * system_size * warps_for(num_systems) * THOMAS_INSTR_PER_ROW
        )
        nbytes = float(num_systems) * system_size * self._VALUES_PER_ROW * dsize
        return KernelCost(
            name="batched_thomas",
            grid_blocks=min(grid, spec.max_grid_blocks),
            threads_per_block=threads,
            regs_per_thread=self.regs_per_thread,
            phases=[
                ComputePhase(
                    warp_instr,
                    active_threads_per_block=min(num_systems, threads),
                )
            ],
            traffic=_interleaved_traffic(ctx, nbytes),
            coalescing=spec.interleaved_coalescing_gain,
        )

    def run(
        self,
        ctx: KernelContext,
        batched: BatchedTridiagonal,
        *,
        check: bool = True,
        stage: str = "batched_thomas",
    ) -> np.ndarray:
        """Solve the interleaved batch; returns ``(n, m)`` solutions."""
        cost = self.cost(
            ctx,
            batched.num_systems,
            batched.system_size,
            dtype_size(batched.dtype),
        )
        ctx.session.submit(cost, stage=stage)
        return batched_thomas_sweep(batched, check=check)


@dataclass(frozen=True)
class BatchedPcrKernel:
    """Full PCR where every step is one coalesced interleaved pass."""

    threads_per_block: int = 256
    regs_per_thread: int = 24

    def cost(
        self,
        ctx: KernelContext,
        num_systems: int,
        system_size: int,
        dsize: int,
    ) -> KernelCost:
        """Price the ``log2(n)`` coalesced reduction passes."""
        spec = ctx.spec
        check_power_of_two(system_size, "system_size")
        steps = max(1, ilog2(system_size))
        total_eqs = num_systems * system_size
        threads = min(self.threads_per_block, spec.max_threads_per_block)
        grid = max(1, -(-total_eqs // threads))
        warp_instr = steps * warps_for(total_eqs) * GLOBAL_PCR_INSTR_PER_EQ
        nbytes = float(total_eqs) * GLOBAL_PCR_VALUES_PER_EQ * dsize * steps
        return KernelCost(
            name=f"batched_pcr[steps={steps}]",
            grid_blocks=min(grid, spec.max_grid_blocks),
            threads_per_block=threads,
            regs_per_thread=self.regs_per_thread,
            phases=[ComputePhase(warp_instr)],
            traffic=_interleaved_traffic(ctx, nbytes),
            launches=steps,
            coalescing=spec.interleaved_coalescing_gain,
        )

    def run(
        self,
        ctx: KernelContext,
        batched: BatchedTridiagonal,
        *,
        stage: str = "batched_pcr",
    ) -> np.ndarray:
        """Reduce the interleaved batch to size-1 systems and divide."""
        cost = self.cost(
            ctx,
            batched.num_systems,
            batched.system_size,
            dtype_size(batched.dtype),
        )
        ctx.session.submit(cost, stage=stage)
        return batched_pcr_solve(batched)


@dataclass(frozen=True)
class BatchedSweepKernel:
    """The fused multi-stage sweep behind the ``BatchedSolve`` opcode.

    One launch sequence covering what the unfused program spells as
    separate ``SplitCoop``/``SplitBlock``/``OnChipSolve`` instructions:
    ``stage1_steps + stage2_steps`` global PCR passes over the
    interleaved batch, then the hybrid smem PCR-Thomas solve of the
    resulting subsystems. Compared with the unfused chain it

    - streams every pass at unit stride with the device's interleaved
      coalescing gain (no misaligned neighbour penalty — neighbours are
      whole adjacent rows),
    - never pays the coalesced-variant solve-phase spill traffic that
      ``OnChipSolve`` incurs at stride > 1 (the physical re-layout *is*
      the fix), and
    - needs no cooperative grid syncs (independent split passes) and one
      launch per pass instead of stage-1's sync-per-step cadence.
    """

    stage1_steps: int
    stage2_steps: int
    thomas_switch: int = 64

    def __post_init__(self) -> None:
        if self.stage1_steps < 0 or self.stage2_steps < 0:
            raise ConfigurationError("split step counts must be >= 0")
        check_power_of_two(self.thomas_switch, "thomas_switch")

    @property
    def split_steps(self) -> int:
        """Total global split depth before the on-chip phase."""
        return self.stage1_steps + self.stage2_steps

    def cost(
        self,
        ctx: KernelContext,
        num_systems: int,
        system_size: int,
        dsize: int,
    ) -> KernelCost:
        """Price the whole fused sweep as one composite launch record."""
        spec = ctx.spec
        m, n = num_systems, system_size
        check_power_of_two(n, "system_size")
        k = self.split_steps
        if k > ilog2(n):
            raise ConfigurationError(
                f"cannot split a size-{n} system {k} times"
            )
        sub = n >> k
        systems3 = m << k
        max_onchip = spec.max_onchip_system_size(dsize)
        if sub > max_onchip:
            raise ResourceExhaustedError(
                f"system size {sub} exceeds on-chip capacity {max_onchip} "
                f"of {spec.name}"
            )
        switch = normalize_thomas_switch(sub, self.thomas_switch)
        pcr_steps = ilog2(switch)
        total_eqs = m * n

        threads = min(warp_padded_threads(sub), spec.max_threads_per_block)
        smem = 4 * sub * dsize
        regs = ctx.regs_per_thread_for_system(sub, threads)

        phases = []
        if k > 0:
            # Global split passes: same per-equation instruction budget
            # as the stage-1/2 splitters, full occupancy.
            phases.append(
                ComputePhase(k * warps_for(total_eqs) * GLOBAL_PCR_INSTR_PER_EQ)
            )
        # On-chip hybrid: same phase structure as PcrThomasSmemKernel.
        phases.append(
            ComputePhase(
                systems3 * pcr_steps * warps_for(sub) * PCR_SMEM_INSTR_PER_EQ,
                active_threads_per_block=min(sub, threads),
            )
        )
        rows = sub // switch
        phases.append(
            ComputePhase(
                systems3 * 2 * rows * warps_for(switch) * THOMAS_INSTR_PER_ROW,
                active_threads_per_block=switch,
            )
        )

        # Every byte moves at unit stride: split passes stream whole
        # rows (neighbour rows are themselves coalesced rows, so there
        # is no misaligned component), and the smem phase loads/stores
        # the interleaved window without any spill term.
        split_bytes = float(total_eqs) * GLOBAL_PCR_VALUES_PER_EQ * dsize * k
        smem_bytes = float(total_eqs) * SMEM_LOAD_VALUES_PER_EQ * dsize
        traffic = _interleaved_traffic(ctx, split_bytes + smem_bytes)

        return KernelCost(
            name=f"batched_sweep[k={k},T={switch}]",
            grid_blocks=max(1, systems3),
            threads_per_block=threads,
            smem_per_block=smem,
            regs_per_thread=regs,
            phases=phases,
            traffic=traffic,
            launches=1 + k,
            coalescing=spec.interleaved_coalescing_gain,
        )

    def run(
        self,
        ctx: KernelContext,
        batched: BatchedTridiagonal,
        *,
        check: bool = True,
        stage: str = "fused_sweep",
    ) -> np.ndarray:
        """Run the fused sweep; returns the interleaved ``(n, m)`` solution."""
        cost = self.cost(
            ctx,
            batched.num_systems,
            batched.system_size,
            dtype_size(batched.dtype),
        )
        ctx.session.submit(cost, stage=stage)
        return batched_staged_sweep(
            batched,
            self.stage1_steps,
            self.stage2_steps,
            self.thomas_switch,
            check=check,
        )
