"""Simulated GPU kernels: exact numerics + machine-model cost accounting."""

from .base import (
    GLOBAL_PCR_INSTR_PER_EQ,
    GLOBAL_PCR_VALUES_PER_EQ,
    PCR_SMEM_INSTR_PER_EQ,
    SMEM_LOAD_VALUES_PER_EQ,
    THOMAS_INSTR_PER_ROW,
    KernelContext,
    dtype_size,
    warp_padded_threads,
    warps_for,
)
from .coop_pcr import CoopPcrKernel
from .elementwise import DivideKernel, ReconstructKernel, TransposeKernel
from .global_pcr import GlobalPcrKernel
from .pcr_thomas_smem import VARIANTS, PcrThomasSmemKernel
from .thomas_global import LAYOUTS, ThomasGlobalKernel

__all__ = [
    "KernelContext",
    "PcrThomasSmemKernel",
    "GlobalPcrKernel",
    "CoopPcrKernel",
    "ThomasGlobalKernel",
    "DivideKernel",
    "TransposeKernel",
    "ReconstructKernel",
    "VARIANTS",
    "LAYOUTS",
    "warps_for",
    "warp_padded_threads",
    "dtype_size",
    "PCR_SMEM_INSTR_PER_EQ",
    "GLOBAL_PCR_INSTR_PER_EQ",
    "THOMAS_INSTR_PER_ROW",
    "GLOBAL_PCR_VALUES_PER_EQ",
    "SMEM_LOAD_VALUES_PER_EQ",
]
