"""Simulated GPU kernels: exact numerics + machine-model cost accounting."""

from .batched import (
    BatchedPcrKernel,
    BatchedSweepKernel,
    BatchedThomasKernel,
    batched_pcr_solve,
    batched_pcr_split,
    batched_pcr_thomas_sweep,
    batched_pcr_unsplit,
    batched_staged_sweep,
    batched_thomas_sweep,
)
from .base import (
    GLOBAL_PCR_INSTR_PER_EQ,
    GLOBAL_PCR_VALUES_PER_EQ,
    PCR_SMEM_INSTR_PER_EQ,
    SMEM_LOAD_VALUES_PER_EQ,
    THOMAS_INSTR_PER_ROW,
    KernelContext,
    dtype_size,
    warp_padded_threads,
    warps_for,
)
from .coop_pcr import CoopPcrKernel
from .elementwise import DivideKernel, ReconstructKernel, TransposeKernel
from .global_pcr import GlobalPcrKernel
from .pcr_thomas_smem import VARIANTS, PcrThomasSmemKernel
from .thomas_global import LAYOUTS, ThomasGlobalKernel

__all__ = [
    "KernelContext",
    "PcrThomasSmemKernel",
    "GlobalPcrKernel",
    "CoopPcrKernel",
    "ThomasGlobalKernel",
    "BatchedThomasKernel",
    "BatchedPcrKernel",
    "BatchedSweepKernel",
    "batched_thomas_sweep",
    "batched_pcr_solve",
    "batched_pcr_split",
    "batched_pcr_unsplit",
    "batched_pcr_thomas_sweep",
    "batched_staged_sweep",
    "DivideKernel",
    "TransposeKernel",
    "ReconstructKernel",
    "VARIANTS",
    "LAYOUTS",
    "warps_for",
    "warp_padded_threads",
    "dtype_size",
    "PCR_SMEM_INSTR_PER_EQ",
    "GLOBAL_PCR_INSTR_PER_EQ",
    "THOMAS_INSTR_PER_ROW",
    "GLOBAL_PCR_VALUES_PER_EQ",
    "SMEM_LOAD_VALUES_PER_EQ",
]
