"""Trivial element-wise kernels (final divides, transposes).

The pure-global-PCR baseline finishes with ``x = d / b`` once every
equation stands alone; layout conversions (row-major ↔ interleaved) are a
single streaming pass. Both are bandwidth-bound one-liners, but they are
real launches on real hardware, so they get real cost records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.cost import ComputePhase, KernelCost
from ..gpu.memory import MemoryTraffic
from ..systems.tridiagonal import TridiagonalBatch
from .base import KernelContext, dtype_size, warps_for

__all__ = ["DivideKernel", "TransposeKernel", "ReconstructKernel"]


@dataclass(frozen=True)
class DivideKernel:
    """``x = d / b`` over a fully reduced batch."""

    threads_per_block: int = 256

    def run(
        self,
        ctx: KernelContext,
        batch: TridiagonalBatch,
        *,
        stage: str = "final_divide",
    ) -> np.ndarray:
        """Record one streaming pass and return the quotient."""
        spec = ctx.spec
        total = batch.total_equations
        dsize = dtype_size(batch.dtype)
        traffic = MemoryTraffic()
        traffic.add(spec, 3.0 * total * dsize, stride=1)  # read b, d; write x
        grid = max(1, -(-total // self.threads_per_block))
        cost = KernelCost(
            name="divide",
            grid_blocks=min(grid, spec.max_grid_blocks),
            threads_per_block=min(self.threads_per_block, spec.max_threads_per_block),
            regs_per_thread=8,
            phases=[ComputePhase(warps_for(total) * 2.0)],
            traffic=traffic,
        )
        ctx.session.submit(cost, stage=stage)
        return batch.d / batch.b


@dataclass(frozen=True)
class ReconstructKernel:
    """SPIKE correction ``x = y - w*t - v*s`` over one row chunk.

    Streams the local solution plus both spike vectors and writes the
    corrected values back: four values per element at stride 1, with a
    small FMA budget per warp.
    """

    threads_per_block: int = 256

    def cost(self, ctx: KernelContext, elements: int, dsize: int) -> KernelCost:
        """Cost of correcting ``elements`` solution values."""
        spec = ctx.spec
        traffic = MemoryTraffic()
        traffic.add(spec, 4.0 * elements * dsize, stride=1)
        threads = min(self.threads_per_block, spec.max_threads_per_block)
        grid = max(1, -(-elements // threads))
        return KernelCost(
            name="reconstruct",
            grid_blocks=min(grid, spec.max_grid_blocks),
            threads_per_block=threads,
            regs_per_thread=8,
            phases=[ComputePhase(warps_for(elements) * 4.0)],
            traffic=traffic,
        )


@dataclass(frozen=True)
class TransposeKernel:
    """Layout conversion pass over an ``(m, n)`` array."""

    threads_per_block: int = 256

    def cost(
        self,
        ctx: KernelContext,
        elements: int,
        dsize: int,
        *,
        arrays: int = 1,
        tiled: bool = False,
    ) -> KernelCost:
        """Price transposing ``arrays`` arrays of ``elements`` each.

        The naive pass reads coalesced and writes fully strided
        (``tiled=False``, matching :meth:`run`); the shared-memory tiled
        variant stages tiles on-chip so both global sides stream at unit
        stride (``tiled=True`` — what the batched ``Interleave`` opcode
        uses).
        """
        spec = ctx.spec
        total = float(elements) * arrays
        traffic = MemoryTraffic()
        traffic.add(spec, total * dsize, stride=1)
        write_stride = 1 if tiled else int(spec.uncoalesced_penalty_cap)
        traffic.add(spec, total * dsize, stride=max(1, write_stride))
        threads = min(self.threads_per_block, spec.max_threads_per_block)
        grid = max(1, -(-int(total) // threads))
        return KernelCost(
            name="transpose[tiled]" if tiled else "transpose",
            grid_blocks=min(grid, spec.max_grid_blocks),
            threads_per_block=threads,
            smem_per_block=(threads * dsize if tiled else 0),
            regs_per_thread=8,
            phases=[ComputePhase(warps_for(int(total)) * 2.0)],
            traffic=traffic,
        )

    def run(
        self,
        ctx: KernelContext,
        array: np.ndarray,
        *,
        stage: str = "transpose",
    ) -> np.ndarray:
        """Record a read+write pass and return the transposed array."""
        spec = ctx.spec
        dsize = dtype_size(array.dtype)
        total = array.size
        traffic = MemoryTraffic()
        traffic.add(spec, float(total) * dsize, stride=1)  # coalesced read
        # The write side of a transpose is strided by the row length.
        stride = array.shape[-1] if array.ndim > 1 else 1
        traffic.add(spec, float(total) * dsize, stride=max(1, stride))
        grid = max(1, -(-total // self.threads_per_block))
        cost = KernelCost(
            name="transpose",
            grid_blocks=min(grid, spec.max_grid_blocks),
            threads_per_block=min(self.threads_per_block, spec.max_threads_per_block),
            regs_per_thread=8,
            phases=[ComputePhase(warps_for(total) * 2.0)],
            traffic=traffic,
        )
        ctx.session.submit(cost, stage=stage)
        return np.ascontiguousarray(array.T)
