"""Stage 1: cooperative multi-block PCR splitting (paper §III-C).

When only a few large systems exist, a per-block splitter (stage 2) would
leave most of the machine idle. The cooperative splitter spreads *one*
split step of *all* systems across many blocks, so the full memory
subsystem participates — at the price of a grid-wide synchronisation
(one kernel launch) per step, plus a scattered access pattern that
sustains only a fraction of peak bandwidth
(``DeviceSpec.coop_bandwidth_efficiency``).

The switch point "how many independent systems before stage 2 takes
over" is the paper's stage-1→2 parameter, tuned last by the self-tuner.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.pcr import pcr_split
from ..gpu.cost import ComputePhase, KernelCost
from ..gpu.memory import MemoryTraffic
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ConfigurationError
from ..util.validation import check_power_of_two, ilog2
from .base import (
    GLOBAL_PCR_ALIGNED_VALUES_PER_EQ,
    GLOBAL_PCR_INSTR_PER_EQ,
    GLOBAL_PCR_NEIGHBOR_VALUES_PER_EQ,
    KernelContext,
    dtype_size,
    warps_for,
)

__all__ = ["CoopPcrKernel"]


@dataclass(frozen=True)
class CoopPcrKernel:
    """Launchable stage-1 cooperative splitter."""

    threads_per_block: int = 256
    regs_per_thread: int = 24
    # Equations each thread advances per step; sets the grid size.
    eqs_per_thread: int = 4

    def cost_per_step(
        self,
        ctx: KernelContext,
        total_equations: int,
        dsize: int,
        *,
        stride: int = 1,
    ) -> KernelCost:
        """Price one cooperative split step over ``total_equations``.

        ``stride`` is the step's coupling distance; large strides pay the
        partition-camping penalty on top of the cooperative-gather
        inefficiency.
        """
        from ..gpu.memory import partition_camping_factor

        spec = ctx.spec
        threads = min(self.threads_per_block, spec.max_threads_per_block)
        eqs_per_block = threads * self.eqs_per_thread
        grid = max(1, -(-total_equations // eqs_per_block))
        grid = min(grid, spec.max_grid_blocks)

        warp_instr = (
            warps_for(total_equations) * GLOBAL_PCR_INSTR_PER_EQ
        )
        traffic = MemoryTraffic()
        traffic.add(
            spec,
            float(total_equations) * GLOBAL_PCR_ALIGNED_VALUES_PER_EQ * dsize,
            stride=1,
        )
        traffic.add(
            spec,
            float(total_equations) * GLOBAL_PCR_NEIGHBOR_VALUES_PER_EQ * dsize,
            misaligned=True,
        )
        return KernelCost(
            name="coop_pcr[1 step]",
            grid_blocks=grid,
            threads_per_block=threads,
            smem_per_block=0,
            regs_per_thread=self.regs_per_thread,
            phases=[ComputePhase(warp_instr)],
            traffic=traffic,
            launches=1,
            extra_sync_us=spec.coop_sync_overhead_us,
            bandwidth_efficiency=(
                spec.coop_bandwidth_efficiency
                * partition_camping_factor(spec, stride)
            ),
        )

    def run(
        self,
        ctx: KernelContext,
        batch: TridiagonalBatch,
        num_splits: int,
        *,
        stage: str = "stage1_coop_pcr",
    ) -> TridiagonalBatch:
        """Apply ``num_splits`` cooperative split steps to every system.

        Each step is a separate kernel launch (the inter-step dependency
        forces a grid-wide sync). Returns the split batch with
        ``m * 2**num_splits`` systems.
        """
        if num_splits < 0:
            raise ConfigurationError("num_splits must be >= 0")
        if num_splits == 0:
            return batch
        n = batch.system_size
        check_power_of_two(n, "system_size")
        if num_splits > ilog2(n):
            raise ConfigurationError(
                f"cannot split a size-{n} system {num_splits} times"
            )
        dsize = dtype_size(batch.dtype)
        stride = 1
        for _ in range(num_splits):
            cost = self.cost_per_step(
                ctx, batch.total_equations, dsize, stride=stride
            )
            ctx.session.submit(cost, stage=stage)
            stride *= 2
        return pcr_split(batch, num_splits)
