"""Per-opcode kernel handlers for the instruction-program engine.

Each IR opcode maps to two interpretations, both defined here so a
kernel's price and its execution can never drift apart:

- :func:`price_costs` — the data-free view: the exact
  :class:`~repro.gpu.cost.KernelCost` records a step submits, in
  submission order. The engine folds them into step durations (price
  mode) or hands them to a session (solve pricing).
- :func:`execute_step` — the data-carrying view: run the kernel's
  numerics on an :class:`ExecState`, submitting the *same* cost records
  through the kernel's own ``run`` path.

Marker opcodes (``Pad``/``Unpad``/``Unsplit``/``Barrier``) cost nothing
but still transform data in execute mode — padding and un-splitting are
real host array operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..algorithms.padding import pad_pow2, unpad_solution
from ..algorithms.pcr import pcr_unsplit_solution
from ..ir.instructions import (
    Barrier,
    BatchedSolve,
    Interleave,
    OnChipSolve,
    Pad,
    Reconstruct,
    ReducedSolve,
    SplitBlock,
    SplitCoop,
    Step,
    Unpad,
    Unsplit,
)
from ..systems.batched import BatchedTridiagonal
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import PlanError
from .base import KernelContext
from .batched import BatchedSweepKernel
from .coop_pcr import CoopPcrKernel
from .elementwise import ReconstructKernel, TransposeKernel
from .global_pcr import GlobalPcrKernel
from .pcr_thomas_smem import PcrThomasSmemKernel

__all__ = ["ExecState", "price_costs", "execute_step"]


# -- pricing ---------------------------------------------------------------


def price_costs(step: Step, ctx: KernelContext, dtype_size: int) -> List:
    """The kernel cost records ``step`` submits, in submission order.

    Markers and non-kernel opcodes (``Transfer``/``Fixed``, priced by
    the engine itself) return an empty list.
    """
    op = step.op
    m, n = step.shape
    if isinstance(op, SplitCoop):
        coop = CoopPcrKernel()
        costs = []
        stride = 1
        for _ in range(op.steps):
            costs.append(
                coop.cost_per_step(ctx, m * n, dtype_size, stride=stride)
            )
            stride *= 2
        return costs
    if isinstance(op, SplitBlock):
        return [
            GlobalPcrKernel().cost(
                ctx, m, n, dtype_size, op.steps, start_stride=op.start_stride
            )
        ]
    if isinstance(op, OnChipSolve):
        kernel = PcrThomasSmemKernel(
            thomas_switch=op.thomas_switch, variant=op.variant
        )
        return [kernel.cost(ctx, m, n, dtype_size, op.stride)]
    if isinstance(op, Interleave):
        # Tiled transpose: four coefficient arrays in, one solution out.
        arrays = 4 if op.direction == "in" else 1
        return [
            TransposeKernel().cost(
                ctx, m * n, dtype_size, arrays=arrays, tiled=True
            )
        ]
    if isinstance(op, BatchedSolve):
        kernel = BatchedSweepKernel(
            stage1_steps=op.stage1_steps,
            stage2_steps=op.stage2_steps,
            thomas_switch=op.thomas_switch,
        )
        return [kernel.cost(ctx, m, n, dtype_size)]
    if isinstance(op, ReducedSolve):
        kernel = PcrThomasSmemKernel(
            thomas_switch=op.system_size, variant="coalesced"
        )
        return [kernel.cost(ctx, m, op.system_size, dtype_size, 1)]
    if isinstance(op, Reconstruct):
        return [ReconstructKernel().cost(ctx, m * n, dtype_size)]
    return []


# -- execution -------------------------------------------------------------


@dataclass
class ExecState:
    """Mutable data threaded through a solve-program execution.

    ``work`` is row-major (:class:`TridiagonalBatch`) in the classic
    chain; between an ``Interleave("in")`` and the matching
    ``Interleave("out")`` of a fused program it is the interleaved
    :class:`BatchedTridiagonal` and ``x`` is ``(n, m)``.
    """

    work: TridiagonalBatch  # the (progressively split) coefficient batch
    x: Optional[np.ndarray] = None  # solution, once the on-chip solve ran
    original_n: int = 0  # pre-padding system size, for Unpad

    @classmethod
    def for_batch(cls, batch: TridiagonalBatch) -> "ExecState":
        """Initial state: the raw batch, no solution yet."""
        return cls(work=batch, original_n=batch.system_size)


def execute_step(step: Step, ctx: KernelContext, state: ExecState) -> None:
    """Run one step's numerics (and cost submissions) on ``state``."""
    op = step.op
    if isinstance(op, Pad):
        padded, original_n = pad_pow2(state.work)
        if padded.system_size != op.padded_size:
            raise PlanError(
                f"plan was built for padded size {op.padded_size}, batch "
                f"pads to {padded.system_size}"
            )
        state.work = padded
        state.original_n = original_n
        return
    if isinstance(op, SplitCoop):
        state.work = CoopPcrKernel().run(
            ctx, state.work, op.steps, stage=step.stage
        )
        return
    if isinstance(op, SplitBlock):
        state.work = GlobalPcrKernel().run(
            ctx,
            state.work,
            state.work.system_size >> op.steps,
            start_stride=op.start_stride,
            stage=step.stage,
        )
        return
    if isinstance(op, OnChipSolve):
        kernel = PcrThomasSmemKernel(
            thomas_switch=op.thomas_switch, variant=op.variant
        )
        state.x = kernel.run(ctx, state.work, stride=op.stride, stage=step.stage)
        return
    if isinstance(op, Interleave):
        m, n = step.shape
        if op.direction == "in":
            cost = TransposeKernel().cost(
                ctx, m * n, state.work.dtype.itemsize, arrays=4, tiled=True
            )
            ctx.session.submit(cost, stage=step.stage)
            state.work = BatchedTridiagonal.interleave(state.work)
        else:
            cost = TransposeKernel().cost(
                ctx, m * n, state.x.dtype.itemsize, arrays=1, tiled=True
            )
            ctx.session.submit(cost, stage=step.stage)
            # The fused sweep left x interleaved (n, m); restore (m, n).
            state.x = np.ascontiguousarray(state.x.T)
        return
    if isinstance(op, BatchedSolve):
        kernel = BatchedSweepKernel(
            stage1_steps=op.stage1_steps,
            stage2_steps=op.stage2_steps,
            thomas_switch=op.thomas_switch,
        )
        state.x = kernel.run(ctx, state.work, stage=step.stage)
        return
    if isinstance(op, Unsplit):
        state.x = pcr_unsplit_solution(state.x, op.steps)
        return
    if isinstance(op, Unpad):
        state.x = unpad_solution(state.x, state.original_n)
        return
    if isinstance(op, Barrier):
        return
    raise PlanError(
        f"opcode {type(op).__name__} is not executable on a single device"
    )
