"""The typed instruction IR: one representation for every solve.

Plans lower to :class:`Program`\\ s of typed :class:`Step`\\ s; one
:class:`Engine` interprets a program either with data (**execute**) or
without (**price**), so the single-device solver, the distributed
solver, and the batched service all share one sequencing/pricing path.
"""

from .engine import Engine, EngineRun, StepTrace
from .instructions import (
    Barrier,
    BatchedSolve,
    Fixed,
    Interleave,
    OnChipSolve,
    Pad,
    Program,
    Reconstruct,
    ReducedSolve,
    SplitBlock,
    SplitCoop,
    Step,
    Transfer,
    Unpad,
    Unsplit,
    signature_text,
)
from .lower import concat_solve_programs, lower_dist_plan, lower_solve_plan
from .passes import (
    canonicalize,
    eliminate_dead_steps,
    fuse_batched,
    run_default_passes,
    validate,
)

__all__ = [
    "Program",
    "Step",
    "Pad",
    "Unpad",
    "SplitCoop",
    "SplitBlock",
    "OnChipSolve",
    "Unsplit",
    "Interleave",
    "BatchedSolve",
    "ReducedSolve",
    "Reconstruct",
    "Transfer",
    "Barrier",
    "Fixed",
    "signature_text",
    "Engine",
    "EngineRun",
    "StepTrace",
    "lower_solve_plan",
    "lower_dist_plan",
    "concat_solve_programs",
    "eliminate_dead_steps",
    "canonicalize",
    "fuse_batched",
    "validate",
    "run_default_passes",
]
