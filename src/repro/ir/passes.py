"""Program transformation and validation passes.

Every lowering runs :func:`run_default_passes` before a program reaches
the engine:

1. :func:`eliminate_dead_steps` — drop no-op steps (``SplitCoop``/
   ``SplitBlock``/``Unsplit`` with zero split steps, zero-byte
   ``Transfer``s) and forward their dependency edges, so e.g. a plan
   with ``stage1_steps=0`` lowers to a program with no ``SplitCoop`` at
   all and the matching zero-step ``Unsplit`` disappears with it.
2. :func:`canonicalize` — normalise the representation-level degrees of
   freedom (explicitly spelled default resources, duplicate dependency
   edges) so structurally equal programs compare and sign equal.
3. :func:`validate` — reject malformed programs (backward/forward
   dependency indices, out-of-range devices, opcodes a single-device
   solve cannot express) with :class:`~repro.util.errors.PlanError`
   before the engine trips over them mid-interpretation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from ..util.errors import PlanError
from .instructions import Fixed, Program, SplitBlock, SplitCoop, Step, Transfer, Unsplit

__all__ = [
    "eliminate_dead_steps",
    "canonicalize",
    "validate",
    "run_default_passes",
]

_ENGINES = ("compute", "xfer")


def _is_dead(op) -> bool:
    if isinstance(op, (SplitCoop, SplitBlock, Unsplit)):
        return op.steps == 0
    if isinstance(op, Transfer):
        return op.values_per_system == 0
    return False


def eliminate_dead_steps(program: Program) -> Program:
    """Drop no-op steps, forwarding their dependency edges.

    A step that depended on a dropped step inherits the dropped step's
    own (already renumbered) dependencies, so scheduling constraints are
    preserved exactly; only the no-op disappears.
    """
    kept: List[Step] = []
    new_index: Dict[int, int] = {}
    forwarded: Dict[int, Tuple[int, ...]] = {}
    for i, step in enumerate(program.steps):
        resolved: List[int] = []
        for dep in step.deps:
            if dep in forwarded:
                resolved.extend(forwarded[dep])
            else:
                resolved.append(new_index[dep])
        seen = set()
        deps = tuple(d for d in resolved if not (d in seen or seen.add(d)))
        if _is_dead(step.op):
            forwarded[i] = deps
            continue
        new_index[i] = len(kept)
        kept.append(replace(step, deps=deps))
    return replace(program, steps=tuple(kept))


def canonicalize(program: Program) -> Program:
    """Normalise representation-only degrees of freedom.

    An explicitly spelled default resource becomes the empty string and
    dependency lists are deduplicated and sorted, so two lowerings of
    the same schedule produce structurally equal (and equally signed)
    programs.
    """
    steps: List[Step] = []
    for step in program.steps:
        resource = step.resource
        if resource == f"dev{step.device}:{step.engine}":
            resource = ""
        deps = tuple(sorted(set(step.deps)))
        if resource != step.resource or deps != step.deps:
            step = replace(step, resource=resource, deps=deps)
        steps.append(step)
    return replace(program, steps=tuple(steps))


def validate(program: Program) -> Program:
    """Reject malformed programs; returns the program for chaining."""
    if program.kind not in ("solve", "dist"):
        raise PlanError(f"unknown program kind {program.kind!r}")
    if not program.device_names:
        raise PlanError("program places work on no devices")
    p = program.num_devices
    if program.kind == "solve" and p != 1:
        raise PlanError("a solve program must target exactly one device")
    for i, step in enumerate(program.steps):
        ident = f"step {i} ({type(step.op).__name__})"
        if not 0 <= step.device < p:
            raise PlanError(f"{ident} targets device {step.device} of {p}")
        if step.engine not in _ENGINES:
            raise PlanError(f"{ident} uses unknown engine {step.engine!r}")
        for dep in step.deps:
            if not 0 <= dep < i:
                raise PlanError(f"{ident} depends on step {dep}, not before it")
        if isinstance(step.op, Transfer):
            if program.kind == "solve":
                raise PlanError(f"{ident}: solve programs cannot transfer")
            for end in (step.op.src, step.op.dst):
                if not 0 <= end < p:
                    raise PlanError(
                        f"{ident} transfers via device {end} of {p}"
                    )
        if isinstance(step.op, Fixed) and program.kind == "solve":
            raise PlanError(f"{ident}: solve programs carry no fixed spans")
    return program


def run_default_passes(program: Program) -> Program:
    """The standard pipeline every lowering runs: eliminate, canonicalise,
    validate."""
    return validate(canonicalize(eliminate_dead_steps(program)))
