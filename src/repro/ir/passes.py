"""Program transformation and validation passes.

Every lowering runs :func:`run_default_passes` before a program reaches
the engine:

1. :func:`eliminate_dead_steps` — drop no-op steps (``SplitCoop``/
   ``SplitBlock``/``Unsplit`` with zero split steps, zero-byte
   ``Transfer``s) and forward their dependency edges, so e.g. a plan
   with ``stage1_steps=0`` lowers to a program with no ``SplitCoop`` at
   all and the matching zero-step ``Unsplit`` disappears with it.
2. :func:`canonicalize` — normalise the representation-level degrees of
   freedom (explicitly spelled default resources, duplicate dependency
   edges) so structurally equal programs compare and sign equal.
3. :func:`fuse_batched` (opt-in) — rewrite staged solve fragments into
   fused interleaved-batch sweeps (``Interleave`` + ``BatchedSolve``),
   merging runs of adjacent same-signature fragments into one.
4. :func:`validate` — reject malformed programs (backward/forward
   dependency indices, out-of-range devices, opcodes a single-device
   solve cannot express) with :class:`~repro.util.errors.PlanError`
   before the engine trips over them mid-interpretation.

Change reporting
----------------
Every transformation pass returns the *input object itself* when it has
nothing to do — ``pass_(p) is p`` means "no change". The pipeline uses
that to skip redundant re-walks (canonicalise only re-runs after a pass
that actually rewrote the program), which keeps the hot planning path
from re-walking canonical programs; a pass-idempotence test pins the
behaviour.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..util.errors import PlanError
from .instructions import (
    BatchedSolve,
    Fixed,
    Interleave,
    OnChipSolve,
    Pad,
    Program,
    SplitBlock,
    SplitCoop,
    Step,
    Transfer,
    Unpad,
    Unsplit,
)

__all__ = [
    "eliminate_dead_steps",
    "canonicalize",
    "fuse_batched",
    "validate",
    "run_default_passes",
]

_ENGINES = ("compute", "xfer")


def _is_dead(op) -> bool:
    if isinstance(op, (SplitCoop, SplitBlock, Unsplit)):
        return op.steps == 0
    if isinstance(op, Transfer):
        return op.values_per_system == 0
    return False


def eliminate_dead_steps(program: Program) -> Program:
    """Drop no-op steps, forwarding their dependency edges.

    A step that depended on a dropped step inherits the dropped step's
    own (already renumbered) dependencies, so scheduling constraints are
    preserved exactly; only the no-op disappears. Returns ``program``
    itself when nothing is dead (no change).
    """
    if not any(_is_dead(step.op) for step in program.steps):
        return program
    kept: List[Step] = []
    new_index: Dict[int, int] = {}
    forwarded: Dict[int, Tuple[int, ...]] = {}
    for i, step in enumerate(program.steps):
        resolved: List[int] = []
        for dep in step.deps:
            if dep in forwarded:
                resolved.extend(forwarded[dep])
            else:
                resolved.append(new_index[dep])
        seen = set()
        deps = tuple(d for d in resolved if not (d in seen or seen.add(d)))
        if _is_dead(step.op):
            forwarded[i] = deps
            continue
        new_index[i] = len(kept)
        kept.append(replace(step, deps=deps))
    return replace(program, steps=tuple(kept))


def canonicalize(program: Program) -> Program:
    """Normalise representation-only degrees of freedom.

    An explicitly spelled default resource becomes the empty string and
    dependency lists are deduplicated and sorted, so two lowerings of
    the same schedule produce structurally equal (and equally signed)
    programs. Returns ``program`` itself when already canonical.
    """
    steps: List[Step] = []
    changed = False
    for step in program.steps:
        resource = step.resource
        if resource == f"dev{step.device}:{step.engine}":
            resource = ""
        deps = tuple(sorted(set(step.deps)))
        if resource != step.resource or deps != step.deps:
            step = replace(step, resource=resource, deps=deps)
            changed = True
        steps.append(step)
    if not changed:
        return program
    return replace(program, steps=tuple(steps))


# -- batched fusion ----------------------------------------------------------


class _Fragment:
    """One staged solve fragment: the step span and its plan parameters."""

    __slots__ = (
        "start", "end", "num_systems", "padded_size",
        "stage1_steps", "stage2_steps", "thomas_switch", "variant",
        "pad_stage", "unpad_stage", "signature",
    )

    def __init__(self, **kw):
        for name in self.__slots__:
            setattr(self, name, kw[name])


def _match_fragment(steps: Tuple[Step, ...], start: int) -> Optional[_Fragment]:
    """Match the staged chain ``Pad [SplitCoop] [SplitBlock] OnChipSolve
    Unsplit* Unpad`` as a linear dependency chain starting at ``start``.

    Only self-contained fragments fuse: the ``Pad`` must have no
    external dependencies and every later step must depend exactly on
    its predecessor (the shape every solve lowering emits).
    """
    i = start
    if not isinstance(steps[i].op, Pad) or steps[i].deps != ():
        return None
    pad = steps[i]
    device, engine = pad.device, pad.engine

    def chained(j: int) -> bool:
        s = steps[j]
        return (
            s.deps == (j - 1,) and s.device == device and s.engine == engine
        )

    k1 = k2 = 0
    i += 1
    if i < len(steps) and isinstance(steps[i].op, SplitCoop) and chained(i):
        k1 = steps[i].op.steps
        i += 1
    if i < len(steps) and isinstance(steps[i].op, SplitBlock) and chained(i):
        k2 = steps[i].op.steps
        i += 1
    if i >= len(steps) or not isinstance(steps[i].op, OnChipSolve) or not chained(i):
        return None
    solve = steps[i].op
    i += 1
    while i < len(steps) and isinstance(steps[i].op, Unsplit) and chained(i):
        i += 1
    if i >= len(steps) or not isinstance(steps[i].op, Unpad) or not chained(i):
        return None
    end = i
    return _Fragment(
        start=start,
        end=end,
        num_systems=pad.shape[0],
        padded_size=pad.op.padded_size,
        stage1_steps=k1,
        stage2_steps=k2,
        thomas_switch=solve.thomas_switch,
        variant=solve.variant,
        pad_stage=pad.stage,
        unpad_stage=steps[end].stage,
        signature=tuple(steps[j].signature for j in range(start, end + 1)),
    )


def _fused_steps(frag: _Fragment, num_systems: int, base: int) -> List[Step]:
    """The five-step fused replacement for a fragment run."""
    shape = (num_systems, frag.padded_size)
    device = 0
    out: List[Step] = []

    def add(op, stage: str) -> None:
        deps = (base + len(out) - 1,) if out else ()
        out.append(
            Step(op=op, device=device, stage=stage, shape=shape, deps=deps)
        )

    add(Pad(frag.padded_size), frag.pad_stage)
    add(Interleave("in"), "interleave")
    add(
        BatchedSolve(
            stage1_steps=frag.stage1_steps,
            stage2_steps=frag.stage2_steps,
            thomas_switch=frag.thomas_switch,
            variant=frag.variant,
        ),
        "fused_sweep",
    )
    add(Interleave("out"), "deinterleave")
    add(Unpad(), frag.unpad_stage)
    return out


def fuse_batched(program: Program) -> Program:
    """Rewrite staged solve fragments into fused interleaved sweeps.

    Each ``Pad → SplitCoop/SplitBlock → OnChipSolve → Unsplit* → Unpad``
    chain becomes ``Pad → Interleave(in) → BatchedSolve →
    Interleave(out) → Unpad``; *adjacent* fragments with identical
    (count-independent) step signatures — the service's plan-signature
    groups, or N concatenated single-system subprograms — collapse into
    **one** fused fragment over the summed system count, so the whole
    group runs as single vectorised sweeps.

    Solutions are bit-identical to the unfused chain (the batched
    kernels mirror the row-major numerics per element). The pass is
    idempotent — fused programs contain no ``OnChipSolve``, so a second
    application finds nothing — and returns ``program`` itself when no
    fragment matches (no change).
    """
    if program.kind != "solve":
        return program
    steps = program.steps

    # Collect non-overlapping fragments left to right.
    fragments: List[_Fragment] = []
    i = 0
    while i < len(steps):
        frag = _match_fragment(steps, i)
        if frag is None:
            i += 1
            continue
        fragments.append(frag)
        i = frag.end + 1
    if not fragments:
        return program

    # Merge runs of adjacent fragments with identical signatures.
    runs: List[List[_Fragment]] = []
    for frag in fragments:
        if (
            runs
            and runs[-1][-1].end + 1 == frag.start
            and runs[-1][-1].signature == frag.signature
        ):
            runs[-1].append(frag)
        else:
            runs.append([frag])

    new_steps: List[Step] = []
    index_map: Dict[int, int] = {}
    run_iter = iter(runs)
    run = next(run_iter, None)
    i = 0
    while i < len(steps):
        if run is not None and i == run[0].start:
            total = sum(f.num_systems for f in run)
            fused = _fused_steps(run[0], total, base=len(new_steps))
            new_steps.extend(fused)
            last = len(new_steps) - 1
            for f in run:
                for j in range(f.start, f.end + 1):
                    index_map[j] = last
            i = run[-1].end + 1
            run = next(run_iter, None)
            continue
        step = steps[i]
        deps = tuple(sorted({index_map[d] for d in step.deps}))
        index_map[i] = len(new_steps)
        new_steps.append(
            step if deps == step.deps else replace(step, deps=deps)
        )
        i += 1
    return replace(program, steps=tuple(new_steps))


def validate(program: Program) -> Program:
    """Reject malformed programs; returns the program for chaining."""
    if program.kind not in ("solve", "dist"):
        raise PlanError(f"unknown program kind {program.kind!r}")
    if not program.device_names:
        raise PlanError("program places work on no devices")
    p = program.num_devices
    if program.kind == "solve" and p != 1:
        raise PlanError("a solve program must target exactly one device")
    for i, step in enumerate(program.steps):
        ident = f"step {i} ({type(step.op).__name__})"
        if not 0 <= step.device < p:
            raise PlanError(f"{ident} targets device {step.device} of {p}")
        if step.engine not in _ENGINES:
            raise PlanError(f"{ident} uses unknown engine {step.engine!r}")
        for dep in step.deps:
            if not 0 <= dep < i:
                raise PlanError(f"{ident} depends on step {dep}, not before it")
        if isinstance(step.op, Transfer):
            if program.kind == "solve":
                raise PlanError(f"{ident}: solve programs cannot transfer")
            for end in (step.op.src, step.op.dst):
                if not 0 <= end < p:
                    raise PlanError(
                        f"{ident} transfers via device {end} of {p}"
                    )
        if isinstance(step.op, (Interleave, BatchedSolve)):
            if program.kind != "solve":
                raise PlanError(
                    f"{ident}: batched opcodes are single-device only"
                )
        if isinstance(step.op, Fixed) and program.kind == "solve":
            raise PlanError(f"{ident}: solve programs carry no fixed spans")
    return program


def run_default_passes(program: Program, *, fuse: bool = False) -> Program:
    """The standard pipeline every lowering runs.

    Eliminate, canonicalise, optionally fuse, validate — re-walking the
    canonicaliser only when a preceding pass reported a change (returned
    a new object), never after a no-op pass.
    """
    program = canonicalize(eliminate_dead_steps(program))
    if fuse:
        fused = fuse_batched(program)
        if fused is not program:
            # Only a pass that actually rewrote steps warrants the
            # canonicalise re-walk.
            program = canonicalize(fused)
    return validate(program)
