"""The one interpreter behind every execution path.

:class:`Engine` interprets a lowered :class:`~repro.ir.instructions.Program`
in two modes:

- :meth:`Engine.execute` — carries a real
  :class:`~repro.systems.TridiagonalBatch` through the kernel handlers on
  a live :class:`~repro.gpu.executor.SimSession`. Single-device
  (``kind="solve"``) programs only; this is what
  :meth:`MultiStageSolver.execute_plan` runs.
- :meth:`Engine.price` — data-free. Solve programs submit the handlers'
  :class:`~repro.gpu.cost.KernelCost` records to a session (bit-identical
  totals to execution, because they are the *same* records in the same
  order). Dist programs run a list scheduler: each step starts when its
  dependencies have finished and its resource (a device's compute or
  transfer engine, or a named shared link) is free, and lands as an event
  on a per-device timeline — the
  :class:`~repro.dist.pipeline.DistReport` makespan model.

Both modes thread a per-instruction :class:`StepTrace` (stage, device,
span) so every path gets uniform observability from one bookkeeping
mechanism.

Fault injection
---------------
An optional :class:`~repro.faults.FaultInjector` hooks every costed
instruction in *both* modes — injection decisions are deterministic in
the plan seed and the instruction, so pricing a program sees exactly
the transient faults executing it sees. Transient faults are retried
with capped exponential backoff under the injector's
:class:`~repro.faults.RetryPolicy` and a per-program retry budget; the
wasted attempts and backoffs are priced with the same kernel cost model
as the work itself and recorded in the injector's
:class:`~repro.faults.FaultLog`. Any :class:`ReproError` escaping a step
is annotated with the failing instruction — ``exc.instruction`` is
``(index, opcode, device)`` and the message names all three — so
mid-program failures are attributable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..gpu.cost import kernel_time_ms
from ..gpu.executor import Device
from ..kernels.base import KernelContext
from ..util.errors import FaultInjectionError, PlanError, ReproError
from .instructions import Fixed, Program, Step, Transfer, signature_text


def _handlers():
    # Imported on first use: repro.kernels.handlers itself imports
    # repro.ir.instructions, so a module-level import here would close an
    # import cycle through the package __init__s.
    from ..kernels import handlers

    return handlers

__all__ = ["StepTrace", "EngineRun", "Engine"]


@dataclass(frozen=True)
class StepTrace:
    """Where and when one instruction ran (or was priced)."""

    index: int
    op: str
    stage: str
    device: int
    engine: str
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        """Length of the step's span."""
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class EngineRun:
    """Outcome of one program interpretation.

    ``report`` is a :class:`~repro.gpu.executor.SimReport` for solve
    programs and a :class:`~repro.dist.pipeline.DistReport` for dist
    programs; ``x`` is the solution in execute mode, ``None`` when the
    run was data-free.
    """

    program: Program
    report: object
    trace: Tuple[StepTrace, ...]
    x: Optional[np.ndarray] = None

    @property
    def total_ms(self) -> float:
        """Simulated end-to-end time of the run."""
        return self.report.total_ms


class Engine:
    """Interprets programs against a set of (simulated) devices.

    ``devices`` entries may be :class:`Device` objects or bare name
    strings — names suffice for programs made only of ``Fixed`` and
    ``Transfer`` steps (the legacy scheduler wrappers); kernel opcodes
    need real devices for the cost model.
    """

    def __init__(
        self, devices, interconnect=None, label: str = "", injector=None,
        tracer=None,
    ):
        self.devices = tuple(devices)
        self.interconnect = interconnect
        self.label = label
        self.injector = injector  # optional FaultInjector; mutable
        self.tracer = tracer  # optional obs.Tracer; mutable
        self._price_ctx: Dict[int, KernelContext] = {}

    @classmethod
    def for_device(cls, device: Device) -> "Engine":
        """An engine over one device (solve programs)."""
        return cls((device,), label=device.name)

    @classmethod
    def for_group(cls, group) -> "Engine":
        """An engine over a :class:`~repro.dist.topology.DeviceGroup`."""
        return cls(
            tuple(group.devices),
            interconnect=group.interconnect,
            label=group.describe(),
        )

    # -- device plumbing ---------------------------------------------------

    def _require_device(self, index: int) -> Device:
        if index >= len(self.devices):
            raise PlanError(
                f"program targets device {index}, engine has "
                f"{len(self.devices)}"
            )
        device = self.devices[index]
        if not isinstance(device, Device):
            raise PlanError(
                f"step needs a kernel cost model but device {index} is the "
                f"bare name {device!r}"
            )
        return device

    def _ctx(self, index: int) -> KernelContext:
        """A throwaway pricing context for ``devices[index]`` (cost
        methods read only the device spec; nothing is ever submitted)."""
        ctx = self._price_ctx.get(index)
        if ctx is None:
            from ..gpu.executor import SimSession

            ctx = KernelContext(SimSession(self._require_device(index)))
            self._price_ctx[index] = ctx
        return ctx

    # -- fault plumbing ----------------------------------------------------

    @staticmethod
    def _annotate(exc: ReproError, i: int, step: Step) -> ReproError:
        """Attach the failing instruction to an escaping error (once)."""
        if getattr(exc, "instruction", None) is None:
            op = type(step.op).__name__
            exc.instruction = (i, op, step.device)
            where = f"[step {i}: {op} on dev{step.device}]"
            if exc.args and isinstance(exc.args[0], str):
                exc.args = (f"{exc.args[0]} {where}",) + exc.args[1:]
            else:
                exc.args = (where,) + exc.args
        return exc

    def _interpret(self, program, i, step, budget, body, duration_ms=None):
        """Run one step's ``body`` under fault injection and retry.

        Transient faults retry with backoff while per-step attempts and
        the per-program ``budget`` allow; each wasted attempt is charged
        at the step's priced duration plus the backoff and logged.
        Every escaping :class:`ReproError` is annotated with the
        instruction context.

        Returns the number of *retries* the step needed (0 for a clean
        run) — the injector draws deterministically per instruction, so
        the count is identical in execute and price mode and feeds the
        tracer's ``retries`` span attribute.
        """
        inj = self.injector
        if inj is None:
            try:
                body()
                return 0
            except ReproError as exc:
                raise self._annotate(exc, i, step)
        retry = inj.retry
        attempt = 0
        while True:
            try:
                inj.before_step(program, i, step, attempt)
                body()
                return attempt
            except FaultInjectionError as exc:
                wasted = (
                    duration_ms
                    if duration_ms is not None
                    else self._step_duration(step, program)
                )
                penalty = wasted + retry.backoff_ms(attempt)
                fields = dict(
                    label=program.label,
                    step=i,
                    op=type(step.op).__name__,
                    device=inj.global_id(step.device),
                    attempt=attempt,
                    penalty_ms=penalty,
                )
                if attempt + 1 >= retry.max_attempts or not budget.consume():
                    inj.note("transient", "exhausted", **fields)
                    raise self._annotate(exc, i, step)
                inj.note("transient", "retried", **fields)
                attempt += 1
            except ReproError as exc:
                raise self._annotate(exc, i, step)

    def _budget(self) -> "_RetryBudget":
        inj = self.injector
        return _RetryBudget(inj.retry.budget if inj is not None else 0)

    # -- execute mode ------------------------------------------------------

    def execute(self, program: Program, batch) -> EngineRun:
        """Run ``program`` on real data; single-device programs only."""
        if program.kind != "solve":
            raise PlanError(
                f"only solve programs execute data; got kind {program.kind!r}"
            )
        handlers = _handlers()
        device = self._require_device(0)
        session = device.session()
        ctx = KernelContext(session)
        state = handlers.ExecState.for_batch(batch)
        budget = self._budget()
        tracer = self.tracer
        token = self._begin_program(program, 0.0)
        trace: List[StepTrace] = []
        try:
            for i, step in enumerate(program.steps):
                start = session.elapsed_ms
                mark = session.num_records
                retries = self._interpret(
                    program, i, step, budget,
                    lambda step=step: handlers.execute_step(step, ctx, state),
                )
                end = session.elapsed_ms
                trace.append(self._trace(i, step, start, end))
                if tracer is not None:
                    self._span_step(
                        i, step, start, end, retries,
                        kernels=self._kernel_spans(session, mark, step.device),
                    )
        except ReproError as exc:
            self._abort_program(token, session.elapsed_ms, exc)
            raise
        self._end_program(token, session.elapsed_ms)
        return EngineRun(
            program=program,
            report=session.report(),
            trace=tuple(trace),
            x=state.x,
        )

    # -- price mode --------------------------------------------------------

    def price(self, program: Program) -> EngineRun:
        """Price ``program`` without data."""
        if program.kind == "solve":
            return self._price_solve(program)
        return self._price_dist(program)

    def _price_solve(self, program: Program) -> EngineRun:
        handlers = _handlers()
        device = self._require_device(0)
        session = device.session()
        ctx = KernelContext(session)
        budget = self._budget()
        trace: List[StepTrace] = []

        def submit(step: Step) -> None:
            for cost in handlers.price_costs(step, ctx, program.dtype_size):
                session.submit(cost, stage=step.stage)

        tracer = self.tracer
        token = self._begin_program(program, 0.0)
        try:
            for i, step in enumerate(program.steps):
                start = session.elapsed_ms
                mark = session.num_records
                retries = self._interpret(
                    program, i, step, budget, lambda step=step: submit(step)
                )
                end = session.elapsed_ms
                trace.append(self._trace(i, step, start, end))
                if tracer is not None:
                    self._span_step(
                        i, step, start, end, retries,
                        kernels=self._kernel_spans(session, mark, step.device),
                    )
        except ReproError as exc:
            self._abort_program(token, session.elapsed_ms, exc)
            raise
        self._end_program(token, session.elapsed_ms)
        return EngineRun(
            program=program, report=session.report(), trace=tuple(trace)
        )

    def _price_dist(self, program: Program) -> EngineRun:
        from ..dist.pipeline import DeviceTimeline, DistReport, TimelineEvent

        p = program.num_devices
        events: List[List[TimelineEvent]] = [[] for _ in range(p)]
        end_of: List[float] = [0.0] * len(program.steps)
        free: Dict[str, float] = {}
        budget = self._budget()
        tracer = self.tracer
        token = self._begin_program(program, 0.0)
        trace: List[StepTrace] = []
        try:
            for i, step in enumerate(program.steps):
                ready = max((end_of[d] for d in step.deps), default=0.0)
                if step.is_marker:
                    # Free bookkeeping: passes dependencies through without
                    # occupying any engine.
                    end_of[i] = ready
                    trace.append(self._trace(i, step, ready, ready))
                    if tracer is not None:
                        self._span_step(i, step, ready, ready, 0)
                    continue
                duration = self._step_duration(step, program)
                if self.injector is not None:
                    duration = self.injector.adjust_duration_ms(step, duration)
                retries = self._interpret(
                    program, i, step, budget, lambda: None, duration_ms=duration
                )
                start = max(ready, free.get(step.resource_key, 0.0))
                end = start + duration
                free[step.resource_key] = end
                end_of[i] = end
                kind = "compute" if step.engine == "compute" else "xfer"
                # Compute spans always land on the timeline (even
                # zero-duration ones); transfers only when data moved — a
                # free local hop occupies the link for no time and draws
                # nothing.
                if kind == "compute" or duration > 0:
                    events[step.device].append(
                        TimelineEvent(kind, step.stage, start, end)
                    )
                trace.append(self._trace(i, step, start, end))
                if tracer is not None:
                    self._span_step(i, step, start, end, retries)
        except ReproError as exc:
            self._abort_program(token, max(end_of, default=0.0), exc)
            raise
        self._end_program(token, max(end_of, default=0.0))
        timelines = tuple(
            DeviceTimeline(i, program.device_names[i], tuple(events[i]))
            for i in range(p)
        )
        report = DistReport(
            group_label=program.label or self.label,
            schedule=program.schedule,
            timelines=timelines,
        )
        return EngineRun(program=program, report=report, trace=tuple(trace))

    def _step_duration(self, step: Step, program: Program) -> float:
        """Simulated duration of one non-marker step."""
        op = step.op
        if isinstance(op, Fixed):
            return op.ms
        if isinstance(op, Transfer):
            if self.interconnect is None:
                raise PlanError(
                    "program transfers data but the engine has no interconnect"
                )
            nbytes = op.values_per_system * step.shape[0] * program.dtype_size
            return self.interconnect.transfer_ms(
                nbytes, op.src, op.dst, program.num_devices
            )
        ctx = self._ctx(step.device)
        total = 0.0
        for cost in _handlers().price_costs(step, ctx, program.dtype_size):
            total += kernel_time_ms(ctx.spec, cost).total_ms
        return total

    # -- tracer plumbing ---------------------------------------------------
    #
    # Spans are built from the same quantities in execute and price mode
    # (step bounds off the session clock, kernel spans off the identical
    # launch records, retry counts off the deterministic injector), so
    # the two modes emit equal trees — pinned by tests/test_obs.py.

    def _begin_program(self, program: Program, start_ms: float):
        if self.tracer is None:
            return None
        return self.tracer.begin(
            program.label or "program",
            "program",
            start_ms,
            device=0,
            kind=program.kind,
            num_systems=program.num_systems,
            signature=signature_text(program.signature),
            steps=len(program.steps),
            system_size=program.system_size,
        )

    def _end_program(self, token, end_ms: float) -> None:
        if self.tracer is not None:
            self.tracer.end(end_ms)

    def _abort_program(self, token, end_ms: float, exc: Exception) -> None:
        if self.tracer is not None:
            self.tracer.abort_to(token, end_ms, error=type(exc).__name__)

    def _span_step(self, i, step, start, end, retries, kernels=()):
        attrs = dict(op=type(step.op).__name__, stage=step.stage)
        if retries:
            attrs["retries"] = retries
        self.tracer.leaf(
            f"[{i}] {type(step.op).__name__}",
            "instruction",
            start,
            end,
            device=step.device,
            children=kernels,
            **attrs,
        )

    @staticmethod
    def _kernel_spans(session, mark: int, device: int) -> tuple:
        from ..obs.trace import Span

        return tuple(
            Span(
                name=rec.breakdown.name,
                category="kernel",
                start_ms=rec.start_ms,
                end_ms=rec.end_ms,
                device=device,
                attrs=(("bound", rec.breakdown.bound), ("stage", rec.stage)),
            )
            for rec in session.records_since(mark)
        )

    @staticmethod
    def _trace(i: int, step: Step, start: float, end: float) -> StepTrace:
        return StepTrace(
            index=i,
            op=type(step.op).__name__,
            stage=step.stage,
            device=step.device,
            engine=step.engine,
            start_ms=start,
            end_ms=end,
        )


class _RetryBudget:
    """Per-program-run allowance of transient-fault retries."""

    def __init__(self, remaining: int):
        self.remaining = remaining

    def consume(self) -> bool:
        """Take one retry from the budget; False when it is spent."""
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True
