"""The typed instruction set and program container.

A solve — single-device, distributed, or merged-batch — is described as
a :class:`Program`: a straight-line sequence of :class:`Step`s, each
binding one opcode to a placement (device, engine, dependency edges).
Plans (:class:`~repro.core.planner.SolvePlan`,
:class:`~repro.dist.plan.DistPlan`) *lower* to programs; one interpreter
(:class:`~repro.ir.engine.Engine`) then either **executes** a program
(carrying real :class:`~repro.systems.TridiagonalBatch` data through the
kernel handlers) or **prices** it (data-free, submitting only
:class:`~repro.gpu.cost.KernelCost` and interconnect-transfer costs).
Keeping both interpretations of the *same* object is what guarantees
price/execute agreement by construction instead of by convention.

Opcodes are small frozen dataclasses. Count-dependent quantities live in
:attr:`Step.shape` — ``(num_systems, system_size)`` at that step — so a
program's :attr:`~Program.signature` (which excludes the system count)
stays stable when a plan is widened to a merged batch, exactly mirroring
:attr:`SolvePlan.signature`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Tuple

__all__ = [
    "Pad",
    "Unpad",
    "SplitCoop",
    "SplitBlock",
    "OnChipSolve",
    "Unsplit",
    "Interleave",
    "BatchedSolve",
    "ReducedSolve",
    "Reconstruct",
    "Transfer",
    "Barrier",
    "Fixed",
    "Step",
    "Program",
    "MARKER_OPS",
    "signature_text",
]


# -- opcodes ----------------------------------------------------------------


@dataclass(frozen=True)
class Pad:
    """Pad every system to the plan's power-of-two size (host-side view
    change; free). In execute mode this is also where the batch/plan
    size-compatibility check lives."""

    padded_size: int


@dataclass(frozen=True)
class Unpad:
    """Crop the solution back to the raw system size (free)."""


@dataclass(frozen=True)
class SplitCoop:
    """Stage 1: ``steps`` cooperative PCR split steps, one launch each."""

    steps: int


@dataclass(frozen=True)
class SplitBlock:
    """Stage 2: ``steps`` per-block PCR split steps in one launch.

    ``start_stride`` is the physical coupling distance of the first step
    (>1 when stage 1 already split these systems).
    """

    steps: int
    start_stride: int = 1


@dataclass(frozen=True)
class OnChipSolve:
    """Stage 3+4: the shared-memory PCR-Thomas base kernel."""

    thomas_switch: int
    variant: str
    stride: int = 1


@dataclass(frozen=True)
class Unsplit:
    """Invert ``steps`` PCR split steps on the solution (a host-side
    gather; free)."""

    steps: int


@dataclass(frozen=True)
class Interleave:
    """Layout conversion between row-major and interleaved (SoA) batches.

    ``direction="in"`` transposes the ``(m, n)`` coefficient batch into
    the :class:`~repro.systems.batched.BatchedTridiagonal` layout (four
    arrays); ``direction="out"`` transposes the solution back (one
    array). A real tiled-transpose pass on the device, so it is costed,
    not a marker — fusion only wins when the sweeps it enables buy back
    this toll.
    """

    direction: str = "in"


@dataclass(frozen=True)
class BatchedSolve:
    """The fused interleaved-batch sweep (stages 1-4 in SoA layout).

    Replaces a ``SplitCoop``/``SplitBlock``/``OnChipSolve``/``Unsplit``
    chain: ``stage1_steps + stage2_steps`` coalesced global split passes
    over the interleaved batch, the hybrid smem PCR-Thomas solve, and
    the inverse gathers, all as single NumPy sweeps per pass. Emitted
    only by the fusion pass (:func:`repro.ir.passes.fuse_batched`);
    numerics are bit-identical to the chain it replaces.
    """

    stage1_steps: int
    stage2_steps: int
    thomas_switch: int
    variant: str


@dataclass(frozen=True)
class ReducedSolve:
    """The SPIKE reduced system: an on-chip solve of ``system_size``-row
    systems (one per original system) on the host device."""

    system_size: int


@dataclass(frozen=True)
class Reconstruct:
    """The SPIKE correction ``x = y - w t - v s`` over one row chunk."""


@dataclass(frozen=True)
class Transfer:
    """Move ``values_per_system`` values per system between devices.

    The byte count is ``values_per_system * shape[0] * dtype_size`` —
    count-dependent data sizes stay out of the opcode so signatures
    remain count-independent. ``src == dst`` transfers are free.
    """

    values_per_system: float
    src: int
    dst: int


@dataclass(frozen=True)
class Barrier:
    """Pure dependency aggregator; no cost, no event."""


@dataclass(frozen=True)
class Fixed:
    """A pre-priced span of ``ms`` simulated milliseconds.

    Escape hatch for the legacy :mod:`repro.dist.pipeline` scheduler
    API, whose callers hand in already-priced per-device costs.
    """

    ms: float


# Opcodes that are bookkeeping only: never priced, never drawn on a
# timeline (they still execute — padding and unsplitting are real host
# array operations — but cost nothing in the machine model).
MARKER_OPS = (Pad, Unpad, Unsplit, Barrier)

_ENGINES = ("compute", "xfer")


def _op_signature(op) -> Tuple:
    return (type(op).__name__,) + tuple(
        getattr(op, f.name) for f in fields(op)
    )


# -- steps ------------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    """One opcode bound to a placement.

    ``shape`` is ``(num_systems, system_size)`` as seen by this step
    (after any preceding splits). ``deps`` are indices of earlier steps
    that must finish first; ``resource`` names the serialising engine
    slot (defaulting to ``dev{device}:{engine}``) — e.g. the batch-mode
    scatter claims the host's egress link from every receiving device's
    timeline.
    """

    op: object
    device: int = 0
    engine: str = "compute"
    stage: str = ""
    shape: Tuple[int, int] = (0, 0)
    deps: Tuple[int, ...] = ()
    resource: str = ""

    @property
    def resource_key(self) -> str:
        """The serialising resource this step occupies."""
        return self.resource or f"dev{self.device}:{self.engine}"

    @property
    def is_marker(self) -> bool:
        """Whether this step is free bookkeeping (no cost, no event)."""
        return isinstance(self.op, MARKER_OPS)

    @property
    def signature(self) -> Tuple:
        """What fixes this step's per-system behaviour.

        Excludes the system count (``shape[0]``) and the dependency
        indices; includes everything that changes the arithmetic or the
        placement.
        """
        return (
            _op_signature(self.op),
            self.device,
            self.engine,
            self.stage,
            self.shape[1],
            self.resource,
        )

    def describe(self) -> str:
        """One-line rendering for program listings."""
        op = self.op
        parts = [f"{f.name}={getattr(op, f.name)!r}" for f in fields(op)]
        deps = ",".join(str(d) for d in self.deps) or "-"
        return (
            f"dev{self.device} {self.engine:<7s} {self.stage:<18s} "
            f"{type(op).__name__}({', '.join(parts)}) "
            f"shape={self.shape[0]}x{self.shape[1]} deps={deps}"
        )


# -- programs ---------------------------------------------------------------


@dataclass(frozen=True)
class Program:
    """A lowered plan: straight-line steps plus the execution context.

    ``kind`` is ``"solve"`` (single device; executable with data) or
    ``"dist"`` (multi-device; priced onto per-device timelines).
    ``system_size`` and ``num_systems`` describe the raw workload;
    per-step shapes carry the post-split sizes.
    """

    kind: str
    label: str
    device_names: Tuple[str, ...]
    dtype_size: int
    num_systems: int
    system_size: int
    schedule: str = ""
    topology: str = ""
    steps: Tuple[Step, ...] = ()

    @property
    def num_devices(self) -> int:
        """Devices the program places work on."""
        return len(self.device_names)

    @property
    def signature(self) -> Tuple:
        """Everything that fixes the per-system arithmetic and schedule —
        excluding the system count.

        Two workloads whose programs share a signature run the exact
        same per-system instruction sequence, so their batches may be
        merged and solved together with bit-identical per-system results
        — the contract the batched solve service groups by. Step
        signatures are order-canonicalised (sorted) so count-dependent
        scheduling order (e.g. the batch-mode gather's completion order)
        does not leak into the signature.
        """
        return (
            "program",
            self.kind,
            self.device_names,
            self.dtype_size,
            self.system_size,
            self.schedule,
            self.topology,
            tuple(sorted(signature_text(s.signature) for s in self.steps)),
        )

    def describe(self) -> str:
        """Multi-line program listing."""
        header = (
            f"{self.kind} program on {self.label or '/'.join(self.device_names)}"
            f" ({self.num_systems} x {self.system_size}, "
            f"dtype {self.dtype_size}B"
        )
        if self.schedule:
            header += f", schedule {self.schedule}"
        if self.topology:
            header += f", {self.topology}"
        header += f"): {len(self.steps)} steps"
        lines = [header]
        for i, step in enumerate(self.steps):
            lines.append(f"  [{i:>2d}] {step.describe()}")
        return "\n".join(lines)


def signature_text(sig) -> str:
    """Canonical text form of a (nested-tuple) signature.

    Used to key :class:`~repro.core.tuning.TuningCache` entries by
    program signatures — the JSON store needs string keys — and to sort
    step signatures inside :attr:`Program.signature`.
    """
    if isinstance(sig, (tuple, list)):
        return "(" + ",".join(signature_text(v) for v in sig) + ")"
    if isinstance(sig, float) and sig == int(sig):
        return str(int(sig))  # 6.0 and 6 name the same per-system count
    return repr(sig) if isinstance(sig, str) else str(sig)
