"""Lowering: plans become instruction programs.

:func:`lower_solve_plan` turns a :class:`~repro.core.planner.SolvePlan`
into a single-device ``solve`` program — the Figure-1 staged workflow
spelled out as steps. :func:`lower_dist_plan` turns a
:class:`~repro.dist.plan.DistPlan` into a multi-device ``dist`` program:
the same local solve fragments placed per device, plus the transfers,
the SPIKE reduced solve, and the reconstruction, with dependency edges
and resource claims encoding exactly the overlap structure the pipeline
scheduler used to hand-roll.

Every lowering runs the default pass pipeline, so zero-step splits and
zero-byte transfers never reach the engine.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

from ..util.validation import next_power_of_two
from .engine import Engine
from .instructions import (
    OnChipSolve,
    Pad,
    Program,
    Reconstruct,
    ReducedSolve,
    SplitBlock,
    SplitCoop,
    Step,
    Transfer,
    Unpad,
    Unsplit,
)
from .passes import run_default_passes

__all__ = ["lower_solve_plan", "lower_dist_plan", "concat_solve_programs"]

_SOLVE_STAGES = ("stage1_coop_pcr", "stage2_global_pcr", "stage3_pcr_thomas")

# Values exchanged per system in rows mode (see repro.dist.solver): the
# four spike boundary values, the two data boundary values, and the two
# correction values coming back.
_SPIKE_VALUES = 4.0
_DATA_VALUES = 2.0
_CORRECTION_VALUES = 2.0

# Approx (truncated-SPIKE) mode moves only neighbour-to-neighbour
# traffic: a chunk sends its trailing (y_last, v_last) pair one device
# to the right, and the interface owner sends the single boundary value
# t_i back. No boundary data ever reaches device 0.
_TIP_VALUES = 2.0
_APPROX_CORRECTION_VALUES = 1.0


def _solve_steps(
    plan,
    *,
    device: int = 0,
    base: int = 0,
    deps: Tuple[int, ...] = (),
    stages: Tuple[str, str, str] = _SOLVE_STAGES,
    marker_stage: str = "",
) -> List[Step]:
    """The staged-solve fragment for one local plan, chained internally.

    ``base`` is the index the first emitted step will occupy in the
    enclosing program; ``deps`` feeds the fragment's first step.
    """
    m, n = plan.num_systems, plan.system_size
    steps: List[Step] = []

    def add(op, *, engine: str = "compute", stage: str, shape) -> None:
        prev = (base + len(steps) - 1,) if steps else tuple(deps)
        steps.append(
            Step(
                op=op,
                device=device,
                engine=engine,
                stage=stage,
                shape=shape,
                deps=prev,
            )
        )

    add(Pad(n), stage=marker_stage, shape=(m, n))
    add(SplitCoop(plan.stage1_steps), stage=stages[0], shape=(m, n))
    add(
        SplitBlock(plan.stage2_steps, start_stride=1 << plan.stage1_steps),
        stage=stages[1],
        shape=(plan.systems_entering_stage2, n >> plan.stage1_steps),
    )
    add(
        OnChipSolve(plan.thomas_switch, plan.variant, plan.stride),
        stage=stages[2],
        shape=(plan.systems_entering_stage3, plan.stage3_system_size),
    )
    add(Unsplit(plan.stage2_steps), stage=marker_stage, shape=(m, n))
    add(Unsplit(plan.stage1_steps), stage=marker_stage, shape=(m, n))
    add(Unpad(), stage=marker_stage, shape=(m, n))
    return steps


def lower_solve_plan(plan, device, dtype_size: int, *, fuse: bool = False) -> Program:
    """Lower a single-device :class:`SolvePlan` to a ``solve`` program.

    With ``fuse=True`` the batched-fusion pass rewrites the staged chain
    into interleaved-layout sweeps (see
    :func:`repro.ir.passes.fuse_batched`); solutions are bit-identical.
    """
    steps = _solve_steps(plan)
    program = Program(
        kind="solve",
        label=device.name,
        device_names=(device.name,),
        dtype_size=dtype_size,
        num_systems=plan.num_systems,
        system_size=plan.system_size,
        steps=tuple(steps),
    )
    return run_default_passes(program, fuse=fuse)


def concat_solve_programs(programs, *, fuse: bool = False) -> Program:
    """Concatenate same-device ``solve`` programs into one program.

    Each input program's steps are appended unchanged (dependency
    indices rebased), so the result prices exactly as N back-to-back
    interpretations — the per-request baseline the service would run
    without grouping. With ``fuse=True`` the fusion pass then collapses
    adjacent same-signature fragments into single vectorised sweeps,
    which is the whole point: N small solves become one batched solve.

    All inputs must be ``solve`` programs on the same device with the
    same dtype size and system size.
    """
    from ..util.errors import PlanError

    programs = list(programs)
    if not programs:
        raise PlanError("cannot concatenate zero programs")
    first = programs[0]
    steps: List[Step] = []
    total = 0
    for program in programs:
        if program.kind != "solve":
            raise PlanError("only solve programs can be concatenated")
        if (
            program.device_names != first.device_names
            or program.dtype_size != first.dtype_size
            or program.system_size != first.system_size
        ):
            raise PlanError(
                "concatenated programs must share device, dtype, and size"
            )
        base = len(steps)
        for step in program.steps:
            steps.append(
                replace(step, deps=tuple(base + d for d in step.deps))
            )
        total += program.num_systems
    merged = replace(
        first, num_systems=total, steps=tuple(steps)
    )
    return run_default_passes(merged, fuse=fuse)


def _local_fragment(
    steps: List[Step], plan, device: int, stage: str, deps: Tuple[int, ...]
) -> int:
    """Append one local solve fragment; returns its last step's index."""
    steps.extend(
        _solve_steps(
            plan,
            device=device,
            base=len(steps),
            deps=deps,
            stages=(stage, stage, stage),
            marker_stage=stage,
        )
    )
    return len(steps) - 1


def lower_dist_plan(plan, group, dtype_size: int, switch) -> Program:
    """Lower a :class:`DistPlan` to a multi-device ``dist`` program.

    ``switch`` is the group's resolved switch points — the split rows
    schedule re-plans the spike and data solves separately, exactly as
    the pipeline pricing used to.
    """
    if plan.mode == "batch":
        return _lower_batch(plan, group, dtype_size)
    if plan.mode == "approx" and plan.num_devices > 1:
        return _lower_approx(plan, group, dtype_size)
    return _lower_rows(plan, group, dtype_size, switch)


def _lower_rows(plan, group, dtype_size: int, switch) -> Program:
    from ..core.planner import plan_solve

    p = plan.num_devices
    m = plan.num_systems
    label = group.describe()
    names = tuple(d.name for d in group)
    if p == 1:
        steps: List[Step] = []
        _local_fragment(steps, plan.local_plans[0], 0, "local_solve", ())
        return run_default_passes(
            Program(
                kind="dist",
                label=label,
                device_names=(group.device_name,),
                dtype_size=dtype_size,
                num_systems=m,
                system_size=plan.system_size,
                schedule=plan.schedule,
                topology=plan.topology,
                steps=tuple(steps),
            )
        )

    steps = []
    boundary_sends: List[int] = []
    for i, chunk in enumerate(plan.chunk_sizes):
        if plan.schedule == "fused":
            last = _local_fragment(
                steps, plan.local_plans[i], i, "local_solve", ()
            )
            values = _SPIKE_VALUES + _DATA_VALUES
        else:
            spike_plan = plan_solve(group[i], 2 * m, chunk, dtype_size, switch)
            spike_last = _local_fragment(steps, spike_plan, i, "spike_solve", ())
            steps.append(
                Step(
                    op=Transfer(_SPIKE_VALUES, i, 0),
                    device=i,
                    engine="xfer",
                    stage="send_spikes",
                    shape=(m, chunk),
                    deps=(spike_last,),
                    resource="dev0:ingress",
                )
            )
            data_plan = plan_solve(group[i], m, chunk, dtype_size, switch)
            # The data solve waits on the spike *compute*, not the spike
            # message; the device's transfer engine queues the boundary
            # message behind the spike message by resource contention.
            last = _local_fragment(
                steps, data_plan, i, "data_solve", (spike_last,)
            )
            values = _DATA_VALUES
        # Boundary messages physically converge on device 0: serialise
        # them on its ingress link, exactly as batch mode's gather does.
        # This is what the truncated (approx) mode's neighbour-only
        # exchange avoids — its hub-free step change at high device
        # counts comes from here.
        steps.append(
            Step(
                op=Transfer(values, i, 0),
                device=i,
                engine="xfer",
                stage="send_boundary",
                shape=(m, chunk),
                deps=(last,),
                resource="dev0:ingress",
            )
        )
        boundary_sends.append(len(steps) - 1)

    reduced_size = max(2, next_power_of_two(2 * p))
    steps.append(
        Step(
            op=ReducedSolve(reduced_size),
            device=0,
            stage="reduced_solve",
            shape=(m, reduced_size),
            deps=tuple(boundary_sends),
        )
    )
    reduced = len(steps) - 1
    for i, chunk in enumerate(plan.chunk_sizes):
        steps.append(
            Step(
                op=Transfer(_CORRECTION_VALUES, 0, i),
                device=i,
                engine="xfer",
                stage="recv_correction",
                shape=(m, chunk),
                deps=(reduced,),
                resource="dev0:egress",
            )
        )
        steps.append(
            Step(
                op=Reconstruct(),
                device=i,
                stage="reconstruct",
                shape=(m, chunk),
                deps=(len(steps) - 1,),
            )
        )
    return run_default_passes(
        Program(
            kind="dist",
            label=label,
            device_names=names,
            dtype_size=dtype_size,
            num_systems=m,
            system_size=plan.system_size,
            schedule=plan.schedule,
            topology=plan.topology,
            steps=tuple(steps),
        )
    )


def _lower_approx(plan, group, dtype_size: int) -> Program:
    """The truncated-SPIKE program: no reduced system, no hub device.

    Every device runs the same fused 3-RHS local solve as rows mode,
    then each chunk *interface* is one independent 2×2 solve placed on
    the interface's right-hand device, fed by a single
    neighbour-to-neighbour tip transfer from the left. One boundary
    value flows back left for the reconstruction. The critical path is
    local solve + one hop + a 2×2 solve + one hop — constant in the
    device count, which is exactly the step change over rows mode's
    all-to-zero reduced solve at high ``p``.
    """
    p = plan.num_devices
    m = plan.num_systems

    steps: List[Step] = []
    local_last: List[int] = []
    for i in range(p):
        local_last.append(
            _local_fragment(steps, plan.local_plans[i], i, "local_solve", ())
        )
    tip_sends: dict = {}
    for i in range(p - 1):
        steps.append(
            Step(
                op=Transfer(_TIP_VALUES, i, i + 1),
                device=i,
                engine="xfer",
                stage="send_tips",
                shape=(m, plan.chunk_sizes[i]),
                deps=(local_last[i],),
            )
        )
        tip_sends[i] = len(steps) - 1
    interface: dict = {}
    corrections: dict = {}
    for i in range(1, p):
        steps.append(
            Step(
                op=ReducedSolve(2),
                device=i,
                stage="interface_solve",
                shape=(m, 2),
                deps=(local_last[i], tip_sends[i - 1]),
            )
        )
        interface[i] = len(steps) - 1
        steps.append(
            Step(
                op=Transfer(_APPROX_CORRECTION_VALUES, i, i - 1),
                device=i,
                engine="xfer",
                stage="send_correction",
                shape=(m, plan.chunk_sizes[i]),
                deps=(interface[i],),
            )
        )
        corrections[i] = len(steps) - 1
    for i in range(p):
        deps = [local_last[i]]
        if i in interface:
            deps.append(interface[i])
        if i + 1 in corrections:
            deps.append(corrections[i + 1])
        steps.append(
            Step(
                op=Reconstruct(),
                device=i,
                stage="reconstruct",
                shape=(m, plan.chunk_sizes[i]),
                deps=tuple(deps),
            )
        )
    return run_default_passes(
        Program(
            kind="dist",
            label=group.describe(),
            device_names=tuple(d.name for d in group),
            dtype_size=dtype_size,
            num_systems=m,
            system_size=plan.system_size,
            schedule=plan.schedule,
            topology=plan.topology,
            steps=tuple(steps),
        )
    )


def _lower_batch(plan, group, dtype_size: int) -> Program:
    shares = plan.chunk_sizes
    active = len(shares)
    n = plan.system_size
    names = tuple(group[i].name for i in range(active))
    host = 0

    steps: List[Step] = []
    for i, share in enumerate(shares):
        if i == host:
            _local_fragment(steps, plan.local_plans[i], i, "local_solve", ())
            continue
        steps.append(
            Step(
                op=Transfer(4.0 * n, host, i),
                device=i,
                engine="xfer",
                stage="recv_coeffs",
                shape=(share, n),
                deps=(),
                resource=f"dev{host}:egress",
            )
        )
        _local_fragment(
            steps, plan.local_plans[i], i, "local_solve", (len(steps) - 1,)
        )
    prefix = run_default_passes(
        Program(
            kind="dist",
            label=group.describe(),
            device_names=names,
            dtype_size=dtype_size,
            num_systems=plan.num_systems,
            system_size=n,
            schedule=plan.schedule,
            topology=plan.topology,
            steps=tuple(steps),
        )
    )

    # The gather serialises on the host's ingress link in *completion*
    # order. Pricing the scatter+compute prefix with the same engine
    # that will interpret the final program yields exactly the
    # completion times the schedule will see.
    run = Engine.for_group(group).price(prefix)
    last_idx = {}
    for idx, step in enumerate(prefix.steps):
        last_idx[step.device] = idx
    compute_end = {i: run.trace[last_idx[i]].end_ms for i in range(active)}

    final = list(prefix.steps)
    for i in sorted(range(active), key=lambda j: compute_end[j]):
        if i == host:
            continue
        final.append(
            Step(
                op=Transfer(float(n), i, host),
                device=i,
                engine="xfer",
                stage="send_solution",
                shape=(shares[i], n),
                deps=(last_idx[i],),
                resource=f"dev{host}:ingress",
            )
        )
    return run_default_passes(replace(prefix, steps=tuple(final)))
