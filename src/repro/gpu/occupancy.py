"""Occupancy calculation for the simulated GPU.

Given a kernel's per-block resource appetite (threads, shared memory,
registers), compute how many blocks can be resident on one SM, how many
threads that keeps in flight, and how well they hide latency. This is the
simulated twin of NVIDIA's occupancy calculator, extended with the two
hidden latency parameters the cost model needs
(``threads_for_full_utilization`` and ``min_blocks_for_latency``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.errors import ResourceExhaustedError
from .spec import DeviceSpec

__all__ = ["Occupancy", "compute_occupancy", "latency_efficiency"]


@dataclass(frozen=True)
class Occupancy:
    """Residency of one kernel configuration on one SM."""

    resident_blocks: int
    resident_threads: int
    occupancy: float  # resident_threads / max_threads_per_processor
    limited_by: str  # which resource capped residency

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.resident_blocks} blocks / {self.resident_threads} threads "
            f"({self.occupancy:.0%}, limited by {self.limited_by})"
        )


def _warp_padded(threads: int, warp_size: int) -> int:
    """Threads rounded up to a whole number of warps (HW allocation unit)."""
    warps = -(-threads // warp_size)
    return warps * warp_size


def compute_occupancy(
    spec: DeviceSpec,
    threads_per_block: int,
    smem_per_block: int,
    regs_per_thread: int,
) -> Occupancy:
    """Residency of a kernel configuration on ``spec``.

    Raises :class:`ResourceExhaustedError` when even a single block does
    not fit (too many threads, too much shared memory, or too many
    registers) — the simulated equivalent of a CUDA launch failure.
    """
    if threads_per_block < 1:
        raise ResourceExhaustedError("threads_per_block must be >= 1")
    if threads_per_block > spec.max_threads_per_block:
        raise ResourceExhaustedError(
            f"{threads_per_block} threads/block exceeds device limit "
            f"{spec.max_threads_per_block} on {spec.name}"
        )
    if smem_per_block > spec.shared_mem_per_processor:
        raise ResourceExhaustedError(
            f"{smem_per_block} B shared memory/block exceeds "
            f"{spec.shared_mem_per_processor} B on {spec.name}"
        )
    padded = _warp_padded(threads_per_block, spec.warp_size)
    regs_per_block = max(1, regs_per_thread) * padded
    if regs_per_thread > 0 and regs_per_block > spec.registers_per_processor:
        raise ResourceExhaustedError(
            f"{regs_per_block} registers/block exceeds "
            f"{spec.registers_per_processor} on {spec.name}"
        )

    limits = {
        "max_blocks": spec.max_blocks_per_processor,
        "threads": spec.max_threads_per_processor // padded,
        "shared_memory": (
            spec.shared_mem_per_processor // smem_per_block
            if smem_per_block > 0
            else spec.max_blocks_per_processor
        ),
        "registers": (
            spec.registers_per_processor // regs_per_block
            if regs_per_thread > 0
            else spec.max_blocks_per_processor
        ),
    }
    limiter = min(limits, key=lambda k: limits[k])
    blocks = limits[limiter]
    if blocks < 1:
        raise ResourceExhaustedError(
            f"kernel configuration does not fit on {spec.name} "
            f"(limited by {limiter})"
        )
    threads = blocks * padded
    return Occupancy(
        resident_blocks=blocks,
        resident_threads=threads,
        occupancy=threads / spec.max_threads_per_processor,
        limited_by=limiter,
    )


def latency_efficiency(
    spec: DeviceSpec,
    occ: Occupancy,
    active_threads_per_block: int | None = None,
) -> float:
    """Fraction of peak issue rate sustained at this residency.

    Two hidden effects combine multiplicatively with a cap at 1:

    - thread-level: issue stalls are hidden only when roughly
      ``threads_for_full_utilization`` threads are resident and *active*
      (a phase using ``T`` of its block's threads contributes ``T`` per
      resident block);
    - block-level: barrier stalls overlap with other blocks' work only
      when at least ``min_blocks_for_latency`` blocks are resident.
    """
    active = (
        occ.resident_threads
        if active_threads_per_block is None
        else active_threads_per_block * occ.resident_blocks
    )
    thread_eff = min(1.0, active / spec.threads_for_full_utilization)
    block_eff = min(
        1.0,
        (occ.resident_blocks / spec.min_blocks_for_latency)
        ** spec.block_latency_exponent,
    )
    return max(1e-3, thread_eff * block_eff)
