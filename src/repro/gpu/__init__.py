"""Simulated GPU machine model: devices, occupancy, memory, cost, execution."""

from .cost import ComputePhase, CostBreakdown, KernelCost, kernel_time_ms
from .custom import GENERATION_PRESETS, make_custom_spec
from .executor import Device, LaunchRecord, SimReport, SimSession, make_device
from .memory import MemoryTraffic, bus_saturation, strided_access_penalty
from .occupancy import Occupancy, compute_occupancy, latency_efficiency
from .query import DeviceProperties, query_device
from .sharedmem import bank_conflict_factor, check_shared_allocation, shared_access_cycles
from .spec import (
    ARRAYS_PER_EQUATION,
    GEFORCE_8800_GTX,
    GEFORCE_GTX_280,
    GEFORCE_GTX_470,
    PAPER_DEVICES,
    REGISTERS_PER_EQUATION,
    DeviceSpec,
    device_names,
    get_device_spec,
)

__all__ = [
    "make_custom_spec",
    "GENERATION_PRESETS",
    "DeviceSpec",
    "GEFORCE_8800_GTX",
    "GEFORCE_GTX_280",
    "GEFORCE_GTX_470",
    "PAPER_DEVICES",
    "get_device_spec",
    "device_names",
    "ARRAYS_PER_EQUATION",
    "REGISTERS_PER_EQUATION",
    "DeviceProperties",
    "query_device",
    "Occupancy",
    "compute_occupancy",
    "latency_efficiency",
    "MemoryTraffic",
    "strided_access_penalty",
    "bus_saturation",
    "bank_conflict_factor",
    "check_shared_allocation",
    "shared_access_cycles",
    "ComputePhase",
    "KernelCost",
    "CostBreakdown",
    "kernel_time_ms",
    "Device",
    "SimSession",
    "SimReport",
    "LaunchRecord",
    "make_device",
]
