"""Custom device construction — the paper's portability motivation.

The paper's closing argument is that the "larger diversity of manycore
devices (particularly OpenCL-capable devices)" makes hand-tuning
untenable. :func:`make_custom_spec` builds plausible hypothetical parts
from a *generation preset* (which fills in the hidden micro-architecture
parameters a vendor would not document) plus the headline numbers a
datasheet would give — so tests and users can ask "what would the tuner
do on a part with twice the shared memory?" and get a defensible answer.
"""

from __future__ import annotations

from typing import Dict

from ..util.errors import ConfigurationError
from ..util.units import kib
from .spec import DeviceSpec

__all__ = ["GENERATION_PRESETS", "make_custom_spec"]

# Hidden-parameter bundles per micro-architecture generation, matching
# the three shipped parts (see spec.py for the rationale of each field).
GENERATION_PRESETS: Dict[str, dict] = {
    "g80": dict(
        registers_per_processor=8_192,
        max_threads_per_block=512,
        max_threads_per_processor=768,
        max_blocks_per_processor=8,
        cycles_per_warp_instruction=4.0,
        threads_for_full_utilization=128,
        min_blocks_for_latency=1,
        block_latency_exponent=1.0,
        uncoalesced_penalty_cap=16.0,
        misaligned_access_penalty=6.0,
        partition_camping_efficiency=0.45,
        coop_bandwidth_efficiency=0.70,
        kernel_launch_overhead_us=12.0,
        coop_sync_overhead_us=18.0,
        shared_mem_banks=16,
    ),
    "gt200": dict(
        registers_per_processor=16_384,
        max_threads_per_block=512,
        max_threads_per_processor=1_024,
        max_blocks_per_processor=8,
        cycles_per_warp_instruction=4.0,
        threads_for_full_utilization=256,
        min_blocks_for_latency=2,
        block_latency_exponent=1.0,
        uncoalesced_penalty_cap=8.0,
        misaligned_access_penalty=4.0,
        partition_camping_efficiency=0.50,
        coop_bandwidth_efficiency=0.70,
        kernel_launch_overhead_us=8.0,
        coop_sync_overhead_us=12.0,
        shared_mem_banks=16,
    ),
    "fermi": dict(
        registers_per_processor=32_768,
        max_threads_per_block=1_024,
        max_threads_per_processor=1_536,
        max_blocks_per_processor=8,
        cycles_per_warp_instruction=1.0,
        threads_for_full_utilization=256,
        min_blocks_for_latency=2,
        block_latency_exponent=1.5,
        uncoalesced_penalty_cap=4.0,
        misaligned_access_penalty=1.3,
        partition_camping_efficiency=0.25,
        coop_bandwidth_efficiency=0.35,
        kernel_launch_overhead_us=5.0,
        coop_sync_overhead_us=8.0,
        shared_mem_banks=32,
    ),
}


def make_custom_spec(
    name: str,
    *,
    generation: str = "fermi",
    num_processors: int = 16,
    thread_processors: int = 32,
    shared_mem_kb: int = 48,
    bandwidth_gb_s: float = 150.0,
    global_mem_mb: int = 1024,
    clock_mhz: float = 1_200.0,
    **overrides,
) -> DeviceSpec:
    """Build a hypothetical device from datasheet numbers + a preset.

    ``overrides`` may replace any :class:`DeviceSpec` field (including
    hidden ones) after the preset is applied — the knob ablation tests
    use this to isolate single effects.
    """
    try:
        preset = dict(GENERATION_PRESETS[generation.lower()])
    except KeyError:
        raise ConfigurationError(
            f"unknown generation {generation!r}; "
            f"available: {', '.join(GENERATION_PRESETS)}"
        ) from None
    fields = dict(
        name=name,
        global_mem_bytes=global_mem_mb * 1024 * 1024,
        num_processors=num_processors,
        thread_processors=thread_processors,
        shared_mem_per_processor=kib(shared_mem_kb),
        constant_mem_bytes=kib(64),
        max_grid_blocks=65_535,
        clock_mhz=clock_mhz,
        global_bandwidth_gb_s=bandwidth_gb_s,
        # Saturation scales with the part's width, like the shipped specs.
        blocks_to_saturate_bandwidth=max(8, 4 * num_processors),
        partition_camping_min_stride=16,
    )
    fields.update(preset)
    fields.update(overrides)
    return DeviceSpec(**fields)
