"""Simulated GPU device specifications.

A :class:`DeviceSpec` carries two kinds of parameters:

- **Queryable** fields — the subset a real program can read through
  ``cudaGetDeviceProperties`` (the paper's Table II). The machine-query
  tuner sees *only* these, via :class:`repro.gpu.query.DeviceProperties`.
- **Hidden** fields — quantities the paper explicitly notes cannot be
  queried (memory-controller/bus bandwidth behaviour, shared-memory bank
  organisation, the resident-thread count needed to hide latency). The
  cost model uses them; tuners must not. This asymmetry is what makes the
  dynamic self-tuner outperform the static one, exactly as in the paper.

The three shipped devices are the paper's Table I parts. Hidden values
are set from the public micro-architecture of each generation (G80 /
GT200 / GF100) and calibrated so that the *published shapes* of Figures
5–8 emerge from the model; they are data, not logic, and live only here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..util.errors import ConfigurationError, DeviceError
from ..util.units import gb_per_s_to_bytes_per_ms, kib

__all__ = [
    "DeviceSpec",
    "GEFORCE_8800_GTX",
    "GEFORCE_GTX_280",
    "GEFORCE_GTX_470",
    "PAPER_DEVICES",
    "get_device_spec",
    "device_names",
    "REGISTERS_PER_EQUATION",
    "ARRAYS_PER_EQUATION",
]

# The on-chip hybrid kernel keeps four coefficient arrays resident
# (a, b, c, d; the solution overwrites d) ...
ARRAYS_PER_EQUATION = 4
# ... and burns ~32 registers per equation across its working set. This
# constant, with each part's register file, reproduces the paper's maximum
# on-chip sizes (256 / 512 / 1024 for 8800 GTX / GTX 280 / GTX 470).
REGISTERS_PER_EQUATION = 32


@dataclass(frozen=True)
class DeviceSpec:
    """Complete description of a simulated GPU.

    See the module docstring for the queryable/hidden split.
    """

    # ---- queryable (Table II subset) ------------------------------------
    name: str
    global_mem_bytes: int
    num_processors: int  # streaming multiprocessors
    thread_processors: int  # scalar cores per SM
    shared_mem_per_processor: int  # bytes
    registers_per_processor: int  # 32-bit registers per SM
    constant_mem_bytes: int
    max_threads_per_block: int
    max_threads_per_processor: int
    max_blocks_per_processor: int
    max_grid_blocks: int
    warp_size: int = 32
    clock_mhz: float = 1_300.0

    # ---- hidden (cost model only) ----------------------------------------
    # Peak global-memory bandwidth (Table I lists it, but CUDA 3.1 could
    # not query it — the paper calls this out as a static-tuning blind spot).
    global_bandwidth_gb_s: float = 100.0
    # Shared-memory banks and their per-cycle word throughput.
    shared_mem_banks: int = 16
    # Fixed cost of a kernel launch, and the extra cost of the grid-wide
    # synchronisation each cooperative (stage-1) split step requires.
    kernel_launch_overhead_us: float = 8.0
    coop_sync_overhead_us: float = 12.0
    # Effective-bandwidth fraction of the cooperative splitter (scattered
    # three-segment gathers across blocks).
    coop_bandwidth_efficiency: float = 0.45
    # Resident threads per SM needed to fully hide pipeline+memory latency.
    threads_for_full_utilization: int = 128
    # Resident *blocks* per SM needed so barrier stalls overlap with work
    # (Fermi's deeper pipelines want two; earlier parts manage with one),
    # and how sharply performance falls below that count.
    min_blocks_for_latency: int = 1
    block_latency_exponent: float = 1.0
    # Concurrent blocks needed machine-wide to saturate the memory bus.
    blocks_to_saturate_bandwidth: int = 28
    # Partition camping: power-of-two-strided streams (PCR's neighbour
    # reads at large coupling distances) pile onto a single memory
    # partition, cutting sustained bandwidth to this fraction once the
    # stride reaches the threshold below. Fermi's address hashing softens
    # but does not remove it.
    partition_camping_efficiency: float = 1.0
    partition_camping_min_stride: int = 16
    # Worst-case transaction inflation for fully uncoalesced (strided)
    # access; newer parts cache better.
    uncoalesced_penalty_cap: float = 8.0
    # Inflation for *misaligned* sequential streams (PCR's neighbour reads
    # at offset ±s break half-warp alignment). G80's rigid coalescer pays
    # dearly; GT200's segment coalescer less; Fermi's L1 almost nothing.
    misaligned_access_penalty: float = 1.0
    # Sustained-bandwidth multiplier of fully interleaved (SoA) sweeps
    # over the row-major per-system baseline: a warp advancing 32
    # adjacent systems packs and aligns every transaction perfectly,
    # where per-system streams waste segment granularity at system
    # boundaries. Rigid early coalescers gain the most from the
    # re-layout; Fermi's L1 narrows (but does not close) the gap.
    interleaved_coalescing_gain: float = 2.0
    # Issue cost of one warp instruction, in SM cycles (32 / thread_processors
    # on real parts; kept explicit so tests can vary it independently).
    cycles_per_warp_instruction: float = 4.0

    # ---- derived ----------------------------------------------------------

    def __post_init__(self) -> None:
        for fname in (
            "global_mem_bytes",
            "num_processors",
            "thread_processors",
            "shared_mem_per_processor",
            "registers_per_processor",
            "max_threads_per_block",
            "max_threads_per_processor",
            "max_blocks_per_processor",
            "warp_size",
        ):
            if getattr(self, fname) <= 0:
                raise ConfigurationError(f"{fname} must be positive")
        if self.global_bandwidth_gb_s <= 0:
            raise ConfigurationError("global_bandwidth_gb_s must be positive")

    @property
    def bytes_per_ms(self) -> float:
        """Peak global bandwidth in bytes per millisecond."""
        return gb_per_s_to_bytes_per_ms(self.global_bandwidth_gb_s)

    @property
    def total_thread_processors(self) -> int:
        """Scalar cores across the device."""
        return self.num_processors * self.thread_processors

    def max_onchip_system_size(self, dtype_size: int) -> int:
        """Largest power-of-two system solvable inside one processor.

        Bounded by shared-memory storage (four coefficient arrays) and by
        the register file (:data:`REGISTERS_PER_EQUATION` per equation).
        Reproduces the paper's 256 / 512 / 1024 for its three parts in
        both single and double precision.
        """
        if dtype_size not in (4, 8):
            raise DeviceError(f"unsupported dtype size {dtype_size}")
        by_smem = self.shared_mem_per_processor // (ARRAYS_PER_EQUATION * dtype_size)
        by_regs = self.registers_per_processor // REGISTERS_PER_EQUATION
        limit = min(by_smem, by_regs, self.max_threads_per_block * 2)
        if limit < 1:
            raise DeviceError(f"device {self.name} cannot solve any system on-chip")
        # Round down to a power of two.
        return 1 << (int(limit).bit_length() - 1)

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """A copy with selected fields replaced (for ablations/tests)."""
        return replace(self, **kwargs)


GEFORCE_8800_GTX = DeviceSpec(
    name="GeForce 8800 GTX",
    global_mem_bytes=768 * 1024 * 1024,
    num_processors=14,
    thread_processors=8,
    shared_mem_per_processor=kib(16),
    registers_per_processor=8_192,
    constant_mem_bytes=kib(64),
    max_threads_per_block=512,
    max_threads_per_processor=768,
    max_blocks_per_processor=8,
    max_grid_blocks=65_535,
    clock_mhz=1_350.0,
    global_bandwidth_gb_s=57.6,
    shared_mem_banks=16,
    kernel_launch_overhead_us=12.0,
    coop_sync_overhead_us=18.0,
    coop_bandwidth_efficiency=0.70,
    threads_for_full_utilization=128,
    min_blocks_for_latency=1,
    block_latency_exponent=1.0,
    blocks_to_saturate_bandwidth=14,
    partition_camping_efficiency=0.45,
    partition_camping_min_stride=16,
    uncoalesced_penalty_cap=16.0,  # G80: one transaction per thread
    misaligned_access_penalty=6.0,  # G80: misaligned = uncoalesced
    interleaved_coalescing_gain=2.8,  # rigid coalescer: SoA pays off most
    cycles_per_warp_instruction=4.0,
)

GEFORCE_GTX_280 = DeviceSpec(
    name="GeForce GTX 280",
    global_mem_bytes=1024 * 1024 * 1024,
    num_processors=30,
    thread_processors=8,
    shared_mem_per_processor=kib(16),
    registers_per_processor=16_384,
    constant_mem_bytes=kib(64),
    max_threads_per_block=512,
    max_threads_per_processor=1_024,
    max_blocks_per_processor=8,
    max_grid_blocks=65_535,
    clock_mhz=1_296.0,
    global_bandwidth_gb_s=141.7,
    shared_mem_banks=16,
    kernel_launch_overhead_us=8.0,
    coop_sync_overhead_us=12.0,
    coop_bandwidth_efficiency=0.70,
    threads_for_full_utilization=256,
    min_blocks_for_latency=2,
    block_latency_exponent=1.0,
    blocks_to_saturate_bandwidth=60,
    partition_camping_efficiency=0.50,
    partition_camping_min_stride=16,
    uncoalesced_penalty_cap=8.0,  # GT200: 32-byte segment coalescer
    misaligned_access_penalty=4.0,  # GT200: 32-byte segment re-fetches
    interleaved_coalescing_gain=2.2,  # segment coalescer still wastes refills
    cycles_per_warp_instruction=4.0,
)

GEFORCE_GTX_470 = DeviceSpec(
    name="GeForce GTX 470",
    global_mem_bytes=1280 * 1024 * 1024,
    num_processors=14,
    thread_processors=32,
    shared_mem_per_processor=kib(48),
    registers_per_processor=32_768,
    constant_mem_bytes=kib(64),
    max_threads_per_block=1_024,
    max_threads_per_processor=1_536,
    max_blocks_per_processor=8,
    max_grid_blocks=65_535,
    clock_mhz=1_215.0,
    global_bandwidth_gb_s=133.9,
    shared_mem_banks=32,
    kernel_launch_overhead_us=5.0,
    coop_sync_overhead_us=8.0,
    coop_bandwidth_efficiency=0.35,
    threads_for_full_utilization=256,
    min_blocks_for_latency=2,  # Fermi wants 2+ resident blocks per SM
    block_latency_exponent=1.5,
    blocks_to_saturate_bandwidth=56,
    partition_camping_efficiency=0.25,
    partition_camping_min_stride=16,
    uncoalesced_penalty_cap=4.0,  # Fermi: L1-cached 128-byte lines
    misaligned_access_penalty=1.3,  # Fermi: L1 absorbs most misalignment
    interleaved_coalescing_gain=1.8,  # L1 narrows but keeps the SoA edge
    cycles_per_warp_instruction=1.0,
)

PAPER_DEVICES: Dict[str, DeviceSpec] = {
    "8800gtx": GEFORCE_8800_GTX,
    "gtx280": GEFORCE_GTX_280,
    "gtx470": GEFORCE_GTX_470,
}

_ALIASES = {
    "geforce 8800 gtx": "8800gtx",
    "8800": "8800gtx",
    "geforce gtx 280": "gtx280",
    "280": "gtx280",
    "geforce gtx 470": "gtx470",
    "470": "gtx470",
}


def device_names() -> Tuple[str, ...]:
    """Canonical names of the shipped paper devices."""
    return tuple(PAPER_DEVICES)


def get_device_spec(name: str) -> DeviceSpec:
    """Look up a shipped device by canonical name or alias."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return PAPER_DEVICES[key]
    except KeyError:
        raise DeviceError(
            f"unknown device {name!r}; available: {', '.join(PAPER_DEVICES)}"
        ) from None
