"""Simulated device execution: sessions, launch records, reports.

A :class:`Device` is an immutable handle on a :class:`DeviceSpec`. Kernels
execute inside a :class:`SimSession`, which plays the role of a CUDA
stream + profiler: every kernel launch submits its :class:`KernelCost`
and the session records the resolved :class:`CostBreakdown` tagged with
the pipeline stage that issued it. A finished session yields a
:class:`SimReport` with totals and per-stage breakdowns — the simulated
equivalent of wall-clock measurements, and the quantity the self-tuner
minimises.

Each :class:`LaunchRecord` also carries a trace span (``start_ms`` /
``end_ms`` on the session's serial timeline) and the issuing device name,
so the instruction-program engine (:mod:`repro.ir.engine`) gets uniform
per-instruction observability without a second bookkeeping path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..util.errors import DeviceError
from .cost import CostBreakdown, KernelCost, kernel_time_ms
from .query import DeviceProperties, query_device
from .spec import DeviceSpec, get_device_spec

__all__ = ["Device", "SimSession", "LaunchRecord", "SimReport", "make_device"]


@dataclass(frozen=True)
class LaunchRecord:
    """One recorded kernel launch."""

    stage: str
    breakdown: CostBreakdown
    # Trace fields (defaulted so records remain cheap to construct by
    # hand in tests): where and when on the session's serial timeline.
    device_name: str = ""
    start_ms: float = 0.0
    end_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        """Simulated duration of this launch."""
        return self.breakdown.total_ms


@dataclass(frozen=True)
class SimReport:
    """Aggregated timing of a finished session."""

    device_name: str
    records: tuple

    @property
    def total_ms(self) -> float:
        """Simulated end-to-end time."""
        return sum(r.total_ms for r in self.records)

    @property
    def num_launches(self) -> int:
        """Total kernel launches issued."""
        return len(self.records)

    def stage_ms(self) -> Dict[str, float]:
        """Per-stage time totals, insertion ordered."""
        out: Dict[str, float] = {}
        for rec in self.records:
            out[rec.stage] = out.get(rec.stage, 0.0) + rec.total_ms
        return out

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"{self.device_name}: {self.total_ms:.3f} ms "
                 f"({self.num_launches} launches)"]
        for stage, ms in self.stage_ms().items():
            share = ms / self.total_ms if self.total_ms else 0.0
            lines.append(f"  {stage:<24s} {ms:9.3f} ms  ({share:5.1%})")
        return "\n".join(lines)


class Device:
    """A simulated GPU. Cheap to construct; holds no mutable state."""

    def __init__(self, spec: DeviceSpec):
        self.spec = spec

    @property
    def name(self) -> str:
        """Marketing name of the simulated part."""
        return self.spec.name

    def properties(self) -> DeviceProperties:
        """The queryable view — all that tuners may read."""
        return query_device(self.spec)

    def max_onchip_system_size(self, dtype_size: int) -> int:
        """Largest power-of-two system one SM can solve on-chip."""
        return self.spec.max_onchip_system_size(dtype_size)

    def session(self) -> "SimSession":
        """Open a fresh execution session (one solve, one tuner probe...)."""
        return SimSession(self)

    def check_fits_global(self, nbytes: int) -> None:
        """Raise when a working set exceeds the device's global memory."""
        if nbytes > self.spec.global_mem_bytes:
            raise DeviceError(
                f"working set of {nbytes} B exceeds global memory "
                f"({self.spec.global_mem_bytes} B) on {self.name}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Device({self.name!r})"


class SimSession:
    """Collects launch records for one simulated execution."""

    def __init__(self, device: Device):
        self.device = device
        self._records: List[LaunchRecord] = []
        self._total_ms = 0.0  # running total; keeps elapsed_ms O(1)
        self._closed = False

    def submit(self, cost: KernelCost, *, stage: str) -> CostBreakdown:
        """Time one kernel launch and record it under ``stage``."""
        if self._closed:
            raise DeviceError("session is closed")
        breakdown = kernel_time_ms(self.device.spec, cost)
        start = self._total_ms
        self._total_ms = start + breakdown.total_ms
        self._records.append(
            LaunchRecord(
                stage=stage,
                breakdown=breakdown,
                device_name=self.device.name,
                start_ms=start,
                end_ms=self._total_ms,
            )
        )
        return breakdown

    @property
    def elapsed_ms(self) -> float:
        """Simulated time so far (accumulated, not re-summed)."""
        return self._total_ms

    @property
    def num_records(self) -> int:
        """Launches recorded so far."""
        return len(self._records)

    def records_since(self, index: int) -> tuple:
        """Launch records appended after position ``index``.

        Lets per-step consumers (the engine's kernel spans) slice their
        window without copying the whole record list each step.
        """
        return tuple(self._records[index:])

    def snapshot(self) -> SimReport:
        """A report of everything recorded so far, without closing.

        Use this to observe a session mid-flight (progress displays,
        engine traces); :meth:`report` remains the terminal call.
        """
        return SimReport(
            device_name=self.device.name, records=tuple(self._records)
        )

    def report(self) -> SimReport:
        """Close the session and return its report."""
        self._closed = True
        return SimReport(
            device_name=self.device.name, records=tuple(self._records)
        )


def make_device(name_or_spec) -> Device:
    """Build a :class:`Device` from a name, spec, or existing device."""
    if isinstance(name_or_spec, Device):
        return name_or_spec
    if isinstance(name_or_spec, DeviceSpec):
        return Device(name_or_spec)
    if isinstance(name_or_spec, str):
        return Device(get_device_spec(name_or_spec))
    raise DeviceError(f"cannot build a device from {type(name_or_spec).__name__}")
