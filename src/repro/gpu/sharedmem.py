"""Shared-memory model: capacity accounting and bank conflicts.

Shared memory is the resource whose size limit motivates the whole paper:
systems larger than one SM's shared memory cannot use the fast on-chip
path and must first be split. This module models

- capacity checks for a kernel's shared allocation,
- bank-conflict multipliers for strided shared access patterns. The
  paper's base kernel is bank-conflict-free (like Göddeke & Strzodka's
  CR), so the production kernels always report factor 1.0 — but the model
  is exercised by tests and by the ablation bench that measures what a
  conflicted layout would cost.
"""

from __future__ import annotations

import math

from ..util.errors import ConfigurationError, ResourceExhaustedError
from .spec import DeviceSpec

__all__ = ["bank_conflict_factor", "check_shared_allocation", "shared_access_cycles"]


def bank_conflict_factor(spec: DeviceSpec, stride_words: int) -> float:
    """Serialisation factor for a warp accessing shared memory at a stride.

    A stride of ``s`` words hits ``banks / gcd(banks, s)`` distinct banks,
    so ``gcd(banks, s)`` accesses serialise per bank. Stride 1 → 1.0
    (conflict-free); stride equal to the bank count → worst case.
    """
    if stride_words < 1:
        raise ConfigurationError(f"stride must be >= 1, got {stride_words}")
    banks = spec.shared_mem_banks
    return float(banks // (banks // math.gcd(banks, stride_words)))


def check_shared_allocation(spec: DeviceSpec, nbytes: int, *, context: str = "kernel") -> int:
    """Validate a per-block shared-memory allocation; returns ``nbytes``.

    Raises :class:`ResourceExhaustedError` when the allocation exceeds the
    SM's shared memory, mirroring a CUDA launch failure.
    """
    if nbytes < 0:
        raise ConfigurationError("shared allocation must be non-negative")
    if nbytes > spec.shared_mem_per_processor:
        raise ResourceExhaustedError(
            f"{context}: {nbytes} B shared memory exceeds "
            f"{spec.shared_mem_per_processor} B on {spec.name}"
        )
    return nbytes


def shared_access_cycles(
    spec: DeviceSpec,
    warp_accesses: float,
    *,
    stride_words: int = 1,
) -> float:
    """SM cycles consumed by ``warp_accesses`` warp-wide shared accesses.

    Each conflict-free warp access retires in one issue slot
    (``cycles_per_warp_instruction``); conflicts multiply it.
    """
    if warp_accesses < 0:
        raise ConfigurationError("warp_accesses must be non-negative")
    factor = bank_conflict_factor(spec, stride_words)
    return warp_accesses * spec.cycles_per_warp_instruction * factor
