"""The queryable device-property view (the paper's Table II).

:class:`DeviceProperties` is the *only* device information the default and
machine-query tuners may consume. It deliberately omits every hidden cost
parameter — memory bandwidth, bank organisation, latency-hiding thread
requirements — mirroring what ``cudaGetDeviceProperties`` exposed circa
CUDA 3.1. The paper's central observation is that tuning from this subset
alone leaves performance on the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import DeviceSpec

__all__ = ["DeviceProperties", "query_device"]


@dataclass(frozen=True)
class DeviceProperties:
    """Queryable properties of a device — and nothing more."""

    name: str
    global_mem_bytes: int
    num_processors: int
    thread_processors: int
    shared_mem_per_processor: int
    registers_per_processor: int
    constant_mem_bytes: int
    max_threads_per_block: int
    max_threads_per_processor: int
    max_blocks_per_processor: int
    max_grid_blocks: int
    warp_size: int
    clock_mhz: float

    def max_onchip_system_size(self, dtype_size: int) -> int:
        """Largest on-chip system size derivable from *queryable* resources.

        This mirrors :meth:`DeviceSpec.max_onchip_system_size`; the formula
        uses only queryable fields, so the machine-query tuner may call it.
        """
        from .spec import ARRAYS_PER_EQUATION, REGISTERS_PER_EQUATION

        by_smem = self.shared_mem_per_processor // (ARRAYS_PER_EQUATION * dtype_size)
        by_regs = self.registers_per_processor // REGISTERS_PER_EQUATION
        limit = max(1, min(by_smem, by_regs, self.max_threads_per_block * 2))
        return 1 << (int(limit).bit_length() - 1)


def query_device(spec: DeviceSpec) -> DeviceProperties:
    """Project a full :class:`DeviceSpec` onto its queryable subset."""
    return DeviceProperties(
        name=spec.name,
        global_mem_bytes=spec.global_mem_bytes,
        num_processors=spec.num_processors,
        thread_processors=spec.thread_processors,
        shared_mem_per_processor=spec.shared_mem_per_processor,
        registers_per_processor=spec.registers_per_processor,
        constant_mem_bytes=spec.constant_mem_bytes,
        max_threads_per_block=spec.max_threads_per_block,
        max_threads_per_processor=spec.max_threads_per_processor,
        max_blocks_per_processor=spec.max_blocks_per_processor,
        max_grid_blocks=spec.max_grid_blocks,
        warp_size=spec.warp_size,
        clock_mhz=spec.clock_mhz,
    )
