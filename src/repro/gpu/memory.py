"""Global-memory traffic model: coalescing and bus saturation.

Two effects dominate global-memory performance in the paper's narrative:

- **Coalescing** — a warp reading contiguous words uses the full bus;
  a warp reading with a stride wastes most of each transaction. The
  inflation factor grows with the stride and saturates at the device's
  ``uncoalesced_penalty_cap`` (one full transaction per useful word).
- **Saturation** — the bus reaches its peak only when enough blocks issue
  requests concurrently (``blocks_to_saturate_bandwidth``); a single
  block, as in stage 2 run on one big system, sees a fraction of peak.
  This is the effect that motivates the cooperative stage 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.errors import ConfigurationError
from .spec import DeviceSpec

__all__ = [
    "strided_access_penalty",
    "bus_saturation",
    "partition_camping_factor",
    "MemoryTraffic",
]


def partition_camping_factor(spec: DeviceSpec, stream_stride_elements: int) -> float:
    """Sustained-bandwidth fraction for power-of-two-strided stream sets.

    PCR's neighbour reads at coupling distance ``s`` form three streams
    offset by exactly ``s`` elements. Once ``s`` reaches the partition
    granularity, all streams camp on the same memory partition and the
    sustained bandwidth collapses to
    ``spec.partition_camping_efficiency``. Below the threshold the factor
    is 1.0.
    """
    if stream_stride_elements < 1:
        raise ConfigurationError(
            f"stride must be >= 1, got {stream_stride_elements}"
        )
    if stream_stride_elements >= spec.partition_camping_min_stride:
        return spec.partition_camping_efficiency
    return 1.0


def strided_access_penalty(spec: DeviceSpec, stride_elements: int) -> float:
    """Transaction-inflation factor for accesses strided by ``stride``.

    Stride 1 (contiguous) costs 1.0; larger strides waste a linearly
    growing share of each transaction until every access is its own
    transaction (``uncoalesced_penalty_cap``).
    """
    if stride_elements < 1:
        raise ConfigurationError(f"stride must be >= 1, got {stride_elements}")
    return float(min(float(stride_elements), spec.uncoalesced_penalty_cap))


def bus_saturation(spec: DeviceSpec, concurrent_blocks: int) -> float:
    """Fraction of peak bandwidth sustained by ``concurrent_blocks``.

    Requests from more blocks than the saturation point do not help
    (the bus is already full); fewer leave controllers idle. The resident
    concurrency, not the grid size, determines this, so callers should
    pass resident blocks × SMs when the grid is larger than one wave.
    """
    if concurrent_blocks < 1:
        return 1.0 / spec.blocks_to_saturate_bandwidth
    return min(1.0, concurrent_blocks / spec.blocks_to_saturate_bandwidth)


@dataclass
class MemoryTraffic:
    """Accumulator for a kernel's global-memory traffic.

    Kernels add coalesced and strided byte counts; the cost model converts
    the total *effective* bytes (after inflation) into milliseconds using
    the device bandwidth and saturation.
    """

    effective_bytes: float = 0.0
    raw_bytes: float = 0.0

    def add(
        self,
        spec: DeviceSpec,
        nbytes: float,
        *,
        stride: int = 1,
        misaligned: bool = False,
    ) -> None:
        """Record ``nbytes`` of traffic accessed at ``stride`` elements.

        ``misaligned`` marks sequential-but-offset streams (PCR neighbour
        reads), which pay the device's misalignment inflation instead of
        the stride penalty.
        """
        if nbytes < 0:
            raise ConfigurationError("traffic bytes must be non-negative")
        self.raw_bytes += nbytes
        factor = (
            spec.misaligned_access_penalty
            if misaligned
            else strided_access_penalty(spec, stride)
        )
        self.effective_bytes += nbytes * factor

    def merged(self, other: "MemoryTraffic") -> "MemoryTraffic":
        """A new accumulator holding the sum of both."""
        return MemoryTraffic(
            effective_bytes=self.effective_bytes + other.effective_bytes,
            raw_bytes=self.raw_bytes + other.raw_bytes,
        )

    def time_ms(self, spec: DeviceSpec, concurrent_blocks: int, *, efficiency: float = 1.0) -> float:
        """Transfer time at the sustained bandwidth for this concurrency."""
        if self.effective_bytes == 0:
            return 0.0
        if not 0.0 < efficiency <= 1.0:
            raise ConfigurationError(f"efficiency must be in (0, 1], got {efficiency}")
        bw = spec.bytes_per_ms * bus_saturation(spec, concurrent_blocks) * efficiency
        return self.effective_bytes / bw
