"""The kernel cost model: compute phases + memory traffic → milliseconds.

A kernel describes itself as a :class:`KernelCost`:

- a launch configuration (grid, block, shared memory, registers),
- one or more :class:`ComputePhase` records (warp-instruction totals with
  the per-block active thread count of that phase — the PCR phase of the
  hybrid kernel keeps every thread busy, the Thomas phase only ``T``),
- a :class:`MemoryTraffic` accumulator,
- launch counts and extra synchronisation overhead (stage 1 pays one
  launch plus a grid sync per split step).

:func:`kernel_time_ms` resolves this against a :class:`DeviceSpec`:

``time = launches * launch_overhead + sync + max(compute, memory)``

with compute throughput scaled by occupancy-dependent latency hiding and
memory throughput by coalescing (already folded into the traffic) and bus
saturation. The overlap of compute and memory inside one kernel is the
usual roofline assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..util.errors import ConfigurationError
from ..util.units import cycles_to_ms, us_to_ms
from .memory import MemoryTraffic
from .occupancy import Occupancy, compute_occupancy, latency_efficiency
from .spec import DeviceSpec

__all__ = ["ComputePhase", "KernelCost", "CostBreakdown", "kernel_time_ms"]


@dataclass(frozen=True)
class ComputePhase:
    """One compute phase of a kernel.

    ``warp_instructions`` is the total over the whole grid (already warp
    granular: a phase where 16 threads of a warp work still issues whole
    warp instructions). ``active_threads_per_block`` drives latency
    hiding; ``None`` means all block threads are active.
    ``smem_stride_words`` models shared-memory bank behaviour of the
    phase's dominant access pattern.
    """

    warp_instructions: float
    active_threads_per_block: Optional[int] = None
    smem_stride_words: int = 1

    def __post_init__(self) -> None:
        if self.warp_instructions < 0:
            raise ConfigurationError("warp_instructions must be non-negative")


@dataclass
class KernelCost:
    """Everything needed to time one kernel (or a fused sequence)."""

    name: str
    grid_blocks: int
    threads_per_block: int
    smem_per_block: int = 0
    regs_per_thread: int = 16
    phases: List[ComputePhase] = field(default_factory=list)
    traffic: MemoryTraffic = field(default_factory=MemoryTraffic)
    launches: int = 1
    extra_sync_us: float = 0.0
    # Stage-1 style kernels gather scattered segments; their sustained
    # bandwidth is a device-specific fraction of peak.
    bandwidth_efficiency: float = 1.0
    # Batched interleaved (SoA) kernels exceed the row-major baseline's
    # sustained bandwidth: every warp transaction is fully packed and
    # aligned, where per-system streams waste segment granularity. The
    # gain is a >= 1 multiplier on effective memory throughput
    # (``DeviceSpec.interleaved_coalescing_gain`` for SoA sweeps); 1.0
    # leaves the classic kernels' pricing untouched.
    coalescing: float = 1.0

    def __post_init__(self) -> None:
        if self.grid_blocks < 1:
            raise ConfigurationError("grid_blocks must be >= 1")
        if self.launches < 1:
            raise ConfigurationError("launches must be >= 1")
        if self.coalescing < 1.0:
            raise ConfigurationError(
                f"coalescing gain must be >= 1, got {self.coalescing}"
            )


@dataclass(frozen=True)
class CostBreakdown:
    """Timing components of one kernel, for reports and tests."""

    name: str
    compute_ms: float
    memory_ms: float
    overhead_ms: float
    occupancy: Occupancy

    @property
    def total_ms(self) -> float:
        """Roofline total: overhead plus the binding resource."""
        return self.overhead_ms + max(self.compute_ms, self.memory_ms)

    @property
    def bound(self) -> str:
        """Which resource binds this kernel ('compute' or 'memory')."""
        return "compute" if self.compute_ms >= self.memory_ms else "memory"


def kernel_time_ms(spec: DeviceSpec, cost: KernelCost) -> CostBreakdown:
    """Resolve a :class:`KernelCost` against a device."""
    from .sharedmem import bank_conflict_factor

    occ = compute_occupancy(
        spec, cost.threads_per_block, cost.smem_per_block, cost.regs_per_thread
    )
    active_sms = min(spec.num_processors, cost.grid_blocks)

    compute_cycles = 0.0
    for phase in cost.phases:
        eff = latency_efficiency(spec, occ, phase.active_threads_per_block)
        conflict = bank_conflict_factor(spec, phase.smem_stride_words)
        cycles = phase.warp_instructions * spec.cycles_per_warp_instruction
        compute_cycles += cycles * conflict / eff
    # Cycles are spent across the active SMs in parallel.
    compute_ms = cycles_to_ms(compute_cycles / max(1, active_sms), spec.clock_mhz)

    concurrent_blocks = min(
        cost.grid_blocks, occ.resident_blocks * spec.num_processors
    )
    memory_ms = cost.traffic.time_ms(
        spec, concurrent_blocks, efficiency=cost.bandwidth_efficiency
    )
    # The coalescing gain scales throughput, not traffic: interleaved
    # SoA kernels move the same bytes through better-packed transactions
    # (it cannot ride the efficiency parameter, which is capped at 1).
    if cost.coalescing != 1.0:
        memory_ms /= cost.coalescing

    overhead_ms = cost.launches * us_to_ms(
        spec.kernel_launch_overhead_us
    ) + us_to_ms(cost.extra_sync_us)
    return CostBreakdown(
        name=cost.name,
        compute_ms=compute_ms,
        memory_ms=memory_ms,
        overhead_ms=overhead_ms,
        occupancy=occ,
    )
