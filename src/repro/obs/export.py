"""Exporters: Chrome ``trace_event`` JSON and the plaintext metrics dump.

The trace exporter emits the Trace Event Format that Perfetto and
``chrome://tracing`` load: a ``traceEvents`` array of complete events
(``ph: "X"``) with microsecond ``ts``/``dur``, plus ``"M"`` metadata
events naming tracks. Simulated devices map to processes (``pid`` =
device index) with two threads each — ``tid`` 0 for the compute engine,
``tid`` 1 for the transfer engine — so a four-device solve renders as
four labelled tracks, transfers overlapping compute exactly as the
scheduler placed them.

Both exporters are byte-deterministic for a deterministic run:
``json.dumps`` with sorted keys and fixed separators, events in
timeline order. The determinism tests diff two runs' files directly.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from .metrics import MetricsRegistry
from .trace import Span

__all__ = [
    "chrome_trace_events",
    "spans_to_trace_events",
    "report_to_trace_events",
    "chrome_trace_json",
    "write_chrome_trace",
    "write_metrics",
]

_MS_TO_US = 1000.0

# Span categories render on the compute thread of their device; Transfer
# instructions and timeline "xfer" events go to the transfer thread.
_COMPUTE_TID = 0
_XFER_TID = 1

_THREAD_NAMES = {_COMPUTE_TID: "compute", _XFER_TID: "xfer"}


def _metadata_events(pids: Dict[int, str]) -> List[dict]:
    events: List[dict] = []
    for pid in sorted(pids):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": pids[pid]},
            }
        )
        for tid, tname in sorted(_THREAD_NAMES.items()):
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": tname},
                }
            )
    return events


def _span_tid(span: Span) -> int:
    if span.category == "instruction" and span.attr("op") == "Transfer":
        return _XFER_TID
    return _COMPUTE_TID


def spans_to_trace_events(
    spans: Sequence[Span], device_names: Sequence[str] = ()
) -> List[dict]:
    """Flatten span trees into complete events, one per span.

    ``device_names[i]`` labels the process for device ``i``; unnamed
    devices fall back to ``device <i>``.
    """
    pids: Dict[int, str] = {}
    events: List[dict] = []
    flat: List[Span] = []
    for root in spans:
        flat.extend(root.walk())
    flat.sort(key=lambda s: (s.start_ms, -s.end_ms, s.device, s.category, s.name))
    for span in flat:
        pid = span.device
        if pid not in pids:
            pids[pid] = (
                device_names[pid]
                if pid < len(device_names)
                else f"device {pid}"
            )
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": _span_tid(span),
                "name": span.name,
                "cat": span.category,
                "ts": span.start_ms * _MS_TO_US,
                "dur": span.duration_ms * _MS_TO_US,
                "args": dict(span.attrs),
            }
        )
    return _metadata_events(pids) + events


def report_to_trace_events(report) -> List[dict]:
    """Events from a :class:`~repro.dist.pipeline.DistReport`.

    One process per device timeline; each :class:`TimelineEvent` becomes
    a complete event on the compute or transfer thread by its ``kind``.
    """
    pids = {tl.index: tl.device_name for tl in report.timelines}
    events: List[dict] = []
    for tl in sorted(report.timelines, key=lambda t: t.index):
        for ev in tl.events:
            events.append(
                {
                    "ph": "X",
                    "pid": tl.index,
                    "tid": _COMPUTE_TID if ev.kind == "compute" else _XFER_TID,
                    "name": ev.label,
                    "cat": ev.kind,
                    "ts": ev.start_ms * _MS_TO_US,
                    "dur": ev.duration_ms * _MS_TO_US,
                    "args": {},
                }
            )
    events.sort(key=lambda e: (e["ts"], -e["dur"], e["pid"], e["tid"]))
    return _metadata_events(pids) + events


def chrome_trace_events(source, device_names: Sequence[str] = ()) -> List[dict]:
    """Dispatch: span sequence or ``DistReport`` → trace events."""
    if hasattr(source, "timelines"):
        return report_to_trace_events(source)
    return spans_to_trace_events(source, device_names)


def chrome_trace_json(events: Iterable[dict]) -> str:
    """Serialise events as a Trace Event Format document (JSON object form)."""
    doc = {"traceEvents": list(events), "displayTimeUnit": "ms"}
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def write_chrome_trace(path, source, device_names: Sequence[str] = ()) -> str:
    """Export ``source`` (spans or a DistReport) to ``path``; returns the JSON."""
    text = chrome_trace_json(chrome_trace_events(source, device_names))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text


def write_metrics(path, registry: MetricsRegistry) -> str:
    """Dump the registry's plaintext exposition to ``path``; returns the text."""
    text = registry.render()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
