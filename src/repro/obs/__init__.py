"""Observability: structured tracing, metrics, and trace export.

The layer has three pieces:

- :mod:`~repro.obs.trace` — the hierarchical :class:`Span` model
  (solve → program → instruction → kernel) and the :class:`Tracer`
  the IR engine and solvers record into; execute and price mode emit
  *equal* span trees for the same program.
- :mod:`~repro.obs.metrics` — the :class:`MetricsRegistry` of labelled
  counters, gauges, and fixed-bucket histograms threaded through the
  service, the distributed solver, the tuning cache, and the fault log;
  its plaintext dump is byte-deterministic.
- :mod:`~repro.obs.export` — exporters: Chrome ``trace_event`` JSON
  (one track per simulated device, loadable in Perfetto) and the
  metrics dump, both behind the ``repro trace`` CLI subcommand.

Everything defaults to off: an uninstalled tracer costs one ``None``
check per hook, and components build a private registry unless handed
a shared one. ``docs/observability.md`` has the span model, the metric
catalogue, and a worked Perfetto example.
"""

from .export import (
    chrome_trace_events,
    chrome_trace_json,
    report_to_trace_events,
    spans_to_trace_events,
    write_chrome_trace,
    write_metrics,
)
from .metrics import (
    DEFAULT_MS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import Span, Tracer, spans_from_report

__all__ = [
    "Counter",
    "DEFAULT_MS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "chrome_trace_json",
    "report_to_trace_events",
    "spans_from_report",
    "spans_to_trace_events",
    "write_chrome_trace",
    "write_metrics",
]
