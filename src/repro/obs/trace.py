"""Hierarchical spans: the one trace model every execution path shares.

A :class:`Span` is one named interval on the simulated clock —
``solve → program → instruction → kernel`` — with a device, a category,
and a flat attribute list. The :class:`Tracer` collects them: the IR
:class:`~repro.ir.Engine` opens a ``program`` span per interpretation
and emits one ``instruction`` child per step (with ``kernel`` children
for the launch records the step issued), while solvers wrap whole runs
in a ``solve`` root. Because spans carry *simulated* milliseconds, the
execute and price interpretations of one program produce **equal** span
trees — the observability analogue of the engine's bit-identical
price/execute contract, and what the parity tests pin.

A ``None`` tracer is the default everywhere; every hook is guarded by
one ``is not None`` check, so untraced runs pay nothing.

Threading: each thread owns its open-span stack (a worker's spans nest
under whatever that worker opened), while the finished-root list is
shared under a lock — concurrent workers trace into one tracer safely.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["Span", "Tracer", "spans_from_report"]


CATEGORIES = ("solve", "program", "instruction", "kernel")


@dataclass(frozen=True)
class Span:
    """One named interval of simulated time, with children."""

    name: str
    category: str  # one of CATEGORIES
    start_ms: float
    end_ms: float
    device: int = 0
    attrs: Tuple[Tuple[str, object], ...] = ()
    children: Tuple["Span", ...] = ()

    @property
    def duration_ms(self) -> float:
        """Length of the span."""
        return self.end_ms - self.start_ms

    def attr(self, key: str, default=None):
        """Look up one attribute by name."""
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict:
        """JSON-able nested rendering (used by tests and exporters)."""
        return {
            "name": self.name,
            "category": self.category,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "device": self.device,
            "attrs": dict(self.attrs),
            "children": [c.as_dict() for c in self.children],
        }


class _OpenSpan:
    """Mutable builder for a span still being traced."""

    __slots__ = ("name", "category", "start_ms", "device", "attrs", "children")

    def __init__(self, name, category, start_ms, device, attrs):
        self.name = name
        self.category = category
        self.start_ms = start_ms
        self.device = device
        self.attrs: List[Tuple[str, object]] = list(attrs)
        self.children: List[Span] = []

    def freeze(self, end_ms: float) -> Span:
        return Span(
            name=self.name,
            category=self.category,
            start_ms=self.start_ms,
            end_ms=end_ms,
            device=self.device,
            attrs=tuple(self.attrs),
            children=tuple(self.children),
        )


class Tracer:
    """Collects span trees from traced executions.

    The builder API is explicit about time because time here is
    *simulated*: callers pass ``start_ms``/``end_ms`` read off the
    session or scheduler clock rather than the wall.

    - :meth:`begin` opens a span (it becomes the current parent on this
      thread) and returns a depth token;
    - :meth:`end` closes the innermost open span;
    - :meth:`leaf` records an already-finished span (optionally with
      pre-built children) under the current parent;
    - :meth:`abort_to` unwinds to a token when an error escapes, so a
      failed run still leaves a well-formed, error-annotated tree.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._roots: List[Span] = []
        self._local = threading.local()

    # -- plumbing ----------------------------------------------------------

    def _stack(self) -> List[_OpenSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _attach(self, span: Span) -> Span:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        return span

    # -- recording ---------------------------------------------------------

    def begin(
        self, name: str, category: str, start_ms: float, device: int = 0, **attrs
    ) -> int:
        """Open a span; returns a token for :meth:`abort_to`."""
        stack = self._stack()
        token = len(stack)
        stack.append(
            _OpenSpan(name, category, start_ms, device, sorted(attrs.items()))
        )
        return token

    def end(self, end_ms: float) -> Span:
        """Close the innermost open span and attach it to its parent."""
        open_span = self._stack().pop()
        return self._attach(open_span.freeze(end_ms))

    def leaf(
        self,
        name: str,
        category: str,
        start_ms: float,
        end_ms: float,
        device: int = 0,
        children: Tuple[Span, ...] = (),
        **attrs,
    ) -> Span:
        """Record one already-finished span under the current parent."""
        return self._attach(
            Span(
                name=name,
                category=category,
                start_ms=start_ms,
                end_ms=end_ms,
                device=device,
                attrs=tuple(sorted(attrs.items())),
                children=tuple(children),
            )
        )

    def annotate(self, **attrs) -> None:
        """Add attributes to the innermost open span."""
        stack = self._stack()
        if stack:
            stack[-1].attrs.extend(sorted(attrs.items()))

    def abort_to(self, token: int, end_ms: float, **attrs) -> None:
        """Unwind open spans down to ``token`` (error escape path).

        Every unwound span is closed at ``end_ms`` and annotated with
        ``attrs`` (conventionally ``error=<type name>``), so a trace of
        a failed run shows where it died instead of dangling.
        """
        stack = self._stack()
        while len(stack) > token:
            open_span = stack.pop()
            open_span.attrs.extend(sorted(attrs.items()))
            self._attach(open_span.freeze(max(end_ms, open_span.start_ms)))

    @property
    def depth(self) -> int:
        """Open spans on the calling thread's stack."""
        return len(self._stack())

    # -- reading -----------------------------------------------------------

    def spans(self) -> Tuple[Span, ...]:
        """Finished root spans, in completion order."""
        with self._lock:
            return tuple(self._roots)

    def clear(self) -> None:
        """Drop every finished root (open spans are untouched)."""
        with self._lock:
            self._roots.clear()


def spans_from_report(report) -> Tuple[Span, ...]:
    """Kernel-level spans of a :class:`~repro.gpu.executor.SimReport`.

    Each launch record becomes one ``kernel`` span on the session's
    serial timeline — the bridge that lets span-based rendering and
    export consume reports produced outside a traced engine run.
    """
    return tuple(
        Span(
            name=rec.breakdown.name,
            category="kernel",
            start_ms=rec.start_ms,
            end_ms=rec.end_ms,
            device=0,
            attrs=(("bound", rec.breakdown.bound), ("stage", rec.stage)),
        )
        for rec in report.records
    )
