"""Deterministic metrics: counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` is threaded through the stack — the
service, the distributed solver, the tuning cache, the fault log — and
every instrument it hands out is labelled (Prometheus-flavoured names,
``snake_case`` with a ``repro_`` prefix and a unit suffix). The full
catalogue, with exact names and label sets, lives in
``docs/observability.md``.

Determinism is a design constraint, not an accident: histogram bucket
boundaries are fixed at registration (never adaptive), label sets render
sorted, and :meth:`MetricsRegistry.render` emits instruments in sorted
order — so two runs with the same seed produce byte-identical dumps,
and the dumps can be golden-tested like any other artefact.

Everything locks around plain dict/float updates, so instruments are
safe to bump from service worker threads.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_MS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

# Simulated-milliseconds buckets: decade steps with a 1-2-5 ladder, wide
# enough for microsecond kernels and multi-second distributed makespans.
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0,
    10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
)

# Power-of-two buckets for counts of systems/requests per merged group.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
)


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: Tuple[Tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class _Instrument:
    """Shared labelled-series bookkeeping for all instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        self.name = name
        self.help_text = help_text
        self._lock = lock
        self._series: Dict[Tuple[Tuple[str, str], ...], object] = {}

    def _render_series(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help_text}", f"# TYPE {self.name} {self.kind}"]
        lines.extend(self._render_series())
        return lines


def _num(value: float) -> str:
    """Render a sample without float noise (integers stay integers)."""
    f = float(value)
    return str(int(f)) if f == int(f) else repr(f)


class Counter(_Instrument):
    """Monotonically increasing count, per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum across every label set."""
        with self._lock:
            return float(sum(self._series.values()))

    def _render_series(self) -> List[str]:
        with self._lock:
            items = sorted(self._series.items())
        return [f"{self.name}{_format_labels(k)} {_num(v)}" for k, v in items]


class Gauge(_Instrument):
    """Point-in-time value, per label set."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def _render_series(self) -> List[str]:
        with self._lock:
            items = sorted(self._series.items())
        return [f"{self.name}{_format_labels(k)} {_num(v)}" for k, v in items]


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "total")

    def __init__(self, num_buckets: int):
        self.bucket_counts = [0] * num_buckets
        self.count = 0
        self.total = 0.0


class Histogram(_Instrument):
    """Distribution over fixed, registration-time bucket boundaries.

    ``observe(v)`` increments the first bucket whose upper bound is
    >= v (cumulative rendering adds the implicit ``+Inf`` bucket), so
    the exported shape depends only on the observed values — never on
    observation order or count.
    """

    kind = "histogram"

    def __init__(self, name, help_text, lock, buckets: Sequence[float]):
        super().__init__(name, help_text, lock)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("histogram buckets must be sorted and distinct")
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            idx = bisect.bisect_left(self.buckets, float(value))
            if idx < len(self.buckets):
                series.bucket_counts[idx] += 1
            series.count += 1
            series.total += float(value)

    def count(self, **labels) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series else 0

    def sum(self, **labels) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.total if series else 0.0

    def quantile(self, q: float, **labels) -> float:
        """Bucket-resolution quantile estimate: the upper bound of the
        first bucket whose cumulative count covers ``q`` of the samples.

        Values above the last finite bound are attributed to that bound
        (a floor on the true quantile), matching the usual treatment of
        the implicit ``+Inf`` bucket. Returns 0.0 for an empty series.
        The estimate is deterministic — a pure function of the recorded
        counts — so autoscaler decisions driven by it replay exactly.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return 0.0
            rank = q * series.count
            cumulative = 0
            for bound, in_bucket in zip(self.buckets, series.bucket_counts):
                cumulative += in_bucket
                if cumulative >= rank:
                    return bound
            return self.buckets[-1]

    def _render_series(self) -> List[str]:
        with self._lock:
            items = sorted(self._series.items())
            lines: List[str] = []
            for key, series in items:
                cumulative = 0
                for bound, in_bucket in zip(self.buckets, series.bucket_counts):
                    cumulative += in_bucket
                    bkey = key + (("le", _num(bound)),)
                    lines.append(f"{self.name}_bucket{_format_labels(bkey)} {cumulative}")
                bkey = key + (("le", "+Inf"),)
                lines.append(f"{self.name}_bucket{_format_labels(bkey)} {series.count}")
                lines.append(f"{self.name}_sum{_format_labels(key)} {_num(series.total)}")
                lines.append(f"{self.name}_count{_format_labels(key)} {series.count}")
        return lines


class MetricsRegistry:
    """Names instruments, hands them out, renders them deterministically.

    Registration is idempotent: asking twice for the same name returns
    the same instrument (with a kind check), so independently constructed
    components can share a registry without coordinating.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _register(self, cls, name: str, help_text: str, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            inst = cls(name, help_text, threading.Lock(), **kwargs)
            self._instruments[name] = inst
            return inst

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help_text, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._instruments))

    def render(self) -> str:
        """Plaintext exposition dump: instruments sorted by name.

        Byte-deterministic for a deterministic run — pin it in goldens.
        """
        with self._lock:
            instruments = [self._instruments[n] for n in sorted(self._instruments)]
        lines: List[str] = []
        for inst in instruments:
            lines.extend(inst.render())
        return "\n".join(lines) + ("\n" if lines else "")
