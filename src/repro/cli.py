"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``devices``
    List the simulated GPUs and their (queryable) capabilities.
``solve``
    Build a workload, solve it, and print the plan and timing report.
``plan``
    Lower a workload's plan to its instruction program and print the
    program plus per-instruction priced timings — no data is touched.
``tune``
    Run the self-tuner for a device and print the chosen switch points
    and the search-trace summary.
``figures``
    Regenerate every table/figure of the paper's evaluation into a
    directory of text files.
``serve-bench``
    Batched solve service vs sequential one-shot solves.
``dist-bench``
    Strong/weak scaling of the multi-device distributed solver, with a
    per-device pipeline timeline.
``trace``
    Run a workload with tracing on and export a Chrome trace-event JSON
    (loadable in Perfetto) plus a plaintext metrics dump.
``chaos``
    Run a seeded fault-injection campaign over the service and the
    distributed solver and audit the headline guarantee: a verified
    solution or a typed error, never a silently wrong answer.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


from .algorithms import max_residual
from .analysis import (
    ascii_table,
    figure5,
    figure6,
    figure7,
    figure8,
    headline_savings,
    table1,
    table2,
)
from .core import MultiStageSolver, SelfTuner
from .gpu import device_names, make_device
from .systems import PAPER_WORKLOAD_NAMES, build_workload
from .util.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Auto-tuned multi-stage tridiagonal solving on a simulated GPU",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list the simulated GPUs")

    p_solve = sub.add_parser("solve", help="solve a workload and report timing")
    p_solve.add_argument(
        "--device", default="gtx470", help="device name (default: gtx470)"
    )
    p_solve.add_argument(
        "--workload",
        default="1Kx1K",
        help=f"one of {', '.join(PAPER_WORKLOAD_NAMES)} or MxN (e.g. 64x2048)",
    )
    p_solve.add_argument(
        "--tuning",
        default="dynamic",
        choices=["default", "static", "dynamic"],
        help="parameter-selection strategy",
    )
    p_solve.add_argument(
        "--scale",
        type=int,
        default=8,
        help="shrink the workload's data by this factor for host-side "
        "numerics (timing is always for the nominal shape; default 8)",
    )
    p_solve.add_argument("--seed", type=int, default=0)

    p_plan = sub.add_parser(
        "plan",
        help="print a workload's lowered instruction program and priced "
        "per-instruction costs (data-free)",
    )
    p_plan.add_argument(
        "--device", default="gtx470", help="device name (default: gtx470)"
    )
    p_plan.add_argument(
        "--workload",
        default="1Kx1K",
        help=f"one of {', '.join(PAPER_WORKLOAD_NAMES)} or MxN (e.g. 64x2048)",
    )
    p_plan.add_argument(
        "--tuning",
        default="static",
        choices=["default", "static", "dynamic"],
        help="parameter-selection strategy (default static)",
    )
    p_plan.add_argument(
        "--dtype-size", type=int, default=8, choices=[4, 8], dest="dtype_size"
    )
    p_plan.add_argument(
        "--devices",
        type=int,
        default=1,
        help="device count: 1 plans a single-device solve, more plans a "
        "distributed one (default 1)",
    )
    p_plan.add_argument(
        "--link",
        default="pcie3",
        help="interconnect link preset for --devices > 1 (default pcie3)",
    )
    p_plan.add_argument(
        "--topology", default="all_to_all", choices=["all_to_all", "ring"]
    )
    p_plan.add_argument(
        "--mode",
        default="auto",
        choices=["auto", "rows", "batch", "approx"],
        help="distributed decomposition mode for --devices > 1",
    )
    p_plan.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative-residual tolerance: also print the numerical-"
        "safety governor's decision (approx vs exact) with estimated "
        "and measured residuals for a sampled workload",
    )
    p_plan.add_argument(
        "--fuse",
        action="store_true",
        help="also run the batched-fusion pass and show the program "
        "before/after as a per-instruction diff (single-device only)",
    )

    p_tune = sub.add_parser("tune", help="run the self-tuner for a device")
    p_tune.add_argument("--device", default="gtx470")
    p_tune.add_argument(
        "--dtype-size", type=int, default=4, choices=[4, 8], dest="dtype_size"
    )
    p_tune.add_argument(
        "--cache", default=None, help="JSON file to persist tuned parameters"
    )

    p_fig = sub.add_parser(
        "figures", help="regenerate every table/figure of the evaluation"
    )
    p_fig.add_argument(
        "--out", default="results", help="output directory (default: results/)"
    )
    p_fig.add_argument(
        "--csv",
        action="store_true",
        help="also write machine-readable CSV next to each text table",
    )

    sub.add_parser(
        "verify",
        help="regenerate the evaluation and grade every paper claim",
    )

    p_serve = sub.add_parser(
        "serve-bench",
        help="batched solve service vs sequential one-shot solves",
    )
    p_serve.add_argument("--device", default="gtx470")
    p_serve.add_argument(
        "--requests",
        type=int,
        default=1000,
        help="number of mixed-shape solve requests (default 1000)",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--tuning",
        default="static",
        choices=["default", "static", "dynamic"],
        help="switch-point strategy shared by both sides (default static)",
    )
    p_serve.add_argument(
        "--max-workers", type=int, default=4, dest="max_workers"
    )
    p_serve.add_argument(
        "--max-group-systems",
        type=int,
        default=None,
        dest="max_group_systems",
        help="cap on merged-batch height (default unlimited)",
    )
    p_serve.add_argument(
        "--async",
        action="store_true",
        dest="async_tier",
        help="benchmark the async serving tier against the thread-pool "
        "service under simulated load (admission + sharded caches)",
    )
    p_serve.add_argument(
        "--tenants",
        type=int,
        default=4,
        help="tenant count for the simulated request mix (default 4; "
        "tenant0 sends half the traffic)",
    )
    p_serve.add_argument(
        "--autoscale",
        action="store_true",
        help="let the async tier's autoscaler resize the fleet "
        "(otherwise it keeps --max-workers workers)",
    )
    p_serve.add_argument(
        "--rate",
        type=float,
        default=12_000.0,
        help="simulated arrival rate in requests/s (default 12000)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=8,
        help="cache-lock stripes in the async tier (default 8)",
    )
    p_serve.add_argument(
        "--json",
        default=None,
        dest="json_out",
        help="also write the async-tier comparison as JSON to this path",
    )

    p_dist = sub.add_parser(
        "dist-bench",
        help="strong/weak scaling of the multi-device distributed solver",
    )
    p_dist.add_argument("--device", default="gtx470")
    p_dist.add_argument(
        "--link",
        default="pcie3",
        help="interconnect link preset (pcie3/pcie4/nvlink2)",
    )
    p_dist.add_argument(
        "--topology", default="all_to_all", choices=["all_to_all", "ring"]
    )
    p_dist.add_argument(
        "--devices",
        default="1,2,4,8,16",
        help="comma-separated device counts to sweep (default 1,2,4,8,16)",
    )
    p_dist.add_argument(
        "--systems", type=int, default=1, help="system count m (default 1)"
    )
    p_dist.add_argument(
        "--size",
        type=int,
        default=1 << 22,
        help="system size n for strong scaling (default 2^22)",
    )
    p_dist.add_argument(
        "--weak-size",
        type=int,
        default=1 << 19,
        dest="weak_size",
        help="per-device system size for weak scaling (default 2^19)",
    )
    p_dist.add_argument(
        "--dtype-size", type=int, default=8, choices=[4, 8], dest="dtype_size"
    )
    p_dist.add_argument(
        "--mode", default="auto", choices=["auto", "rows", "batch", "approx"]
    )
    p_dist.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative-residual tolerance: admits the truncated-SPIKE "
        "approx mode into auto pricing when the dominance estimate "
        "says it is safe",
    )
    p_dist.add_argument(
        "--json",
        default=None,
        dest="json_out",
        help="also write the sweep as JSON to this path",
    )

    p_trace = sub.add_parser(
        "trace",
        help="run a workload traced and export a Chrome trace-event "
        "JSON (Perfetto) plus a plaintext metrics dump",
    )
    p_trace.add_argument("--device", default="gtx470")
    p_trace.add_argument(
        "--n",
        default="2**20",
        help="system size; accepts 2**20 / 1<<20 / plain integers "
        "(default 2**20)",
    )
    p_trace.add_argument(
        "--systems",
        default="1",
        help="system count (same syntax as --n; default 1)",
    )
    p_trace.add_argument(
        "--devices",
        type=int,
        default=1,
        help="device count: 1 traces a single-device solve, more traces "
        "a distributed one (default 1)",
    )
    p_trace.add_argument(
        "--link", default="pcie3", help="interconnect preset (default pcie3)"
    )
    p_trace.add_argument(
        "--topology", default="all_to_all", choices=["all_to_all", "ring"]
    )
    p_trace.add_argument(
        "--mode", default="auto", choices=["auto", "rows", "batch"]
    )
    p_trace.add_argument(
        "--tuning",
        default="static",
        choices=["default", "static", "dynamic"],
        help="switch-point strategy (default static)",
    )
    p_trace.add_argument(
        "--dtype-size", type=int, default=8, choices=[4, 8], dest="dtype_size"
    )
    p_trace.add_argument(
        "--out",
        default="results/trace",
        help="output prefix: writes <out>.trace.json and <out>.metrics.txt "
        "(default results/trace)",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign with recovery auditing",
    )
    p_chaos.add_argument(
        "--seeds",
        default="0",
        help="comma-separated campaign seeds (default 0)",
    )
    p_chaos.add_argument(
        "--requests",
        type=int,
        default=200,
        help="service-phase requests per seed (default 200)",
    )
    p_chaos.add_argument(
        "--transient-p",
        type=float,
        default=0.02,
        dest="transient_p",
        help="per-instruction transient fault probability (default 0.02)",
    )
    p_chaos.add_argument(
        "--dist-devices",
        type=int,
        default=4,
        dest="dist_devices",
        help="device count for the failover phase (default 4)",
    )
    p_chaos.add_argument(
        "--numerics-requests",
        type=int,
        default=64,
        dest="numerics_requests",
        help="adversarial-numerics phase requests per seed; 0 skips "
        "the phase (default 64)",
    )
    p_chaos.add_argument(
        "--tolerance",
        type=float,
        default=1e-8,
        help="relative-residual tolerance the numerics phase asks the "
        "governor to enforce (default 1e-8)",
    )
    p_chaos.add_argument(
        "--json",
        default=None,
        dest="json_out",
        help="also write the campaign reports as JSON to this path",
    )
    return parser


def _cmd_devices(out) -> int:
    rows = []
    for name in device_names():
        device = make_device(name)
        props = device.properties()
        rows.append(
            [
                name,
                props.name,
                props.num_processors,
                props.thread_processors,
                props.shared_mem_per_processor // 1024,
                device.max_onchip_system_size(4),
            ]
        )
    out.write(
        ascii_table(
            ["id", "name", "SMs", "cores/SM", "smem KB", "on-chip max (f32)"],
            rows,
            title="Simulated devices",
        )
        + "\n"
    )
    return 0


def _parse_workload(text: str):
    if text in PAPER_WORKLOAD_NAMES:
        return text
    try:
        m, n = text.lower().split("x")
        from .systems import Workload

        return Workload(text, int(m), int(n))
    except Exception:
        raise ReproError(
            f"workload must be one of {PAPER_WORKLOAD_NAMES} or MxN, got {text!r}"
        ) from None


def _cmd_solve(args, out) -> int:
    workload = _parse_workload(args.workload)
    batch = build_workload(workload, seed=args.seed, scale=args.scale)
    solver = MultiStageSolver(args.device, args.tuning)
    result = solver.solve(batch)
    out.write(f"device   : {solver.device.name}\n")
    out.write(f"workload : {batch.num_systems} x {batch.system_size} "
              f"(scale 1/{args.scale})\n")
    out.write(f"tuning   : {result.switch_points.describe()}\n")
    out.write(result.plan.describe() + "\n")
    out.write(result.report.describe() + "\n")
    out.write(f"residual : {max_residual(batch, result.x):.3e}\n")
    return 0


def _program_diff(before, after) -> str:
    """Per-instruction diff of two programs (``-`` removed, ``+`` added).

    Steps are compared by their one-line rendering; the common
    prefix/suffix (the ``Pad``/``Unpad`` brackets fusion keeps) stays
    unmarked and everything between shows as removed-then-added.
    """
    old = [s.describe() for s in before.steps]
    new = [s.describe() for s in after.steps]
    prefix = 0
    while prefix < min(len(old), len(new)) and old[prefix] == new[prefix]:
        prefix += 1
    suffix = 0
    while (
        suffix < min(len(old), len(new)) - prefix
        and old[len(old) - 1 - suffix] == new[len(new) - 1 - suffix]
    ):
        suffix += 1
    lines = [f"  {line}" for line in old[:prefix]]
    lines += [f"- {line}" for line in old[prefix:len(old) - suffix]]
    lines += [f"+ {line}" for line in new[prefix:len(new) - suffix]]
    lines += [f"  {line}" for line in old[len(old) - suffix:]]
    return "\n".join(lines)


def _cmd_plan(args, out) -> int:
    from .systems import Workload, paper_workloads

    workload = _parse_workload(args.workload)
    if isinstance(workload, str):
        workload = next(w for w in paper_workloads() if w.name == workload)
    assert isinstance(workload, Workload)
    m, n = workload.shape

    if args.fuse and args.devices > 1:
        out.write("--fuse applies to single-device solve programs only\n")
        return 2
    if args.devices > 1:
        from .dist import DistributedSolver
        from .ir import Engine

        solver = DistributedSolver(
            args.devices,
            args.tuning,
            device=args.device,
            link=args.link,
            topology=args.topology,
            mode=args.mode,
        )
        plan, _ = solver.price(
            m, n, args.dtype_size, tolerance=args.tolerance
        )
        program = solver.lower(plan, args.dtype_size)
        run = Engine.for_group(solver.group).price(program)
        out.write(f"group    : {solver.group.describe()}\n")
    else:
        from .core import simulate_plan
        from .ir import Engine

        device = make_device(args.device)
        solver = MultiStageSolver(device, args.tuning)
        switch = solver.switch_points_for(m, n, args.dtype_size)
        plan, _ = simulate_plan(device, m, n, args.dtype_size, switch)
        program = plan.lower(device, args.dtype_size)
        run = Engine.for_device(device).price(program)
        out.write(f"device   : {device.name}\n")
        out.write(f"tuning   : {switch.describe()}\n")
    out.write(f"workload : {m} x {n} (dtype {args.dtype_size}B)\n")
    out.write(plan.describe() + "\n\n")
    out.write(program.describe() + "\n\n")

    def priced_steps(prog, prog_run) -> None:
        out.write("priced steps:\n")
        spans = {t.index: t for t in prog_run.trace}
        for i, step in enumerate(prog.steps):
            t = spans.get(i)
            timing = (
                f"{t.start_ms:10.4f} .. {t.end_ms:10.4f} ms"
                f"  ({t.end_ms - t.start_ms:8.4f})"
                if t is not None
                else " " * 28 + "(free)"
            )
            out.write(f"  [{i:>2d}] {timing}  {step.describe()}\n")

    priced_steps(program, run)
    out.write(f"total    : {run.report.total_ms:.4f} ms\n")
    if args.tolerance is not None:
        out.write("\n" + _governor_report(args, m, n) + "\n")
    if args.fuse:
        fused = plan.lower(device, args.dtype_size, fuse=True)
        fused_run = Engine.for_device(device).price(fused)
        out.write("\nbatched fusion diff (unfused -> fused):\n")
        out.write(_program_diff(program, fused) + "\n\n")
        priced_steps(fused, fused_run)
        out.write(f"fused    : {fused_run.report.total_ms:.4f} ms")
        if fused_run.report.total_ms > 0:
            out.write(
                f"  ({run.report.total_ms / fused_run.report.total_ms:.2f}x"
                " vs unfused)"
            )
        out.write("\n")
    return 0


def _governor_report(args, m, n) -> str:
    """The numerical-safety governor's verdict for the planned workload.

    The dominance estimate and the truncated-vs-exact residuals are
    measured on a sampled dominant batch (capped so ``repro plan`` stays
    instant on huge workloads); the truncation bound uses the *real*
    per-device chunk size, which is what the decision depends on.
    """
    from .algorithms.spike import spike_solve, truncated_spike_solve
    from .numerics import Governor
    from .systems import generators

    if args.devices <= 1:
        return (
            "governor: exact — single device has no truncated-SPIKE "
            f"path; a governed solve at tolerance {args.tolerance:.1e} "
            "residual-verifies the staged result"
        )
    sample_m, sample_n = min(m, 4), min(n, 1 << 14)
    sample = generators.random_dominant(sample_m, sample_n, rng=0)
    chunk_rows = max(2, n // args.devices)
    decision = Governor().decide(sample, args.tolerance, chunk_rows)
    parts = max(2, min(args.devices, sample_n // 2))
    approx_x = truncated_spike_solve(sample, partitions=parts)
    exact_x = spike_solve(sample, partitions=parts)
    return (
        decision.describe()
        + "\n"
        + f"          measured on a {sample_m}x{sample_n} dominant "
        f"sample ({parts} partitions): approx residual "
        f"{sample.residual(approx_x).max():.3e}, exact residual "
        f"{sample.residual(exact_x).max():.3e}"
    )


def _cmd_tune(args, out) -> int:
    device = make_device(args.device)
    tuner = SelfTuner(cache=args.cache)
    sp = tuner.switch_points(device, 0, 0, args.dtype_size)
    out.write(f"device: {device.name}\n")
    out.write(f"tuned : {sp.describe()}\n")
    trace = tuner.last_trace
    if trace is None:
        out.write("search: served from cache (0 probes)\n")
    else:
        out.write(
            f"search: {trace.num_evaluations} model probes "
            f"(stage3 {trace.evaluations_for('stage3_size')}, "
            f"thomas {trace.evaluations_for('thomas_switch')}, "
            f"crossover {trace.evaluations_for('variant_crossover')}, "
            f"stage1 {trace.evaluations_for('stage1_target')})\n"
        )
    return 0


def _cmd_serve_bench(args, out) -> int:
    import time

    from .service import BatchSolveService
    from .systems import generators

    if args.async_tier:
        return _cmd_serve_bench_async(args, out)

    requests = generators.mixed_requests(args.requests, rng=args.seed)
    service = BatchSolveService(
        args.device,
        args.tuning,
        max_workers=args.max_workers,
        max_pending=max(args.requests, 1),
        max_group_systems=args.max_group_systems,
    )
    with service:
        t0 = time.perf_counter()
        results = service.solve_many(requests)
        service_wall_s = time.perf_counter() - t0
        batched_ms = service.stats.snapshot()["simulated_ms"]

        # The one-shot baseline: same switch points, one solve per request.
        solvers = {}
        sequential_ms = 0.0
        t0 = time.perf_counter()
        for batch in requests:
            solver = solvers.get(batch.dtype.str)
            if solver is None:
                solver = solvers[batch.dtype.str] = MultiStageSolver(
                    args.device, service.switch_points_for(dtype=batch.dtype)
                )
            sequential_ms += solver.solve(batch).report.total_ms
        sequential_wall_s = time.perf_counter() - t0

    completed = len(results)
    snap = service.stats.snapshot()
    out.write(f"device    : {service.default_device.name}\n")
    out.write(
        f"workload  : {completed} mixed-shape requests "
        f"({snap['systems_solved']} systems, seed {args.seed})\n"
    )
    out.write(
        f"service   : {snap['groups_executed']} merged solves, "
        f"{snap['mean_group_requests']:.1f} requests/group, "
        f"{batched_ms:.3f} simulated ms ({service_wall_s:.2f} s wall)\n"
    )
    out.write(
        f"sequential: {args.requests} one-shot solves, "
        f"{sequential_ms:.3f} simulated ms ({sequential_wall_s:.2f} s wall)\n"
    )
    speedup = sequential_ms / max(batched_ms, 1e-300)
    out.write(f"speedup   : {speedup:.1f}x simulated throughput\n")
    cache = snap.get("tuning_cache")
    if cache is not None:
        lookups = cache["hits"] + cache["misses"]
        rate = cache["hits"] / lookups if lookups else 0.0
        out.write(
            f"tuning    : {cache['hits']} cache hits / {lookups} lookups "
            f"({rate:.0%} hit rate, {cache['entries']} entries)\n"
        )
    out.write("metrics   :\n")
    for line in service.metrics.render().splitlines():
        # The full histogram bucket series is for machines; the summary
        # lines tell the story.
        if not line.startswith("#") and "_bucket" not in line:
            out.write(f"  {line}\n")
    return 0


def _cmd_serve_bench_async(args, out) -> int:
    """The serving-tier shoot-out: thread-pool vs async under load.

    Both tiers replay the same seeded Poisson stream through the
    deterministic serving simulation (real admission/autoscaler policy
    objects on a simulated clock), so 100k requests take seconds and
    the p50/p99/shed numbers are reproducible bit-for-bit.
    """
    import json

    from .serve import ServingSimConfig, compare_tiers

    config = ServingSimConfig(
        requests=args.requests,
        rate_per_s=args.rate,
        seed=args.seed,
        tenants=args.tenants,
        device=args.device,
        workers=args.max_workers,
        shards=args.shards,
        autoscale=args.autoscale,
    )
    reports = compare_tiers(config)
    out.write(
        f"workload  : {config.requests} simulated mixed requests at "
        f"{config.rate_per_s:g}/s, {config.tenants} tenants, "
        f"seed {config.seed}\n"
    )
    for tier in ("threadpool", "async"):
        report = reports[tier]
        label = (
            f"async x{report.max_workers}"
            if tier == "async" and args.autoscale
            else f"{tier} x{report.max_workers}"
        )
        out.write(
            f"{tier:10s}: p50 {report.latency_p50_ms:.1f} ms, "
            f"p99 {report.latency_p99_ms:.1f} ms, "
            f"shed {report.shed_rate:.1%} "
            f"({label}, {report.groups} merged solves)\n"
        )
        for reason, count in sorted(report.shed.items()):
            out.write(f"            shed[{reason}] = {count}\n")
        if report.autoscaler_actions:
            actions = ", ".join(
                f"{action}={count}"
                for action, count in sorted(report.autoscaler_actions.items())
            )
            out.write(f"            autoscaler: {actions}\n")
    tp, ac = reports["threadpool"], reports["async"]
    if ac.latency_p99_ms > 0:
        out.write(
            f"p99 ratio : {tp.latency_p99_ms / ac.latency_p99_ms:.1f}x "
            "(threadpool / async)\n"
        )
    if args.json_out:
        payload = {
            "config": {
                "requests": config.requests,
                "rate_per_s": config.rate_per_s,
                "seed": config.seed,
                "tenants": config.tenants,
                "device": config.device,
                "workers": config.workers,
                "max_workers": config.max_workers,
                "shards": config.shards,
                "autoscale": config.autoscale,
                "dispatch_ms": config.dispatch_ms,
                "lookup_ms": config.lookup_ms,
            },
            "tiers": {t: r.as_dict() for t, r in reports.items()},
        }
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        out.write(f"wrote {args.json_out}\n")
    return 0


def _cmd_dist_bench(args, out) -> int:
    import json

    from .analysis import ascii_table
    from .dist import DistributedSolver, make_device_group, render_dist_timeline

    try:
        counts = sorted(
            {int(c) for c in args.devices.split(",") if c.strip()}
        )
    except ValueError:
        raise ReproError(
            f"--devices must be comma-separated counts, got {args.devices!r}"
        ) from None
    if not counts:
        raise ReproError("--devices named no device counts")

    def sweep(title, shape_for):
        """Price one scaling sweep; returns (rows for the table, records)."""
        rows, records = [], []
        base_ms = None
        last_report = None
        for count in counts:
            m, n = shape_for(count)
            group = make_device_group(
                args.device, count, args.link, args.topology
            )
            solver = DistributedSolver(group, mode=args.mode)
            plan, report = solver.price(
                m, n, args.dtype_size, tolerance=args.tolerance
            )
            if base_ms is None:
                base_ms = report.total_ms
            speedup = base_ms / max(report.total_ms, 1e-300)
            record = {
                "devices": count,
                "num_systems": m,
                "system_size": n,
                "mode": plan.mode,
                "schedule": plan.schedule,
                "total_ms": report.total_ms,
                "speedup_vs_first": speedup,
                "efficiency": speedup * counts[0] / count,
                "compute_utilization": report.compute_utilization,
            }
            records.append(record)
            rows.append(
                [
                    count,
                    f"{m} x {n}",
                    plan.mode,
                    plan.schedule,
                    f"{report.total_ms:.3f}",
                    f"{speedup:.2f}x",
                    f"{record['efficiency']:.0%}",
                ]
            )
            last_report = report
        out.write(
            ascii_table(
                ["devices", "workload", "mode", "schedule", "ms", "speedup", "eff"],
                rows,
                title=title,
            )
            + "\n"
        )
        return records, last_report

    link_label = f"{args.topology}:{args.link}"
    out.write(
        f"device group: {args.device} over {link_label}, "
        f"dtype size {args.dtype_size}\n"
    )
    strong, strong_report = sweep(
        f"Strong scaling ({args.systems} x {args.size})",
        lambda count: (args.systems, args.size),
    )
    weak, _ = sweep(
        f"Weak scaling ({args.systems} x {args.weak_size} per device)",
        lambda count: (args.systems, args.weak_size * count),
    )
    out.write("\nPer-device timeline at the largest sweep point:\n")
    out.write(render_dist_timeline(strong_report) + "\n")

    if args.json_out:
        payload = {
            "device": args.device,
            "link": args.link,
            "topology": args.topology,
            "mode": args.mode,
            "dtype_size": args.dtype_size,
            "strong": strong,
            "weak": weak,
        }
        os.makedirs(os.path.dirname(args.json_out) or ".", exist_ok=True)
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        out.write(f"wrote {args.json_out}\n")
    return 0


def _parse_count(text: str) -> int:
    """Parse a size argument: plain int, ``a**b``, ``a<<b``, or ``a*b``."""
    t = str(text).strip().replace(" ", "")
    try:
        if "**" in t:
            a, b = t.split("**", 1)
            return int(a) ** int(b)
        if "<<" in t:
            a, b = t.split("<<", 1)
            return int(a) << int(b)
        if "*" in t:
            a, b = t.split("*", 1)
            return int(a) * int(b)
        return int(t)
    except ValueError:
        raise ReproError(
            f"expected an integer (or a**b / a<<b / a*b), got {text!r}"
        ) from None


def _cmd_trace(args, out) -> int:
    from .obs import (
        MetricsRegistry,
        Tracer,
        chrome_trace_json,
        spans_to_trace_events,
        write_metrics,
    )

    n = _parse_count(args.n)
    m = _parse_count(args.systems)
    tracer = Tracer()
    registry = MetricsRegistry()

    if args.devices > 1:
        from .dist import DistributedSolver
        from .ir import Engine

        solver = DistributedSolver(
            args.devices,
            args.tuning,
            device=args.device,
            link=args.link,
            topology=args.topology,
            mode=args.mode,
            metrics=registry,
        )
        solver.cache.attach_metrics(registry)
        plan, _ = solver.price(m, n, args.dtype_size)
        program = solver.lower(plan, args.dtype_size)
        engine = Engine.for_group(solver.group)
        engine.tracer = tracer
        run = engine.price(program)
        solver.record_metrics(plan, run.report, args.dtype_size)
        names = program.device_names
        target = solver.group.describe()
    else:
        from .core import simulate_plan
        from .ir import Engine

        device = make_device(args.device)
        solver = MultiStageSolver(device, args.tuning)
        solver.device.check_fits_global(5 * m * n * args.dtype_size)
        switch = solver.switch_points_for(m, n, args.dtype_size)
        plan, _ = simulate_plan(device, m, n, args.dtype_size, switch)
        program = plan.lower(device, args.dtype_size)
        engine = Engine.for_device(device)
        engine.tracer = tracer
        run = engine.price(program)
        names = program.device_names or (device.name,)
        target = device.name

    spans = tracer.spans()
    events = spans_to_trace_events(spans, names)
    trace_path = f"{args.out}.trace.json"
    metrics_path = f"{args.out}.metrics.txt"
    os.makedirs(os.path.dirname(trace_path) or ".", exist_ok=True)
    with open(trace_path, "w", encoding="utf-8") as fh:
        fh.write(chrome_trace_json(events))
    write_metrics(metrics_path, registry)

    num_spans = sum(1 for root in spans for _ in root.walk())
    out.write(f"target   : {target}\n")
    out.write(f"workload : {m} x {n} (dtype {args.dtype_size}B)\n")
    out.write(
        f"trace    : {num_spans} spans, {len(events)} trace events, "
        f"{run.report.total_ms:.4f} ms simulated\n"
    )
    out.write(f"wrote {trace_path} (open in https://ui.perfetto.dev)\n")
    out.write(f"wrote {metrics_path}\n")
    return 0


def _cmd_chaos(args, out) -> int:
    import json

    from .faults import run_sweep

    try:
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    except ValueError:
        raise ReproError(
            f"--seeds must be comma-separated integers, got {args.seeds!r}"
        ) from None
    if not seeds:
        raise ReproError("--seeds named no seeds")
    reports = run_sweep(
        seeds,
        requests=args.requests,
        transient_p=args.transient_p,
        dist_devices=args.dist_devices,
        numerics_requests=args.numerics_requests,
        tolerance=args.tolerance,
    )
    for report in reports:
        out.write(report.describe() + "\n")
    clean = all(r.clean for r in reports)
    out.write(
        f"verdict: {'CLEAN' if clean else 'VIOLATED'} across "
        f"{len(reports)} seed(s) — every request returned a verified "
        "solution or a typed error\n"
    )
    if args.json_out:
        payload = {
            "requests_per_seed": args.requests,
            "transient_p": args.transient_p,
            "dist_devices": args.dist_devices,
            "numerics_requests": args.numerics_requests,
            "tolerance": args.tolerance,
            "clean": clean,
            "campaigns": [r.as_dict() for r in reports],
        }
        os.makedirs(os.path.dirname(args.json_out) or ".", exist_ok=True)
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        out.write(f"wrote {args.json_out}\n")
    return 0 if clean else 1


def _cmd_figures(args, out) -> int:
    os.makedirs(args.out, exist_ok=True)

    def save(name: str, text: str) -> None:
        path = os.path.join(args.out, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        out.write(f"wrote {path}\n")

    save(
        "table1",
        ascii_table(
            ["name", "bandwidth GB/s", "smem KB", "SMs", "cores/SM"],
            [
                [
                    r["name"],
                    r["global_memory_bandwidth_gb_s"],
                    r["shared_memory_kb"],
                    r["num_processors"],
                    r["thread_processors_per_processor"],
                ]
                for r in table1()
            ],
            title="Table I",
        ),
    )
    save(
        "table2",
        ascii_table(["parameter", "description", "value"], table2(), title="Table II"),
    )

    def save_csv(name: str, text: str) -> None:
        if not getattr(args, "csv", False):
            return
        path = os.path.join(args.out, f"{name}.csv")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        out.write(f"wrote {path}\n")

    from .analysis import (
        figure5_to_csv,
        figure6_to_csv,
        figure7_to_csv,
        figure8_to_csv,
    )

    f5 = figure5()
    sizes = sorted(next(iter(f5.values())))
    save(
        "figure5",
        ascii_table(
            ["device"] + [str(s) for s in sizes],
            [[d] + [row[s] for s in sizes] for d, row in f5.items()],
            title="Figure 5 (relative perf vs stage-2->3 switch)",
        ),
    )
    save_csv("figure5", figure5_to_csv(f5))
    f6 = figure6()
    switches = sorted(next(iter(f6.values())))
    save(
        "figure6",
        ascii_table(
            ["device"] + [str(s) for s in switches],
            [[d] + [row[s] for s in switches] for d, row in f6.items()],
            title="Figure 6 (relative perf vs stage-3->4 switch)",
        ),
    )
    save_csv("figure6", figure6_to_csv(f6))
    f7 = figure7()
    rows = []
    for device, cells in f7.items():
        for wl, cell in cells.items():
            rows.append(
                [device, wl, cell.untuned_ms, cell.static_normalized, cell.dynamic_normalized]
            )
    agg = headline_savings(f7)
    save(
        "figure7",
        ascii_table(
            ["device", "workload", "untuned ms", "static norm", "dynamic norm"],
            rows,
            title="Figure 7 (tuning strategies)",
        )
        + f"\nstatic avg savings {agg['static_avg_savings']:.1%}, "
        f"dynamic avg savings {agg['dynamic_avg_savings']:.1%}",
    )
    save_csv("figure7", figure7_to_csv(f7))
    f8 = figure8()
    save(
        "figure8",
        ascii_table(
            ["workload", "GPU ms", "CPU ms", "speedup"],
            [[wl, v["gpu_ms"], v["cpu_ms"], v["speedup"]] for wl, v in f8.items()],
            title="Figure 8 (GPU vs CPU)",
        ),
    )
    save_csv("figure8", figure8_to_csv(f8))
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "devices":
            return _cmd_devices(out)
        if args.command == "solve":
            return _cmd_solve(args, out)
        if args.command == "plan":
            return _cmd_plan(args, out)
        if args.command == "tune":
            return _cmd_tune(args, out)
        if args.command == "figures":
            return _cmd_figures(args, out)
        if args.command == "serve-bench":
            return _cmd_serve_bench(args, out)
        if args.command == "dist-bench":
            return _cmd_dist_bench(args, out)
        if args.command == "trace":
            return _cmd_trace(args, out)
        if args.command == "chaos":
            return _cmd_chaos(args, out)
        if args.command == "verify":
            from .analysis import render_scorecard, reproduction_scorecard

            checks = reproduction_scorecard()
            out.write(render_scorecard(checks) + "\n")
            return 0 if all(c.passed for c in checks) else 1
        raise AssertionError("unreachable")
    except ReproError as exc:
        out.write(f"error: {exc}\n")
        return 2
