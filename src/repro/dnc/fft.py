"""Auto-tuned multi-stage radix-2 FFT — the paper's other §VI-C example.

The paper names the FFT alongside merge sort as a divide-and-conquer
algorithm that "will benefit from this strategy". A Cooley-Tukey radix-2
FFT over ``N = 2^L`` points runs ``L`` butterfly stages whose pair
distance doubles each stage:

- stages with distance < *tile* execute inside shared memory, one block
  per tile (the base kernel);
- the remaining stages are global passes, each a full sweep whose
  power-of-two strides hit the same partition-camping behaviour as the
  tridiagonal splitter.

The *tile size* is the on-chip/off-chip switch point, traded exactly
like the sorter's: bigger tiles amortise more stages on-chip but cut
residency. It is tuned with the shared hill-climb machinery.

Numerics are an exact radix-2 DIT implementation validated against
``numpy.fft.fft``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.tuning.search import pow2_hill_climb
from ..gpu.cost import ComputePhase, KernelCost
from ..gpu.executor import Device, SimReport, make_device
from ..gpu.memory import MemoryTraffic, partition_camping_factor
from ..kernels.base import warps_for
from ..util.errors import ConfigurationError
from ..util.validation import ilog2, is_power_of_two

__all__ = ["MultiStageFFT", "FftResult", "radix2_fft"]

# Issue-slot estimate per butterfly (complex mul + add/sub + twiddle).
_BUTTERFLY_INSTR = 10.0
_COMPLEX_BYTES = 16  # complex128


def _bit_reverse_indices(n: int) -> np.ndarray:
    """Bit-reversal permutation for length ``n = 2^L``."""
    bits = ilog2(n)
    idx = np.arange(n, dtype=np.uint64)
    out = np.zeros(n, dtype=np.uint64)
    for _ in range(bits):
        out = (out << np.uint64(1)) | (idx & np.uint64(1))
        idx >>= np.uint64(1)
    return out.astype(np.intp)


def radix2_fft(values: np.ndarray) -> np.ndarray:
    """Exact iterative radix-2 DIT FFT (power-of-two length)."""
    x = np.asarray(values, dtype=np.complex128)
    n = x.shape[0]
    if not is_power_of_two(n):
        raise ConfigurationError(f"radix-2 FFT needs a power-of-two length, got {n}")
    if n == 1:
        return x.copy()
    x = x[_bit_reverse_indices(n)]
    size = 2
    while size <= n:
        half = size // 2
        w = np.exp(-2j * np.pi * np.arange(half) / size)
        x = x.reshape(-1, size)
        even = x[:, :half]
        odd = x[:, half:] * w
        x = np.concatenate([even + odd, even - odd], axis=1).reshape(-1)
        size *= 2
    return x


@dataclass(frozen=True)
class FftResult:
    """Transformed data plus simulated timing and the plan used."""

    values: np.ndarray
    report: SimReport
    tile_size: int
    onchip_stages: int
    global_passes: int

    @property
    def simulated_ms(self) -> float:
        """Simulated end-to-end time."""
        return self.report.total_ms


class MultiStageFFT:
    """Radix-2 FFT staged across shared and global memory."""

    def __init__(self, device, *, tile_size: Optional[int] = None):
        self.device: Device = make_device(device)
        if tile_size is not None and not is_power_of_two(tile_size):
            raise ConfigurationError("tile_size must be a power of two")
        self._fixed_tile = tile_size
        self._tuned: Dict[int, int] = {}

    # -- capacity ---------------------------------------------------------

    def max_tile_points(self) -> int:
        """Largest power-of-two tile shared memory holds (double-buffered
        complex data)."""
        spec = self.device.spec
        limit = spec.shared_mem_per_processor // (2 * _COMPLEX_BYTES)
        return 1 << (int(limit).bit_length() - 1)

    # -- cost model ----------------------------------------------------------

    def _tile_fft_cost(self, total: int, tile: int) -> KernelCost:
        spec = self.device.spec
        num_tiles = total // tile
        stages = ilog2(tile)
        threads = min(max(32, tile // 2), spec.max_threads_per_block)
        instr = num_tiles * warps_for(max(32, tile // 2)) * stages * _BUTTERFLY_INSTR * (tile / 2.0) / max(32, tile // 2)
        traffic = MemoryTraffic()
        traffic.add(spec, 2.0 * total * _COMPLEX_BYTES, stride=1)
        return KernelCost(
            name=f"fft_tile[{tile}]",
            grid_blocks=num_tiles,
            threads_per_block=threads,
            smem_per_block=2 * tile * _COMPLEX_BYTES,
            regs_per_thread=24,
            phases=[ComputePhase(instr)],
            traffic=traffic,
        )

    def _global_pass_cost(self, total: int, distance: int) -> KernelCost:
        spec = self.device.spec
        threads = min(256, spec.max_threads_per_block)
        grid = max(1, -(-total // (threads * 2)))
        instr = warps_for(total // 2) * _BUTTERFLY_INSTR
        traffic = MemoryTraffic()
        traffic.add(spec, 2.0 * total * _COMPLEX_BYTES, stride=1)
        return KernelCost(
            name=f"fft_global[dist={distance}]",
            grid_blocks=min(grid, spec.max_grid_blocks),
            threads_per_block=threads,
            regs_per_thread=24,
            phases=[ComputePhase(instr)],
            traffic=traffic,
            bandwidth_efficiency=partition_camping_factor(spec, distance),
        )

    def _price(self, total: int, tile: int) -> float:
        session = self.device.session()
        session.submit(self._tile_fft_cost(total, tile), stage="tile_fft")
        distance = tile
        while distance < total:
            session.submit(
                self._global_pass_cost(total, distance), stage="global_fft"
            )
            distance *= 2
        return session.report().total_ms

    # -- tuning ----------------------------------------------------------------

    def tuned_tile(self) -> int:
        """Tile size for this device, hill-climbed on first use."""
        if self._fixed_tile is not None:
            return self._fixed_tile
        key = id(self.device.spec)
        if key not in self._tuned:
            max_tile = self.max_tile_points()
            ref_total = max_tile * max(256, 16 * self.device.spec.num_processors)
            tile, _ = pow2_hill_climb(
                lambda t: self._price(ref_total, t),
                seed=max_tile,
                lo=64,
                hi=max_tile,
            )
            self._tuned[key] = tile
        return self._tuned[key]

    # -- transform ------------------------------------------------------------------

    def fft(self, values: np.ndarray) -> FftResult:
        """Transform a power-of-two-length 1-D array (exact numerics)."""
        values = np.asarray(values)
        if values.ndim != 1:
            raise ConfigurationError("fft takes 1-D arrays")
        n = values.shape[0]
        if not is_power_of_two(n) or n < 2:
            raise ConfigurationError(
                f"length must be a power of two >= 2, got {n}"
            )
        tile = min(self.tuned_tile(), n)

        session = self.device.session()
        session.submit(self._tile_fft_cost(n, tile), stage="tile_fft")
        passes = 0
        distance = tile
        while distance < n:
            session.submit(self._global_pass_cost(n, distance), stage="global_fft")
            distance *= 2
            passes += 1

        out = radix2_fft(values)
        return FftResult(
            values=out,
            report=session.report(),
            tile_size=tile,
            onchip_stages=ilog2(tile),
            global_passes=passes,
        )
