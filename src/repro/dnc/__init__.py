"""Divide-and-conquer generalisation of the multi-stage strategy (§VI-C)."""

from .fft import FftResult, MultiStageFFT, radix2_fft
from .mergesort import MultiStageSorter, SortResult, merge_sorted_runs

__all__ = [
    "MultiStageSorter",
    "SortResult",
    "merge_sorted_runs",
    "MultiStageFFT",
    "FftResult",
    "radix2_fft",
]
