"""Auto-tuned multi-stage merge sort — the paper's §VI-C generalisation.

The paper argues its strategy transfers to divide-and-conquer algorithms
at large: bottom-up merge sort "faces the same issues as our tridiagonal
solver: a shift from solving many independent chunks within a single
processor's shared memory to solving many independent chunks that do not
fit within shared memory, and a second shift from solving enough chunks
to fill the machine to solving fewer, larger chunks that do not fill the
machine."

:class:`MultiStageSorter` realises that mapping on the same machine
model:

- **base kernel** — sort tiles in shared memory (bitonic network:
  O(t log² t) compare-exchanges per tile); the *tile size* is the
  stage-2→3 analogue, limited by shared memory and traded against merge
  passes;
- **independent merges** — each block merges one pair of runs in global
  memory (one launch per pass, a full data sweep each); good while there
  are enough pairs to fill the machine;
- **cooperative merges** — once runs outnumber the pairs the machine
  needs, blocks cooperate on single merges (Hagerup-Rüb style
  partitioning), paying a per-pass partition/sync overhead but keeping
  the memory bus busy; the *cooperative threshold* is the stage-1→2
  analogue.

Both switch points are tuned with the same seeded power-of-two hill
climbs the tridiagonal self-tuner uses, and the numerics (NumPy tile
sorts + stable two-way merges) are exact: the result equals
``np.sort``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.tuning.search import pow2_hill_climb
from ..gpu.cost import ComputePhase, KernelCost
from ..gpu.executor import Device, SimReport, make_device
from ..gpu.memory import MemoryTraffic
from ..kernels.base import dtype_size, warps_for
from ..util.errors import ConfigurationError
from ..util.validation import ilog2, is_power_of_two, next_power_of_two

__all__ = ["MultiStageSorter", "SortResult", "merge_sorted_runs"]

# Compare-exchange issue cost (compare + conditional swap + smem traffic).
_BITONIC_INSTR_PER_CE = 6.0
# Per-element merge cost in global memory (read, compare, write).
_MERGE_INSTR_PER_ELEM = 4.0
# Extra fraction of a cooperative pass spent on partition searches.
_COOP_PARTITION_OVERHEAD = 0.3


def merge_sorted_runs(values: np.ndarray, run_length: int) -> np.ndarray:
    """Stable pairwise merge: runs of ``run_length`` become ``2x`` runs.

    Vectorised per pair via ``searchsorted`` rank arithmetic (elements of
    the left run precede equal elements of the right run).
    """
    n = values.shape[0]
    if n % (2 * run_length) != 0:
        raise ConfigurationError(
            f"array length {n} is not a multiple of 2*run_length"
        )
    pairs = values.reshape(-1, 2, run_length)
    left, right = pairs[:, 0, :], pairs[:, 1, :]
    out = np.empty((pairs.shape[0], 2 * run_length), dtype=values.dtype)
    for p in range(pairs.shape[0]):
        a, b = left[p], right[p]
        pos_a = np.arange(run_length) + np.searchsorted(b, a, side="left")
        pos_b = np.arange(run_length) + np.searchsorted(a, b, side="right")
        out[p, pos_a] = a
        out[p, pos_b] = b
    return out.reshape(n)


@dataclass(frozen=True)
class SortResult:
    """Sorted output plus simulated timing and the plan used."""

    values: np.ndarray
    report: SimReport
    tile_size: int
    coop_threshold: int
    independent_passes: int
    cooperative_passes: int

    @property
    def simulated_ms(self) -> float:
        """Simulated end-to-end time."""
        return self.report.total_ms


class MultiStageSorter:
    """Bottom-up merge sort with auto-tuned switch points."""

    def __init__(
        self,
        device,
        *,
        tile_size: Optional[int] = None,
        coop_threshold: Optional[int] = None,
    ):
        self.device: Device = make_device(device)
        for name, val in (("tile_size", tile_size), ("coop_threshold", coop_threshold)):
            if val is not None and not is_power_of_two(val):
                raise ConfigurationError(f"{name} must be a power of two")
        self._fixed_tile = tile_size
        self._fixed_coop = coop_threshold
        self._tuned: Dict[int, Tuple[int, int]] = {}

    # -- capacity ---------------------------------------------------------

    def max_tile_elements(self, dsize: int) -> int:
        """Largest power-of-two tile a shared memory can hold (key +
        payload buffers, double-buffered)."""
        spec = self.device.spec
        limit = spec.shared_mem_per_processor // (2 * dsize)
        return 1 << (int(limit).bit_length() - 1)

    # -- cost model ----------------------------------------------------------

    def _tile_sort_cost(self, total: int, tile: int, dsize: int) -> KernelCost:
        spec = self.device.spec
        num_tiles = total // tile
        stages = ilog2(tile)
        ce_per_tile = (tile / 2.0) * stages * (stages + 1) / 2.0
        threads = min(max(32, tile // 2), spec.max_threads_per_block)
        instr = num_tiles * (ce_per_tile / 32.0) * _BITONIC_INSTR_PER_CE * 32 / threads * warps_for(threads)
        traffic = MemoryTraffic()
        traffic.add(spec, 2.0 * total * dsize, stride=1)  # read + write
        return KernelCost(
            name=f"bitonic_tile_sort[{tile}]",
            grid_blocks=num_tiles,
            threads_per_block=threads,
            smem_per_block=2 * tile * dsize,
            regs_per_thread=16,
            phases=[ComputePhase(instr)],
            traffic=traffic,
        )

    def _merge_pass_cost(
        self, total: int, num_pairs: int, dsize: int, cooperative: bool
    ) -> KernelCost:
        spec = self.device.spec
        threads = min(256, spec.max_threads_per_block)
        traffic = MemoryTraffic()
        traffic.add(spec, 2.0 * total * dsize, stride=1)
        instr = warps_for(total) * _MERGE_INSTR_PER_ELEM
        if cooperative:
            grid = max(1, -(-total // (threads * 4)))
            instr *= 1.0 + _COOP_PARTITION_OVERHEAD
            return KernelCost(
                name="coop_merge_pass",
                grid_blocks=min(grid, spec.max_grid_blocks),
                threads_per_block=threads,
                regs_per_thread=24,
                phases=[ComputePhase(instr)],
                traffic=traffic,
                extra_sync_us=spec.coop_sync_overhead_us,
                bandwidth_efficiency=spec.coop_bandwidth_efficiency,
            )
        return KernelCost(
            name="independent_merge_pass",
            grid_blocks=max(1, num_pairs),
            threads_per_block=threads,
            regs_per_thread=24,
            phases=[ComputePhase(instr)],
            traffic=traffic,
        )

    def _price(self, total: int, tile: int, coop_threshold: int, dsize: int) -> float:
        session = self.device.session()
        session.submit(self._tile_sort_cost(total, tile, dsize), stage="tile_sort")
        runs = total // tile
        while runs > 1:
            pairs = runs // 2
            cooperative = pairs < coop_threshold
            session.submit(
                self._merge_pass_cost(total, pairs, dsize, cooperative),
                stage="coop_merge" if cooperative else "merge",
            )
            runs = pairs
        return session.report().total_ms

    # -- tuning ----------------------------------------------------------------

    def tuned_parameters(self, dsize: int) -> Tuple[int, int]:
        """(tile_size, coop_threshold) for this device, tuned on first use."""
        if self._fixed_tile is not None and self._fixed_coop is not None:
            return self._fixed_tile, self._fixed_coop
        if dsize not in self._tuned:
            spec = self.device.spec
            max_tile = self.max_tile_elements(dsize)
            ref_total = max_tile * max(256, 16 * spec.num_processors)

            tile, _ = pow2_hill_climb(
                lambda t: self._price(ref_total, t, 2 * spec.num_processors, dsize),
                seed=min(1024, max_tile),
                lo=64,
                hi=max_tile,
            )
            coop, _ = pow2_hill_climb(
                lambda c: self._price(ref_total, tile, c, dsize),
                seed=next_power_of_two(2 * spec.num_processors),
                lo=1,
                hi=1024,
            )
            self._tuned[dsize] = (tile, coop)
        tile, coop = self._tuned[dsize]
        if self._fixed_tile is not None:
            tile = self._fixed_tile
        if self._fixed_coop is not None:
            coop = self._fixed_coop
        return tile, coop

    # -- sorting ------------------------------------------------------------------

    def sort(self, values: np.ndarray) -> SortResult:
        """Sort a 1-D array; exact numerics plus simulated timing."""
        values = np.ascontiguousarray(values)
        if values.ndim != 1:
            raise ConfigurationError("sorter takes 1-D arrays")
        n = values.shape[0]
        if n == 0:
            return SortResult(values.copy(), self.device.session().report(), 0, 0, 0, 0)
        dsize = dtype_size(values.dtype)
        tile, coop_threshold = self.tuned_parameters(dsize)

        # Pad to a power-of-two multiple of the tile with +inf sentinels.
        padded_n = max(next_power_of_two(n), tile)
        work = np.full(padded_n, np.inf, dtype=np.float64)
        work[:n] = values.astype(np.float64)
        tile = min(tile, padded_n)

        session = self.device.session()
        session.submit(
            self._tile_sort_cost(padded_n, tile, dsize), stage="tile_sort"
        )
        work = np.sort(work.reshape(-1, tile), axis=1).reshape(padded_n)

        runs = padded_n // tile
        run_length = tile
        independent = cooperative = 0
        while runs > 1:
            pairs = runs // 2
            is_coop = pairs < coop_threshold
            session.submit(
                self._merge_pass_cost(padded_n, pairs, dsize, is_coop),
                stage="coop_merge" if is_coop else "merge",
            )
            work = merge_sorted_runs(work, run_length)
            run_length *= 2
            runs = pairs
            if is_coop:
                cooperative += 1
            else:
                independent += 1

        out = work[:n].astype(values.dtype)
        return SortResult(
            values=out,
            report=session.report(),
            tile_size=tile,
            coop_threshold=coop_threshold,
            independent_passes=independent,
            cooperative_passes=cooperative,
        )
