"""The batched solve service: plan reuse + merged solves + worker pool.

:class:`BatchSolveService` is the production front end the ROADMAP asks
for. Callers :meth:`~BatchSolveService.submit` independent solve
requests; the service

1. resolves switch points **once per (device, dtype)** through a shared,
   thread-safe :class:`~repro.core.TuningCache` (``get_or_tune``),
2. reuses :class:`~repro.core.SolvePlan` objects per workload shape,
3. groups program-compatible requests (see :mod:`.batcher`) — keyed by
   the signature of the lowered instruction
   :class:`~repro.ir.Program`, the exact step sequence the shared
   engine will run — into single merged
   :class:`~repro.systems.TridiagonalBatch` solves, and
4. executes the groups concurrently on a bounded thread pool, with
   queue backpressure (``max_pending`` + block/reject policy).

Merged solves amortise the per-launch overhead that dominates small
workloads — the simulated analogue of the interleaved batch solvers of
Gloster et al. — while the plan-signature grouping keeps every
request's answer bit-identical to a standalone
:meth:`MultiStageSolver.solve`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.config import SwitchPoints
from ..core.planner import SolvePlan, plan_solve
from ..core.solver import MultiStageSolver
from ..core.tuning import TuningCache, make_tuner
from ..dist.plan import DistPlan
from ..dist.solver import DistributedSolver, working_set_nbytes
from ..gpu.executor import Device, SimReport, make_device
from ..kernels import dtype_size
from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import (
    ConfigurationError,
    DeadlineExceededError,
    InvalidSystemError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
)
from ..util.validation import check_system_batch
from .batcher import GroupKey, ServiceRequest, SolveGroup, group_requests
from .queue import BoundedRequestQueue, CircuitBreaker
from .stats import ServiceStats

__all__ = ["ServiceResult", "BatchSolveService"]


@dataclass(frozen=True)
class ServiceResult:
    """One request's answer, with the merged solve's provenance."""

    x: np.ndarray
    plan: SolvePlan  # the request's own plan (what a standalone solve runs)
    switch_points: SwitchPoints
    report: SimReport  # timing of the whole merged solve
    group_label: str
    group_requests: int  # requests merged into the solve that produced x
    group_systems: int  # total systems in that merged solve
    wall_ms: float  # wall-clock of the merged solve

    @property
    def simulated_ms(self) -> float:
        """Simulated device time of the merged solve (shared by the group)."""
        return self.report.total_ms


class BatchSolveService:
    """Accepts many solve requests; executes few merged solves.

    Parameters
    ----------
    device:
        Default device for requests that don't name one.
    tuning:
        ``SwitchPoints`` used verbatim, or a strategy name
        (``default``/``static``/``dynamic``) resolved once per
        (device, dtype) and cached.
    cache:
        Shared :class:`TuningCache` (or a path for a persistent one).
        Created memory-only when omitted.
    max_workers:
        Worker threads executing merged solves concurrently.
    max_pending / overflow / submit_timeout:
        Backpressure: the pending queue holds at most ``max_pending``
        requests; ``overflow="block"`` waits (up to ``submit_timeout``
        seconds) for space, ``overflow="reject"`` raises
        :class:`ServiceOverloadedError` immediately.
    auto_flush:
        When set, ``submit`` dispatches pending work automatically once
        this many requests are queued; otherwise call :meth:`flush`.
    max_group_systems:
        Cap on merged-batch height (bounds per-solve working set).
    dist:
        Optional distributed backend for requests whose working set
        overflows one device's global memory: a
        :class:`~repro.dist.DistributedSolver`, a
        :class:`~repro.dist.DeviceGroup`, or a device count (a group of
        the service's default device is built). Oversized requests are
        planned with a :class:`~repro.dist.DistPlan` and grouped by its
        signature, so plan-compatible oversized requests still merge
        into one distributed solve.
    faults:
        Optional :class:`~repro.faults.FaultInjector` (or a bare
        :class:`~repro.faults.FaultPlan`) threaded through every solver
        the service builds. Workers honour its
        :class:`~repro.faults.WorkerStall` specs, and its
        :class:`~repro.faults.FaultLog` is surfaced in
        :meth:`ServiceStats.snapshot` under ``"faults"``.
    breaker:
        Optional :class:`~repro.service.queue.CircuitBreaker`. While it
        is open, :meth:`submit` sheds load with
        :class:`~repro.util.errors.ServiceOverloadedError`.
    fuse:
        Whether merged solves run through the batched-fusion lowering
        (the interleaved-layout sweeps of :func:`repro.ir.fuse_batched`):
        ``False`` never, ``True`` always, ``"auto"`` (the default)
        prices both lowerings per group signature and runs whichever
        the cost model says is cheaper — the interleave toll only pays
        for itself once split stages or large merges dominate. Safe in
        every mode: fused solutions are bit-identical to the staged
        chain, so answers still match a standalone unfused
        :meth:`MultiStageSolver.solve`. Grouping stays keyed by the
        unfused program signature (fusion is a pure function of it).

    When a merged solve raises a typed :class:`ReproError` (a poisoned
    request — e.g. a singular system failing verification), the group is
    *bisected*: each half retries separately until the bad request fails
    alone and every healthy neighbour still gets its answer.
    Per-request deadlines (``submit(..., deadline_ms=...)``) are
    enforced immediately before and after the merged solve with
    :class:`~repro.util.errors.DeadlineExceededError`.
    """

    def __init__(
        self,
        device: Union[Device, str] = "gtx470",
        tuning: Union[SwitchPoints, str] = "static",
        *,
        cache: Union[TuningCache, str, None] = None,
        max_workers: int = 4,
        max_pending: int = 1024,
        overflow: str = "block",
        submit_timeout: Optional[float] = None,
        auto_flush: Optional[int] = None,
        max_group_systems: Optional[int] = None,
        verify: bool = False,
        dist=None,
        faults=None,
        breaker: Optional[CircuitBreaker] = None,
        metrics=None,
        tracer=None,
        executor=None,
        fuse: Union[bool, str] = "auto",
    ):
        if max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        self.default_device = make_device(device)
        self.fuse = fuse
        # Accept a TuningCache, anything cache-shaped (the serving
        # tier's sharded cache quacks the same), or a path/None.
        self.cache = (
            cache
            if isinstance(cache, TuningCache) or hasattr(cache, "get_or_tune")
            else TuningCache(cache)
        )
        self.verify = verify
        if faults is not None and not hasattr(faults, "before_step"):
            from ..faults import FaultInjector

            faults = FaultInjector(faults)
        self.faults = faults
        self.breaker = breaker
        self.max_group_systems = max_group_systems
        self.auto_flush = auto_flush
        self.submit_timeout = submit_timeout
        self.stats = ServiceStats()
        self._tuning = tuning
        self._queue: BoundedRequestQueue[ServiceRequest] = BoundedRequestQueue(
            max_pending=max_pending, policy=overflow
        )
        # ``executor`` lets the serving tier supply its own worker fleet
        # (e.g. the resizable one the autoscaler drives); anything with
        # ``submit(fn, *args) -> Future`` and ``shutdown(wait=...)``
        # works. The service owns whichever pool it ends up with —
        # ``close`` shuts it down either way.
        self._pool = (
            executor
            if executor is not None
            else ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-solve"
            )
        )
        self._lock = threading.Lock()
        self._seq = 0
        self._devices: Dict[str, Device] = {}
        self._switch: Dict[Tuple[str, int], SwitchPoints] = {}
        self._solvers: Dict[Tuple[str, int], MultiStageSolver] = {}
        self._plans: Dict[Tuple[str, int, int, int], SolvePlan] = {}
        self._signatures: Dict[Tuple, Tuple] = {}
        self._group_futures: List[Future] = []
        self._closed = False
        self._dist_config = dist
        self._dist_solver: Optional[DistributedSolver] = None
        self.stats.attach_cache(self.cache)
        if self.faults is not None:
            self.stats.attach_fault_log(self.faults.log)
        # Observability: one shared registry (private unless provided)
        # collects the whole catalogue — service counters, queue depth,
        # breaker transitions, tuning-cache lookups, fault events — and
        # an optional tracer threads through every solver the service
        # builds. ``docs/observability.md`` documents the metric names.
        from ..obs import MetricsRegistry

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.stats.attach_metrics(self.metrics)
        self.cache.attach_metrics(self.metrics)
        self._queue_depth = self.metrics.gauge(
            "repro_service_queue_depth", "Requests waiting to be flushed."
        )
        self._queue.attach_metrics(self.metrics)
        if self.breaker is not None:
            self.breaker.attach_metrics(self.metrics)
        if self.faults is not None:
            self.faults.log.attach_metrics(self.metrics)
        # The numerical-safety governor: verifies every governed group
        # against the strictest member tolerance and escalates (see
        # repro.numerics). Shares the service's registry and tracer so
        # escalation/fallback rates land in the same dump.
        from ..numerics import Governor

        self.governor = Governor(metrics=self.metrics, tracer=self.tracer)

    @property
    def dist_solver(self) -> Optional[DistributedSolver]:
        """The distributed backend, or ``None`` when not configured."""
        if self._dist_config is None:
            return None
        with self._lock:
            solver = self._dist_solver
        if solver is not None:
            return solver
        if isinstance(self._dist_config, DistributedSolver):
            solver = self._dist_config
        else:
            solver = DistributedSolver(
                self._dist_config,
                self._tuning,
                device=self.default_device,
                cache=self.cache,
                verify=self.verify,
                faults=self.faults,
                metrics=self.metrics,
                tracer=self.tracer,
            )
        with self._lock:
            if self._dist_solver is None:
                self._dist_solver = solver
            return self._dist_solver

    def _routes_to_dist(self, batch: TridiagonalBatch, dev: Device) -> bool:
        """Oversized for one device, and the group models that device."""
        solver = self.dist_solver
        if solver is None or dev.name != solver.group.device_name:
            return False
        nbytes = working_set_nbytes(
            batch.num_systems, batch.system_size, dtype_size(batch.dtype)
        )
        return nbytes > dev.spec.global_mem_bytes

    # -- tuning / planning reuse -------------------------------------------

    def _device(self, device: Union[Device, str, None]) -> Device:
        dev = self.default_device if device is None else make_device(device)
        with self._lock:
            return self._devices.setdefault(dev.name, dev)

    def switch_points_for(
        self, device: Union[Device, str, None] = None, dtype=np.float64
    ) -> SwitchPoints:
        """The switch points the service uses for (device, dtype).

        Resolved once through the shared cache's ``get_or_tune`` fast
        path; exposes the exact configuration a standalone reference
        solve must use to reproduce service results bit-for-bit.
        """
        dev = self._device(device)
        dsize = dtype_size(np.dtype(dtype))
        key = (dev.name, dsize)
        with self._lock:
            cached = self._switch.get(key)
        if cached is not None:
            return cached
        if isinstance(self._tuning, SwitchPoints):
            resolved = self._tuning
        else:
            strategy = self._tuning

            def tune_now() -> SwitchPoints:
                return make_tuner(strategy).switch_points(dev, 0, 0, dsize)

            resolved = self.cache.get_or_tune(
                dev.name, dsize, tune_now, workload_class="service"
            )
        with self._lock:
            return self._switch.setdefault(key, resolved)

    def solver_for(
        self, device: Union[Device, str, None] = None, dtype=np.float64
    ) -> MultiStageSolver:
        """The (shared) solver executing merged solves for (device, dtype)."""
        dev = self._device(device)
        dsize = dtype_size(np.dtype(dtype))
        key = (dev.name, dsize)
        with self._lock:
            solver = self._solvers.get(key)
        if solver is not None:
            return solver
        switch = self.switch_points_for(dev, dtype)
        solver = MultiStageSolver(
            dev, switch, verify=self.verify, faults=self.faults,
            tracer=self.tracer, fuse=self.fuse,
        )
        with self._lock:
            return self._solvers.setdefault(key, solver)

    def plan_for(
        self, batch: TridiagonalBatch, device: Union[Device, str, None] = None
    ) -> SolvePlan:
        """The per-request plan, memoised per (device, dtype, m, n)."""
        dev = self._device(device)
        dsize = dtype_size(batch.dtype)
        key = (dev.name, dsize, batch.num_systems, batch.system_size)
        with self._lock:
            plan = self._plans.get(key)
        if plan is not None:
            return plan
        switch = self.switch_points_for(dev, batch.dtype)
        plan = plan_solve(
            dev, batch.num_systems, batch.system_size, dsize, switch
        )
        with self._lock:
            return self._plans.setdefault(key, plan)

    def _program_signature(self, plan, device_label: str, dsize: int, lower):
        """Signature of the lowered instruction program, memoised.

        Plan signatures are count-independent, and lowering is a pure
        function of the plan (plus device and dtype), so the program
        signature is cached per (device, dtype, plan signature) — one
        lowering per distinct workload class, not per request.
        """
        key = (device_label, dsize, plan.signature)
        with self._lock:
            sig = self._signatures.get(key)
        if sig is not None:
            return sig
        sig = lower().signature
        with self._lock:
            return self._signatures.setdefault(key, sig)

    # -- the request path ----------------------------------------------------

    def submit(
        self,
        batch: TridiagonalBatch,
        device: Union[Device, str, None] = None,
        *,
        timeout: Optional[float] = None,
        deadline_ms: Optional[float] = None,
        tolerance: Optional[float] = None,
    ) -> "Future[ServiceResult]":
        """Queue one solve request; returns a future for its result.

        Applies the backpressure policy; a rejected request raises
        :class:`ServiceOverloadedError` and is counted in the stats.
        ``deadline_ms`` is a wall-clock budget from now: the request
        fails with :class:`DeadlineExceededError` instead of returning
        a result the caller stopped waiting for. ``tolerance`` requests
        a governed solve: the answer's relative residual is verified
        against it (a merged group honours its strictest member) or the
        request fails with a typed
        :class:`~repro.util.errors.NumericalBreakdownError`.

        Malformed systems — NaN/Inf coefficients, zero diagonals — are
        rejected here, before any queueing, with a typed
        :class:`~repro.util.errors.InvalidSystemError`.
        """
        if self._closed:
            raise ServiceError("service is closed")
        try:
            check_system_batch(batch, context="service request")
        except InvalidSystemError:
            self.metrics.counter(
                "repro_service_invalid_total",
                "Requests rejected at the boundary for malformed systems.",
            ).inc()
            if self.faults is not None:
                self.faults.note(
                    "numerics", "rejected", detail="invalid system at submit"
                )
            raise
        if self.breaker is not None and not self.breaker.allow():
            self.stats.record_shed()
            if self.faults is not None:
                self.faults.note(
                    "overload", "shed", detail="circuit breaker open"
                )
            raise ServiceOverloadedError(
                "circuit breaker is open (backend failing); request shed"
            )
        dev = self._device(device)
        dsize = dtype_size(batch.dtype)
        if self._routes_to_dist(batch, dev):
            # Too big for one device: plan across the group. The group
            # label keys the merged solve so oversized requests only mix
            # with program-compatible oversized requests.
            dist = self.dist_solver
            plan = dist.plan_for(batch)
            key = GroupKey(
                device=dist.group.describe(),
                dtype=str(batch.dtype),
                system_size=batch.system_size,
                signature=self._program_signature(
                    plan,
                    dist.group.describe(),
                    dsize,
                    lambda: dist.lower(plan, dsize),
                ),
            )
        else:
            plan = self.plan_for(batch, dev)
            key = GroupKey(
                device=dev.name,
                dtype=str(batch.dtype),
                system_size=batch.system_size,
                signature=self._program_signature(
                    plan, dev.name, dsize, lambda: plan.lower(dev, dsize)
                ),
            )
        with self._lock:
            seq = self._seq
            self._seq += 1
        deadline = (
            None
            if deadline_ms is None
            else time.monotonic() + deadline_ms / 1e3
        )
        request = ServiceRequest(
            seq=seq,
            batch=batch,
            device=dev.name,
            key=key,
            plan=plan,
            deadline=deadline,
            tolerance=None if tolerance is None else float(tolerance),
        )
        try:
            self._queue.put(
                request,
                timeout=self.submit_timeout if timeout is None else timeout,
            )
        except Exception:
            self.stats.record_rejected()
            raise
        self.stats.record_submitted()
        self._queue_depth.set(self._queue.pending)
        if self.auto_flush is not None and self._queue.pending >= self.auto_flush:
            self.flush()
        return request.future

    def flush(self) -> int:
        """Group everything pending and dispatch the groups to the pool.

        Returns the number of merged solves dispatched.
        """
        pending = self._queue.drain()
        self._queue_depth.set(self._queue.pending)
        if not pending:
            return 0
        groups = group_requests(
            pending, max_group_systems=self.max_group_systems
        )
        for group in groups:
            fut = self._pool.submit(self._run_group, group)
            with self._lock:
                self._group_futures.append(fut)
        return len(groups)

    def _run_group(self, group: SolveGroup) -> None:
        """Worker body: one merged solve, fanned back out to futures."""
        if self.faults is not None:
            self.faults.maybe_stall(group.key.describe())
        self._execute_group(group)

    def _expire(self, req: ServiceRequest, when: str) -> bool:
        """Fail ``req`` if its deadline has passed; True when expired."""
        if req.deadline is None or time.monotonic() <= req.deadline:
            return False
        req.future.set_exception(
            DeadlineExceededError(
                f"request deadline passed {when} the merged solve"
            )
        )
        self.stats.record_deadline_expired()
        if self.faults is not None:
            self.faults.note(
                "deadline", "expired", label=req.key.describe(), detail=when
            )
        return True

    def _enforce_group(
        self,
        merged: TridiagonalBatch,
        first: ServiceRequest,
        x: np.ndarray,
        tolerance: float,
    ) -> np.ndarray:
        """Residual-verify a merged solve against ``tolerance``.

        Escalates through one iterative-refinement step (re-executing
        the group's own plan on the residual right-hand side — same
        instruction stream, so bit-compatible with the merged solve)
        before raising :class:`~repro.util.errors.NumericalBreakdownError`
        for the bisection logic in :meth:`_execute_group` to isolate.
        """

        def refine(b: TridiagonalBatch, cur: np.ndarray) -> np.ndarray:
            residual_rhs = b.d - b.matvec(cur)
            rhs_batch = TridiagonalBatch(b.a, b.b, b.c, residual_rhs)
            plan = first.plan.with_num_systems(b.num_systems)
            if isinstance(first.plan, DistPlan):
                correction = self.dist_solver.execute_plan(rhs_batch, plan).x
            else:
                solver = self.solver_for(first.device, b.dtype)
                switch = self.switch_points_for(first.device, b.dtype)
                correction = solver.execute_plan(rhs_batch, plan, switch).x
            return cur + correction

        outcome = self.governor.enforce(
            merged,
            x,
            tolerance,
            refine=refine,
            resolve=None,
            path="service",
            context="merged group solve",
        )
        return outcome.x

    def _execute_group(self, group: SolveGroup) -> None:
        """One merged solve; bisect on typed errors, enforce deadlines."""
        live = [r for r in group.requests if not self._expire(r, "before")]
        if not live:
            return
        if len(live) != len(group.requests):
            group = SolveGroup(key=group.key, requests=live)
        t0 = time.perf_counter()
        try:
            merged = group.merged_batch()
            first = group.requests[0]
            if isinstance(first.plan, DistPlan):
                result = self.dist_solver.execute_plan(
                    merged, first.plan.with_num_systems(merged.num_systems)
                )
            else:
                solver = self.solver_for(group.key.device, merged.dtype)
                switch = self.switch_points_for(group.key.device, merged.dtype)
                result = solver.execute_plan(
                    merged, first.plan.with_num_systems(merged.num_systems), switch
                )
            # Governed groups: verify the merged answer against the
            # strictest member tolerance and walk the escalation ladder.
            # A NumericalBreakdownError raised here is a *typed* error,
            # so the bisection below isolates the offending member and
            # its group-mates still get (individually verified) answers.
            x_out = result.x
            tolerance = group.strictest_tolerance()
            if tolerance is not None:
                x_out = self._enforce_group(merged, first, x_out, tolerance)
        except ReproError as exc:
            if len(live) > 1:
                # A typed failure in a merged batch: one member may be
                # poisoned (singular system, verification failure).
                # Retry each half separately so the bad request fails
                # alone and its neighbours still get answers.
                self.stats.record_bisection()
                if self.faults is not None:
                    self.faults.note(
                        "service",
                        "bisected",
                        label=group.key.describe(),
                        detail=(
                            f"{len(live)} requests split after "
                            f"{type(exc).__name__}"
                        ),
                    )
                mid = len(live) // 2
                self._execute_group(SolveGroup(group.key, live[:mid]))
                self._execute_group(SolveGroup(group.key, live[mid:]))
                return
            live[0].future.set_exception(exc)
            self.stats.record_failed(1)
            if self.breaker is not None:
                self.breaker.record_failure()
            return
        except Exception as exc:
            # Untyped failures are infrastructure, not data: bisection
            # would retry the same breakage; fail the whole group.
            for req in live:
                req.future.set_exception(exc)
            self.stats.record_failed(len(live))
            if self.breaker is not None:
                self.breaker.record_failure()
            return
        wall_ms = (time.perf_counter() - t0) * 1e3
        deliveries = []
        for req, offset in zip(group.requests, group.offsets()):
            rows = slice(offset, offset + req.batch.num_systems)
            if self._expire(req, "after"):
                continue
            deliveries.append((req, rows))
        # Stats and breaker update BEFORE the futures resolve: a caller
        # woken by future.result() may read service.stats immediately,
        # and must see the group that produced its answer (the ordering
        # regression test in tests/test_obs.py pins this).
        if self.breaker is not None:
            self.breaker.record_success()
        self.stats.record_group(
            group.key.describe(),
            requests=len(deliveries),
            systems=merged.num_systems,
            simulated_ms=result.report.total_ms,
            wall_ms=wall_ms,
        )
        for req, rows in deliveries:
            req.future.set_result(
                ServiceResult(
                    x=np.ascontiguousarray(x_out[rows]),
                    plan=req.plan,
                    switch_points=result.switch_points,
                    report=result.report,
                    group_label=group.key.describe(),
                    group_requests=group.num_requests,
                    group_systems=merged.num_systems,
                    wall_ms=wall_ms,
                )
            )

    def solve_many(
        self,
        batches: Sequence[TridiagonalBatch],
        device: Union[Device, str, None] = None,
    ) -> List[ServiceResult]:
        """Submit ``batches``, flush, and wait; results in input order."""
        futures = [self.submit(batch, device) for batch in batches]
        self.flush()
        return [fut.result() for fut in futures]

    # -- lifecycle ------------------------------------------------------------

    def drain(self) -> None:
        """Block until every dispatched group has finished."""
        with self._lock:
            futures = list(self._group_futures)
            self._group_futures.clear()
        for fut in futures:
            fut.result()

    def close(self, wait: bool = True) -> None:
        """Dispatch any pending work, then shut the pool down."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "BatchSolveService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
