"""Service telemetry: per-group latency/throughput counters.

Every merged solve reports into :class:`ServiceStats`; the service
exposes a consistent :meth:`~ServiceStats.snapshot` so benchmarks and
operators can read throughput without stopping traffic. All mutation
happens under one lock — workers report concurrently.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["GroupStats", "ServiceStats"]


@dataclass
class GroupStats:
    """Accumulated counters for one group key (device|dtype|size)."""

    groups: int = 0
    requests: int = 0
    systems: int = 0
    simulated_ms: float = 0.0
    wall_ms: float = 0.0

    @property
    def mean_group_systems(self) -> float:
        """Average merged-batch height — the batching win in one number."""
        return self.systems / self.groups if self.groups else 0.0

    def as_dict(self) -> dict:
        return {
            "groups": self.groups,
            "requests": self.requests,
            "systems": self.systems,
            "simulated_ms": self.simulated_ms,
            "wall_ms": self.wall_ms,
            "mean_group_systems": self.mean_group_systems,
        }


@dataclass
class ServiceStats:
    """Thread-safe roll-up of the service's lifetime activity."""

    requests_submitted: int = 0
    requests_completed: int = 0
    requests_failed: int = 0
    requests_rejected: int = 0
    requests_deadline_expired: int = 0
    requests_shed: int = 0
    group_bisections: int = 0
    groups_executed: int = 0
    systems_solved: int = 0
    simulated_ms: float = 0.0
    wall_ms: float = 0.0
    per_group: Dict[str, GroupStats] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _tuning_cache: object = field(default=None, repr=False, compare=False)
    _fault_log: object = field(default=None, repr=False, compare=False)
    _requests: object = field(default=None, repr=False, compare=False)
    _groups: object = field(default=None, repr=False, compare=False)
    _group_systems: object = field(default=None, repr=False, compare=False)
    _group_sim_ms: object = field(default=None, repr=False, compare=False)

    def attach_cache(self, cache) -> None:
        """Expose a :class:`TuningCache`'s hit/miss counters in snapshots."""
        with self._lock:
            self._tuning_cache = cache

    def attach_fault_log(self, log) -> None:
        """Expose a :class:`~repro.faults.FaultLog`'s roll-up in snapshots."""
        with self._lock:
            self._fault_log = log

    def attach_metrics(self, registry) -> None:
        """Mirror every recorded event into an
        :class:`~repro.obs.MetricsRegistry` (see ``docs/observability.md``
        for the catalogue). Attach before traffic flows — earlier events
        are not replayed."""
        from ..obs.metrics import DEFAULT_SIZE_BUCKETS

        with self._lock:
            self._requests = registry.counter(
                "repro_service_requests_total",
                "Requests by terminal status.",
            )
            self._groups = registry.counter(
                "repro_service_groups_total", "Merged solves executed."
            )
            self._group_systems = registry.histogram(
                "repro_service_group_systems",
                "Systems per merged solve (the batching win).",
                buckets=DEFAULT_SIZE_BUCKETS,
            )
            self._group_sim_ms = registry.histogram(
                "repro_service_group_simulated_ms",
                "Simulated device time per merged solve.",
            )

    def _count(self, status: str, count: int) -> None:
        # Callers hold self._lock.
        if self._requests is not None:
            self._requests.inc(count, status=status)

    # -- recording (called by the service) --------------------------------

    def record_submitted(self, count: int = 1) -> None:
        with self._lock:
            self.requests_submitted += count
            self._count("submitted", count)

    def record_rejected(self, count: int = 1) -> None:
        with self._lock:
            self.requests_rejected += count
            self._count("rejected", count)

    def record_group(
        self,
        label: str,
        *,
        requests: int,
        systems: int,
        simulated_ms: float,
        wall_ms: float,
    ) -> None:
        """Report one finished merged solve."""
        with self._lock:
            self.groups_executed += 1
            self.requests_completed += requests
            self.systems_solved += systems
            self.simulated_ms += simulated_ms
            self.wall_ms += wall_ms
            per = self.per_group.setdefault(label, GroupStats())
            per.groups += 1
            per.requests += requests
            per.systems += systems
            per.simulated_ms += simulated_ms
            per.wall_ms += wall_ms
            self._count("completed", requests)
            if self._groups is not None:
                self._groups.inc()
                self._group_systems.observe(systems)
                self._group_sim_ms.observe(simulated_ms)

    def record_failed(self, count: int = 1) -> None:
        with self._lock:
            self.requests_failed += count
            self._count("failed", count)

    def record_deadline_expired(self, count: int = 1) -> None:
        with self._lock:
            self.requests_deadline_expired += count
            self._count("deadline_expired", count)

    def record_shed(self, count: int = 1) -> None:
        with self._lock:
            self.requests_shed += count
            self._count("shed", count)

    def record_bisection(self) -> None:
        with self._lock:
            self.group_bisections += 1

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A consistent point-in-time copy of every counter.

        Every counter is copied under the same lock the recording
        methods take, so the snapshot is internally consistent even
        while workers are mid-group. The attached cache/fault-log
        roll-ups (which take their own locks) are read *outside* the
        stats lock — holding two component locks at once invites
        ordering deadlocks for no consistency gain.
        """
        with self._lock:
            cache = self._tuning_cache
            fault_log = self._fault_log
            counters = {
                "requests_submitted": self.requests_submitted,
                "requests_completed": self.requests_completed,
                "requests_failed": self.requests_failed,
                "requests_rejected": self.requests_rejected,
                "requests_deadline_expired": self.requests_deadline_expired,
                "requests_shed": self.requests_shed,
                "group_bisections": self.group_bisections,
                "groups_executed": self.groups_executed,
                "systems_solved": self.systems_solved,
                "simulated_ms": self.simulated_ms,
                "wall_ms": self.wall_ms,
                "mean_group_requests": (
                    self.requests_completed / self.groups_executed
                    if self.groups_executed
                    else 0.0
                ),
                "per_group": {
                    label: stats.as_dict()
                    for label, stats in self.per_group.items()
                },
            }
        counters["tuning_cache"] = (
            cache.counters() if cache is not None else None
        )
        counters["faults"] = (
            fault_log.summary() if fault_log is not None else None
        )
        return counters

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        snap = self.snapshot()
        lines = [
            f"requests : {snap['requests_submitted']} submitted, "
            f"{snap['requests_completed']} completed, "
            f"{snap['requests_failed']} failed, "
            f"{snap['requests_rejected']} rejected, "
            f"{snap['requests_deadline_expired']} expired, "
            f"{snap['requests_shed']} shed",
            f"groups   : {snap['groups_executed']} merged solves "
            f"({snap['mean_group_requests']:.1f} requests/group, "
            f"{snap['systems_solved']} systems)",
            f"simulated: {snap['simulated_ms']:.3f} ms on-device",
        ]
        if snap["group_bisections"]:
            lines.append(
                f"bisection: {snap['group_bisections']} group splits "
                "isolating poisoned requests"
            )
        faults = snap.get("faults")
        if faults is not None:
            lines.append(
                f"faults   : {faults['events']} events, "
                f"{faults['overhead_ms']:.3f} ms recovery overhead"
            )
        cache = snap.get("tuning_cache")
        if cache is not None:
            total = cache["hits"] + cache["misses"]
            rate = cache["hits"] / total if total else 0.0
            lines.append(
                f"tuning   : {cache['hits']} cache hits, "
                f"{cache['misses']} misses ({rate:.0%} hit rate, "
                f"{cache['entries']} entries)"
            )
        for label, per in sorted(snap["per_group"].items()):
            lines.append(
                f"  {label:<28s} {per['groups']:4d} groups  "
                f"{per['requests']:5d} req  "
                f"{per['simulated_ms']:9.3f} ms"
            )
        return "\n".join(lines)
