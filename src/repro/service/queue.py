"""Bounded request queue with backpressure.

The service's front door: submissions land here before the batcher
groups them. The queue is a thread-safe FIFO with a hard ``max_pending``
bound and one of two overflow policies:

- ``"block"`` — a full queue makes ``put`` wait until a drain frees
  space (optionally bounded by a timeout, after which the request is
  rejected). This is the latency-for-safety default.
- ``"reject"`` — a full queue raises
  :class:`~repro.util.errors.ServiceOverloadedError` immediately, for
  callers that prefer shedding load over queueing it.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Generic, List, Optional, TypeVar

from ..util.errors import ConfigurationError, ServiceOverloadedError

__all__ = ["BoundedRequestQueue", "OVERFLOW_POLICIES"]

T = TypeVar("T")

OVERFLOW_POLICIES = ("block", "reject")


class BoundedRequestQueue(Generic[T]):
    """Thread-safe FIFO with a pending bound and an overflow policy."""

    def __init__(self, max_pending: int = 1024, policy: str = "block"):
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if policy not in OVERFLOW_POLICIES:
            raise ConfigurationError(
                f"unknown overflow policy {policy!r}; "
                f"expected one of {OVERFLOW_POLICIES}"
            )
        self.max_pending = max_pending
        self.policy = policy
        self._items: Deque[T] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)

    def put(self, item: T, timeout: Optional[float] = None) -> None:
        """Enqueue ``item``, applying the overflow policy when full.

        Raises :class:`ServiceOverloadedError` under the ``reject``
        policy, or under ``block`` when ``timeout`` (seconds) elapses
        without space freeing up.
        """
        with self._not_full:
            if len(self._items) >= self.max_pending:
                if self.policy == "reject":
                    raise ServiceOverloadedError(
                        f"queue full ({self.max_pending} pending); "
                        "request rejected"
                    )
                if not self._not_full.wait_for(
                    lambda: len(self._items) < self.max_pending,
                    timeout=timeout,
                ):
                    raise ServiceOverloadedError(
                        f"queue full ({self.max_pending} pending); gave up "
                        f"after {timeout}s"
                    )
            self._items.append(item)

    def drain(self) -> List[T]:
        """Atomically take every pending item (FIFO order) and free space."""
        with self._not_full:
            items = list(self._items)
            self._items.clear()
            self._not_full.notify_all()
        return items

    @property
    def pending(self) -> int:
        """Number of items waiting to be drained."""
        with self._lock:
            return len(self._items)

    def __len__(self) -> int:
        return self.pending
