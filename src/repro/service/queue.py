"""Bounded request queue with backpressure.

The service's front door: submissions land here before the batcher
groups them. The queue is a thread-safe FIFO with a hard ``max_pending``
bound and one of two overflow policies:

- ``"block"`` — a full queue makes ``put`` wait until a drain frees
  space (optionally bounded by a timeout, after which the request is
  rejected). This is the latency-for-safety default.
- ``"reject"`` — a full queue raises
  :class:`~repro.util.errors.ServiceOverloadedError` immediately, for
  callers that prefer shedding load over queueing it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Generic, List, Optional, TypeVar

from ..util.errors import ConfigurationError, ServiceOverloadedError

__all__ = ["BoundedRequestQueue", "CircuitBreaker", "OVERFLOW_POLICIES"]

T = TypeVar("T")

OVERFLOW_POLICIES = ("block", "reject")


class BoundedRequestQueue(Generic[T]):
    """Thread-safe FIFO with a pending bound and an overflow policy."""

    def __init__(self, max_pending: int = 1024, policy: str = "block"):
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if policy not in OVERFLOW_POLICIES:
            raise ConfigurationError(
                f"unknown overflow policy {policy!r}; "
                f"expected one of {OVERFLOW_POLICIES}"
            )
        self.max_pending = max_pending
        self.policy = policy
        self._items: Deque[T] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._wait_ms = None
        self._clock = time.monotonic

    def attach_metrics(self, registry) -> None:
        """Record per-request queue-wait time into an
        :class:`~repro.obs.MetricsRegistry` histogram,
        ``repro_service_queue_wait_ms``.

        Every ``put`` observes how long it spent blocked on a full
        queue (0 for the uncontended fast path), so a ``block``-policy
        queue quietly absorbing latency shows up in the dump instead of
        hiding in submit-side wall time.
        """
        with self._lock:
            self._wait_ms = registry.histogram(
                "repro_service_queue_wait_ms",
                "Wall-clock time a put() spent waiting for queue space.",
            )

    def put(self, item: T, timeout: Optional[float] = None) -> None:
        """Enqueue ``item``, applying the overflow policy when full.

        Raises :class:`ServiceOverloadedError` under the ``reject``
        policy, or under ``block`` when ``timeout`` (seconds) elapses
        without space freeing up.
        """
        t0 = self._clock()
        with self._not_full:
            if len(self._items) >= self.max_pending:
                if self.policy == "reject":
                    raise ServiceOverloadedError(
                        f"queue full ({self.max_pending} pending); "
                        "request rejected"
                    )
                if not self._not_full.wait_for(
                    lambda: len(self._items) < self.max_pending,
                    timeout=timeout,
                ):
                    self._observe_wait_locked(t0)
                    raise ServiceOverloadedError(
                        f"queue full ({self.max_pending} pending); gave up "
                        f"after {timeout}s"
                    )
            self._items.append(item)
            self._observe_wait_locked(t0)

    def _observe_wait_locked(self, t0: float) -> None:
        if self._wait_ms is not None:
            self._wait_ms.observe((self._clock() - t0) * 1e3)

    def drain(self) -> List[T]:
        """Atomically take every pending item (FIFO order) and free space."""
        with self._not_full:
            items = list(self._items)
            self._items.clear()
            self._not_full.notify_all()
        return items

    @property
    def pending(self) -> int:
        """Number of items waiting to be drained."""
        with self._lock:
            return len(self._items)

    def qsize(self) -> int:
        """Current depth — the autoscaler's (and any poller's) input.

        Same value as :attr:`pending`; the method form matches the
        stdlib queue API so fleet controllers don't reach into
        ``_items``.
        """
        return self.pending

    def __len__(self) -> int:
        return self.pending


class CircuitBreaker:
    """Shed load while the backend is failing, probe for recovery.

    The classic three-state breaker, sized for the solve service:

    - **closed** — requests flow; ``failure_threshold`` *consecutive*
      merged-solve failures trip it open.
    - **open** — :meth:`allow` refuses everything (the service raises
      :class:`~repro.util.errors.ServiceOverloadedError`) until
      ``cooldown_s`` has elapsed.
    - **half-open** — after the cooldown, requests probe the backend:
      ``half_open_probes`` consecutive successes close the breaker, one
      failure re-opens it and the cooldown restarts.

    ``half_open_probes`` tunes recovery caution: 1 (the default, the
    classic breaker) closes on the first good solve, larger values
    demand a streak before trusting the backend again. Probe outcomes
    are counted as ``probe_ok``/``probe_fail`` in the metrics registry
    so the trade-off is observable rather than guessed.

    ``clock`` is injectable so tests control time.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        clock=time.monotonic,
        half_open_probes: int = 1,
    ):
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ConfigurationError("cooldown_s must be non-negative")
        if half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive = 0
        self._probe_successes = 0
        self.probe_ok = 0
        self.probe_fail = 0
        self._state = "closed"
        self._opened_at = 0.0
        self.times_opened = 0
        self._metric = None
        self._probe_metric = None

    def attach_metrics(self, registry) -> None:
        """Count state changes into an
        :class:`~repro.obs.MetricsRegistry` as
        ``repro_service_breaker_transitions_total{to}``, and half-open
        probe outcomes as
        ``repro_service_breaker_probes_total{outcome=probe_ok|probe_fail}``
        (outcomes counted before attachment are replayed)."""
        with self._lock:
            self._metric = registry.counter(
                "repro_service_breaker_transitions_total",
                "Circuit-breaker state transitions, by target state.",
            )
            self._probe_metric = registry.counter(
                "repro_service_breaker_probes_total",
                "Half-open probe outcomes (ok closes, fail re-opens).",
            )
            if self.probe_ok:
                self._probe_metric.inc(self.probe_ok, outcome="probe_ok")
            if self.probe_fail:
                self._probe_metric.inc(self.probe_fail, outcome="probe_fail")

    def _probe_locked(self, outcome: str) -> None:
        if outcome == "probe_ok":
            self.probe_ok += 1
        else:
            self.probe_fail += 1
        if self._probe_metric is not None:
            self._probe_metric.inc(outcome=outcome)

    def _transition_locked(self, state: str) -> None:
        if state != self._state:
            self._state = state
            if self._metric is not None:
                self._metric.inc(to=state)

    def _state_locked(self) -> str:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._transition_locked("half_open")
        return self._state

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (cooldown lapsed)."""
        with self._lock:
            return self._state_locked()

    def allow(self) -> bool:
        """Whether a request may proceed right now."""
        with self._lock:
            return self._state_locked() != "open"

    def record_success(self) -> None:
        """A merged solve finished: reset the failure streak; a
        half-open breaker counts the probe and closes once
        ``half_open_probes`` consecutive probes succeeded."""
        with self._lock:
            self._consecutive = 0
            if self._state_locked() == "half_open":
                self._probe_locked("probe_ok")
                self._probe_successes += 1
                if self._probe_successes < self.half_open_probes:
                    return  # stay half-open: more probes required
            self._probe_successes = 0
            self._transition_locked("closed")

    def record_failure(self) -> None:
        """A merged solve failed: extend the streak, maybe trip open."""
        with self._lock:
            self._consecutive += 1
            half_open = self._state_locked() == "half_open"
            if half_open:
                self._probe_locked("probe_fail")
                self._probe_successes = 0
            if half_open or self._consecutive >= self.failure_threshold:
                if self._state != "open":
                    self.times_opened += 1
                self._transition_locked("open")
                self._opened_at = self._clock()
