"""Request grouping — the throughput heart of the service.

Independent solve requests that share a device, a dtype, a raw system
size, and a *program signature* execute the exact same per-system
arithmetic, so the batcher merges them into one
:class:`~repro.systems.TridiagonalBatch` and the service solves them in
a single multi-stage pass. The signature is taken from the lowered
instruction :class:`~repro.ir.Program` (see
:attr:`repro.ir.Program.signature`) — the count-independent multiset of
steps the shared engine will interpret — so two requests group together
exactly when the engine would run the same instructions for both.
Grouping by the full signature — not just the shape — is what keeps
every request's answer bit-identical to a standalone solve: the stage-1
split depth depends on the *request's own* system count, so two
requests of the same size may still legitimately land in different
groups.

Grouping is deterministic: groups appear in order of their earliest
request, and requests keep submission order within a group. The golden
regression tests pin this down.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..systems.tridiagonal import TridiagonalBatch

__all__ = ["GroupKey", "ServiceRequest", "SolveGroup", "group_requests"]


@dataclass(frozen=True)
class GroupKey:
    """What must match for two requests to share one merged solve."""

    device: str
    dtype: str
    system_size: int  # raw (pre-padding) size — merged arrays must stack
    signature: Tuple  # Program.signature of the request's lowered plan

    def describe(self) -> str:
        """Compact label for stats and logs."""
        return f"{self.device}|{self.dtype}|n={self.system_size}"


@dataclass
class ServiceRequest:
    """One submitted solve, queued for grouping.

    ``deadline`` is an absolute ``time.monotonic()`` timestamp (seconds)
    or ``None``. The worker checks it immediately before and after the
    merged solve; an expired request fails with
    :class:`~repro.util.errors.DeadlineExceededError` without poisoning
    the rest of its group.
    """

    seq: int  # submission order; ties grouping determinism down
    batch: TridiagonalBatch
    device: str
    key: GroupKey
    plan: "object"  # the per-request SolvePlan (what a standalone solve runs)
    deadline: Optional[float] = None
    # Requested relative-residual tolerance, or None for ungoverned.
    # Merged groups honour the strictest member tolerance (see
    # SolveGroup.strictest_tolerance) so fusing never weakens anyone's
    # error contract.
    tolerance: Optional[float] = None
    future: Future = field(default_factory=Future)


@dataclass
class SolveGroup:
    """Same-key requests destined for one merged multi-stage solve."""

    key: GroupKey
    requests: List[ServiceRequest]

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def num_systems(self) -> int:
        """Total systems across the group's requests."""
        return sum(r.batch.num_systems for r in self.requests)

    def merged_batch(self) -> TridiagonalBatch:
        """All member systems stacked into one batch (submission order)."""
        if len(self.requests) == 1:
            return self.requests[0].batch
        return TridiagonalBatch.stack([r.batch for r in self.requests])

    def strictest_tolerance(self) -> Optional[float]:
        """Tightest member tolerance, or ``None`` when nobody asked."""
        tolerances = [
            r.tolerance for r in self.requests if r.tolerance is not None
        ]
        return min(tolerances) if tolerances else None

    def offsets(self) -> List[int]:
        """Row offset of each request within the merged solution."""
        out, acc = [], 0
        for req in self.requests:
            out.append(acc)
            acc += req.batch.num_systems
        return out


def group_requests(
    requests: List[ServiceRequest],
    *,
    max_group_systems: Optional[int] = None,
) -> List[SolveGroup]:
    """Partition ``requests`` into merged-solve groups, deterministically.

    Requests are scanned in submission (``seq``) order; a request joins
    the open group for its key, or opens a new one when none exists or
    when joining would push the group past ``max_group_systems`` (a cap
    on merged batch height, e.g. to bound working-set size). Groups are
    returned in order of their first member.
    """
    open_groups: Dict[GroupKey, SolveGroup] = {}
    result: List[SolveGroup] = []
    for req in sorted(requests, key=lambda r: r.seq):
        group = open_groups.get(req.key)
        if group is not None and max_group_systems is not None:
            if group.num_systems + req.batch.num_systems > max_group_systems:
                group = None  # cap reached: close it, open a fresh one
        if group is None:
            group = SolveGroup(key=req.key, requests=[])
            open_groups[req.key] = group
            result.append(group)
        group.requests.append(req)
    return result
