"""Batched solve service — production serving on top of the solver core.

The package turns the library's one-shot :func:`repro.core.solve` into a
throughput-oriented service:

- :mod:`.queue` — bounded request queue with block/reject backpressure,
  plus the :class:`CircuitBreaker` that sheds load while the backend
  is failing;
- :mod:`.batcher` — deterministic plan-signature grouping of requests
  into merged solves;
- :mod:`.workers` — :class:`BatchSolveService`, the worker pool that
  executes merged solves with shared tuning-cache and plan reuse;
- :mod:`.stats` — per-group latency/throughput counters.
"""

from .batcher import GroupKey, ServiceRequest, SolveGroup, group_requests
from .queue import OVERFLOW_POLICIES, BoundedRequestQueue, CircuitBreaker
from .stats import GroupStats, ServiceStats
from .workers import BatchSolveService, ServiceResult

__all__ = [
    "BatchSolveService",
    "ServiceResult",
    "BoundedRequestQueue",
    "CircuitBreaker",
    "OVERFLOW_POLICIES",
    "GroupKey",
    "ServiceRequest",
    "SolveGroup",
    "group_requests",
    "ServiceStats",
    "GroupStats",
]
