"""repro — auto-tuned multi-stage tridiagonal solving on a simulated GPU.

Reproduction of Davidson, Zhang & Owens, "An Auto-tuned Method for Solving
Large Tridiagonal Systems on the GPU" (IPDPS 2011).

The package is organised bottom-up:

- :mod:`repro.systems` — tridiagonal batch containers and generators;
- :mod:`repro.algorithms` — the reference algorithms (Thomas, CR, PCR,
  hybrids, LU), vectorised NumPy with LAPACK-checked numerics;
- :mod:`repro.gpu` — the simulated machine model (devices, occupancy,
  memory, cost, execution sessions);
- :mod:`repro.kernels` — the paper's kernels against that model;
- :mod:`repro.core` — the multi-stage solver, planner, and the three
  tuning strategies;
- :mod:`repro.baselines` — the CPU (MKL-class) and prior-GPU comparators;
- :mod:`repro.analysis` — figure/table regeneration for the evaluation;
- :mod:`repro.obs` — structured tracing, metrics, and trace export.

The most common entry points are re-exported here.
"""

__version__ = "1.1.0"

from . import algorithms, analysis, baselines, core, dist, gpu, kernels, numerics, obs, service, systems, util  # noqa: F401
from .core import MultiStageSolver, SelfTuner, SolveResult, SwitchPoints, solve  # noqa: F401
from .numerics import DominanceEstimate, Governor  # noqa: F401
from .obs import MetricsRegistry, Tracer  # noqa: F401
from .dist import DeviceGroup, DistributedSolver, make_device_group  # noqa: F401
from .service import BatchSolveService, ServiceResult  # noqa: F401
from .gpu import Device, DeviceSpec, make_device  # noqa: F401
from .systems import TridiagonalBatch, TridiagonalSystem  # noqa: F401

__all__ = [
    "__version__",
    "algorithms",
    "analysis",
    "baselines",
    "core",
    "dist",
    "gpu",
    "kernels",
    "numerics",
    "obs",
    "service",
    "systems",
    "util",
    "solve",
    "DominanceEstimate",
    "Governor",
    "MetricsRegistry",
    "Tracer",
    "BatchSolveService",
    "ServiceResult",
    "MultiStageSolver",
    "SolveResult",
    "SwitchPoints",
    "SelfTuner",
    "DeviceGroup",
    "DistributedSolver",
    "make_device_group",
    "Device",
    "DeviceSpec",
    "make_device",
    "TridiagonalBatch",
    "TridiagonalSystem",
]
