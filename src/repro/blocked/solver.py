"""Multi-stage block-tridiagonal solver on the simulated GPU.

The scalar solver's strategy transfers blockwise: split oversized systems
with block PCR in global memory, then solve on-chip with a hybrid
block-PCR/block-Thomas kernel. Block arithmetic changes the constants —
O(k³) flops and O(k²) bytes per block row — which shifts every switch
point, so the solver re-tunes itself with the same seeded hill-climb
machinery the scalar self-tuner uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.tuning.search import pow2_hill_climb
from ..gpu.cost import ComputePhase, KernelCost
from ..gpu.executor import Device, SimReport, make_device
from ..gpu.memory import MemoryTraffic
from ..kernels.base import dtype_size
from ..util.errors import PlanError, ResourceExhaustedError
from ..util.validation import check_power_of_two, ilog2, is_power_of_two
from .algorithms import (
    block_pcr_split,
    block_pcr_thomas_solve,
    block_pcr_unsplit_solution,
)
from .containers import BlockTridiagonalBatch

__all__ = ["BlockSolveResult", "BlockMultiStageSolver"]

# Flop-derived issue-slot estimates per block row (dense k^3 kernels).
_BLOCK_PCR_INSTR_K3 = 6.0  # two block solves + four block matmuls
_BLOCK_THOMAS_INSTR_K3 = 3.0  # one solve + two matmuls per sweep step
# Values moved per block row per global split step: own row + write
# (aligned), two neighbour rows (misaligned); each row is 3k^2 + k values.
_ALIGNED_ROWS = 2.0
_NEIGHBOR_ROWS = 2.0


def _row_values(k: int) -> float:
    return 3.0 * k * k + k


@dataclass(frozen=True)
class BlockSolveResult:
    """Solution plus provenance of one blocked solve."""

    X: np.ndarray
    report: SimReport
    stage3_block_rows: int
    thomas_switch: int

    @property
    def simulated_ms(self) -> float:
        """Simulated end-to-end time."""
        return self.report.total_ms


class BlockMultiStageSolver:
    """Split-then-solve for block-tridiagonal batches.

    ``stage3_block_rows`` and ``thomas_switch`` may be pinned; left as
    ``None`` they are tuned per (device, block size, dtype) with seeded
    hill climbs against the cost model and cached on the instance.
    """

    def __init__(
        self,
        device,
        *,
        stage3_block_rows: Optional[int] = None,
        thomas_switch: Optional[int] = None,
    ):
        self.device: Device = make_device(device)
        if stage3_block_rows is not None:
            check_power_of_two(stage3_block_rows, "stage3_block_rows")
        if thomas_switch is not None:
            check_power_of_two(thomas_switch, "thomas_switch")
        self._fixed_stage3 = stage3_block_rows
        self._fixed_thomas = thomas_switch
        self._tuned: Dict[Tuple[int, int], Tuple[int, int]] = {}

    # -- capacity ---------------------------------------------------------

    def max_onchip_block_rows(self, block_size: int, dsize: int) -> int:
        """Largest power-of-two block-row count solvable on one SM.

        Shared memory holds three k×k blocks plus two k-vectors per row;
        registers hold the scalar-equivalent working set (32 per unknown).
        """
        spec = self.device.spec
        bytes_per_row = (3 * block_size * block_size + 2 * block_size) * dsize
        by_smem = spec.shared_mem_per_processor // bytes_per_row
        by_regs = spec.registers_per_processor // (32 * block_size)
        limit = min(by_smem, by_regs)
        if limit < 1:
            raise ResourceExhaustedError(
                f"block size {block_size} does not fit on-chip on "
                f"{self.device.name}"
            )
        return 1 << (int(limit).bit_length() - 1)

    # -- cost model ----------------------------------------------------------

    def _smem_kernel_cost(
        self,
        num_systems: int,
        block_rows: int,
        block_size: int,
        dsize: int,
        thomas_switch: int,
    ) -> KernelCost:
        spec = self.device.spec
        k = block_size
        n = block_rows
        switch = min(thomas_switch, n)
        pcr_steps = ilog2(switch) if switch > 1 else 0

        threads = min(max(32, n * k), spec.max_threads_per_block)
        smem = (3 * k * k + 2 * k) * n * dsize
        regs = max(8, (32 * n * k) // max(1, threads))

        k3 = float(k) ** 3
        pcr_instr = (
            num_systems * pcr_steps * n * _BLOCK_PCR_INSTR_K3 * k3 / 32.0
        )
        rows = n // switch
        thomas_instr = (
            num_systems * 2 * rows * switch * _BLOCK_THOMAS_INSTR_K3 * k3 / 32.0
        )
        traffic = MemoryTraffic()
        traffic.add(
            spec,
            num_systems * n * (_row_values(k) + k) * dsize,
            stride=1,
        )
        return KernelCost(
            name=f"block_pcr_thomas[k={k},T={switch}]",
            grid_blocks=num_systems,
            threads_per_block=threads,
            smem_per_block=smem,
            regs_per_thread=regs,
            phases=[
                ComputePhase(pcr_instr, active_threads_per_block=min(n * k, threads)),
                ComputePhase(
                    thomas_instr,
                    active_threads_per_block=max(1, min(switch * k, threads)),
                ),
            ],
            traffic=traffic,
        )

    def _split_kernel_cost(
        self,
        num_systems: int,
        block_rows: int,
        block_size: int,
        dsize: int,
        steps: int,
    ) -> KernelCost:
        spec = self.device.spec
        k = block_size
        total_rows = num_systems * block_rows
        k3 = float(k) ** 3
        instr = total_rows * steps * _BLOCK_PCR_INSTR_K3 * k3 / 32.0
        traffic = MemoryTraffic()
        traffic.add(
            spec,
            steps * total_rows * _ALIGNED_ROWS * _row_values(k) * dsize,
            stride=1,
        )
        traffic.add(
            spec,
            steps * total_rows * _NEIGHBOR_ROWS * _row_values(k) * dsize,
            misaligned=True,
        )
        return KernelCost(
            name=f"block_global_pcr[steps={steps}]",
            grid_blocks=num_systems,
            threads_per_block=min(256, spec.max_threads_per_block),
            regs_per_thread=32,
            phases=[ComputePhase(instr)],
            traffic=traffic,
        )

    def _price(
        self,
        num_systems: int,
        block_rows: int,
        block_size: int,
        dsize: int,
        stage3: int,
        thomas: int,
    ) -> float:
        session = self.device.session()
        if stage3 < block_rows:
            steps = ilog2(block_rows) - ilog2(stage3)
            session.submit(
                self._split_kernel_cost(
                    num_systems, block_rows, block_size, dsize, steps
                ),
                stage="split",
            )
            num_systems <<= steps
        session.submit(
            self._smem_kernel_cost(
                num_systems, min(stage3, block_rows), block_size, dsize, thomas
            ),
            stage="solve",
        )
        return session.report().total_ms

    # -- tuning ----------------------------------------------------------------

    def tuned_parameters(
        self, block_rows: int, block_size: int, dsize: int
    ) -> Tuple[int, int]:
        """(stage3_block_rows, thomas_switch), tuning on first use."""
        max_rows = self.max_onchip_block_rows(block_size, dsize)
        if self._fixed_stage3 is not None and self._fixed_thomas is not None:
            return min(self._fixed_stage3, max_rows), self._fixed_thomas
        key = (block_size, dsize)
        if key not in self._tuned:
            ref_rows = max(4 * max_rows, 8)
            ref_m = max(64, 4 * self.device.spec.num_processors)
            per_size: Dict[int, int] = {}

            def cost_of_size(size: int) -> float:
                t_opt, t_ms = pow2_hill_climb(
                    lambda t: self._price(
                        ref_m, ref_rows, block_size, dsize, size, t
                    ),
                    seed=min(16, size),
                    lo=1,
                    hi=size,
                )
                per_size[size] = t_opt
                return t_ms

            seed = max_rows
            stage3, _ = pow2_hill_climb(
                cost_of_size, seed=seed, lo=2, hi=max_rows
            )
            self._tuned[key] = (stage3, per_size[stage3])
        stage3, thomas = self._tuned[key]
        if self._fixed_stage3 is not None:
            stage3 = min(self._fixed_stage3, max_rows)
        if self._fixed_thomas is not None:
            thomas = self._fixed_thomas
        return stage3, thomas

    # -- solving ------------------------------------------------------------------

    def solve(self, batch: BlockTridiagonalBatch) -> BlockSolveResult:
        """Solve a block-tridiagonal batch; exact numerics + timing."""
        m, n, k = batch.shape
        if not is_power_of_two(n):
            raise PlanError(
                f"block solver requires a power-of-two block-row count, got {n}"
            )
        dsize = dtype_size(batch.dtype)
        stage3, thomas = self.tuned_parameters(n, k, dsize)
        stage3 = min(stage3, n)

        session = self.device.session()
        work = batch
        steps = 0
        if n > stage3:
            steps = ilog2(n) - ilog2(stage3)
            session.submit(
                self._split_kernel_cost(m, n, k, dsize, steps), stage="split"
            )
            work = block_pcr_split(batch, steps)
        session.submit(
            self._smem_kernel_cost(
                work.num_systems, work.num_block_rows, k, dsize, thomas
            ),
            stage="solve",
        )
        X = block_pcr_thomas_solve(work, thomas)
        X = block_pcr_unsplit_solution(X, steps)
        return BlockSolveResult(
            X=X,
            report=session.report(),
            stage3_block_rows=stage3,
            thomas_switch=thomas,
        )
