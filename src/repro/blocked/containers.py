"""Block-tridiagonal system containers.

The paper's conclusion names "high-performance blocked tridiagonal
solvers" as the next challenge; this package implements that extension.

A block-tridiagonal system of block order ``n`` with ``k×k`` blocks reads

    A_i X_{i-1} + B_i X_i + C_i X_{i+1} = D_i,   i = 0..n-1,

with ``A_0 = C_{n-1} = 0``. :class:`BlockTridiagonalBatch` stores ``m``
such systems as ``(m, n, k, k)`` block arrays and an ``(m, n, k)``
right-hand side. Such systems arise from 2-D elliptic problems
line-ordered along one axis (each grid line is one block row) and from
coupled-channel ODE discretisations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..util.errors import ShapeError
from ..util.validation import check_dtype

__all__ = ["BlockTridiagonalBatch"]


@dataclass(frozen=True)
class BlockTridiagonalBatch:
    """A batch of ``m`` block-tridiagonal systems.

    ``A``, ``B``, ``C`` are ``(m, n, k, k)``; ``D`` is ``(m, n, k)``.
    The unused corner blocks (``A[:, 0]`` and ``C[:, -1]``) are zeroed on
    construction.
    """

    A: np.ndarray
    B: np.ndarray
    C: np.ndarray
    D: np.ndarray

    def __post_init__(self) -> None:
        A = np.asarray(self.A)
        B = np.asarray(self.B)
        C = np.asarray(self.C)
        D = np.asarray(self.D)
        for name, arr in (("A", A), ("B", B), ("C", C)):
            if arr.ndim != 4:
                raise ShapeError(f"{name} must be (m, n, k, k), got ndim={arr.ndim}")
        if D.ndim != 3:
            raise ShapeError(f"D must be (m, n, k), got ndim={D.ndim}")
        if not (A.shape == B.shape == C.shape):
            raise ShapeError(
                f"block arrays disagree: A{A.shape} B{B.shape} C{C.shape}"
            )
        m, n, k, k2 = B.shape
        if k != k2:
            raise ShapeError(f"blocks must be square, got {k}x{k2}")
        if D.shape != (m, n, k):
            raise ShapeError(f"D has shape {D.shape}, expected {(m, n, k)}")
        if n < 1 or k < 1:
            raise ShapeError("need at least one block row and block size >= 1")
        dtype = check_dtype(B, "B")
        for name, arr in (("A", A), ("C", C), ("D", D)):
            if arr.dtype != dtype:
                raise ShapeError(f"{name} dtype {arr.dtype} != B dtype {dtype}")
        if A[:, 0].any():
            A = A.copy()
            A[:, 0] = 0
        if C[:, -1].any():
            C = C.copy()
            C[:, -1] = 0
        object.__setattr__(self, "A", np.ascontiguousarray(A))
        object.__setattr__(self, "B", np.ascontiguousarray(B))
        object.__setattr__(self, "C", np.ascontiguousarray(C))
        object.__setattr__(self, "D", np.ascontiguousarray(D))

    # -- shape ------------------------------------------------------------

    @property
    def num_systems(self) -> int:
        """Independent systems ``m``."""
        return self.B.shape[0]

    @property
    def num_block_rows(self) -> int:
        """Block rows per system ``n``."""
        return self.B.shape[1]

    @property
    def block_size(self) -> int:
        """Block order ``k``."""
        return self.B.shape[2]

    @property
    def shape(self) -> Tuple[int, int, int]:
        """``(m, n, k)``."""
        return (self.num_systems, self.num_block_rows, self.block_size)

    @property
    def total_unknowns(self) -> int:
        """Scalar unknowns per batch: ``m * n * k``."""
        return self.D.size

    @property
    def dtype(self) -> np.dtype:
        """Common dtype."""
        return self.B.dtype

    @property
    def nbytes(self) -> int:
        """Bytes across all arrays."""
        return self.A.nbytes + self.B.nbytes + self.C.nbytes + self.D.nbytes

    # -- linear algebra -----------------------------------------------------

    def matvec(self, X: np.ndarray) -> np.ndarray:
        """Apply the block operator to ``X`` of shape ``(m, n, k)``."""
        X = np.asarray(X, dtype=self.dtype)
        if X.shape != self.D.shape:
            raise ShapeError(f"X has shape {X.shape}, expected {self.D.shape}")
        out = np.einsum("mnij,mnj->mni", self.B, X)
        out[:, 1:] += np.einsum("mnij,mnj->mni", self.A[:, 1:], X[:, :-1])
        out[:, :-1] += np.einsum("mnij,mnj->mni", self.C[:, :-1], X[:, 1:])
        return out

    def residual(self, X: np.ndarray) -> np.ndarray:
        """Per-system relative residual."""
        r = self.matvec(X) - self.D
        num = np.linalg.norm(r.reshape(self.num_systems, -1), axis=1)
        den = np.maximum(
            np.linalg.norm(self.D.reshape(self.num_systems, -1), axis=1),
            np.finfo(self.dtype).tiny,
        )
        return num / den

    def to_dense(self) -> np.ndarray:
        """Dense ``(m, n*k, n*k)`` matrices — for small-system tests only."""
        m, n, k = self.shape
        out = np.zeros((m, n * k, n * k), dtype=self.dtype)
        for i in range(n):
            sl = slice(i * k, (i + 1) * k)
            out[:, sl, sl] = self.B[:, i]
            if i > 0:
                out[:, sl, slice((i - 1) * k, i * k)] = self.A[:, i]
            if i < n - 1:
                out[:, sl, slice((i + 1) * k, (i + 2) * k)] = self.C[:, i]
        return out

    def copy(self) -> "BlockTridiagonalBatch":
        """Deep copy."""
        return BlockTridiagonalBatch(
            self.A.copy(), self.B.copy(), self.C.copy(), self.D.copy()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m, n, k = self.shape
        return f"BlockTridiagonalBatch(m={m}, n={n}, k={k}, dtype={self.dtype})"
