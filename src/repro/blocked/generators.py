"""Generators for block-tridiagonal batches."""

from __future__ import annotations

from typing import Union

import numpy as np

from ..util.errors import ConfigurationError
from ..util.validation import check_positive_int
from .containers import BlockTridiagonalBatch

__all__ = ["random_block_dominant", "poisson_2d_lines", "coupled_channels"]

RngLike = Union[None, int, np.random.Generator]


def _rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def random_block_dominant(
    num_systems: int,
    num_block_rows: int,
    block_size: int,
    *,
    dominance: float = 3.0,
    rng: RngLike = None,
    dtype=np.float64,
) -> BlockTridiagonalBatch:
    """Random block-row diagonally dominant systems.

    Off-diagonal blocks are random with infinity-norm <= 1; diagonal
    blocks are ``s·I + noise`` with ``s`` large enough that every block
    row is strictly dominant (``||B^{-1}|| (||A|| + ||C||) < 1``), which
    guarantees stability of the pivotless block algorithms.
    """
    check_positive_int(num_systems, "num_systems")
    check_positive_int(num_block_rows, "num_block_rows")
    check_positive_int(block_size, "block_size")
    if dominance <= 1.0:
        raise ConfigurationError(f"dominance must be > 1, got {dominance}")
    gen = _rng(rng)
    m, n, k = num_systems, num_block_rows, block_size

    def offdiag():
        blocks = gen.uniform(-1.0, 1.0, (m, n, k, k)).astype(dtype)
        norms = np.abs(blocks).sum(axis=3).max(axis=2)  # infinity norm
        return blocks / np.maximum(norms, 1.0)[:, :, None, None]

    A = offdiag()
    C = offdiag()
    A[:, 0] = 0
    C[:, -1] = 0
    noise = gen.uniform(-0.3, 0.3, (m, n, k, k)).astype(dtype)
    eye = np.eye(k, dtype=dtype)
    # Row sums of |A| + |C| bound the off-diagonal contribution; 2.3
    # covers the two unit-norm blocks plus the noise.
    B = dominance * 2.3 * eye[None, None] + noise
    D = gen.standard_normal((m, n, k)).astype(dtype)
    return BlockTridiagonalBatch(A, B, C, D)


def poisson_2d_lines(
    num_systems: int,
    grid_rows: int,
    grid_cols: int,
    *,
    rng: RngLike = None,
    dtype=np.float64,
) -> BlockTridiagonalBatch:
    """2-D Poisson (5-point stencil), line-ordered: the canonical source.

    Each grid line is one block row: the diagonal block is the 1-D
    operator ``tridiag(-1, 4, -1)`` of size ``grid_cols``; the coupling
    blocks are ``-I``. Block order ``n = grid_rows``, block size
    ``k = grid_cols``.
    """
    gen = _rng(rng)
    m, n, k = num_systems, grid_rows, grid_cols
    eye = np.eye(k, dtype=dtype)
    diag_block = 4.0 * eye - np.eye(k, k=1, dtype=dtype) - np.eye(k, k=-1, dtype=dtype)
    A = np.broadcast_to(-eye, (m, n, k, k)).copy()
    C = np.broadcast_to(-eye, (m, n, k, k)).copy()
    B = np.broadcast_to(diag_block, (m, n, k, k)).copy()
    A[:, 0] = 0
    C[:, -1] = 0
    D = gen.standard_normal((m, n, k)).astype(dtype)
    return BlockTridiagonalBatch(A, B, C, D)


def coupled_channels(
    num_systems: int,
    num_block_rows: int,
    block_size: int,
    *,
    coupling: float = 0.2,
    rng: RngLike = None,
    dtype=np.float64,
) -> BlockTridiagonalBatch:
    """Coupled-channel two-point BVP discretisations.

    ``k`` fields coupled pointwise by a random symmetric positive
    channel matrix, each diffusing along the line — an implicit step of a
    reaction-diffusion system. Dominant by construction for
    ``coupling < 1``.
    """
    if not 0.0 <= coupling < 1.0:
        raise ConfigurationError(f"coupling must be in [0, 1), got {coupling}")
    gen = _rng(rng)
    m, n, k = num_systems, num_block_rows, block_size
    eye = np.eye(k, dtype=dtype)
    # Per-system channel coupling: symmetric, spectral radius <= coupling.
    W = gen.standard_normal((m, k, k)).astype(dtype)
    W = 0.5 * (W + W.transpose(0, 2, 1))
    radius = np.abs(np.linalg.eigvalsh(W)).max(axis=1)
    W *= (coupling / np.maximum(radius, 1e-12))[:, None, None]

    A = np.broadcast_to(-eye, (m, n, k, k)).copy()
    C = np.broadcast_to(-eye, (m, n, k, k)).copy()
    A[:, 0] = 0
    C[:, -1] = 0
    B = (3.0 * eye)[None, None] + W[:, None]
    B = np.broadcast_to(B, (m, n, k, k)).copy()
    D = gen.standard_normal((m, n, k)).astype(dtype)
    return BlockTridiagonalBatch(A, B, C, D)
