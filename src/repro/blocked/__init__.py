"""Block-tridiagonal extension (the paper's stated "next challenge")."""

from .algorithms import (
    block_dense_solve,
    block_pcr_reduce,
    block_pcr_solve,
    block_pcr_split,
    block_pcr_step,
    block_pcr_thomas_solve,
    block_pcr_unsplit_solution,
    block_thomas_solve,
)
from .containers import BlockTridiagonalBatch
from .generators import coupled_channels, poisson_2d_lines, random_block_dominant
from .solver import BlockMultiStageSolver, BlockSolveResult

__all__ = [
    "BlockTridiagonalBatch",
    "random_block_dominant",
    "poisson_2d_lines",
    "coupled_channels",
    "block_thomas_solve",
    "block_pcr_step",
    "block_pcr_reduce",
    "block_pcr_split",
    "block_pcr_unsplit_solution",
    "block_pcr_solve",
    "block_pcr_thomas_solve",
    "block_dense_solve",
    "BlockMultiStageSolver",
    "BlockSolveResult",
]
