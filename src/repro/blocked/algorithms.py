"""Block-tridiagonal algorithms: block Thomas, block PCR, and the hybrid.

Each scalar operation of the tridiagonal algorithms becomes a ``k×k``
block operation: divisions become block solves, multiplications become
block matmuls. All routines vectorise over the batch (and, for PCR, over
block rows) using batched ``numpy.linalg`` kernels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..util.errors import ConfigurationError, SingularSystemError
from ..util.validation import check_power_of_two, ilog2, require
from .containers import BlockTridiagonalBatch

__all__ = [
    "block_thomas_solve",
    "block_pcr_step",
    "block_pcr_reduce",
    "block_pcr_split",
    "block_pcr_unsplit_solution",
    "block_pcr_solve",
    "block_pcr_thomas_solve",
    "block_dense_solve",
]

BlockCoeffs = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _solve_blocks(mats: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Batched ``mats^{-1} rhs`` where rhs may be blocks or vectors."""
    try:
        return np.linalg.solve(mats, rhs)
    except np.linalg.LinAlgError as exc:
        raise SingularSystemError(f"singular diagonal block: {exc}") from exc


def block_thomas_solve(batch: BlockTridiagonalBatch) -> np.ndarray:
    """Block forward-elimination / back-substitution (block Thomas).

    O(n k^3) work per system; serial in ``n``, batched over systems.
    """
    A, B, C, D = batch.A, batch.B, batch.C, batch.D
    m, n, k = batch.shape

    # Forward sweep: Cp_i = (B_i - A_i Cp_{i-1})^{-1} C_i, similarly Dp.
    Cp = np.empty_like(C)
    Dp = np.empty_like(D)
    Cp[:, 0] = _solve_blocks(B[:, 0], C[:, 0])
    Dp[:, 0] = _solve_blocks(B[:, 0], D[:, 0][..., None])[..., 0]
    for i in range(1, n):
        denom = B[:, i] - A[:, i] @ Cp[:, i - 1]
        Cp[:, i] = _solve_blocks(denom, C[:, i])
        rhs = D[:, i] - np.einsum("mij,mj->mi", A[:, i], Dp[:, i - 1])
        Dp[:, i] = _solve_blocks(denom, rhs[..., None])[..., 0]

    X = np.empty_like(D)
    X[:, -1] = Dp[:, -1]
    for i in range(n - 2, -1, -1):
        X[:, i] = Dp[:, i] - np.einsum("mij,mj->mi", Cp[:, i], X[:, i + 1])
    return X


def block_pcr_step(
    A: np.ndarray, B: np.ndarray, C: np.ndarray, D: np.ndarray, stride: int
) -> BlockCoeffs:
    """One block-PCR reduction step at coupling distance ``stride``.

    Out-of-range neighbours act as identity block rows
    (``B = I, A = C = 0, D = 0``).
    """
    m, n, k, _ = B.shape
    s = int(stride)
    require(s >= 1, f"stride must be >= 1, got {s}")
    eye = np.broadcast_to(np.eye(k, dtype=B.dtype), (m, s, k, k))
    zero_blk = np.zeros((m, s, k, k), dtype=B.dtype)
    zero_vec = np.zeros((m, s, k), dtype=B.dtype)

    Ap = np.concatenate([zero_blk, A, zero_blk], axis=1)
    Bp = np.concatenate([eye, B, eye], axis=1)
    Cp = np.concatenate([zero_blk, C, zero_blk], axis=1)
    Dp = np.concatenate([zero_vec, D, zero_vec], axis=1)

    A_lo, B_lo, C_lo, D_lo = (arr[:, 0:n] for arr in (Ap, Bp, Cp, Dp))
    A_hi, B_hi, C_hi, D_hi = (arr[:, 2 * s :] for arr in (Ap, Bp, Cp, Dp))

    # alpha = -A B_lo^{-1}, gamma = -C B_hi^{-1} (right-solves via
    # transposed left-solves).
    alpha = -np.swapaxes(
        _solve_blocks(np.swapaxes(B_lo, -1, -2), np.swapaxes(A, -1, -2)), -1, -2
    )
    gamma = -np.swapaxes(
        _solve_blocks(np.swapaxes(B_hi, -1, -2), np.swapaxes(C, -1, -2)), -1, -2
    )

    new_A = alpha @ A_lo
    new_B = B + alpha @ C_lo + gamma @ A_hi
    new_C = gamma @ C_hi
    new_D = (
        D
        + np.einsum("mnij,mnj->mni", alpha, D_lo)
        + np.einsum("mnij,mnj->mni", gamma, D_hi)
    )
    return new_A, new_B, new_C, new_D


def block_pcr_reduce(batch: BlockTridiagonalBatch, steps: int) -> BlockTridiagonalBatch:
    """Apply ``steps`` block-PCR steps, keeping interleaved order."""
    require(steps >= 0, f"steps must be >= 0, got {steps}")
    A, B, C, D = batch.A, batch.B, batch.C, batch.D
    stride = 1
    for _ in range(steps):
        A, B, C, D = block_pcr_step(A, B, C, D, stride)
        stride *= 2
    return BlockTridiagonalBatch(A, B, C, D)


def _gather(arr: np.ndarray, k_steps: int) -> np.ndarray:
    m, n = arr.shape[:2]
    groups = 1 << k_steps
    sub = n >> k_steps
    rest = arr.shape[2:]
    return np.ascontiguousarray(
        arr.reshape((m, sub, groups) + rest).swapaxes(1, 2)
    ).reshape((m * groups, sub) + rest)


def _scatter(arr: np.ndarray, k_steps: int) -> np.ndarray:
    groups = 1 << k_steps
    mg, sub = arr.shape[:2]
    rest = arr.shape[2:]
    m = mg // groups
    return np.ascontiguousarray(
        arr.reshape((m, groups, sub) + rest).swapaxes(1, 2)
    ).reshape((m, sub * groups) + rest)


def block_pcr_split(
    batch: BlockTridiagonalBatch, steps: int
) -> BlockTridiagonalBatch:
    """Split each system into ``2**steps`` independent contiguous systems."""
    require(steps >= 0, f"steps must be >= 0, got {steps}")
    if steps == 0:
        return batch
    n = batch.num_block_rows
    if n % (1 << steps) != 0:
        raise ConfigurationError(
            f"block rows {n} not divisible by 2**steps = {1 << steps}"
        )
    reduced = block_pcr_reduce(batch, steps)
    return BlockTridiagonalBatch(
        _gather(reduced.A, steps),
        _gather(reduced.B, steps),
        _gather(reduced.C, steps),
        _gather(reduced.D, steps),
    )


def block_pcr_unsplit_solution(X: np.ndarray, steps: int) -> np.ndarray:
    """Undo :func:`block_pcr_split`'s reordering on a solution array."""
    require(steps >= 0, f"steps must be >= 0, got {steps}")
    if steps == 0:
        return X
    return _scatter(X, steps)


def block_pcr_solve(batch: BlockTridiagonalBatch) -> np.ndarray:
    """Pure block PCR: reduce until every block row stands alone."""
    n = batch.num_block_rows
    check_power_of_two(n, "num_block_rows")
    reduced = block_pcr_reduce(batch, ilog2(n))
    return _solve_blocks(reduced.B, reduced.D[..., None])[..., 0]


def block_pcr_thomas_solve(
    batch: BlockTridiagonalBatch, thomas_switch: int = 16
) -> np.ndarray:
    """The multi-stage hybrid, blockwise: PCR-split, then block Thomas."""
    n = batch.num_block_rows
    check_power_of_two(n, "num_block_rows")
    check_power_of_two(thomas_switch, "thomas_switch")
    if n == 1:
        return _solve_blocks(batch.B, batch.D[..., None])[..., 0]
    steps = ilog2(min(thomas_switch, n))
    split = block_pcr_split(batch, steps)
    X = block_thomas_solve(split)
    return block_pcr_unsplit_solution(X, steps)


def block_dense_solve(batch: BlockTridiagonalBatch) -> np.ndarray:
    """Oracle: assemble dense matrices and solve (small systems only)."""
    m, n, k = batch.shape
    dense = batch.to_dense()
    flat = np.linalg.solve(dense, batch.D.reshape(m, n * k, 1))[..., 0]
    return flat.reshape(m, n, k)
