"""Banded matrix batches in LAPACK band storage.

The paper's conclusion names "optimized banded solvers" alongside blocked
ones as the next challenge. A banded system with ``kl`` sub- and ``ku``
super-diagonals is stored in the LAPACK ``gbsv`` layout: an
``(m, kl + ku + 1, n)`` array whose row ``ku + i - j`` column ``j`` holds
``A[i, j]`` — exactly what ``scipy.linalg.solve_banded`` consumes, so
interchange is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..systems.tridiagonal import TridiagonalBatch
from ..util.errors import ShapeError
from ..util.validation import check_dtype

__all__ = ["BandedBatch"]


@dataclass(frozen=True)
class BandedBatch:
    """A batch of ``m`` banded systems ``A x = d``.

    ``bands`` is ``(m, kl + ku + 1, n)`` in LAPACK layout; ``d`` is
    ``(m, n)``. Entries of ``bands`` outside the matrix (the triangular
    corners) are ignored and zeroed on construction.
    """

    bands: np.ndarray
    d: np.ndarray
    kl: int
    ku: int

    def __post_init__(self) -> None:
        bands = np.asarray(self.bands)
        d = np.asarray(self.d)
        if self.kl < 0 or self.ku < 0:
            raise ShapeError("kl and ku must be non-negative")
        if bands.ndim != 3:
            raise ShapeError(f"bands must be 3-D, got ndim={bands.ndim}")
        m, rows, n = bands.shape
        if rows != self.kl + self.ku + 1:
            raise ShapeError(
                f"bands has {rows} rows, expected kl+ku+1 = {self.kl + self.ku + 1}"
            )
        if d.shape != (m, n):
            raise ShapeError(f"d has shape {d.shape}, expected {(m, n)}")
        if self.kl >= n or self.ku >= n:
            raise ShapeError("bandwidths must be smaller than the system size")
        dtype = check_dtype(bands, "bands")
        if d.dtype != dtype:
            raise ShapeError(f"d dtype {d.dtype} != bands dtype {dtype}")
        # Zero the out-of-matrix corners: row r holds diagonal (ku - r),
        # valid for columns max(0, r-ku) .. n-1 + min(0, r-ku).
        bands = bands.copy()
        for r in range(rows):
            diag = self.ku - r  # super-diagonals positive
            if diag > 0:
                bands[:, r, :diag] = 0
            elif diag < 0:
                bands[:, r, n + diag:] = 0
        object.__setattr__(self, "bands", np.ascontiguousarray(bands))
        object.__setattr__(self, "d", np.ascontiguousarray(d))

    # -- shape ------------------------------------------------------------

    @property
    def num_systems(self) -> int:
        """Independent systems ``m``."""
        return self.bands.shape[0]

    @property
    def system_size(self) -> int:
        """Equations per system ``n``."""
        return self.bands.shape[2]

    @property
    def bandwidth(self) -> Tuple[int, int]:
        """``(kl, ku)``."""
        return (self.kl, self.ku)

    @property
    def dtype(self) -> np.dtype:
        """Common dtype."""
        return self.bands.dtype

    # -- accessors ----------------------------------------------------------

    def diagonal(self, offset: int) -> np.ndarray:
        """The ``offset`` diagonal of every system as an ``(m, n)`` array
        (out-of-matrix positions are zero). Positive = super-diagonal."""
        if not -self.kl <= offset <= self.ku:
            raise ShapeError(f"diagonal {offset} outside band ({-self.kl}..{self.ku})")
        return self.bands[:, self.ku - offset, :]

    # -- linear algebra -----------------------------------------------------

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` per system for ``(m, n)`` x."""
        x = np.asarray(x, dtype=self.dtype)
        if x.shape != self.d.shape:
            raise ShapeError(f"x has shape {x.shape}, expected {self.d.shape}")
        n = self.system_size
        out = np.zeros_like(x)
        for offset in range(-self.kl, self.ku + 1):
            diag = self.diagonal(offset)
            if offset >= 0:
                # A[i, i+offset] stored at column i+offset.
                out[:, : n - offset] += diag[:, offset:] * x[:, offset:]
            else:
                out[:, -offset:] += diag[:, : n + offset] * x[:, : n + offset]
        return out

    def residual(self, x: np.ndarray) -> np.ndarray:
        """Per-system relative residual."""
        r = self.matvec(x) - self.d
        num = np.linalg.norm(r, axis=1)
        den = np.maximum(np.linalg.norm(self.d, axis=1), np.finfo(self.dtype).tiny)
        return num / den

    def to_dense(self) -> np.ndarray:
        """Dense ``(m, n, n)`` matrices — for small-system tests only."""
        m, _, n = self.bands.shape
        out = np.zeros((m, n, n), dtype=self.dtype)
        for offset in range(-self.kl, self.ku + 1):
            diag = self.diagonal(offset)
            idx = np.arange(n - abs(offset))
            if offset >= 0:
                out[:, idx, idx + offset] = diag[:, offset:]
            else:
                out[:, idx - offset, idx] = diag[:, : n + offset]
        return out

    # -- conversions ----------------------------------------------------------

    @classmethod
    def from_tridiagonal(cls, batch: TridiagonalBatch) -> "BandedBatch":
        """View a tridiagonal batch as a ``(1, 1)``-banded batch."""
        m, n = batch.shape
        bands = np.zeros((m, 3, n), dtype=batch.dtype)
        bands[:, 0, 1:] = batch.c[:, :-1]
        bands[:, 1, :] = batch.b
        bands[:, 2, :-1] = batch.a[:, 1:]
        return cls(bands, batch.d, kl=1, ku=1)

    def to_tridiagonal(self) -> TridiagonalBatch:
        """Convert a ``(1, 1)``-banded batch back to tridiagonal form."""
        if self.bandwidth != (1, 1):
            raise ShapeError(
                f"only (1,1)-banded batches are tridiagonal, got {self.bandwidth}"
            )
        m, _, n = self.bands.shape
        a = np.zeros((m, n), dtype=self.dtype)
        c = np.zeros((m, n), dtype=self.dtype)
        a[:, 1:] = self.bands[:, 2, :-1]
        c[:, :-1] = self.bands[:, 0, 1:]
        return TridiagonalBatch(a, self.bands[:, 1, :], c, self.d)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BandedBatch(m={self.num_systems}, n={self.system_size}, "
            f"kl={self.kl}, ku={self.ku}, dtype={self.dtype})"
        )
