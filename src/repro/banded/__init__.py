"""Banded-solver extension (the paper's "optimized banded solvers")."""

from .containers import BandedBatch
from .generators import finite_difference_biharmonic, random_banded_dominant
from .lu import banded_lu_solve, scipy_banded_oracle

__all__ = [
    "BandedBatch",
    "random_banded_dominant",
    "finite_difference_biharmonic",
    "banded_lu_solve",
    "scipy_banded_oracle",
]
