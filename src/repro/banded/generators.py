"""Generators for banded batches."""

from __future__ import annotations

from typing import Union

import numpy as np

from ..util.errors import ConfigurationError
from ..util.validation import check_positive_int
from .containers import BandedBatch

__all__ = ["random_banded_dominant", "finite_difference_biharmonic"]

RngLike = Union[None, int, np.random.Generator]


def _rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def random_banded_dominant(
    num_systems: int,
    system_size: int,
    kl: int,
    ku: int,
    *,
    dominance: float = 2.0,
    rng: RngLike = None,
    dtype=np.float64,
) -> BandedBatch:
    """Random strictly diagonally dominant banded systems."""
    check_positive_int(num_systems, "num_systems")
    check_positive_int(system_size, "system_size")
    if kl < 0 or ku < 0 or kl >= system_size or ku >= system_size:
        raise ConfigurationError(
            f"invalid bandwidths kl={kl}, ku={ku} for size {system_size}"
        )
    if dominance < 1.0:
        raise ConfigurationError(f"dominance must be >= 1, got {dominance}")
    gen = _rng(rng)
    m, n = num_systems, system_size
    bands = gen.uniform(-1.0, 1.0, (m, kl + ku + 1, n)).astype(dtype)
    # Off-diagonal magnitude sum per row i: walk the band rows.
    offdiag = np.zeros((m, n), dtype=dtype)
    for r in range(kl + ku + 1):
        if r == ku:
            continue
        offset = ku - r
        # Column j stores A[j - offset, j]; contribution to row i = j - offset.
        if offset >= 0:
            offdiag[:, : n - offset] += np.abs(bands[:, r, offset:])
        else:
            offdiag[:, -offset:] += np.abs(bands[:, r, : n + offset])
    sign = np.where(gen.random((m, n)) < 0.5, -1.0, 1.0).astype(dtype)
    bands[:, ku, :] = sign * (dominance * offdiag + gen.uniform(0.5, 1.5, (m, n)))
    d = gen.standard_normal((m, n)).astype(dtype)
    return BandedBatch(bands, d, kl=kl, ku=ku)


def finite_difference_biharmonic(
    num_systems: int,
    system_size: int,
    *,
    rng: RngLike = None,
    dtype=np.float64,
) -> BandedBatch:
    """1-D biharmonic (fourth-derivative) systems: pentadiagonal
    ``[1, -4, 6, -4, 1]`` — the classic beyond-tridiagonal stencil."""
    gen = _rng(rng)
    m, n = num_systems, system_size
    if n < 5:
        raise ConfigurationError("biharmonic stencil needs n >= 5")
    bands = np.zeros((m, 5, n), dtype=dtype)
    bands[:, 0, :] = 1.0
    bands[:, 1, :] = -4.0
    bands[:, 2, :] = 6.0 + 1.0  # +I keeps it safely nonsingular
    bands[:, 3, :] = -4.0
    bands[:, 4, :] = 1.0
    d = gen.standard_normal((m, n)).astype(dtype)
    return BandedBatch(bands, d, kl=2, ku=2)
