"""Banded LU solve (no pivoting), batched over systems.

The forward elimination walks the columns once, eliminating the ``kl``
entries below each pivot against the ``ku``-wide pivot row — O(n·kl·ku)
work per system, vectorised across the batch. Diagonally dominant inputs
need no pivoting; a vanishing pivot raises
:class:`~repro.util.errors.SingularSystemError`.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_banded as _scipy_solve_banded

from ..util.errors import SingularSystemError
from .containers import BandedBatch

__all__ = ["banded_lu_solve", "scipy_banded_oracle"]


def banded_lu_solve(batch: BandedBatch, *, check: bool = True) -> np.ndarray:
    """Solve every system of ``batch`` by banded Gaussian elimination."""
    n = batch.system_size
    kl, ku = batch.bandwidth
    dtype = batch.dtype
    info = np.finfo(dtype)
    floor = float(info.tiny / info.eps)

    # Work on dense per-diagonal rows: U[o] is the o-th super-diagonal
    # (0..ku), L factors are applied on the fly to the rhs.
    # Row-major working copy indexed [m, band_row, n].
    work = batch.bands.copy()
    rhs = batch.d.copy()

    def entry(i: int, j: int) -> np.ndarray:
        """View of A[i, j] across the batch (band storage)."""
        return work[:, ku + i - j, j]

    for col in range(n):
        piv = entry(col, col)
        if check and (np.abs(piv) <= floor).any():
            idx = int(np.argmax(np.abs(piv) <= floor))
            raise SingularSystemError(
                f"zero pivot at column {col} of system {idx}", system_index=idx
            )
        for below in range(col + 1, min(col + kl + 1, n)):
            factor = entry(below, col) / piv
            # Eliminate row `below` against the pivot row across its band.
            for right in range(col + 1, min(col + ku + 1, n)):
                entry(below, right)[...] -= factor * entry(col, right)
            rhs[:, below] -= factor * rhs[:, col]
            entry(below, col)[...] = 0.0

    # Back substitution on the upper-banded factor.
    x = np.empty_like(rhs)
    for row in range(n - 1, -1, -1):
        acc = rhs[:, row].copy()
        for right in range(row + 1, min(row + ku + 1, n)):
            acc -= entry(row, right) * x[:, right]
        x[:, row] = acc / entry(row, row)
    return x


def scipy_banded_oracle(batch: BandedBatch) -> np.ndarray:
    """Validation oracle via ``scipy.linalg.solve_banded`` (pivoted)."""
    m = batch.num_systems
    x = np.empty_like(batch.d)
    for i in range(m):
        x[i] = _scipy_solve_banded(
            batch.bandwidth, batch.bands[i], batch.d[i]
        )
    return x
