"""Exception hierarchy for :mod:`repro`.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing configuration mistakes from numerical breakdowns.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "SingularSystemError",
    "NumericsError",
    "DeviceError",
    "ResourceExhaustedError",
    "TuningError",
    "PlanError",
    "ServiceError",
    "ServiceOverloadedError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter, switch point, or solver configuration."""


class ShapeError(ReproError, ValueError):
    """Input arrays have inconsistent or unsupported shapes."""


class NumericsError(ReproError, ArithmeticError):
    """A numerical failure (overflow, NaN propagation, divergence)."""


class SingularSystemError(NumericsError):
    """A (near-)singular tridiagonal system was encountered.

    Raised when a pivot underflows during elimination, e.g. a zero diagonal
    in a non-dominant system. The offending system index (within a batch)
    is carried in :attr:`system_index` when known.
    """

    def __init__(self, message: str, system_index: int | None = None):
        super().__init__(message)
        self.system_index = system_index


class DeviceError(ReproError):
    """A problem with a simulated device specification or launch."""


class ResourceExhaustedError(DeviceError):
    """A kernel launch exceeds device resources (shared memory, threads)."""


class TuningError(ReproError):
    """The tuning procedure failed (empty search space, bad seed, ...)."""


class PlanError(ReproError):
    """The planner could not construct a valid multi-stage plan."""


class ServiceError(ReproError):
    """A failure inside the batched solve service."""


class ServiceOverloadedError(ServiceError):
    """The service's pending-request queue is full (backpressure).

    Raised by the ``reject`` overflow policy, or by the ``block`` policy
    when the configured wait times out.
    """

