"""Exception hierarchy for :mod:`repro`.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing configuration mistakes from numerical breakdowns.

The fault-injection and recovery layer (:mod:`repro.faults`) adds three
members, all still under the single :class:`ReproError` root:

- :class:`FaultInjectionError` — a *transient* injected kernel fault; the
  engine retries these with capped exponential backoff before giving up.
- :class:`DeviceLostError` — a *permanent* simulated device failure; the
  distributed solver reacts by re-partitioning onto the survivors.
- :class:`DeadlineExceededError` — a service request missed its deadline;
  the request fails typed rather than returning a late (or worse, stale)
  answer.

Errors raised while the instruction engine interprets a program carry an
``instruction`` attribute — ``(index, opcode, device)`` of the failing
step — so mid-program failures are attributable (see
:meth:`repro.ir.Engine`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "InvalidSystemError",
    "SingularSystemError",
    "NumericsError",
    "NumericalBreakdownError",
    "DeviceError",
    "ResourceExhaustedError",
    "TuningError",
    "PlanError",
    "ServiceError",
    "ServiceOverloadedError",
    "TenantQuotaExceededError",
    "PriorityShedError",
    "FaultInjectionError",
    "DeviceLostError",
    "DeadlineExceededError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter, switch point, or solver configuration."""


class ShapeError(ReproError, ValueError):
    """Input arrays have inconsistent or unsupported shapes."""


class InvalidSystemError(ReproError, ValueError):
    """A submitted system is malformed before any arithmetic happens.

    Raised by :func:`repro.util.validation.check_system_batch` at the
    service boundary for NaN/Inf coefficients or an exactly-zero main
    diagonal — inputs that would otherwise propagate as garbage
    solutions or raw numpy warnings. The offending system index (within
    the batch) is carried in :attr:`system_index` when known.
    """

    def __init__(self, message: str, system_index: int | None = None):
        super().__init__(message)
        self.system_index = system_index


class NumericsError(ReproError, ArithmeticError):
    """A numerical failure (overflow, NaN propagation, divergence)."""


class SingularSystemError(NumericsError):
    """A (near-)singular tridiagonal system was encountered.

    Raised when a pivot underflows during elimination, e.g. a zero diagonal
    in a non-dominant system. The offending system index (within a batch)
    is carried in :attr:`system_index` when known.
    """

    def __init__(self, message: str, system_index: int | None = None):
        super().__init__(message)
        self.system_index = system_index


class NumericalBreakdownError(NumericsError):
    """The numerical-safety governor's escalation ladder ran out of rungs.

    Raised when a solve could not be brought within the caller's
    requested tolerance even after iterative refinement and an
    exact-path re-solve. Carries the diagnostics of the worst offending
    system so callers (and the chaos audit) can attribute the failure
    without re-running anything:

    - :attr:`system_index` — index within the batch of the system with
      the largest relative residual;
    - :attr:`residual` — that system's final relative residual;
    - :attr:`tolerance` — the tolerance the caller requested;
    - :attr:`dominance_ratio` — the system's measured diagonal-dominance
      ratio (``< 1`` means no dominance guarantee);
    - :attr:`attempts` — the ladder rungs that were tried, in order
      (e.g. ``("approx", "refine", "exact")``).
    """

    def __init__(
        self,
        message: str,
        *,
        system_index: int | None = None,
        residual: float | None = None,
        tolerance: float | None = None,
        dominance_ratio: float | None = None,
        attempts: tuple = (),
    ):
        super().__init__(message)
        self.system_index = system_index
        self.residual = residual
        self.tolerance = tolerance
        self.dominance_ratio = dominance_ratio
        self.attempts = tuple(attempts)


class DeviceError(ReproError):
    """A problem with a simulated device specification or launch."""


class ResourceExhaustedError(DeviceError):
    """A kernel launch exceeds device resources (shared memory, threads)."""


class TuningError(ReproError):
    """The tuning procedure failed (empty search space, bad seed, ...)."""


class PlanError(ReproError):
    """The planner could not construct a valid multi-stage plan."""


class ServiceError(ReproError):
    """A failure inside the batched solve service."""


class ServiceOverloadedError(ServiceError):
    """The service is shedding load instead of accepting the request.

    Raised by the ``reject`` overflow policy when the pending queue is
    full, by the ``block`` policy when the configured wait times out,
    and by an *open* :class:`~repro.service.CircuitBreaker` that is
    failing fast after repeated solve failures.
    """


class TenantQuotaExceededError(ServiceOverloadedError):
    """A per-tenant admission quota rejected the request.

    The message names the tenant and the exact quota that tripped
    (``pending`` in-flight cap or ``rate`` token bucket); the same facts
    are carried structured in :attr:`tenant` and :attr:`quota` so load
    shedders and tests can dispatch on them without parsing text.
    """

    def __init__(self, message: str, tenant: str, quota: str):
        super().__init__(message)
        self.tenant = tenant
        self.quota = quota  # "pending" or "rate"


class PriorityShedError(ServiceOverloadedError):
    """Admission shed a request because its priority class is over its
    share of the tier's capacity.

    Lower priority classes have lower occupancy watermarks, so under
    saturation they shed first while ``interactive`` traffic keeps
    flowing. :attr:`priority` is the class that was shed.
    """

    def __init__(self, message: str, priority: str):
        super().__init__(message)
        self.priority = priority


class FaultInjectionError(ReproError):
    """A transient injected fault (simulated kernel failure).

    Raised by a :class:`~repro.faults.FaultInjector` when a
    :class:`~repro.faults.TransientKernelFault` fires on an instruction.
    The engine retries the instruction under its
    :class:`~repro.faults.RetryPolicy`; callers only see this error once
    the per-step attempts or the per-program retry budget are exhausted.
    """


class DeviceLostError(DeviceError):
    """A simulated device failed permanently mid-run.

    ``device`` is the failed device's index within the executing group
    (when known). The distributed solver treats this as a failover
    trigger: re-partition the workload onto the surviving devices and
    replay from the last completed barrier.
    """

    def __init__(self, message: str, device: int | None = None):
        super().__init__(message)
        self.device = device


class DeadlineExceededError(ServiceError):
    """A service request's deadline expired before its result was ready.

    Raised for the individual request (other requests in the same merged
    solve are unaffected); counted separately from queue rejections in
    :class:`~repro.service.ServiceStats`.
    """

