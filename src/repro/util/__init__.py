"""Shared utilities: errors, validation, unit conversions."""

from .errors import (
    ConfigurationError,
    DeadlineExceededError,
    DeviceError,
    DeviceLostError,
    FaultInjectionError,
    NumericsError,
    PlanError,
    ReproError,
    ResourceExhaustedError,
    ShapeError,
    SingularSystemError,
    TuningError,
)
from .validation import (
    check_dtype,
    check_positive_int,
    check_power_of_two,
    check_same_shape,
    ilog2,
    is_power_of_two,
    next_power_of_two,
    require,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "SingularSystemError",
    "NumericsError",
    "DeviceError",
    "ResourceExhaustedError",
    "TuningError",
    "PlanError",
    "FaultInjectionError",
    "DeviceLostError",
    "DeadlineExceededError",
    "require",
    "check_positive_int",
    "check_power_of_two",
    "is_power_of_two",
    "next_power_of_two",
    "check_dtype",
    "check_same_shape",
    "ilog2",
]
