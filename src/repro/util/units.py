"""Unit helpers: bytes, bandwidth, and time conversions.

The machine model works internally in bytes, cycles and milliseconds;
these helpers keep the conversions explicit and self-documenting.
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "GB",
    "kib",
    "mib",
    "gb_per_s_to_bytes_per_ms",
    "seconds_to_ms",
    "ms_to_seconds",
    "us_to_ms",
    "ns_to_ms",
    "cycles_to_ms",
    "fmt_bytes",
    "fmt_ms",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
# Memory-bandwidth vendors quote decimal gigabytes.
GB = 1_000_000_000


def kib(n: float) -> int:
    """``n`` KiB in bytes."""
    return int(n * KIB)


def mib(n: float) -> int:
    """``n`` MiB in bytes."""
    return int(n * MIB)


def gb_per_s_to_bytes_per_ms(gb_per_s: float) -> float:
    """Convert a decimal-GB/s bandwidth to bytes per millisecond."""
    return gb_per_s * GB / 1_000.0


def seconds_to_ms(seconds: float) -> float:
    """Seconds to milliseconds."""
    return seconds * 1_000.0


def ms_to_seconds(ms: float) -> float:
    """Milliseconds to seconds."""
    return ms / 1_000.0


def us_to_ms(us: float) -> float:
    """Microseconds to milliseconds."""
    return us / 1_000.0


def ns_to_ms(ns: float) -> float:
    """Nanoseconds to milliseconds."""
    return ns / 1_000_000.0


def cycles_to_ms(cycles: float, clock_mhz: float) -> float:
    """Convert a cycle count at ``clock_mhz`` to milliseconds."""
    return cycles / (clock_mhz * 1_000.0)


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.2f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_ms(ms: float) -> str:
    """Human-readable duration from milliseconds."""
    if ms < 1e-3:
        return f"{ms * 1e6:.1f} ns"
    if ms < 1.0:
        return f"{ms * 1e3:.1f} us"
    if ms < 1_000.0:
        return f"{ms:.2f} ms"
    return f"{ms / 1_000.0:.3f} s"
