"""Argument-validation helpers shared across the library.

These helpers centralise the error messages so tests can rely on stable
wording, and keep hot-path validation cheap (pure ``ndarray`` attribute
checks, no copies).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .errors import ConfigurationError, InvalidSystemError, ShapeError

__all__ = [
    "require",
    "check_positive_int",
    "check_power_of_two",
    "is_power_of_two",
    "next_power_of_two",
    "check_dtype",
    "check_same_shape",
    "check_system_batch",
    "ilog2",
]

_SUPPORTED_DTYPES = (np.float32, np.float64)


def require(condition: bool, message: str, exc: type = ConfigurationError) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return int(value)


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def check_power_of_two(value: int, name: str) -> int:
    """Validate that ``value`` is a positive power of two and return it."""
    check_positive_int(value, name)
    if not is_power_of_two(value):
        raise ConfigurationError(f"{name} must be a power of two, got {value}")
    return int(value)


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= ``value`` (>= 1)."""
    if value <= 1:
        return 1
    return 1 << (int(value) - 1).bit_length()


def ilog2(value: int) -> int:
    """Exact integer log2 of a power of two."""
    check_power_of_two(value, "value")
    return int(value).bit_length() - 1


def check_dtype(arr: np.ndarray, name: str) -> np.dtype:
    """Validate that ``arr`` has a supported floating dtype."""
    if arr.dtype not in _SUPPORTED_DTYPES:
        raise ShapeError(
            f"{name} must have dtype float32 or float64, got {arr.dtype}"
        )
    return arr.dtype


def check_system_batch(batch, *, context: str = "request"):
    """Reject malformed systems with a typed :class:`InvalidSystemError`.

    The service-boundary gate: NaN/Inf anywhere in the coefficients or
    right-hand side, or an exactly-zero main-diagonal entry, fails fast
    with the offending system's index instead of propagating as a
    garbage solution or a raw numpy warning deep inside a merged group
    solve. Two vectorised reductions over the batch — cheap relative to
    any solve. Returns ``batch`` so call sites can chain.
    """
    finite = (
        np.isfinite(batch.a).all(axis=1)
        & np.isfinite(batch.b).all(axis=1)
        & np.isfinite(batch.c).all(axis=1)
        & np.isfinite(batch.d).all(axis=1)
    )
    if not finite.all():
        index = int(np.argmin(finite))
        raise InvalidSystemError(
            f"{context}: system {index} contains NaN or Inf coefficients",
            system_index=index,
        )
    diag_ok = (batch.b != 0).all(axis=1)
    if not diag_ok.all():
        index = int(np.argmin(diag_ok))
        raise InvalidSystemError(
            f"{context}: system {index} has a zero main-diagonal entry",
            system_index=index,
        )
    return batch


def check_same_shape(arrays: Sequence[np.ndarray], names: Iterable[str]) -> tuple:
    """Validate that all arrays share one shape; return that shape."""
    names = list(names)
    shapes = [a.shape for a in arrays]
    first = shapes[0]
    for shape, name in zip(shapes[1:], names[1:]):
        if shape != first:
            raise ShapeError(
                f"{name} has shape {shape}, expected {first} (same as {names[0]})"
            )
    return first
