"""Structural and numerical properties of tridiagonal batches.

These predicates back the stability contracts in the algorithm modules
(Thomas and cyclic reduction are unconditionally stable only for
diagonally dominant or symmetric positive-definite systems) and are used
by property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tridiagonal import TridiagonalBatch

__all__ = [
    "dominance_margin",
    "dominance_ratio",
    "is_diagonally_dominant",
    "is_symmetric",
    "is_toeplitz",
    "has_zero_diagonal",
    "condition_estimate",
    "BatchSummary",
    "summarize",
]


def dominance_margin(batch: TridiagonalBatch) -> np.ndarray:
    """Per-system worst-case dominance margin ``min_i(|b| - |a| - |c|)``.

    Positive values mean strict diagonal dominance; zero means weak
    dominance; negative means no dominance guarantee.
    """
    margin = np.abs(batch.b) - np.abs(batch.a) - np.abs(batch.c)
    return margin.min(axis=1)


def dominance_ratio(batch: TridiagonalBatch) -> np.ndarray:
    """Per-system worst-case dominance ratio ``min_i |b| / (|a| + |c|)``.

    Rows with zero off-diagonals are infinitely dominant (they couple to
    nothing). A ratio ``d > 1`` means strict row dominance; the SPIKE
    coupling spikes then decay like ``(1/d)^k`` with distance ``k`` from
    the chunk boundary (Li, Serban & Negrut, arXiv:1509.07919), which is
    what the truncated-SPIKE error bound in
    :class:`repro.numerics.DominanceEstimate` is built on.
    """
    off = np.abs(batch.a) + np.abs(batch.c)
    ratio = np.divide(
        np.abs(batch.b),
        off,
        out=np.full(batch.shape, np.inf, dtype=np.float64),
        where=off > 0,
    )
    return ratio.min(axis=1)


def is_diagonally_dominant(batch: TridiagonalBatch, *, strict: bool = False) -> bool:
    """True when every system in the batch is (strictly) row dominant."""
    margins = dominance_margin(batch)
    return bool((margins > 0).all() if strict else (margins >= 0).all())


def is_symmetric(batch: TridiagonalBatch, *, rtol: float = 1e-12) -> bool:
    """True when ``c[i] == a[i+1]`` for every row of every system."""
    if batch.system_size < 2:
        return True
    return bool(
        np.allclose(batch.c[:, :-1], batch.a[:, 1:], rtol=rtol, atol=rtol)
    )


def is_toeplitz(batch: TridiagonalBatch, *, rtol: float = 1e-12) -> bool:
    """True when each diagonal is constant within every system."""
    n = batch.system_size
    if n < 2:
        return True
    const = True
    const &= bool(np.allclose(batch.b, batch.b[:, :1], rtol=rtol, atol=rtol))
    if n >= 2:
        const &= bool(
            np.allclose(batch.a[:, 1:], batch.a[:, 1:2], rtol=rtol, atol=rtol)
        )
        const &= bool(
            np.allclose(batch.c[:, :-1], batch.c[:, :1], rtol=rtol, atol=rtol)
        )
    return const


def has_zero_diagonal(batch: TridiagonalBatch, *, tol: float = 0.0) -> bool:
    """True when any main-diagonal entry has magnitude <= ``tol``."""
    return bool((np.abs(batch.b) <= tol).any())


def condition_estimate(batch: TridiagonalBatch, *, max_size: int = 2048) -> np.ndarray:
    """Per-system 1-norm condition estimate via dense matrices.

    Quadratic memory in ``n``; guarded by ``max_size`` because it exists
    for tests and diagnostics, not production paths.
    """
    if batch.system_size > max_size:
        raise ValueError(
            "condition_estimate is test-only; system_size "
            f"{batch.system_size} > max_size {max_size}"
        )
    dense = batch.to_dense()
    return np.array([np.linalg.cond(mat, 1) for mat in dense])


@dataclass(frozen=True)
class BatchSummary:
    """Descriptive snapshot of a batch, used in logs and reports."""

    num_systems: int
    system_size: int
    dtype: str
    nbytes: int
    diagonally_dominant: bool
    symmetric: bool
    toeplitz: bool
    min_dominance_margin: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        flags = []
        if self.diagonally_dominant:
            flags.append("dominant")
        if self.symmetric:
            flags.append("symmetric")
        if self.toeplitz:
            flags.append("toeplitz")
        tag = ",".join(flags) or "general"
        return (
            f"{self.num_systems}x{self.system_size} {self.dtype} [{tag}] "
            f"({self.nbytes} bytes)"
        )


def summarize(batch: TridiagonalBatch) -> BatchSummary:
    """Compute a :class:`BatchSummary` for ``batch``."""
    return BatchSummary(
        num_systems=batch.num_systems,
        system_size=batch.system_size,
        dtype=str(batch.dtype),
        nbytes=batch.nbytes,
        diagonally_dominant=is_diagonally_dominant(batch),
        symmetric=is_symmetric(batch),
        toeplitz=is_toeplitz(batch),
        min_dominance_margin=float(dominance_margin(batch).min()),
    )
