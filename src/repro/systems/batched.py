"""Interleaved (structure-of-arrays) batch layout.

:class:`~repro.systems.tridiagonal.TridiagonalBatch` stores ``m`` systems
of size ``n`` row-major: the four coefficient arrays are ``(m, n)``, so
equation ``i`` of one system sits ``n`` elements away from equation
``i+1`` — fine for host algorithms sweeping along a system, but the
worst possible layout for a GPU batch, where a warp wants to touch
*equation i of 32 adjacent systems* in one transaction.

:class:`BatchedTridiagonal` is the transposed view the batched solvers of
Gloster et al. (arXiv:1909.04539) and Carroll et al. (arXiv:2107.05395)
use: arrays are ``(n, m)``, all systems' equation ``i`` adjacent, so
every sweep over the equation axis is a fully coalesced pass over the
system axis. ``interleave``/``deinterleave`` convert between the two
layouts and round-trip bit-exactly; since both layouts hold the same
floats per logical element, every elementwise algorithm produces
bit-identical values in either layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..util.errors import ShapeError
from ..util.validation import check_dtype, check_same_shape
from .tridiagonal import TridiagonalBatch

__all__ = ["BatchedTridiagonal", "interleave", "deinterleave"]


@dataclass(frozen=True)
class BatchedTridiagonal:
    """``m`` tridiagonal systems of size ``n`` in interleaved SoA layout.

    Arrays are ``(n, m)``: row ``i`` holds equation ``i`` of every
    system, column ``s`` holds system ``s``. The same corner convention
    as :class:`TridiagonalBatch` applies (``a[0, :]`` and ``c[-1, :]``
    are unused and fixed to 0).
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: np.ndarray

    def __post_init__(self) -> None:
        arrays = {}
        for name in ("a", "b", "c", "d"):
            arr = np.asarray(getattr(self, name))
            if arr.ndim != 2:
                raise ShapeError(
                    f"{name} must be 2-D (n, m) interleaved, got ndim={arr.ndim}"
                )
            arrays[name] = arr
        check_same_shape(list(arrays.values()), list(arrays))
        dtype = check_dtype(arrays["b"], "b")
        for name in ("a", "c", "d"):
            if arrays[name].dtype != dtype:
                raise ShapeError(
                    f"{name} has dtype {arrays[name].dtype}, expected {dtype} "
                    "(same as b)"
                )
        if arrays["b"].shape[0] < 1:
            raise ShapeError("systems must have at least one equation")
        a, c = arrays["a"], arrays["c"]
        if a[0, :].any():
            a = a.copy()
            a[0, :] = 0
        if c[-1, :].any():
            c = c.copy()
            c[-1, :] = 0
        arrays["a"], arrays["c"] = a, c
        for name, arr in arrays.items():
            object.__setattr__(self, name, np.ascontiguousarray(arr))

    # -- shape ------------------------------------------------------------

    @property
    def num_systems(self) -> int:
        """Number of independent systems ``m`` (the fast axis)."""
        return self.b.shape[1]

    @property
    def system_size(self) -> int:
        """Number of equations per system ``n`` (the slow axis)."""
        return self.b.shape[0]

    @property
    def shape(self) -> Tuple[int, int]:
        """Logical ``(m, n)`` — matching :class:`TridiagonalBatch`."""
        return (self.num_systems, self.system_size)

    @property
    def layout_shape(self) -> Tuple[int, int]:
        """Physical ``(n, m)`` array shape."""
        return self.b.shape

    @property
    def total_equations(self) -> int:
        """Total equations in the batch, ``m * n``."""
        return self.b.size

    @property
    def dtype(self) -> np.dtype:
        """Common dtype of the coefficient arrays."""
        return self.b.dtype

    @property
    def nbytes(self) -> int:
        """Total bytes of the four coefficient arrays."""
        return self.a.nbytes + self.b.nbytes + self.c.nbytes + self.d.nbytes

    # -- layout conversion --------------------------------------------------

    @classmethod
    def interleave(cls, batch: TridiagonalBatch) -> "BatchedTridiagonal":
        """Transpose a row-major batch into the interleaved layout."""
        return cls(
            np.ascontiguousarray(batch.a.T),
            np.ascontiguousarray(batch.b.T),
            np.ascontiguousarray(batch.c.T),
            np.ascontiguousarray(batch.d.T),
        )

    @classmethod
    def interleave_all(
        cls, batches: "List[TridiagonalBatch]"
    ) -> "BatchedTridiagonal":
        """Interleave a ragged list of equal-``n`` batches into one.

        System counts may differ per batch (the service's merged groups
        are exactly this shape); systems land in list order along the
        fast axis.
        """
        if not batches:
            raise ShapeError("cannot interleave an empty list of batches")
        sizes = {batch.system_size for batch in batches}
        if len(sizes) != 1:
            raise ShapeError(
                f"cannot interleave batches of differing sizes {sorted(sizes)}"
            )
        return cls(
            np.concatenate([t.a for t in batches]).T,
            np.concatenate([t.b for t in batches]).T,
            np.concatenate([t.c for t in batches]).T,
            np.concatenate([t.d for t in batches]).T,
        )

    def deinterleave(self) -> TridiagonalBatch:
        """Transpose back to the row-major :class:`TridiagonalBatch`."""
        return TridiagonalBatch(
            np.ascontiguousarray(self.a.T),
            np.ascontiguousarray(self.b.T),
            np.ascontiguousarray(self.c.T),
            np.ascontiguousarray(self.d.T),
        )

    def __len__(self) -> int:
        return self.num_systems

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchedTridiagonal(m={self.num_systems}, n={self.system_size}, "
            f"dtype={self.dtype}, layout=interleaved)"
        )


def interleave(batch: TridiagonalBatch) -> BatchedTridiagonal:
    """Functional alias for :meth:`BatchedTridiagonal.interleave`."""
    return BatchedTridiagonal.interleave(batch)


def deinterleave(batched: BatchedTridiagonal) -> TridiagonalBatch:
    """Functional alias for :meth:`BatchedTridiagonal.deinterleave`."""
    return batched.deinterleave()
