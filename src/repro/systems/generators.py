"""Workload generators for tridiagonal batches.

The paper's evaluation draws on the application domains listed in its
introduction: ADI methods, spectral Poisson solvers, cubic splines, ocean
models, and preconditioners. Each generator here produces a
:class:`~repro.systems.tridiagonal.TridiagonalBatch` with the structure of
one of those sources, plus generic random batches (diagonally dominant by
construction, so every algorithm in the library is stable on them) and
deliberately hostile batches for failure-injection tests.

All generators accept ``rng`` (a :class:`numpy.random.Generator`) or
``seed`` for reproducibility, and ``dtype``.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..util.errors import ConfigurationError
from ..util.validation import check_positive_int
from .tridiagonal import TridiagonalBatch

__all__ = [
    "random_dominant",
    "random_uniform",
    "poisson_1d",
    "cubic_spline",
    "adi_lines",
    "toeplitz",
    "ocean_mixing",
    "ill_conditioned",
    "singular",
    "huge_dynamic_range",
    "nan_poisoned",
    "inf_poisoned",
    "identity",
    "from_solution",
    "mixed_requests",
]

RngLike = Union[None, int, np.random.Generator]


def _rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def random_dominant(
    num_systems: int,
    system_size: int,
    *,
    dominance: float = 2.0,
    rng: RngLike = None,
    dtype=np.float64,
) -> TridiagonalBatch:
    """Random strictly diagonally dominant systems.

    Off-diagonals are uniform in ``[-1, 1]``; the main diagonal is
    ``dominance * (|a| + |c|) + u`` with ``u`` uniform in ``[0.5, 1.5]``,
    with a random sign, giving dominance ratio >= ``dominance`` everywhere.
    This is the workhorse generator: every solver (Thomas included) is
    unconditionally stable on these systems.
    """
    check_positive_int(num_systems, "num_systems")
    check_positive_int(system_size, "system_size")
    if dominance < 1.0:
        raise ConfigurationError(f"dominance must be >= 1, got {dominance}")
    gen = _rng(rng)
    m, n = num_systems, system_size
    a = gen.uniform(-1.0, 1.0, (m, n)).astype(dtype)
    c = gen.uniform(-1.0, 1.0, (m, n)).astype(dtype)
    a[:, 0] = 0
    c[:, -1] = 0
    mag = dominance * (np.abs(a) + np.abs(c)) + gen.uniform(0.5, 1.5, (m, n))
    sign = np.where(gen.random((m, n)) < 0.5, -1.0, 1.0)
    b = (sign * mag).astype(dtype)
    d = gen.uniform(-1.0, 1.0, (m, n)).astype(dtype)
    return TridiagonalBatch(a, b, c, d)


def random_uniform(
    num_systems: int,
    system_size: int,
    *,
    rng: RngLike = None,
    dtype=np.float64,
) -> TridiagonalBatch:
    """Random systems with *no* dominance guarantee.

    Useful for stress-testing pivotless algorithms; solvable with the LU
    baseline (which scipy validates) but Thomas/CR/PCR may lose accuracy.
    """
    gen = _rng(rng)
    m, n = num_systems, system_size
    a = gen.standard_normal((m, n)).astype(dtype)
    b = gen.standard_normal((m, n)).astype(dtype)
    c = gen.standard_normal((m, n)).astype(dtype)
    d = gen.standard_normal((m, n)).astype(dtype)
    # Keep the diagonal away from exact zero so LU without pivoting is
    # defined, while still far from dominant.
    b = np.where(np.abs(b) < 0.1, b + np.sign(b + 1e-30) * 0.2, b)
    a[:, 0] = 0
    c[:, -1] = 0
    return TridiagonalBatch(a, b, c, d)


def poisson_1d(
    num_systems: int,
    system_size: int,
    *,
    rng: RngLike = None,
    dtype=np.float64,
) -> TridiagonalBatch:
    """1-D Poisson (second-difference) systems ``[-1, 2, -1]``.

    The classic substrate of spectral Poisson solvers (Hockney) and
    multigrid line smoothers (Göddeke & Strzodka). Weakly diagonally
    dominant; RHS is a random smooth field.
    """
    gen = _rng(rng)
    m, n = num_systems, system_size
    a = np.full((m, n), -1.0, dtype=dtype)
    b = np.full((m, n), 2.0, dtype=dtype)
    c = np.full((m, n), -1.0, dtype=dtype)
    a[:, 0] = 0
    c[:, -1] = 0
    # Smooth RHS: superpose a few low-frequency sines per system.
    x = np.linspace(0.0, np.pi, n, dtype=dtype)
    d = np.zeros((m, n), dtype=dtype)
    for k in range(1, 4):
        amp = gen.uniform(-1.0, 1.0, (m, 1)).astype(dtype)
        d += amp * np.sin(k * x)[None, :].astype(dtype)
    return TridiagonalBatch(a, b, c, d)


def cubic_spline(
    num_systems: int,
    system_size: int,
    *,
    rng: RngLike = None,
    dtype=np.float64,
) -> TridiagonalBatch:
    """Natural cubic-spline second-derivative systems.

    For knots ``t_0..t_{n+1}`` with spacings ``h_i``, the interior system
    for the spline second derivatives has rows ``h_{i-1} M_{i-1} +
    2(h_{i-1}+h_i) M_i + h_i M_{i+1} = rhs_i`` — strictly diagonally
    dominant for any positive spacings. Spacings are randomised to make the
    systems non-Toeplitz.
    """
    gen = _rng(rng)
    m, n = num_systems, system_size
    h = gen.uniform(0.5, 1.5, (m, n + 1)).astype(dtype)
    y = gen.standard_normal((m, n + 2)).astype(dtype)
    a = np.zeros((m, n), dtype=dtype)
    b = np.zeros((m, n), dtype=dtype)
    c = np.zeros((m, n), dtype=dtype)
    a[:, 1:] = h[:, 1:n]
    b[:] = 2.0 * (h[:, :n] + h[:, 1 : n + 1])
    c[:, :-1] = h[:, 1:n]
    slope = (y[:, 1:] - y[:, :-1]) / h
    d = (6.0 * (slope[:, 1:] - slope[:, :-1])).astype(dtype)
    return TridiagonalBatch(a, b, c, d)


def adi_lines(
    grid_rows: int,
    grid_cols: int,
    *,
    diffusivity: float = 1.0,
    dt: float = 0.1,
    dx: float = 1.0,
    rng: RngLike = None,
    dtype=np.float64,
) -> TridiagonalBatch:
    """One ADI half-step's worth of line systems for a 2-D diffusion grid.

    An alternating-direction-implicit step on a ``grid_rows × grid_cols``
    grid solves ``grid_rows`` independent tridiagonal systems of size
    ``grid_cols`` (the x-sweep). Matrix: ``(1 + 2r) I - r (shift+ + shift-)``
    with ``r = diffusivity * dt / (2 dx^2)`` — strictly dominant for r > 0.
    This mirrors Sakharnykh's fluid-simulation workload.
    """
    check_positive_int(grid_rows, "grid_rows")
    check_positive_int(grid_cols, "grid_cols")
    if diffusivity <= 0 or dt <= 0 or dx <= 0:
        raise ConfigurationError("diffusivity, dt and dx must be positive")
    gen = _rng(rng)
    r = diffusivity * dt / (2.0 * dx * dx)
    m, n = grid_rows, grid_cols
    a = np.full((m, n), -r, dtype=dtype)
    b = np.full((m, n), 1.0 + 2.0 * r, dtype=dtype)
    c = np.full((m, n), -r, dtype=dtype)
    a[:, 0] = 0
    c[:, -1] = 0
    field = gen.random((m, n)).astype(dtype)
    # Explicit half-step in the other direction forms the RHS.
    lap_y = np.zeros_like(field)
    lap_y[1:-1] = field[2:] - 2.0 * field[1:-1] + field[:-2]
    d = field + r * lap_y
    return TridiagonalBatch(a, b, c, d.astype(dtype))


def toeplitz(
    num_systems: int,
    system_size: int,
    *,
    sub: float = -1.0,
    diag: float = 4.0,
    sup: float = -1.0,
    rng: RngLike = None,
    dtype=np.float64,
) -> TridiagonalBatch:
    """Constant-coefficient (Toeplitz) systems with a random RHS."""
    if abs(diag) < abs(sub) + abs(sup):
        raise ConfigurationError(
            "toeplitz generator requires |diag| >= |sub| + |sup| for stability"
        )
    gen = _rng(rng)
    m, n = num_systems, system_size
    a = np.full((m, n), sub, dtype=dtype)
    b = np.full((m, n), diag, dtype=dtype)
    c = np.full((m, n), sup, dtype=dtype)
    a[:, 0] = 0
    c[:, -1] = 0
    d = gen.standard_normal((m, n)).astype(dtype)
    return TridiagonalBatch(a, b, c, d)


def ocean_mixing(
    num_columns: int,
    num_levels: int,
    *,
    dt: float = 600.0,
    rng: RngLike = None,
    dtype=np.float64,
) -> TridiagonalBatch:
    """Vertical-mixing columns in the style of HYCOM-like ocean models.

    Each water column yields an implicit vertical-diffusion system with
    depth-varying mixing coefficients (strong near the surface mixed layer,
    weak in the interior) and non-uniform layer thicknesses.
    """
    gen = _rng(rng)
    m, n = num_columns, num_levels
    depth = np.cumsum(gen.uniform(1.0, 10.0, (m, n)), axis=1)
    thick = np.diff(np.concatenate([np.zeros((m, 1)), depth], axis=1))
    # Mixing coefficient: ~1e-2 m^2/s in the mixed layer decaying to 1e-5.
    kappa = (1e-5 + 1e-2 * np.exp(-depth / 50.0)).astype(dtype)
    k_up = np.zeros((m, n))
    k_up[:, 1:] = 0.5 * (kappa[:, 1:] + kappa[:, :-1])
    k_dn = np.zeros((m, n))
    k_dn[:, :-1] = k_up[:, 1:]
    a = (-dt * k_up / (thick * thick)).astype(dtype)
    c = (-dt * k_dn / (thick * thick)).astype(dtype)
    a[:, 0] = 0
    c[:, -1] = 0
    b = (1.0 - a - c).astype(dtype)
    temp = (20.0 * np.exp(-depth / 200.0) + gen.normal(0, 0.1, (m, n))).astype(dtype)
    return TridiagonalBatch(a, b, c, temp)


def ill_conditioned(
    num_systems: int,
    system_size: int,
    *,
    epsilon: float = 1e-8,
    rng: RngLike = None,
    dtype=np.float64,
) -> TridiagonalBatch:
    """Nearly singular systems: dominance margin shrunk to ``epsilon``.

    Used to probe accuracy degradation; solutions still exist but condition
    numbers grow like ``1/epsilon``.
    """
    gen = _rng(rng)
    m, n = num_systems, system_size
    a = np.full((m, n), -1.0, dtype=dtype)
    c = np.full((m, n), -1.0, dtype=dtype)
    a[:, 0] = 0
    c[:, -1] = 0
    b = (np.abs(a) + np.abs(c) + epsilon).astype(dtype)
    d = gen.standard_normal((m, n)).astype(dtype)
    return TridiagonalBatch(a, b, c, d)


def singular(
    num_systems: int,
    system_size: int,
    *,
    zero_row: Optional[int] = None,
    dtype=np.float64,
) -> TridiagonalBatch:
    """Exactly singular systems (one all-zero row) for failure injection."""
    if system_size < 2:
        raise ConfigurationError("singular systems need size >= 2")
    m, n = num_systems, system_size
    base = toeplitz(m, n, dtype=dtype, rng=0)
    a, b, c, d = (arr.copy() for arr in (base.a, base.b, base.c, base.d))
    row = n // 2 if zero_row is None else int(zero_row)
    a[:, row] = 0
    b[:, row] = 0
    c[:, row] = 0
    return TridiagonalBatch(a, b, c, d)


def huge_dynamic_range(
    num_systems: int,
    system_size: int,
    *,
    decades: float = 12.0,
    rng: RngLike = None,
    dtype=np.float64,
) -> TridiagonalBatch:
    """Dominant systems with row magnitudes spanning ``decades`` of scale.

    Each row of a :func:`random_dominant` base is multiplied — all four
    arrays, RHS included — by ``10**u`` with ``u`` uniform in
    ``[-decades/2, decades/2]``. Row scaling preserves both the exact
    solution and the per-row dominance ratio, so these systems are
    mathematically benign but numerically abusive: naive residual norms
    and absolute-error thresholds break long before the solver does.
    """
    check_positive_int(num_systems, "num_systems")
    check_positive_int(system_size, "system_size")
    gen = _rng(rng)
    base = random_dominant(num_systems, system_size, rng=gen, dtype=dtype)
    scale = np.power(
        10.0,
        gen.uniform(-decades / 2, decades / 2, (num_systems, system_size)),
    ).astype(dtype)
    return TridiagonalBatch(
        base.a * scale, base.b * scale, base.c * scale, base.d * scale
    )


def _poisoned(
    num_systems: int,
    system_size: int,
    poison: float,
    rng: RngLike,
    dtype,
) -> TridiagonalBatch:
    """A dominant batch with one coefficient replaced by ``poison``."""
    gen = _rng(rng)
    base = random_dominant(num_systems, system_size, rng=gen, dtype=dtype)
    b = base.b.copy()
    system = int(gen.integers(0, num_systems))
    row = int(gen.integers(0, system_size))
    b[system, row] = poison
    return TridiagonalBatch(base.a, b, base.c, base.d)


def nan_poisoned(
    num_systems: int,
    system_size: int,
    *,
    rng: RngLike = None,
    dtype=np.float64,
) -> TridiagonalBatch:
    """One random main-diagonal entry replaced by NaN.

    Boundary validation (:func:`~repro.util.validation.check_system_batch`)
    must reject these with a typed error before any kernel runs.
    """
    check_positive_int(num_systems, "num_systems")
    check_positive_int(system_size, "system_size")
    return _poisoned(num_systems, system_size, float("nan"), rng, dtype)


def inf_poisoned(
    num_systems: int,
    system_size: int,
    *,
    rng: RngLike = None,
    dtype=np.float64,
) -> TridiagonalBatch:
    """One random main-diagonal entry replaced by +Inf (see nan_poisoned)."""
    check_positive_int(num_systems, "num_systems")
    check_positive_int(system_size, "system_size")
    return _poisoned(num_systems, system_size, float("inf"), rng, dtype)


def identity(
    num_systems: int, system_size: int, *, dtype=np.float64
) -> TridiagonalBatch:
    """Identity systems: solution equals the RHS. Handy fixed point."""
    m, n = num_systems, system_size
    z = np.zeros((m, n), dtype=dtype)
    b = np.ones((m, n), dtype=dtype)
    d = np.arange(m * n, dtype=dtype).reshape(m, n)
    return TridiagonalBatch(z, b, z.copy(), d)


def from_solution(
    batch: TridiagonalBatch, x: np.ndarray
) -> TridiagonalBatch:
    """Replace the RHS so the exact solution is ``x`` (for oracle tests)."""
    return batch.with_rhs(batch.matvec(np.asarray(x, dtype=batch.dtype)))


def mixed_requests(
    count: int,
    *,
    rng: RngLike = None,
    sizes=(64, 100, 128, 200, 256, 384, 512),
    max_systems: int = 8,
    dtypes=(np.float32, np.float64),
) -> "list[TridiagonalBatch]":
    """A stream of small independent solve requests with mixed shapes.

    Models serving traffic: each request is a dominant batch whose
    system size (power-of-two and not), count, and dtype are drawn from
    small pools, so a request mix repeats a handful of shapes many
    times — the regime where a batched service amortises per-launch
    overhead. Deterministic for a given ``rng`` seed.
    """
    check_positive_int(count, "count")
    gen = _rng(rng)
    requests = []
    for _ in range(count):
        n = int(gen.choice(sizes))
        m = int(gen.integers(1, max_systems + 1))
        dtype = dtypes[int(gen.integers(0, len(dtypes)))]
        requests.append(
            random_dominant(m, n, rng=gen, dtype=dtype)
        )
    return requests
