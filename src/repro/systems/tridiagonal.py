"""Tridiagonal system containers.

A tridiagonal system ``A x = d`` is stored as four coefficient vectors per
system, following the convention of the paper (and of cuSPARSE ``gtsv``):

- ``a`` — sub-diagonal, with ``a[0]`` unused and fixed to 0,
- ``b`` — main diagonal,
- ``c`` — super-diagonal, with ``c[-1]`` unused and fixed to 0,
- ``d`` — right-hand side.

Row ``i`` of the system reads ``a[i] * x[i-1] + b[i] * x[i] + c[i] * x[i+1]
= d[i]``.

:class:`TridiagonalBatch` stores ``m`` independent systems of equal size
``n`` as four ``(m, n)`` arrays. Batches are the unit of work for every
solver in this library: the paper's workloads ("1K×1K", "1×2M", ...) map
directly onto batch shapes, and vectorised NumPy kernels operate on whole
batches at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..util.errors import ShapeError
from ..util.validation import check_dtype, check_same_shape

__all__ = ["TridiagonalSystem", "TridiagonalBatch"]


def _as_2d(arr: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(arr)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 1-D or 2-D, got ndim={arr.ndim}")
    return arr


@dataclass(frozen=True)
class TridiagonalBatch:
    """A batch of ``m`` independent tridiagonal systems of size ``n``.

    Arrays are ``(m, n)`` and share a dtype. Construction validates shapes
    and zeroes the unused corner entries (``a[:, 0]`` and ``c[:, -1]``) so
    downstream algorithms may rely on them.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: np.ndarray

    def __post_init__(self) -> None:
        a = _as_2d(self.a, "a")
        b = _as_2d(self.b, "b")
        c = _as_2d(self.c, "c")
        d = _as_2d(self.d, "d")
        check_same_shape([a, b, c, d], ["a", "b", "c", "d"])
        dtype = check_dtype(b, "b")
        for name, arr in (("a", a), ("c", c), ("d", d)):
            if arr.dtype != dtype:
                raise ShapeError(
                    f"{name} has dtype {arr.dtype}, expected {dtype} (same as b)"
                )
        if b.shape[1] < 1:
            raise ShapeError("systems must have at least one equation")
        # Normalise the unused corners. Copy only when needed.
        if a[:, 0].any():
            a = a.copy()
            a[:, 0] = 0
        if c.shape[1] > 0 and c[:, -1].any():
            c = c.copy()
            c[:, -1] = 0
        object.__setattr__(self, "a", np.ascontiguousarray(a))
        object.__setattr__(self, "b", np.ascontiguousarray(b))
        object.__setattr__(self, "c", np.ascontiguousarray(c))
        object.__setattr__(self, "d", np.ascontiguousarray(d))

    # -- shape ------------------------------------------------------------

    @property
    def num_systems(self) -> int:
        """Number of independent systems ``m``."""
        return self.b.shape[0]

    @property
    def system_size(self) -> int:
        """Number of equations per system ``n``."""
        return self.b.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        """``(m, n)``: (number of systems, equations per system)."""
        return self.b.shape

    @property
    def total_equations(self) -> int:
        """Total equations in the batch, ``m * n``."""
        return self.b.size

    @property
    def dtype(self) -> np.dtype:
        """Common dtype of the coefficient arrays."""
        return self.b.dtype

    @property
    def nbytes(self) -> int:
        """Total bytes of the four coefficient arrays."""
        return self.a.nbytes + self.b.nbytes + self.c.nbytes + self.d.nbytes

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_single(
        cls, a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray
    ) -> "TridiagonalBatch":
        """Build a batch holding one system from 1-D coefficient vectors."""
        return cls(
            np.asarray(a)[None, :],
            np.asarray(b)[None, :],
            np.asarray(c)[None, :],
            np.asarray(d)[None, :],
        )

    @classmethod
    def stack(cls, batches: "list[TridiagonalBatch]") -> "TridiagonalBatch":
        """Concatenate batches of equal system size along the system axis."""
        if not batches:
            raise ShapeError("cannot stack an empty list of batches")
        sizes = {batch.system_size for batch in batches}
        if len(sizes) != 1:
            raise ShapeError(f"cannot stack batches of differing sizes {sorted(sizes)}")
        return cls(
            np.concatenate([t.a for t in batches]),
            np.concatenate([t.b for t in batches]),
            np.concatenate([t.c for t in batches]),
            np.concatenate([t.d for t in batches]),
        )

    def copy(self) -> "TridiagonalBatch":
        """A deep copy (solvers that modify in place should work on copies)."""
        return TridiagonalBatch(
            self.a.copy(), self.b.copy(), self.c.copy(), self.d.copy()
        )

    def astype(self, dtype) -> "TridiagonalBatch":
        """Cast the batch to another floating dtype."""
        dtype = np.dtype(dtype)
        return TridiagonalBatch(
            self.a.astype(dtype),
            self.b.astype(dtype),
            self.c.astype(dtype),
            self.d.astype(dtype),
        )

    def with_rhs(self, d: np.ndarray) -> "TridiagonalBatch":
        """Same matrix, new right-hand side(s)."""
        d = _as_2d(np.asarray(d, dtype=self.dtype), "d")
        if d.shape != self.shape:
            raise ShapeError(f"d has shape {d.shape}, expected {self.shape}")
        return TridiagonalBatch(self.a, self.b, self.c, d)

    # -- indexing ----------------------------------------------------------

    def system(self, i: int) -> "TridiagonalSystem":
        """View of system ``i`` as a :class:`TridiagonalSystem`."""
        return TridiagonalSystem(self.a[i], self.b[i], self.c[i], self.d[i])

    def __len__(self) -> int:
        return self.num_systems

    def __iter__(self) -> Iterator["TridiagonalSystem"]:
        for i in range(self.num_systems):
            yield self.system(i)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TridiagonalBatch(m={self.num_systems}, n={self.system_size}, "
            f"dtype={self.dtype})"
        )

    # -- linear algebra -----------------------------------------------------

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` per system; ``x`` is ``(m, n)`` (or ``(n,)``).

        Used by residual checks and property tests.
        """
        x = _as_2d(np.asarray(x, dtype=self.dtype), "x")
        if x.shape != self.shape:
            raise ShapeError(f"x has shape {x.shape}, expected {self.shape}")
        out = self.b * x
        out[:, 1:] += self.a[:, 1:] * x[:, :-1]
        out[:, :-1] += self.c[:, :-1] * x[:, 1:]
        return out

    def residual(self, x: np.ndarray) -> np.ndarray:
        """Per-system relative residual ``||A x - d|| / max(||d||, tiny)``."""
        r = self.matvec(x) - self.d
        num = np.linalg.norm(r, axis=1)
        den = np.maximum(np.linalg.norm(self.d, axis=1), np.finfo(self.dtype).tiny)
        return num / den

    def to_dense(self) -> np.ndarray:
        """Dense ``(m, n, n)`` matrices — for tests on small systems only."""
        m, n = self.shape
        out = np.zeros((m, n, n), dtype=self.dtype)
        idx = np.arange(n)
        out[:, idx, idx] = self.b
        if n > 1:
            out[:, idx[1:], idx[:-1]] = self.a[:, 1:]
            out[:, idx[:-1], idx[1:]] = self.c[:, :-1]
        return out


@dataclass(frozen=True)
class TridiagonalSystem:
    """A single tridiagonal system — a thin 1-D convenience wrapper.

    Most of the library operates on :class:`TridiagonalBatch`; this class
    exists for ergonomic single-system use (examples, docs) and converts
    cheaply via :meth:`as_batch`.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: np.ndarray

    def __post_init__(self) -> None:
        for name in ("a", "b", "c", "d"):
            arr = np.asarray(getattr(self, name))
            if arr.ndim != 1:
                raise ShapeError(f"{name} must be 1-D, got ndim={arr.ndim}")
            object.__setattr__(self, name, arr)
        check_same_shape(
            [self.a, self.b, self.c, self.d], ["a", "b", "c", "d"]
        )

    @property
    def size(self) -> int:
        """Number of equations ``n``."""
        return self.b.shape[0]

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the main diagonal (batch construction enforces common)."""
        return self.b.dtype

    def as_batch(self) -> TridiagonalBatch:
        """Promote to a one-system :class:`TridiagonalBatch`."""
        return TridiagonalBatch.from_single(self.a, self.b, self.c, self.d)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` for a 1-D ``x``."""
        return self.as_batch().matvec(np.asarray(x)[None, :])[0]

    def residual(self, x: np.ndarray) -> float:
        """Relative residual of a candidate solution ``x``."""
        return float(self.as_batch().residual(np.asarray(x)[None, :])[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TridiagonalSystem(n={self.size}, dtype={self.dtype})"
