"""The paper's evaluation workloads.

Figure 7 and Figure 8 evaluate four workload shapes, named as the paper
names them:

- ``1Kx1K`` — 1024 systems of 1024 equations,
- ``2Kx2K`` — 2048 systems of 2048 equations,
- ``4Kx4K`` — 4096 systems of 4096 equations,
- ``1x2M``  — 1 system of 2^21 (~2 million) equations.

:func:`paper_workloads` returns the shapes; :func:`build_workload`
materialises a batch for a shape. Benchmarks may scale the shapes down
uniformly (``scale``) to keep host memory and wall-clock in check — the
simulator's *timing* is computed from the nominal shape regardless, so
figure shapes are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..util.errors import ConfigurationError
from ..util.validation import check_positive_int
from . import generators
from .tridiagonal import TridiagonalBatch

__all__ = ["Workload", "paper_workloads", "build_workload", "PAPER_WORKLOAD_NAMES"]

PAPER_WORKLOAD_NAMES = ("1Kx1K", "2Kx2K", "4Kx4K", "1x2M")

_SHAPES: Dict[str, Tuple[int, int]] = {
    "1Kx1K": (1024, 1024),
    "2Kx2K": (2048, 2048),
    "4Kx4K": (4096, 4096),
    "1x2M": (1, 1 << 21),
}


@dataclass(frozen=True)
class Workload:
    """A named workload shape: ``num_systems`` systems of ``system_size``."""

    name: str
    num_systems: int
    system_size: int

    @property
    def shape(self) -> Tuple[int, int]:
        """``(m, n)`` tuple."""
        return (self.num_systems, self.system_size)

    @property
    def total_equations(self) -> int:
        """``m * n``."""
        return self.num_systems * self.system_size

    def scaled(self, scale: int) -> "Workload":
        """Uniformly shrink both axes by ``scale`` (for host-side runs).

        Both axes are floored at 1; the system size stays a power of two
        when it started as one because scales are powers of two in all
        shipped benchmarks.
        """
        check_positive_int(scale, "scale")
        return Workload(
            name=self.name,
            num_systems=max(1, self.num_systems // scale),
            system_size=max(2, self.system_size // scale),
        )


def paper_workloads() -> Tuple[Workload, ...]:
    """The four workloads of Figures 7 and 8, in paper order."""
    return tuple(Workload(name, *_SHAPES[name]) for name in PAPER_WORKLOAD_NAMES)


def build_workload(
    workload: "Workload | str",
    *,
    generator: str = "random_dominant",
    seed: int = 0,
    dtype="float64",
    scale: int = 1,
) -> TridiagonalBatch:
    """Materialise a batch for ``workload``.

    ``workload`` may be a :class:`Workload` or one of the paper names.
    ``generator`` selects a factory from :mod:`repro.systems.generators`
    taking ``(num_systems, system_size)``.
    """
    if isinstance(workload, str):
        if workload not in _SHAPES:
            raise ConfigurationError(
                f"unknown workload {workload!r}; expected one of {PAPER_WORKLOAD_NAMES}"
            )
        workload = Workload(workload, *_SHAPES[workload])
    if scale != 1:
        workload = workload.scaled(scale)
    factory = getattr(generators, generator, None)
    if factory is None or generator.startswith("_"):
        raise ConfigurationError(f"unknown generator {generator!r}")
    return factory(
        workload.num_systems, workload.system_size, rng=seed, dtype=dtype
    )
