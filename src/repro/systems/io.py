"""Save/load tridiagonal batches as ``.npz`` archives.

The on-disk format is a plain ``numpy.savez_compressed`` archive with keys
``a, b, c, d`` plus a format tag, so batches interchange with any NumPy
tooling without this library.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from ..util.errors import ShapeError
from .tridiagonal import TridiagonalBatch

__all__ = ["save_batch", "load_batch", "FORMAT_TAG"]

FORMAT_TAG = "repro-tridiagonal-v1"


def save_batch(path: Union[str, os.PathLike], batch: TridiagonalBatch) -> None:
    """Write ``batch`` to ``path`` as a compressed ``.npz`` archive."""
    np.savez_compressed(
        path,
        a=batch.a,
        b=batch.b,
        c=batch.c,
        d=batch.d,
        format=np.array(FORMAT_TAG),
    )


def load_batch(path: Union[str, os.PathLike]) -> TridiagonalBatch:
    """Read a batch written by :func:`save_batch`."""
    with np.load(path, allow_pickle=False) as data:
        missing = {"a", "b", "c", "d"} - set(data.files)
        if missing:
            raise ShapeError(
                f"{os.fspath(path)} is not a tridiagonal batch archive; "
                f"missing keys {sorted(missing)}"
            )
        if "format" in data.files and str(data["format"]) != FORMAT_TAG:
            raise ShapeError(
                f"unsupported batch format {data['format']!r}; "
                f"expected {FORMAT_TAG!r}"
            )
        return TridiagonalBatch(data["a"], data["b"], data["c"], data["d"])
