"""Tridiagonal system containers, generators, properties, and I/O."""

from . import generators
from .batched import BatchedTridiagonal, deinterleave, interleave
from .io import load_batch, save_batch
from .properties import (
    BatchSummary,
    condition_estimate,
    dominance_margin,
    dominance_ratio,
    has_zero_diagonal,
    is_diagonally_dominant,
    is_symmetric,
    is_toeplitz,
    summarize,
)
from .suite import PAPER_WORKLOAD_NAMES, Workload, build_workload, paper_workloads
from .tridiagonal import TridiagonalBatch, TridiagonalSystem

__all__ = [
    "TridiagonalBatch",
    "TridiagonalSystem",
    "BatchedTridiagonal",
    "interleave",
    "deinterleave",
    "generators",
    "save_batch",
    "load_batch",
    "dominance_margin",
    "dominance_ratio",
    "is_diagonally_dominant",
    "is_symmetric",
    "is_toeplitz",
    "has_zero_diagonal",
    "condition_estimate",
    "BatchSummary",
    "summarize",
    "Workload",
    "paper_workloads",
    "build_workload",
    "PAPER_WORKLOAD_NAMES",
]
