"""Cubic-spline fitting with the tridiagonal solver.

Run with ``python examples/cubic_spline.py``.

Natural cubic splines are another workload from the paper's introduction:
fitting a spline through ``n`` knots requires solving one tridiagonal
system for the second derivatives. This example fits many splines in one
batch (one system per curve — e.g. per sensor channel), evaluates them,
and cross-checks a curve against ``scipy.interpolate.CubicSpline``.
"""

import numpy as np
from scipy.interpolate import CubicSpline

from repro.core import MultiStageSolver
from repro.systems import TridiagonalBatch


def fit_natural_splines(
    t: np.ndarray, y: np.ndarray, solver: MultiStageSolver
) -> np.ndarray:
    """Second derivatives ``M`` of natural cubic splines through ``y``.

    ``t`` is the shared knot vector ``(n,)``; ``y`` is ``(curves, n)``.
    Returns ``M`` of shape ``(curves, n)`` with the natural conditions
    ``M[0] = M[-1] = 0``.
    """
    h = np.diff(t)  # (n-1,)
    m, n = y.shape
    interior = n - 2

    a = np.zeros((m, interior))
    b = np.zeros((m, interior))
    c = np.zeros((m, interior))
    a[:, 1:] = h[1:-1]
    b[:] = 2.0 * (h[:-1] + h[1:])
    c[:, :-1] = h[1:-1]
    slope = np.diff(y, axis=1) / h
    d = 6.0 * np.diff(slope, axis=1)

    batch = TridiagonalBatch(a, b, c, d)
    m_interior = solver.solve(batch).x

    out = np.zeros((m, n))
    out[:, 1:-1] = m_interior
    return out


def evaluate_splines(
    t: np.ndarray, y: np.ndarray, M: np.ndarray, tq: np.ndarray
) -> np.ndarray:
    """Evaluate fitted splines at query points ``tq``; returns (curves, q)."""
    idx = np.clip(np.searchsorted(t, tq) - 1, 0, len(t) - 2)
    h = t[idx + 1] - t[idx]
    lo = (t[idx + 1] - tq) / h
    hi = (tq - t[idx]) / h
    return (
        lo[None] * y[:, idx]
        + hi[None] * y[:, idx + 1]
        + ((lo**3 - lo) * h**2 / 6.0)[None] * M[:, idx]
        + ((hi**3 - hi) * h**2 / 6.0)[None] * M[:, idx + 1]
    )


def main() -> None:
    rng = np.random.default_rng(7)
    curves, knots = 256, 514  # 512 interior unknowns per curve
    t = np.sort(rng.uniform(0.0, 10.0, knots))
    t[0], t[-1] = 0.0, 10.0
    y = np.cumsum(rng.standard_normal((curves, knots)), axis=1) * 0.1

    solver = MultiStageSolver("gtx470", "dynamic")
    M = fit_natural_splines(t, y, solver)

    tq = np.linspace(0.0, 10.0, 2_000)
    ours = evaluate_splines(t, y, M, tq)

    ref = CubicSpline(t, y[0], bc_type="natural")(tq)
    err = np.abs(ours[0] - ref).max() / (np.abs(ref).max() + 1e-12)
    print(f"fitted {curves} natural splines with {knots} knots each")
    print(f"max relative deviation vs scipy.CubicSpline: {err:.2e}")
    if err > 1e-8:
        raise SystemExit("spline fit disagrees with the scipy reference")

    batch_shape = (curves, knots - 2)
    res = solver.solve(
        TridiagonalBatch(
            np.zeros(batch_shape),
            np.ones(batch_shape),
            np.zeros(batch_shape),
            np.zeros(batch_shape),
        )
    )
    print(f"simulated GPU time for one fit batch: measured during fit; "
          f"identity probe = {res.simulated_ms:.4f} ms on {solver.device.name}")


if __name__ == "__main__":
    main()
