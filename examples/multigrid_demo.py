"""Multigrid with tridiagonal line smoothing (Göddeke's application).

Run with ``python examples/multigrid_demo.py``.

Shows textbook multigrid behaviour — a grid-size-independent contraction
factor of ~0.1 per V-cycle — with every smoothing sweep running through
the batched multi-stage tridiagonal solver (zebra line relaxation).
"""

import numpy as np

from repro.apps import MultigridPoisson2D
from repro.core import MultiStageSolver


def main() -> None:
    solver = MultiStageSolver("gtx470", "dynamic")
    print("V-cycle residual contraction per grid size:")
    for n in (31, 63, 127):
        mg = MultigridPoisson2D(n, solver=solver)
        rng = np.random.default_rng(n)
        f = rng.standard_normal((n, n))
        u = np.zeros((n, n))
        norms = [np.linalg.norm(f)]
        for _ in range(5):
            u = mg.v_cycle(u, f)
            norms.append(np.linalg.norm(mg.residual_field(u, f)))
        factors = [norms[i + 1] / norms[i] for i in range(5)]
        print(f"  {n:4d}x{n:<4d}: " + "  ".join(f"{f_:.3f}" for f_ in factors)
              + f"   (simulated smoothing time so far: {mg.simulated_ms:.2f} ms)")
        if max(factors) > 0.3:
            raise SystemExit("multigrid contraction degraded")

    # Full solve to discretisation accuracy.
    n = 127
    mg = MultigridPoisson2D(n, solver=solver)
    h = 1.0 / (n + 1)
    x = np.linspace(h, 1 - h, n)
    X, Y = np.meshgrid(x, x)
    u_exact = np.sin(np.pi * X) * np.sin(3 * np.pi * Y)
    f = (1 + 9) * np.pi**2 * u_exact
    u = mg.solve(f, tol=1e-10)
    err = np.abs(u - u_exact).max()
    print(f"\n{n}x{n} manufactured solution: max error {err:.2e} "
          f"(h^2 = {h*h:.2e})")


if __name__ == "__main__":
    main()
