"""Spectral 2-D Poisson solver (Hockney's method) on the batch solver.

Run with ``python examples/spectral_poisson.py``.

Hockney's classic fast Poisson solver — cited in the paper's introduction
— combines an FFT along one axis with independent tridiagonal solves
along the other: after a sine transform in x, each Fourier mode ``k``
satisfies a tridiagonal system in y. That bundle of per-mode systems is
exactly the "many parallel tridiagonal systems" workload the paper's GPU
solver targets.

Solves ``∇²u = f`` with homogeneous Dirichlet boundaries and verifies
against a manufactured solution.
"""

import numpy as np

from repro.core import MultiStageSolver
from repro.systems import TridiagonalBatch


def poisson_solve(
    f: np.ndarray, dx: float, solver: MultiStageSolver
) -> np.ndarray:
    """Solve ``∇²u = f`` on the unit square, u = 0 on the boundary.

    ``f`` holds interior values, shape ``(ny, nx)``.
    """
    ny, nx = f.shape
    # Sine transform in x (DST-I) via odd-extension FFT.
    f_hat = _dst1(f, axis=1)

    # For mode k: (d²/dy²) u_hat_k + lambda_k u_hat_k = f_hat_k with
    # lambda_k = (2 cos(pi (k+1)/(nx+1)) - 2) / dx².
    k = np.arange(nx)
    lam = (2.0 * np.cos(np.pi * (k + 1) / (nx + 1)) - 2.0) / dx**2

    # One tridiagonal system per mode, size ny:
    # u[j-1] + (lam dx² - 2) u[j] + u[j+1] = dx² f_hat[j]   (per column k)
    m, n = nx, ny
    a = np.ones((m, n))
    c = np.ones((m, n))
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    b = np.repeat((lam * dx**2 - 2.0)[:, None], n, axis=1) / 1.0
    # Guard: b is (modes, ny); actually lam already includes the x part,
    # so the y-direction stencil is u[j-1] - 2 u[j] + u[j+1] + lam dx² u[j].
    d = dx**2 * f_hat.T  # (modes, ny)

    batch = TridiagonalBatch(a, b, c, d)
    u_hat = solver.solve(batch).x.T  # (ny, modes)

    return _idst1(u_hat, axis=1)


def _dst1(arr: np.ndarray, axis: int) -> np.ndarray:
    """Type-I discrete sine transform via odd-extended rFFT."""
    n = arr.shape[axis]
    shape = list(arr.shape)
    shape[axis] = 2 * (n + 1)
    ext = np.zeros(shape, dtype=arr.dtype)
    sl = [slice(None)] * arr.ndim
    sl[axis] = slice(1, n + 1)
    ext[tuple(sl)] = arr
    sl[axis] = slice(n + 2, 2 * n + 2)
    ext[tuple(sl)] = -np.flip(arr, axis=axis)
    spec = np.fft.rfft(ext, axis=axis)
    sl[axis] = slice(1, n + 1)
    # The odd extension makes X[k] = -2i * S[k]; take S.
    return -spec.imag[tuple(sl)] / 2.0


def _idst1(arr: np.ndarray, axis: int) -> np.ndarray:
    """Inverse of :func:`_dst1`: S∘S = (n+1)/2 · identity."""
    n = arr.shape[axis]
    return _dst1(arr, axis) * (2.0 / (n + 1))


def main() -> None:
    n = 255  # interior grid (255 x 255); systems are size 255, not pow2
    dx = 1.0 / (n + 1)
    x = np.linspace(dx, 1.0 - dx, n)
    X, Y = np.meshgrid(x, x)

    # Manufactured solution u = sin(3 pi x) sin(2 pi y).
    u_exact = np.sin(3 * np.pi * X) * np.sin(2 * np.pi * Y)
    f = -(9 + 4) * np.pi**2 * u_exact

    solver = MultiStageSolver("gtx470", "dynamic")
    u = poisson_solve(f, dx, solver)

    err = np.abs(u - u_exact).max()
    print(f"grid {n}x{n}: {n} tridiagonal systems of {n} equations per solve")
    print(f"max error vs manufactured solution: {err:.2e} "
          f"(second-order in dx = {dx:.4f}; dx^2 = {dx*dx:.2e})")
    if err > 50 * dx * dx:
        raise SystemExit("Poisson solve exceeded discretisation error budget")

    res = solver.solve(
        TridiagonalBatch(
            np.zeros((n, n)), np.full((n, n), -2.0), np.zeros((n, n)), f
        )
    )
    print(f"simulated GPU time for the mode batch: {res.simulated_ms:.4f} ms "
          f"on {solver.device.name}")


if __name__ == "__main__":
    main()
