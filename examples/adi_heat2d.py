"""ADI (alternating direction implicit) 2-D heat equation demo.

Run with ``python examples/adi_heat2d.py``.

The paper's introduction motivates the solver with ADI methods: each ADI
half-step solves one tridiagonal system per grid line, hundreds to
thousands of them in parallel. This example integrates the 2-D heat
equation on a square grid with the Peaceman-Rachford ADI scheme, using
the multi-stage GPU solver for every sweep, and validates against the
analytic decay rate of the fundamental sine mode.
"""

import numpy as np

from repro.core import MultiStageSolver
from repro.systems import TridiagonalBatch


def adi_step(
    u: np.ndarray, r: float, solver: MultiStageSolver
) -> np.ndarray:
    """One Peaceman-Rachford step: implicit x-sweep, then implicit y-sweep.

    ``r = alpha * dt / (2 dx^2)``. Dirichlet boundaries (u = 0) are
    handled by the interior-only system with zero boundary couplings.
    """
    ny, nx = u.shape

    def implicit_sweep(explicit_field: np.ndarray) -> np.ndarray:
        # Rows of `explicit_field` are independent systems:
        # (1 + 2r) u_j - r (u_{j-1} + u_{j+1}) = rhs_j.
        m, n = explicit_field.shape
        a = np.full((m, n), -r)
        b = np.full((m, n), 1.0 + 2.0 * r)
        c = np.full((m, n), -r)
        a[:, 0] = 0.0
        c[:, -1] = 0.0
        batch = TridiagonalBatch(a, b, c, explicit_field)
        return solver.solve(batch).x

    def explicit_half(field: np.ndarray) -> np.ndarray:
        # (1 + r * second-difference) along rows, zero boundaries.
        out = (1.0 - 2.0 * r) * field
        out[:, 1:] += r * field[:, :-1]
        out[:, :-1] += r * field[:, 1:]
        return out

    # Half-step 1: x-implicit (systems along rows), y-explicit.
    u_half = implicit_sweep(explicit_half(u.T).T)
    # Half-step 2: y-implicit (transpose so columns become systems),
    # x-explicit.
    u_new = implicit_sweep(explicit_half(u_half).T)
    return u_new.T


def main() -> None:
    n = 128  # interior points per side -> 128 systems of 128 equations
    alpha, dt = 1.0, 2.0e-4
    dx = 1.0 / (n + 1)
    r = alpha * dt / (2.0 * dx * dx)

    # Initial condition: the (1,1) sine mode, whose exact solution decays
    # as exp(-2 pi^2 alpha t).
    x = np.linspace(dx, 1.0 - dx, n)
    u = np.outer(np.sin(np.pi * x), np.sin(np.pi * x))

    solver = MultiStageSolver("gtx470", "dynamic")
    steps = 50
    sim_ms = 0.0
    for _ in range(steps):
        u = adi_step(u, r, solver)
        # Re-solve timing accumulates per sweep; grab the last report.
    decay_measured = u.max()
    decay_exact = float(np.exp(-2.0 * np.pi**2 * alpha * dt * steps))

    print(f"grid {n}x{n}, {steps} ADI steps, r = {r:.3f}")
    print(f"peak after integration: measured {decay_measured:.6f}, "
          f"analytic {decay_exact:.6f}")
    rel_err = abs(decay_measured - decay_exact) / decay_exact
    print(f"relative error vs analytic decay: {rel_err:.2e}")
    if rel_err > 5e-3:
        raise SystemExit("ADI integration drifted from the analytic solution")

    # Timing of a single sweep's worth of tridiagonal work on the GPU model.
    a = np.full((n, n), -r); a[:, 0] = 0
    c = np.full((n, n), -r); c[:, -1] = 0
    batch = TridiagonalBatch(a, np.full((n, n), 1 + 2 * r), c, u)
    res = solver.solve(batch)
    print(f"\none sweep = {n} systems of {n} eqs: "
          f"{res.simulated_ms:.4f} simulated ms on {solver.device.name}")
    print("per-sweep plan:", res.plan.describe().splitlines()[-1].strip())


if __name__ == "__main__":
    main()
