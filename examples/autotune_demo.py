"""Auto-tuning walkthrough: what each strategy decides, and why it matters.

Run with ``python examples/autotune_demo.py``.

Reproduces the paper's §IV narrative interactively:

- the default, machine-query, and self-tuned switch points for each of
  the three simulated GPUs;
- the self-tuner's pruned search (evaluation counts per axis);
- the persistent cache ("save those results for future runs");
- the resulting end-to-end times on a demanding workload.
"""

import tempfile

from repro.core import (
    DefaultTuner,
    MachineQueryTuner,
    SelfTuner,
    simulate_plan,
)
from repro.gpu import device_names, make_device

DTYPE_SIZE = 4
WORKLOAD = (1, 1 << 21)  # one 2M-equation system: the hardest case


def main() -> None:
    for name in device_names():
        device = make_device(name)
        print(f"\n=== {device.name} ===")
        props = device.properties()
        print(f"queryable: {props.num_processors} SMs x "
              f"{props.thread_processors} cores, "
              f"{props.shared_mem_per_processor // 1024} KB smem, "
              f"{props.registers_per_processor} regs "
              f"-> on-chip max {props.max_onchip_system_size(DTYPE_SIZE)}")

        tuners = {
            "default": DefaultTuner(),
            "static": MachineQueryTuner(),
            "dynamic": SelfTuner(),
        }
        m, n = WORKLOAD
        for label, tuner in tuners.items():
            sp = tuner.switch_points(device, m, n, DTYPE_SIZE)
            _, report = simulate_plan(device, m, n, DTYPE_SIZE, sp)
            print(f"  {label:8s} {report.total_ms:9.2f} ms   {sp.describe()}")

        dyn = tuners["dynamic"]
        trace = dyn.last_trace
        if trace is not None:
            print(f"  search: {trace.num_evaluations} model probes "
                  f"(stage3 {trace.evaluations_for('stage3_size')}, "
                  f"thomas {trace.evaluations_for('thomas_switch')}, "
                  f"crossover {trace.evaluations_for('variant_crossover')}, "
                  f"stage1 {trace.evaluations_for('stage1_target')})")

    # --- persistence demo -------------------------------------------------
    print("\n=== tuning cache persistence ===")
    with tempfile.NamedTemporaryFile(suffix=".json") as fh:
        path = fh.name
        device = make_device("gtx470")
        m, n = WORKLOAD
        first = SelfTuner(cache=path)
        sp1 = first.switch_points(device, m, n, DTYPE_SIZE)
        probes = first.last_trace.num_evaluations

        second = SelfTuner(cache=path)  # fresh process, same cache file
        sp2 = second.switch_points(device, m, n, DTYPE_SIZE)
        print(f"first run : {probes} probes -> {sp1.describe()}")
        print(f"second run: {'0 probes (cache hit)' if second.last_trace is None else 'unexpected re-tune'}"
              f" -> identical: {sp1 == sp2}")


if __name__ == "__main__":
    main()
