"""Implicit finite-difference option pricing (Egloff's PDE workload).

Run with ``python examples/option_pricing.py``.

Prices a book of European options with backward-Euler finite differences
— one tridiagonal system per option per time step, with the matrix
factorised once (:func:`repro.algorithms.factorize`) and reused across
all steps — and validates against the Black-Scholes closed form.
"""

import numpy as np

from repro.apps import BlackScholesPricer, black_scholes_closed_form


def main() -> None:
    rate, sigma = 0.03, 0.25
    spot, maturity = 100.0, 1.0
    strikes = np.array([70.0, 85.0, 100.0, 115.0, 130.0])

    pricer = BlackScholesPricer(
        rate=rate, sigma=sigma, grid_points=512, time_steps=400
    )
    calls = pricer.price(strikes, maturity, spot, call=True)
    puts = pricer.price(strikes, maturity, spot, call=False)
    exact_c = black_scholes_closed_form(spot, strikes, rate, sigma, maturity)
    exact_p = black_scholes_closed_form(
        spot, strikes, rate, sigma, maturity, call=False
    )

    print(f"spot {spot}, maturity {maturity}y, r {rate:.1%}, sigma {sigma:.0%}")
    print(f"{'strike':>8} {'call PDE':>10} {'call BS':>10} "
          f"{'put PDE':>10} {'put BS':>10}")
    for i, k in enumerate(strikes):
        print(f"{k:8.1f} {calls[i]:10.4f} {exact_c[i]:10.4f} "
              f"{puts[i]:10.4f} {exact_p[i]:10.4f}")

    worst = max(
        np.abs(calls - exact_c).max(), np.abs(puts - exact_p).max()
    )
    print(f"\nworst absolute pricing error vs closed form: {worst:.4f}")
    if worst > 0.02:
        raise SystemExit("PDE prices drifted from the closed form")

    # Put-call parity as an independent consistency check.
    parity_gap = np.abs(
        (calls - puts) - (spot - strikes * np.exp(-rate * maturity))
    ).max()
    print(f"worst put-call parity violation: {parity_gap:.4f}")


if __name__ == "__main__":
    main()
