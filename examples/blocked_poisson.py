"""Block-tridiagonal demo: direct 2-D Poisson via line blocks.

Run with ``python examples/blocked_poisson.py``.

The paper's conclusion names blocked tridiagonal solvers as the next
challenge; this example exercises the library's blocked extension on the
canonical source of such systems — a 2-D Poisson problem whose grid
lines become block rows (diagonal blocks = 1-D operators, couplings =
identities) — and cross-checks the block solver against a dense solve.
"""

import numpy as np

from repro.blocked import (
    BlockMultiStageSolver,
    BlockTridiagonalBatch,
    block_dense_solve,
)


def build_poisson_block_system(ny: int, nx: int, f: np.ndarray):
    """Line-ordered 5-point Laplacian as a block-tridiagonal system."""
    eye = np.eye(nx)
    diag = 4.0 * eye - np.eye(nx, k=1) - np.eye(nx, k=-1)
    A = np.tile(-eye, (1, ny, 1, 1))
    C = np.tile(-eye, (1, ny, 1, 1))
    B = np.tile(diag, (1, ny, 1, 1))
    A[:, 0] = 0
    C[:, -1] = 0
    return BlockTridiagonalBatch(A, B, C, f[None, :, :])


def main() -> None:
    ny, nx = 32, 24  # block order 32, block size 24
    rng = np.random.default_rng(3)
    f = rng.standard_normal((ny, nx))

    batch = build_poisson_block_system(ny, nx, f)
    solver = BlockMultiStageSolver("gtx470")
    result = solver.solve(batch)

    ref = block_dense_solve(batch)
    err = np.abs(result.X - ref).max() / (np.abs(ref).max() + 1.0)
    print(f"2-D Poisson {ny}x{nx} as block tridiagonal "
          f"(n={ny} block rows, k={nx} block size)")
    print(f"max relative deviation vs dense solve: {err:.2e}")
    if err > 1e-9:
        raise SystemExit("block solve disagrees with the dense oracle")

    print(f"tuned: stage3 block rows = {result.stage3_block_rows}, "
          f"thomas switch = {result.thomas_switch}")
    print(f"simulated GPU time: {result.simulated_ms:.4f} ms "
          f"({', '.join(f'{k}: {v:.4f}' for k, v in result.report.stage_ms().items())})")

    # Batched use: many independent Poisson problems at once.
    m = 64
    F = rng.standard_normal((m, ny, nx))
    big = BlockTridiagonalBatch(
        np.tile(batch.A, (m, 1, 1, 1)),
        np.tile(batch.B, (m, 1, 1, 1)),
        np.tile(batch.C, (m, 1, 1, 1)),
        F,
    )
    res = solver.solve(big)
    worst = big.residual(res.X).max()
    print(f"\nbatched: {m} independent grids in one solve, "
          f"worst residual {worst:.2e}, {res.simulated_ms:.3f} simulated ms")


if __name__ == "__main__":
    main()
