"""Implicit vertical mixing for an ocean-model column ensemble.

Run with ``python examples/ocean_mixing.py``.

Ocean general-circulation models (the paper cites HYCOM) advance vertical
diffusion implicitly: every water column yields an independent
tridiagonal system per time step, tens of thousands of them across the
model grid. This example time-steps an ensemble of columns with
depth-dependent mixing and verifies two invariants an implicit diffusion
step must satisfy: heat conservation (with insulating boundaries) and a
discrete maximum principle.
"""

import numpy as np

from repro.core import MultiStageSolver
from repro.systems import TridiagonalBatch


def mixing_step(
    temp: np.ndarray,
    kappa: np.ndarray,
    thickness: np.ndarray,
    dt: float,
    solver: MultiStageSolver,
) -> np.ndarray:
    """One backward-Euler vertical diffusion step for all columns.

    ``temp``, ``kappa``, ``thickness`` are ``(columns, levels)``;
    insulating (no-flux) top and bottom boundaries conserve column heat.
    """
    m, n = temp.shape
    # Interface diffusivities (harmonic mean is standard; arithmetic is
    # fine for a demo) and flux coefficients.
    k_int = 0.5 * (kappa[:, 1:] + kappa[:, :-1])
    dz_int = 0.5 * (thickness[:, 1:] + thickness[:, :-1])
    flux = dt * k_int / dz_int  # (m, n-1)

    a = np.zeros((m, n))
    c = np.zeros((m, n))
    a[:, 1:] = -flux / thickness[:, 1:]
    c[:, :-1] = -flux / thickness[:, :-1]
    b = 1.0 - a - c
    batch = TridiagonalBatch(a, b, c, temp)
    return solver.solve(batch).x


def main() -> None:
    rng = np.random.default_rng(11)
    columns, levels = 2048, 100
    thickness = rng.uniform(2.0, 12.0, (columns, levels))
    depth = np.cumsum(thickness, axis=1)
    kappa = 1e-5 + 1e-2 * np.exp(-depth / 60.0)
    temp = 4.0 + 18.0 * np.exp(-depth / 150.0) + rng.normal(0, 0.05, depth.shape)

    solver = MultiStageSolver("gtx470", "dynamic")
    heat0 = (temp * thickness).sum(axis=1)
    t_min0, t_max0 = temp.min(), temp.max()

    dt = 600.0  # ten-minute steps
    steps = 24  # four hours
    for _ in range(steps):
        temp = mixing_step(temp, kappa, thickness, dt, solver)

    heat = (temp * thickness).sum(axis=1)
    conservation = np.abs(heat - heat0).max() / np.abs(heat0).max()
    print(f"{columns} columns x {levels} levels, {steps} implicit steps")
    print(f"worst column heat-conservation error: {conservation:.2e}")
    print(f"temperature range: [{temp.min():.3f}, {temp.max():.3f}] "
          f"(initial [{t_min0:.3f}, {t_max0:.3f}])")

    if conservation > 1e-11:
        raise SystemExit("implicit mixing failed to conserve heat")
    if temp.min() < t_min0 - 1e-9 or temp.max() > t_max0 + 1e-9:
        raise SystemExit("maximum principle violated")

    probe = mixing_step(temp, kappa, thickness, dt, solver)
    assert probe.shape == temp.shape
    # Timing for one step's batch on the machine model.
    m, n = temp.shape
    res = solver.solve(
        TridiagonalBatch(np.zeros((m, n)), np.ones((m, n)), np.zeros((m, n)), temp)
    )
    print(f"one step = {m} systems of {n} eqs: {res.simulated_ms:.4f} "
          f"simulated ms on {solver.device.name}")


if __name__ == "__main__":
    main()
