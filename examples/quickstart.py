"""Quickstart: solve tridiagonal systems with the multi-stage solver.

Run with ``python examples/quickstart.py``.

Walks through the library's front door:

1. build a batch of tridiagonal systems,
2. solve it on a simulated GPU with each tuning strategy,
3. inspect the plan, simulated timing, and residuals.
"""

import numpy as np

from repro.algorithms import max_residual
from repro.core import MultiStageSolver, solve
from repro.systems import generators


def main() -> None:
    # --- 1. A workload: 512 diagonally dominant systems of 2048 equations.
    # (2048 exceeds every simulated device's shared memory, so the solver
    # must split before solving on-chip — the paper's core scenario.)
    batch = generators.random_dominant(512, 2048, rng=42)
    print(f"workload: {batch.num_systems} systems x {batch.system_size} eqs, "
          f"{batch.nbytes / 1e6:.1f} MB")

    # --- 2. One-call solve on the GTX 470 with dynamic self-tuning.
    result = solve(batch, device="gtx470", tuning="dynamic")
    print("\nsolution residual:", f"{max_residual(batch, result.x):.2e}")
    print("switch points:", result.switch_points.describe())
    print(result.plan.describe())
    print(f"simulated GPU time: {result.simulated_ms:.3f} ms")

    # --- 3. Compare the three tuning strategies of the paper.
    print("\nstrategy comparison (simulated ms):")
    for strategy in ("default", "static", "dynamic"):
        solver = MultiStageSolver("gtx470", strategy)
        res = solver.solve(batch)
        print(f"  {strategy:8s} {res.simulated_ms:8.3f} ms   "
              f"(stage3 size {res.plan.stage3_system_size}, "
              f"thomas switch {res.plan.thomas_switch})")

    # --- 4. The per-stage breakdown of the dynamic run.
    print("\n" + result.report.describe())

    # --- 5. Exactness: the simulated kernels compute real numerics.
    oracle_rows = batch.matvec(result.x)
    err = np.abs(oracle_rows - batch.d).max()
    print(f"\nmax |Ax - d| = {err:.2e}")


if __name__ == "__main__":
    main()
