"""The §VI-C generalisation in action: auto-tuned multi-stage sorting.

Run with ``python examples/mergesort_demo.py``.

Demonstrates that the paper's strategy — a shared-memory base kernel,
independent global passes, cooperative passes for the endgame, and
auto-tuned switch points — transfers to bottom-up merge sort, exactly as
§VI-C argues.
"""

import numpy as np

from repro.dnc import MultiStageSorter
from repro.gpu import device_names


def main() -> None:
    rng = np.random.default_rng(99)
    values = rng.standard_normal(1 << 20)

    print("tuned sorting plans per device (1M elements):")
    for name in device_names():
        sorter = MultiStageSorter(name)
        result = sorter.sort(values)
        assert np.array_equal(result.values, np.sort(values))
        print(f"  {name:8s} tile={result.tile_size:5d} "
              f"coop_threshold={result.coop_threshold:4d}  "
              f"passes: {result.independent_passes} independent + "
              f"{result.cooperative_passes} cooperative  "
              f"-> {result.simulated_ms:8.3f} ms (exact vs np.sort: OK)")

    # The tuning matters: compare against a deliberately bad tile size.
    tuned = MultiStageSorter("gtx470").sort(values).simulated_ms
    tiny = MultiStageSorter("gtx470", tile_size=64, coop_threshold=1).sort(values).simulated_ms
    print(f"\nGTX 470: tuned {tuned:.3f} ms vs 64-element tiles {tiny:.3f} ms "
          f"({tiny / tuned:.1f}x slower untuned)")


if __name__ == "__main__":
    main()
