"""The second §VI-C generalisation: a multi-stage, auto-tuned FFT.

Run with ``python examples/fft_demo.py``.

Radix-2 butterfly stages whose pair distance doubles each stage split
naturally into an on-chip phase (distance < tile) and global passes —
the same shape as the tridiagonal splitter, with the same partition-
camping cost on the large-stride passes, and the same tuned switch
point.
"""

import numpy as np

from repro.dnc import MultiStageFFT
from repro.gpu import device_names


def main() -> None:
    n = 1 << 20
    rng = np.random.default_rng(21)
    signal = rng.standard_normal(n)

    print(f"FFT of {n} points per device:")
    for name in device_names():
        fft = MultiStageFFT(name)
        result = fft.fft(signal)
        err = np.abs(result.values - np.fft.fft(signal)).max()
        print(f"  {name:8s} tile={result.tile_size:5d}  "
              f"{result.onchip_stages} on-chip stages + "
              f"{result.global_passes} global passes  "
              f"-> {result.simulated_ms:8.3f} ms   "
              f"(max dev vs np.fft: {err:.2e})")
        if err > 1e-7:
            raise SystemExit("FFT numerics drifted from numpy")

    # Spectral sanity: a pure tone lands in exactly one (pair of) bins.
    k = 4096
    tone = np.cos(2 * np.pi * k * np.arange(n) / n)
    spectrum = np.abs(MultiStageFFT("gtx470").fft(tone).values)
    peaks = np.argsort(spectrum)[-2:]
    assert set(peaks) == {k, n - k}, peaks
    print(f"\npure-tone check: energy concentrated in bins {sorted(peaks)} "
          f"(expected {sorted((k, n - k))})")

    tuned = MultiStageFFT("gtx470").fft(signal).simulated_ms
    tiny = MultiStageFFT("gtx470", tile_size=64).fft(signal).simulated_ms
    print(f"GTX 470: tuned {tuned:.3f} ms vs 64-point tiles {tiny:.3f} ms "
          f"({tiny / tuned:.1f}x slower untuned)")


if __name__ == "__main__":
    main()
