"""Tests for multigrid with tridiagonal line relaxation."""

import numpy as np
import pytest

from repro.apps import MultigridPoisson2D
from repro.core import MultiStageSolver
from repro.util.errors import ConfigurationError, ShapeError


@pytest.fixture(scope="module")
def solver():
    return MultiStageSolver("gtx470", "static")


def _manufactured(n):
    h = 1.0 / (n + 1)
    x = np.linspace(h, 1 - h, n)
    X, Y = np.meshgrid(x, x)
    u = np.sin(np.pi * X) * np.sin(2 * np.pi * Y)
    f = (1 + 4) * np.pi**2 * u  # -lap u = f
    return u, f


class TestComponents:
    def test_residual_zero_for_discrete_solution(self, solver):
        n = 15
        mg = MultigridPoisson2D(n, solver=solver)
        f = np.random.default_rng(0).standard_normal((n, n))
        u = mg.solve(f, tol=1e-12)
        assert np.abs(mg.residual_field(u, f)).max() < 1e-8

    def test_restrict_prolong_shapes(self):
        r = np.random.default_rng(1).standard_normal((7, 7))
        coarse = MultigridPoisson2D._restrict(r)
        assert coarse.shape == (3, 3)
        fine = MultigridPoisson2D._prolong(coarse, 7)
        assert fine.shape == (7, 7)

    def test_prolong_restrict_constant(self):
        """Full weighting of a constant field is that constant; bilinear
        interpolation of a constant is that constant."""
        c = np.full((3, 3), 2.5)
        fine = MultigridPoisson2D._prolong(c, 7)
        # Interior coincident points keep the value.
        assert fine[1, 1] == 2.5
        r = np.full((7, 7), 1.5)
        np.testing.assert_allclose(MultigridPoisson2D._restrict(r), 1.5)

    def test_grid_size_validation(self, solver):
        with pytest.raises(ConfigurationError):
            MultigridPoisson2D(8, solver=solver)  # not 2^k - 1
        with pytest.raises(ConfigurationError):
            MultigridPoisson2D(1, solver=solver)

    def test_field_shape_validation(self, solver):
        mg = MultigridPoisson2D(7, solver=solver)
        with pytest.raises(ShapeError):
            mg.v_cycle(np.zeros((5, 5)), np.zeros((5, 5)))


class TestConvergence:
    def test_vcycle_contraction(self, solver):
        """Each V-cycle must contract the residual by a healthy factor
        (textbook multigrid: ~0.1 per cycle for Poisson)."""
        n = 31
        mg = MultigridPoisson2D(n, solver=solver)
        _, f = _manufactured(n)
        u = np.zeros((n, n))
        norms = [np.linalg.norm(f)]
        for _ in range(4):
            u = mg.v_cycle(u, f)
            norms.append(np.linalg.norm(mg.residual_field(u, f)))
        factors = [norms[i + 1] / norms[i] for i in range(len(norms) - 1)]
        assert max(factors) < 0.25, factors

    def test_matches_manufactured_solution(self, solver):
        n = 63
        mg = MultigridPoisson2D(n, solver=solver)
        u_exact, f = _manufactured(n)
        u = mg.solve(f, tol=1e-11)
        h = 1.0 / (n + 1)
        assert np.abs(u - u_exact).max() < 10 * h * h  # O(h^2) discretisation

    def test_grid_size_independence(self, solver):
        """The contraction factor must not degrade as the grid refines
        (the defining property of multigrid)."""
        factors = []
        for n in (15, 31, 63):
            mg = MultigridPoisson2D(n, solver=solver)
            f = np.random.default_rng(n).standard_normal((n, n))
            u = np.zeros((n, n))
            u = mg.v_cycle(u, f)
            r1 = np.linalg.norm(mg.residual_field(u, f))
            u = mg.v_cycle(u, f)
            r2 = np.linalg.norm(mg.residual_field(u, f))
            factors.append(r2 / r1)
        assert max(factors) < 0.3
        assert max(factors) / min(factors) < 5.0

    def test_simulated_time_accumulates(self, solver):
        mg = MultigridPoisson2D(15, solver=solver)
        mg.solve(np.ones((15, 15)), tol=1e-8, max_cycles=3)
        assert mg.simulated_ms > 0
