"""Tests for the multi-stage FFT generalisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dnc import MultiStageFFT, radix2_fft
from repro.util.errors import ConfigurationError


class TestRadix2:
    @pytest.mark.parametrize("n", [1, 2, 4, 64, 1024])
    def test_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(radix2_fft(x), np.fft.fft(x), atol=1e-9)

    def test_real_input(self):
        x = np.random.default_rng(0).standard_normal(256)
        np.testing.assert_allclose(radix2_fft(x), np.fft.fft(x), atol=1e-10)

    def test_rejects_non_pow2(self):
        with pytest.raises(ConfigurationError):
            radix2_fft(np.zeros(12))

    def test_parseval(self):
        x = np.random.default_rng(1).standard_normal(512)
        X = radix2_fft(x)
        assert np.sum(np.abs(x) ** 2) == pytest.approx(
            np.sum(np.abs(X) ** 2) / 512
        )


class TestMultiStageFFT:
    @pytest.fixture(scope="class")
    def fft470(self):
        return MultiStageFFT("gtx470")

    def test_exact_transform(self, fft470):
        x = np.random.default_rng(2).standard_normal(1 << 16)
        result = fft470.fft(x)
        np.testing.assert_allclose(result.values, np.fft.fft(x), atol=1e-8)
        assert result.simulated_ms > 0

    def test_stage_structure(self, fft470):
        n = 1 << 18
        result = fft470.fft(np.ones(n))
        assert result.onchip_stages + result.global_passes == 18
        assert result.tile_size == 1 << result.onchip_stages
        assert "tile_fft" in result.report.stage_ms()
        assert "global_fft" in result.report.stage_ms()

    def test_small_input_all_onchip(self, fft470):
        result = fft470.fft(np.ones(64))
        assert result.global_passes == 0
        assert result.report.num_launches == 1

    def test_tile_fits_shared_memory(self, fft470):
        tile = fft470.tuned_tile()
        assert 2 * tile * 16 <= fft470.device.spec.shared_mem_per_processor

    def test_camping_hits_large_distance_passes(self):
        """Late global passes (huge strides) must cost more per byte
        than the first (uncamped) ones."""
        fft = MultiStageFFT("gtx470", tile_size=1024)
        n = 1 << 20
        early = fft._global_pass_cost(n, 1024).bandwidth_efficiency
        late = fft._global_pass_cost(n, 1 << 19).bandwidth_efficiency
        assert late <= early  # both camped here; check the boundary too
        tiny = fft._global_pass_cost(n, 8).bandwidth_efficiency
        assert tiny == 1.0

    def test_tuned_beats_tiny_tiles(self):
        x = np.random.default_rng(3).standard_normal(1 << 18)
        tuned = MultiStageFFT("gtx470").fft(x).simulated_ms
        tiny = MultiStageFFT("gtx470", tile_size=64).fft(x).simulated_ms
        assert tuned < tiny

    def test_validation(self, fft470):
        with pytest.raises(ConfigurationError):
            fft470.fft(np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            fft470.fft(np.zeros(100))
        with pytest.raises(ConfigurationError):
            MultiStageFFT("gtx470", tile_size=100)


@settings(max_examples=15, deadline=None)
@given(
    n_exp=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_fft_property(n_exp, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(1 << n_exp)
    result = MultiStageFFT("gtx280", tile_size=256).fft(x)
    np.testing.assert_allclose(result.values, np.fft.fft(x), atol=1e-7)
