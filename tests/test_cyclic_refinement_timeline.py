"""Tests for cyclic systems, mixed-precision refinement, and timelines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    CyclicTridiagonalBatch,
    cyclic_solve,
    mixed_precision_solve,
    thomas_solve,
)
from repro.analysis import render_timeline
from repro.core import MultiStageSolver
from repro.systems import generators
from repro.util.errors import NumericsError, ShapeError


def _random_cyclic(m, n, rng=0):
    gen = np.random.default_rng(rng)
    a = gen.uniform(-1, 1, (m, n))
    c = gen.uniform(-1, 1, (m, n))
    mag = 2.0 * (np.abs(a) + np.abs(c)) + gen.uniform(0.5, 1.5, (m, n))
    sign = np.where(gen.random((m, n)) < 0.5, -1.0, 1.0)
    b = sign * mag
    d = gen.standard_normal((m, n))
    return CyclicTridiagonalBatch(a, b, c, d)


class TestCyclic:
    def test_matches_dense_solve(self):
        batch = _random_cyclic(4, 32, rng=1)
        x = cyclic_solve(batch)
        # Dense oracle with explicit corner entries.
        m, n = batch.shape
        for i in range(m):
            A = np.diag(batch.b[i])
            A += np.diag(batch.a[i, 1:], -1) + np.diag(batch.c[i, :-1], 1)
            A[0, -1] = batch.a[i, 0]
            A[-1, 0] = batch.c[i, -1]
            ref = np.linalg.solve(A, batch.d[i])
            np.testing.assert_allclose(x[i], ref, atol=1e-10)

    def test_residual_small(self):
        batch = _random_cyclic(8, 257, rng=2)  # odd size is fine
        x = cyclic_solve(batch)
        assert batch.residual(x).max() < 1e-11

    def test_periodic_poisson_constant_nullspace_avoided(self):
        """Periodic [−1, 2+eps, −1] with small shift is solvable."""
        m, n = 3, 64
        a = np.full((m, n), -1.0)
        c = np.full((m, n), -1.0)
        b = np.full((m, n), 2.0 + 0.01)
        d = np.random.default_rng(3).standard_normal((m, n))
        batch = CyclicTridiagonalBatch(a, b, c, d)
        x = cyclic_solve(batch)
        assert batch.residual(x).max() < 1e-9

    def test_reduces_to_plain_when_corners_zero(self):
        plain = generators.random_dominant(3, 32, rng=4)
        batch = CyclicTridiagonalBatch(plain.a, plain.b, plain.c, plain.d)
        np.testing.assert_allclose(
            cyclic_solve(batch), thomas_solve(plain), atol=1e-10
        )

    def test_custom_inner_solver(self):
        """Route the two auxiliary solves through the machine model."""
        solver = MultiStageSolver("gtx470", "static")
        batch = _random_cyclic(4, 256, rng=5)
        x = cyclic_solve(batch, inner_solve=lambda t: solver.solve(t).x)
        assert batch.residual(x).max() < 1e-11

    def test_matvec_uses_corners(self):
        batch = _random_cyclic(1, 8, rng=6)
        x = np.zeros((1, 8))
        x[0, -1] = 1.0
        out = batch.matvec(x)
        assert out[0, 0] == pytest.approx(batch.a[0, 0])

    def test_validation(self):
        with pytest.raises(ShapeError):
            CyclicTridiagonalBatch(
                np.ones((1, 2)), np.ones((1, 2)), np.ones((1, 2)), np.ones((1, 2))
            )
        batch = _random_cyclic(1, 8)
        with pytest.raises(ShapeError):
            batch.matvec(np.zeros((1, 9)))


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=5),
    n=st.integers(min_value=3, max_value=100),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_cyclic_property(m, n, seed):
    batch = _random_cyclic(m, n, rng=seed)
    x = cyclic_solve(batch)
    assert batch.residual(x).max() < 1e-9


class TestMixedPrecision:
    def test_reaches_double_accuracy(self):
        batch = generators.random_dominant(8, 512, rng=0)
        result = mixed_precision_solve(batch, tol=1e-13)
        assert result.converged
        assert batch.residual(result.x).max() < 1e-12

    def test_initial_f32_residual_visible(self):
        """The first residual sits at f32 level; refinement pushes it down
        by orders of magnitude."""
        batch = generators.random_dominant(4, 1024, rng=1)
        result = mixed_precision_solve(batch, tol=1e-14)
        history = result.residual_history
        assert history[0] > 1e-9  # f32-quality start
        assert history[-1] < 1e-13
        assert result.iterations >= 1

    def test_monotone_contraction(self):
        batch = generators.random_dominant(4, 256, rng=2)
        history = mixed_precision_solve(batch, tol=0.0, max_iterations=3).residual_history
        # Until f64 round-off, each sweep contracts strongly.
        assert history[1] < 0.01 * history[0]

    def test_rejects_float32_input(self):
        batch = generators.random_dominant(2, 64, rng=3, dtype=np.float32)
        with pytest.raises(NumericsError):
            mixed_precision_solve(batch)

    def test_multistage_inner_solver(self):
        solver = MultiStageSolver("gtx280", "static")
        batch = generators.random_dominant(4, 512, rng=4)
        result = mixed_precision_solve(
            batch, inner_solve=lambda t: solver.solve(t).x
        )
        assert batch.residual(result.x).max() < 1e-12


class TestTimeline:
    def test_renders_all_launches(self):
        batch = generators.random_dominant(1, 1 << 15, rng=0)
        result = MultiStageSolver("gtx470", "default").solve(batch)
        text = render_timeline(result.report)
        assert "stage1_coop_pcr" in text
        assert "stage2_global_pcr" in text
        assert "stage3_pcr_thomas" in text
        assert "#" in text
        assert str(result.report.num_launches) in text

    def test_bar_lengths_proportional(self):
        batch = generators.random_dominant(64, 4096, rng=1)
        result = MultiStageSolver("gtx470", "static").solve(batch)
        text = render_timeline(result.report, width=50)
        bars = [line.split("|")[1] for line in text.splitlines()[1:]]
        # All bars share the global time axis.
        assert all(len(b) == 50 for b in bars)
        total_hashes = sum(b.count("#") for b in bars)
        assert 40 <= total_hashes <= 55  # proportional coverage, ~full axis

    def test_empty_report(self):
        from repro.gpu import make_device

        report = make_device("gtx470").session().report()
        assert "(no launches)" in render_timeline(report)
