"""Direct tests for small helpers covered only indirectly elsewhere."""

import numpy as np
import pytest

from repro.algorithms import (
    cr_forward_levels,
    get_algorithm,
    normalize_thomas_switch,
)
from repro.analysis import figure6_to_csv
from repro.cli import build_parser
from repro.dnc import MultiStageSorter
from repro.kernels import KernelContext, dtype_size
from repro.gpu import make_device
from repro.systems import generators
from repro.util import (
    check_dtype,
    check_positive_int,
    check_same_shape,
    require,
)
from repro.util.errors import ConfigurationError, ShapeError
from repro.util.units import mib, ms_to_seconds, ns_to_ms, seconds_to_ms


class TestValidationHelpers:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ConfigurationError, match="broken"):
            require(False, "broken")
        with pytest.raises(ShapeError):
            require(False, "x", exc=ShapeError)

    def test_check_positive_int(self):
        assert check_positive_int(5, "x") == 5
        assert check_positive_int(np.int64(3), "x") == 3
        for bad in (0, -1, 2.5, True):
            with pytest.raises(ConfigurationError):
                check_positive_int(bad, "x")

    def test_check_dtype(self):
        assert check_dtype(np.zeros(3), "x") == np.float64
        with pytest.raises(ShapeError):
            check_dtype(np.zeros(3, dtype=np.int32), "x")

    def test_check_same_shape(self):
        arrays = [np.zeros((2, 3)), np.ones((2, 3))]
        assert check_same_shape(arrays, ["a", "b"]) == (2, 3)
        with pytest.raises(ShapeError, match="b has shape"):
            check_same_shape([np.zeros((2, 3)), np.zeros((2, 4))], ["a", "b"])

    def test_units(self):
        assert mib(2) == 2 * 1024 * 1024
        assert seconds_to_ms(1.5) == 1500.0
        assert ms_to_seconds(1500.0) == 1.5
        assert ns_to_ms(1e6) == 1.0


class TestAlgorithmHelpers:
    def test_cr_forward_levels_shapes(self):
        batch = generators.random_dominant(2, 16, rng=0)
        levels = cr_forward_levels(batch)
        assert len(levels) == 4  # 16 -> 8 -> 4 -> 2 -> 1
        widths = [reduced[1].shape[1] for reduced, _ in levels]
        assert widths == [8, 4, 2, 1]

    def test_normalize_thomas_switch(self):
        assert normalize_thomas_switch(256, 64) == 64
        assert normalize_thomas_switch(256, 1024) == 256
        with pytest.raises(ConfigurationError):
            normalize_thomas_switch(256, 48)

    def test_get_algorithm(self):
        info = get_algorithm("pcr")
        assert info.pow2_only
        assert "log" in info.work
        with pytest.raises(ConfigurationError):
            get_algorithm("sorcery")

    def test_dtype_size(self):
        assert dtype_size(np.float32) == 4
        assert dtype_size(np.float64) == 8
        with pytest.raises(ConfigurationError):
            dtype_size(np.int16)

    def test_regs_per_thread_for_system(self):
        ctx = KernelContext(make_device("gtx470").session())
        assert ctx.regs_per_thread_for_system(1024, 1024) == 32
        assert ctx.regs_per_thread_for_system(1024, 512) == 64


class TestCliParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["devices"])
        assert args.command == "devices"
        args = parser.parse_args(["solve", "--workload", "2Kx2K"])
        assert args.workload == "2Kx2K"
        args = parser.parse_args(["tune", "--dtype-size", "8"])
        assert args.dtype_size == 8
        args = parser.parse_args(["figures", "--out", "x"])
        assert args.out == "x"


class TestExportHelpers:
    def test_figure6_csv(self):
        text = figure6_to_csv({"d": {16: 0.5, 32: 1.0}})
        assert "thomas_switch=16" in text.splitlines()[0]
        assert "0.5" in text


class TestSorterCapacity:
    def test_max_tile_elements(self):
        sorter470 = MultiStageSorter("gtx470")
        sorter8800 = MultiStageSorter("8800gtx")
        # 48 KB vs 16 KB shared memory, double-buffered f64 keys.
        assert sorter470.max_tile_elements(8) == 2048
        assert sorter8800.max_tile_elements(8) == 1024

    def test_report_describe_stage_shares(self):
        values = np.random.default_rng(0).random(1 << 14)
        result = MultiStageSorter("gtx470", tile_size=256, coop_threshold=4).sort(values)
        text = result.report.describe()
        assert "tile_sort" in text and "%" in text
