"""Tests for the observability layer: spans, metrics, and exporters.

Pins the contracts ``docs/observability.md`` documents:

- the tracer produces well-formed trees even when runs fail;
- execute and price interpretations of one program emit *equal* span
  trees (the observability analogue of the pricing contract);
- the Chrome trace exporter is byte-deterministic for a seeded run,
  fault plan included;
- the service mirrors its counters into a shared registry, and stats
  are recorded *before* request futures resolve.
"""

from __future__ import annotations

import json

import pytest

from repro.core import MultiStageSolver
from repro.faults import FaultInjector, FaultPlan, RetryPolicy, TransientKernelFault
from repro.gpu import make_device
from repro.kernels import dtype_size
from repro.ir import Engine
from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace_json,
    spans_from_report,
    spans_to_trace_events,
)
from repro.obs.trace import CATEGORIES, Span
from repro.service import BatchSolveService
from repro.systems import generators


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_attrs(self):
        tracer = Tracer()
        tracer.begin("outer", "solve", 0.0, device=1, zebra=1, apple=2)
        tracer.leaf("inner", "instruction", 1.0, 2.0, op="Pad")
        tracer.end(5.0)

        (root,) = tracer.spans()
        assert root.name == "outer"
        assert root.category == "solve"
        assert root.device == 1
        assert root.duration_ms == 5.0
        # Attrs are stored sorted by key.
        assert root.attrs == (("apple", 2), ("zebra", 1))
        assert root.attr("zebra") == 1
        assert root.attr("missing", 42) == 42
        (child,) = root.children
        assert child.attr("op") == "Pad"
        assert [s.name for s in root.walk()] == ["outer", "inner"]

    def test_abort_to_unwinds_and_annotates(self):
        tracer = Tracer()
        token = tracer.begin("outer", "solve", 0.0)
        tracer.begin("middle", "program", 1.0)
        tracer.begin("deep", "instruction", 9.0)
        tracer.abort_to(token, 3.0, error="BoomError")

        assert tracer.depth == 0
        (root,) = tracer.spans()
        assert root.attr("error") == "BoomError"
        (middle,) = root.children
        (deep,) = middle.children
        # Spans never end before they start, even when the abort time
        # predates a deeper span's open.
        for span in root.walk():
            assert span.end_ms >= span.start_ms
        assert deep.end_ms == 9.0

    def test_clear_drops_roots_only(self):
        tracer = Tracer()
        tracer.leaf("done", "solve", 0.0, 1.0)
        tracer.begin("open", "solve", 0.0)
        tracer.clear()
        assert tracer.spans() == ()
        assert tracer.depth == 1
        tracer.end(2.0)
        assert len(tracer.spans()) == 1


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "help")
        c.inc(status="ok")
        c.inc(2, status="ok")
        c.inc(status="bad")
        assert c.value(status="ok") == 3
        assert c.value(status="bad") == 1
        assert c.total() == 4

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_test_depth")
        g.set(7)
        g.add(-2)
        assert g.value() == 5

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_ms", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == 555.5
        text = reg.render()
        # Cumulative buckets plus the implicit +Inf.
        assert 'repro_test_ms_bucket{le="1"} 1' in text
        assert 'repro_test_ms_bucket{le="10"} 2' in text
        assert 'repro_test_ms_bucket{le="100"} 3' in text
        assert 'repro_test_ms_bucket{le="+Inf"} 4' in text
        assert "repro_test_ms_count 4" in text

    def test_registration_idempotent_with_kind_check(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_thing_total")
        assert reg.counter("repro_thing_total") is a
        with pytest.raises(ValueError):
            reg.gauge("repro_thing_total")
        assert reg.get("repro_thing_total") is a
        assert reg.get("nope") is None

    def test_render_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("repro_b_total").inc(status="y")
            reg.counter("repro_b_total").inc(status="x")
            reg.gauge("repro_a_depth").set(3)
            reg.histogram("repro_c_ms").observe(0.42)
            return reg.render()

        text = build()
        assert text == build()
        assert text.endswith("\n")
        # Instruments render sorted by name, labels sorted by key.
        assert text.index("repro_a_depth") < text.index("repro_b_total")
        assert text.index('status="x"') < text.index('status="y"')


# ---------------------------------------------------------------------------
# Engine span trees
# ---------------------------------------------------------------------------


def traced_solve(batch, *, faults=None, device="gtx470"):
    """One traced solve on a fresh solver; returns (tracer, result)."""
    tracer = Tracer()
    solver = MultiStageSolver(device, faults=faults, tracer=tracer)
    result = solver.solve(batch)
    return tracer, result


class TestEngineSpans:
    def test_solve_span_hierarchy(self, small_batch):
        tracer, result = traced_solve(small_batch)
        (root,) = tracer.spans()
        assert root.category == "solve"
        assert root.attr("device_name") == make_device("gtx470").name
        assert root.end_ms == pytest.approx(result.report.total_ms)

        (program,) = root.children
        assert program.category == "program"
        assert program.attr("steps") == len(program.children)
        for cat in ("instruction", "kernel"):
            assert any(s.category == cat for s in root.walk())
        for span in root.walk():
            assert span.category in CATEGORIES
            assert span.end_ms >= span.start_ms

        # Instruction spans tile the program interval in step order.
        steps = program.children
        assert all(s.category == "instruction" for s in steps)
        starts = [s.start_ms for s in steps]
        assert starts == sorted(starts)
        assert steps[-1].end_ms <= program.end_ms

    def test_execute_price_span_parity(self, pow2_batch):
        tracer, result = traced_solve(pow2_batch)
        (root,) = tracer.spans()
        (executed,) = root.children

        price_tracer = Tracer()
        engine = Engine.for_device(make_device("gtx470"))
        engine.tracer = price_tracer
        program = result.plan.lower(engine.devices[0], dtype_size(pow2_batch.dtype))
        engine.price(program)
        (priced,) = price_tracer.spans()

        # Frozen-dataclass equality: the whole trees match, kernels included.
        assert priced == executed

    def test_parity_holds_under_faults(self, pow2_batch):
        plan = FaultPlan(
            seed=2,
            faults=(TransientKernelFault(probability=0.3),),
            retry=RetryPolicy(max_attempts=6, budget=64),
        )
        tracer, result = traced_solve(pow2_batch, faults=plan)
        (root,) = tracer.spans()
        (executed,) = root.children
        retried = [s for s in executed.children if s.attr("retries")]
        assert retried, "fault plan should have injected at least one retry"

        price_tracer = Tracer()
        engine = Engine.for_device(make_device("gtx470"))
        engine.injector = FaultInjector(plan)
        engine.tracer = price_tracer
        program = result.plan.lower(engine.devices[0], dtype_size(pow2_batch.dtype))
        engine.price(program)
        (priced,) = price_tracer.spans()
        assert priced == executed


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------


def assert_valid_trace_events(events):
    """Structural checks Perfetto relies on: ph/ts/dur/pid/tid."""
    assert events, "expected at least one event"
    for ev in events:
        assert ev["ph"] in ("X", "M")
        assert isinstance(ev["pid"], int)
        assert isinstance(ev["tid"], int)
        if ev["ph"] == "X":
            assert ev["ts"] >= 0.0
            assert ev["dur"] >= 0.0
            assert isinstance(ev["name"], str) and ev["name"]


class TestChromeExport:
    def test_solve_trace_events(self, small_batch):
        tracer, _ = traced_solve(small_batch)
        events = spans_to_trace_events(tracer.spans(), ("gtx470",))
        assert_valid_trace_events(events)
        meta = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in meta}
        names = [e["args"]["name"] for e in meta if e["name"] == "process_name"]
        assert names == ["gtx470"]

        doc = json.loads(chrome_trace_json(events))
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == len(events)

    def test_transfer_spans_use_xfer_thread(self):
        spans = (
            Span("[0] Transfer", "instruction", 0.0, 1.0, attrs=(("op", "Transfer"),)),
            Span("[1] Pad", "instruction", 1.0, 2.0, attrs=(("op", "Pad"),)),
        )
        events = [e for e in spans_to_trace_events(spans) if e["ph"] == "X"]
        tids = {e["name"]: e["tid"] for e in events}
        assert tids == {"[0] Transfer": 1, "[1] Pad": 0}

    @pytest.mark.dist
    def test_dist_trace_has_one_track_per_device(self):
        from repro.dist import DistributedSolver, make_device_group

        group = make_device_group(count=4)
        solver = DistributedSolver(group, "static")
        batch = generators.random_dominant(4, 1 << 15, rng=2)
        result = solver.solve(batch)
        from repro.obs import report_to_trace_events

        events = report_to_trace_events(result.report)
        assert_valid_trace_events(events)
        pids = {e["pid"] for e in events}
        assert pids == {0, 1, 2, 3}
        # Metrics recorded one makespan gauge per device.
        gauge = solver.metrics.get("repro_dist_makespan_ms")
        assert gauge is not None
        assert all(gauge.value(device=i) > 0 for i in range(4))


class TestTraceDeterminism:
    def test_byte_identical_across_runs_with_faults(self):
        plan = FaultPlan(
            seed=0,
            faults=(TransientKernelFault(probability=0.25),),
            retry=RetryPolicy(max_attempts=6, budget=64),
        )

        def run_once():
            batch = generators.random_dominant(4, 256, rng=3)
            tracer = Tracer()
            solver = MultiStageSolver("gtx470", faults=plan, tracer=tracer)
            solver.solve(batch)
            events = spans_to_trace_events(tracer.spans(), ("gtx470",))
            injected = solver.faults.log.summary()["events"]
            return chrome_trace_json(events), injected

        first, injected = run_once()
        second, _ = run_once()
        assert injected > 0, "fault plan should actually fire"
        assert first == second


# ---------------------------------------------------------------------------
# Timeline rendering over spans
# ---------------------------------------------------------------------------


class TestTimelineSpans:
    def test_render_timeline_matches_render_spans(self, small_batch):
        from repro.analysis import render_spans, render_timeline

        result = MultiStageSolver("gtx470").solve(small_batch)
        by_report = render_timeline(result.report)
        by_spans = render_spans(
            spans_from_report(result.report), title=result.report.device_name
        )
        assert by_report == by_spans
        assert result.report.device_name in by_report

    def test_kernel_spans_carry_bound_and_stage(self, small_batch):
        result = MultiStageSolver("gtx470").solve(small_batch)
        spans = spans_from_report(result.report)
        assert spans
        for span in spans:
            assert span.category == "kernel"
            assert span.attr("bound") in ("compute", "memory", "latency")
            assert span.attr("stage")


# ---------------------------------------------------------------------------
# Service metrics and stats ordering
# ---------------------------------------------------------------------------


class TestServiceObservability:
    def test_metrics_mirror_stats(self, small_batch):
        with BatchSolveService(max_workers=2) as svc:
            futures = [svc.submit(small_batch) for _ in range(3)]
            svc.flush()
            for fut in futures:
                fut.result(timeout=30)
            snap = svc.stats.snapshot()

        requests = svc.metrics.get("repro_service_requests_total")
        assert requests.value(status="submitted") == snap["requests_submitted"] == 3
        assert requests.value(status="completed") == snap["requests_completed"] == 3
        groups = svc.metrics.get("repro_service_groups_total")
        assert groups.total() == snap["groups_executed"]
        hist = svc.metrics.get("repro_service_group_systems")
        assert hist.count() == snap["groups_executed"]
        lookups = svc.metrics.get("repro_tuning_cache_lookups_total")
        assert lookups.total() == (
            snap["tuning_cache"]["hits"] + snap["tuning_cache"]["misses"]
        )
        assert svc.metrics.get("repro_service_queue_depth").value() == 0

        text = svc.metrics.render()
        assert 'repro_service_requests_total{status="completed"} 3' in text

    def test_stats_recorded_before_future_resolves(self, small_batch):
        # Regression: record_group used to run after future.set_result, so
        # a client could observe its answer while groups_executed still
        # read 0. The service now records stats (and breaker state) before
        # resolving futures — result() implies the snapshot includes it.
        with BatchSolveService(max_workers=4) as svc:
            for i in range(1, 11):
                fut = svc.submit(small_batch)
                svc.flush()
                fut.result(timeout=30)
                snap = svc.stats.snapshot()
                assert snap["requests_completed"] >= i
                assert snap["groups_executed"] >= i

    def test_fault_metrics_replayed_on_attach(self, small_batch):
        plan = FaultPlan(
            seed=3,
            faults=(TransientKernelFault(probability=0.3),),
            retry=RetryPolicy(max_attempts=6, budget=64),
        )
        injector = FaultInjector(plan)
        solver = MultiStageSolver("gtx470", faults=injector)
        solver.solve(small_batch)
        assert injector.log.summary()["events"] > 0

        # Events recorded before attach are replayed into the registry.
        reg = MetricsRegistry()
        injector.log.attach_metrics(reg)
        counter = reg.get("repro_fault_events_total")
        assert counter.total() == injector.log.summary()["events"]
