"""Tests for custom device construction and tuner portability.

The paper's motivation: new parts arrive faster than hand-tuning can
follow, so the self-tuner must adapt to capability changes unseen. These
tests build hypothetical devices and check that the tuned switch points
move the way the architecture says they should.
"""

import pytest

from repro.algorithms import max_residual
from repro.core import MultiStageSolver, SelfTuner, simulate_plan
from repro.gpu import GENERATION_PRESETS, make_custom_spec, make_device
from repro.systems import generators
from repro.util.errors import ConfigurationError


class TestConstruction:
    def test_presets_exist(self):
        assert set(GENERATION_PRESETS) == {"g80", "gt200", "fermi"}

    def test_basic_build(self):
        spec = make_custom_spec("TestPart", num_processors=20)
        assert spec.name == "TestPart"
        assert spec.num_processors == 20
        assert spec.registers_per_processor == 32_768  # fermi preset

    def test_generation_selects_hidden_params(self):
        g80 = make_custom_spec("Old", generation="g80")
        fermi = make_custom_spec("New", generation="fermi")
        assert g80.misaligned_access_penalty > fermi.misaligned_access_penalty
        assert g80.cycles_per_warp_instruction > fermi.cycles_per_warp_instruction

    def test_overrides_win(self):
        spec = make_custom_spec("Odd", generation="g80", warp_size=64)
        assert spec.warp_size == 64

    def test_unknown_generation(self):
        with pytest.raises(ConfigurationError):
            make_custom_spec("X", generation="volta")

    def test_invalid_fields_still_validated(self):
        with pytest.raises(ConfigurationError):
            make_custom_spec("X", num_processors=0)


class TestTunerPortability:
    def test_more_shared_memory_allows_bigger_onchip(self):
        small = make_custom_spec("Small", shared_mem_kb=16, generation="fermi")
        big = make_custom_spec("Big", shared_mem_kb=96, generation="fermi",
                               registers_per_processor=131_072)
        dsmall = make_device(small)
        dbig = make_device(big)
        assert dbig.max_onchip_system_size(4) > dsmall.max_onchip_system_size(4)
        sp_small = SelfTuner().switch_points(dsmall, 0, 0, 4)
        sp_big = SelfTuner().switch_points(dbig, 0, 0, 4)
        assert sp_big.stage3_system_size >= sp_small.stage3_system_size

    def test_wider_machine_raises_stage1_target(self):
        """More processors need more independent systems before stage 2
        can fill the machine."""
        narrow = make_custom_spec("Narrow", num_processors=4)
        wide = make_custom_spec("Wide", num_processors=64)
        sp_n = SelfTuner().switch_points(make_device(narrow), 1, 1 << 21, 4)
        sp_w = SelfTuner().switch_points(make_device(wide), 1, 1 << 21, 4)
        assert sp_w.stage1_target_systems >= sp_n.stage1_target_systems

    def test_solver_correct_on_custom_part(self):
        spec = make_custom_spec(
            "Hypothetical", generation="gt200", num_processors=24,
            shared_mem_kb=32, bandwidth_gb_s=90.0,
        )
        batch = generators.random_dominant(16, 4096, rng=0)
        result = MultiStageSolver(make_device(spec), "dynamic").solve(batch)
        assert max_residual(batch, result.x) < 1e-12

    def test_dynamic_not_worse_on_custom_part(self):
        from repro.core import DefaultTuner, MachineQueryTuner

        spec = make_custom_spec(
            "Weird", generation="fermi", num_processors=8,
            shared_mem_kb=64, bandwidth_gb_s=60.0,
            registers_per_processor=65_536,
        )
        dev = make_device(spec)
        for m, n in ((512, 2048), (1, 1 << 20)):
            dyn = SelfTuner().switch_points(dev, m, n, 4)
            _, dyn_rep = simulate_plan(dev, m, n, 4, dyn)
            for tuner in (DefaultTuner(), MachineQueryTuner()):
                sp = tuner.switch_points(dev, m, n, 4)
                _, rep = simulate_plan(dev, m, n, 4, sp)
                assert dyn_rep.total_ms <= rep.total_ms * 1.02, (m, n, tuner.name)

    def test_saturation_scales_with_width(self):
        spec = make_custom_spec("W", num_processors=10)
        assert spec.blocks_to_saturate_bandwidth == 40
