"""Tests for properties, I/O, workload suite, and util helpers."""

import numpy as np
import pytest

from repro.systems import (
    PAPER_WORKLOAD_NAMES,
    Workload,
    build_workload,
    condition_estimate,
    dominance_margin,
    generators,
    has_zero_diagonal,
    is_diagonally_dominant,
    is_symmetric,
    is_toeplitz,
    load_batch,
    paper_workloads,
    save_batch,
    summarize,
)
from repro.util.errors import ConfigurationError, ShapeError
from repro.util.validation import (
    check_power_of_two,
    ilog2,
    is_power_of_two,
    next_power_of_two,
)
from repro.util import units


class TestProperties:
    def test_dominance_margin_sign(self):
        dominant = generators.random_dominant(2, 16, rng=0)
        assert dominance_margin(dominant).min() > 0
        hostile = generators.ill_conditioned(2, 16, epsilon=1e-9)
        assert 0 < dominance_margin(hostile).min() < 1e-6

    def test_strict_vs_weak(self):
        poisson = generators.poisson_1d(1, 16)
        assert is_diagonally_dominant(poisson)
        assert not is_diagonally_dominant(poisson, strict=True)

    def test_symmetry_detection(self):
        assert is_symmetric(generators.poisson_1d(2, 16))
        assert not is_symmetric(generators.random_dominant(2, 16, rng=0))

    def test_toeplitz_detection(self):
        assert is_toeplitz(generators.toeplitz(2, 16))
        assert not is_toeplitz(generators.cubic_spline(2, 16, rng=0))

    def test_zero_diagonal(self):
        assert has_zero_diagonal(generators.singular(1, 8))
        assert not has_zero_diagonal(generators.random_dominant(1, 8, rng=0))

    def test_condition_estimate_identity(self):
        batch = generators.identity(2, 8)
        np.testing.assert_allclose(condition_estimate(batch), 1.0)

    def test_condition_estimate_guard(self):
        batch = generators.identity(1, 16)
        with pytest.raises(ValueError):
            condition_estimate(batch, max_size=8)

    def test_condition_grows_with_ill_conditioning(self):
        good = generators.random_dominant(1, 32, rng=0)
        bad = generators.ill_conditioned(1, 32, epsilon=1e-8)
        assert condition_estimate(bad)[0] > 100 * condition_estimate(good)[0]

    def test_summary_fields(self):
        batch = generators.poisson_1d(3, 16)
        s = summarize(batch)
        assert s.num_systems == 3 and s.system_size == 16
        assert s.symmetric and s.toeplitz and s.diagonally_dominant
        assert "3x16" in str(s)


class TestIO:
    def test_roundtrip(self, tmp_path, small_batch):
        path = tmp_path / "batch.npz"
        save_batch(path, small_batch)
        loaded = load_batch(path)
        np.testing.assert_array_equal(loaded.a, small_batch.a)
        np.testing.assert_array_equal(loaded.d, small_batch.d)
        assert loaded.dtype == small_batch.dtype

    def test_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, a=np.ones((1, 4)))
        with pytest.raises(ShapeError):
            load_batch(path)

    def test_bad_format_tag_rejected(self, tmp_path, small_batch):
        path = tmp_path / "tagged.npz"
        np.savez(
            path,
            a=small_batch.a,
            b=small_batch.b,
            c=small_batch.c,
            d=small_batch.d,
            format=np.array("other-format"),
        )
        with pytest.raises(ShapeError):
            load_batch(path)


class TestWorkloadSuite:
    def test_paper_workloads_shapes(self):
        loads = {w.name: w for w in paper_workloads()}
        assert set(loads) == set(PAPER_WORKLOAD_NAMES)
        assert loads["1Kx1K"].shape == (1024, 1024)
        assert loads["4Kx4K"].shape == (4096, 4096)
        assert loads["1x2M"].shape == (1, 1 << 21)
        assert loads["1x2M"].total_equations == 1 << 21

    def test_build_by_name_scaled(self):
        batch = build_workload("1Kx1K", scale=64, seed=0)
        assert batch.shape == (16, 16)

    def test_scale_floors(self):
        w = Workload("tiny", 1, 8)
        assert w.scaled(100).shape == (1, 2)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            build_workload("3Kx3K")

    def test_unknown_generator_rejected(self):
        with pytest.raises(ConfigurationError):
            build_workload("1Kx1K", generator="evil", scale=64)

    def test_generator_choice(self):
        batch = build_workload("1Kx1K", generator="poisson_1d", scale=64)
        assert is_toeplitz(batch)


class TestUtil:
    def test_power_of_two_helpers(self):
        assert is_power_of_two(1) and is_power_of_two(1024)
        assert not is_power_of_two(0) and not is_power_of_two(12)
        assert next_power_of_two(1) == 1
        assert next_power_of_two(17) == 32
        assert ilog2(256) == 8
        with pytest.raises(ConfigurationError):
            check_power_of_two(12, "x")
        with pytest.raises(ConfigurationError):
            check_power_of_two(True, "x")

    def test_units(self):
        assert units.kib(16) == 16384
        assert units.gb_per_s_to_bytes_per_ms(1.0) == 1e6
        assert units.us_to_ms(1000) == 1.0
        assert units.cycles_to_ms(1_000_000, 1000.0) == 1.0
        assert "KiB" in units.fmt_bytes(2048)
        assert "ms" in units.fmt_ms(5.0)
        assert "us" in units.fmt_ms(0.5)
        assert "s" in units.fmt_ms(2000.0)
